package qarv

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// stochasticSessionOpts builds a session where every seedable component
// is stochastic and none carries its own RNG — the configuration
// WithSeed exists for.
func stochasticSessionOpts(t *testing.T, seed uint64) []Option {
	t.Helper()
	cost, util := cheapModels(t)
	p, err := NewRandomPolicy([]int{2, 3, 4, 5}, 1) // RNG replaced by WithSeed
	if err != nil {
		t.Fatal(err)
	}
	return []Option{
		WithPolicy(p),
		WithArrivals(&PoissonArrivals{Mean: 1.3}),
		WithCost(cost),
		WithUtility(util),
		WithService(&NoisyService{Mean: 4000, Std: 600}),
		WithSlots(400),
		WithSeed(seed),
	}
}

func runSeeded(t *testing.T, seed uint64) []byte {
	t.Helper()
	s, err := NewSession(stochasticSessionOpts(t, seed)...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWithSeedDeterminism pins the WithSeed contract: two sessions built
// with the same options and seed produce byte-identical reports, and a
// different seed actually changes the run.
func TestWithSeedDeterminism(t *testing.T) {
	a, b := runSeeded(t, 42), runSeeded(t, 42)
	if string(a) != string(b) {
		t.Fatal("same seed produced different reports")
	}
	if c := runSeeded(t, 43); string(c) == string(a) {
		t.Fatal("different seed produced an identical report")
	}
}

// TestWithSeedMultiDevice: seeding reaches every device's stochastic
// components in a multi-device session and stays byte-deterministic.
func TestWithSeedMultiDevice(t *testing.T) {
	run := func(seed uint64) []byte {
		cost, util := cheapModels(t)
		devs := make([]Device, 3)
		for i := range devs {
			p, err := NewRandomPolicy([]int{2, 3, 4, 5}, 1)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = Device{
				Policy:   p,
				Cost:     cost,
				Utility:  util,
				Arrivals: &PoissonArrivals{Mean: 1.1},
			}
		}
		s, err := NewSession(
			WithDevices(devs...),
			WithService(&NoisyService{Mean: 12_000, Std: 1500}),
			WithSlots(300),
			WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := run(7), run(7); string(a) != string(b) {
		t.Fatal("same seed produced different multi-device reports")
	}
	if a, c := run(7), run(8); string(a) == string(c) {
		t.Fatal("different seed produced an identical multi-device report")
	}
}

// TestWithSeedDistinctStreams: the per-component child streams must be
// independent — a session whose arrivals and service share one seed must
// not hand them correlated draws (regression guard against reseeding
// every component with the same RNG instance).
func TestWithSeedDistinctStreams(t *testing.T) {
	arr := &PoissonArrivals{Mean: 5}
	svc := &NoisyService{Mean: 100, Std: 30}
	if _, err := NewSession(
		WithPolicy(&FixedDepth{Depth: 3}),
		WithArrivals(arr),
		WithCost(mustCost(t)), WithUtility(mustUtil(t)),
		WithService(svc),
		WithSlots(10),
		WithSeed(1),
	); err != nil {
		t.Fatal(err)
	}
	if arr.RNG == nil || svc.RNG == nil {
		t.Fatal("WithSeed did not reach the components")
	}
	if arr.RNG == svc.RNG {
		t.Fatal("components share one RNG instance")
	}
	// Distinct streams: the first draws must differ.
	if arr.RNG.Uint64() == svc.RNG.Uint64() {
		t.Fatal("component streams are correlated")
	}
}

func mustCost(t *testing.T) CostModel {
	t.Helper()
	cost, _ := cheapModels(t)
	return cost
}

func mustUtil(t *testing.T) UtilityModel {
	t.Helper()
	_, util := cheapModels(t)
	return util
}

// TestWithSeedMarkovService: the netem bandwidth processes double as
// service processes, and WithSeed reaches them through the same Reseed
// hook as the other stochastic components — a sim session on a
// Markov-modulated device capacity is deterministic per seed.
func TestWithSeedMarkovService(t *testing.T) {
	run := func(seed uint64) []byte {
		cost, util := cheapModels(t)
		p, err := NewThresholdPolicy([]int{2, 3, 4, 5}, 3000, 9000)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(
			WithPolicy(p),
			WithArrivals(&DeterministicArrivals{PerSlot: 1}),
			WithCost(cost),
			WithUtility(util),
			WithService(&MarkovBandwidth{
				GoodRate: 5000, BadRate: 1500,
				PGoodBad: 0.08, PBadGood: 0.2,
			}),
			WithSlots(400),
			WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(21), run(21)
	if string(a) != string(b) {
		t.Fatal("same seed produced different markov-service reports")
	}
	if c := run(22); string(c) == string(a) {
		t.Fatal("different seed produced an identical markov-service report")
	}
}

// The calibrated scenario is expensive to build (synthetic frame +
// octree), so the sweep tests share one instance.
var (
	sweepScnOnce sync.Once
	sweepScn     *Scenario
	sweepScnErr  error
)

func sweepScenario(t *testing.T) *Scenario {
	t.Helper()
	sweepScnOnce.Do(func() {
		sweepScn, sweepScnErr = NewScenario(ScenarioParams{Samples: 40_000, Slots: 400, KneeSlot: 200, Seed: 2})
	})
	if sweepScnErr != nil {
		t.Fatal(sweepScnErr)
	}
	return sweepScn
}

// threeAxisSweep builds the acceptance grid: a 3-axis cross product
// where every cell is stochastic, so per-cell seed derivation is doing
// real work.
func threeAxisSweep(t *testing.T, workers int, seed uint64) *Sweep {
	t.Helper()
	sw, err := NewSweep(sweepScenario(t),
		AxisV(0.5, 1),
		AxisArrivalRate(0.9, 1.1),
		AxisNetwork(NetworkStatic(), NetworkMarkov(0.5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	sw.Workers = workers
	sw.Slots = 120
	sw.Seed = seed
	return sw
}

func sweepJSON(t *testing.T, sw *Sweep) string {
	t.Helper()
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSweepDeterminismAcrossWorkers pins the sweep engine's seed
// contract through the facade: a 3-axis stochastic cross product is
// byte-identical at workers 1, 4, and GOMAXPROCS, and a different sweep
// seed actually changes the report.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	base := sweepJSON(t, threeAxisSweep(t, 1, 42))
	if got := sweepJSON(t, threeAxisSweep(t, 4, 42)); got != base {
		t.Fatal("workers=4 diverged from workers=1")
	}
	if got := sweepJSON(t, threeAxisSweep(t, 0, 42)); got != base {
		t.Fatal("workers=GOMAXPROCS diverged from workers=1")
	}
	if got := sweepJSON(t, threeAxisSweep(t, 4, 43)); got == base {
		t.Fatal("different sweep seed produced an identical report")
	}
}

// TestSweepDeterminismFleetBackend: the same contract when every cell
// is a sharded fleet.
func TestSweepDeterminismFleetBackend(t *testing.T) {
	run := func(workers int) string {
		sw := threeAxisSweep(t, workers, 42)
		sw.Backend = BackendFleet(8)
		sw.Slots = 60
		return sweepJSON(t, sw)
	}
	base := run(1)
	if got := run(4); got != base {
		t.Fatal("fleet-backend sweep diverged across worker counts")
	}
}

// TestSweepBackendsCoincideViaFacade: a deterministic cell reports the
// same means whether run in-process or as a single-session fleet.
func TestSweepBackendsCoincideViaFacade(t *testing.T) {
	run := func(b SweepBackend) SweepRow {
		sw, err := NewSweep(sweepScenario(t), AxisV(1))
		if err != nil {
			t.Fatal(err)
		}
		sw.Backend = b
		sw.Slots = 200
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Rows[0]
	}
	pool, fl := run(BackendPool()), run(BackendFleet(1))
	if math.Abs(pool.Utility-fl.Utility) > 1e-9 || math.Abs(pool.Backlog-fl.Backlog) > 1e-9 {
		t.Errorf("backends diverge: pool (%v, %v) vs fleet (%v, %v)",
			pool.Utility, pool.Backlog, fl.Utility, fl.Backlog)
	}
}

// contentSweep builds the content acceptance grid: two measured assets
// crossed with V factors, every cell calibrated over its asset's
// measured byte/PSNR ladders. Profiles resolve through the content
// cache, so the asset pipeline runs once per asset per process.
func contentSweep(t *testing.T, workers int, seed uint64) *Sweep {
	t.Helper()
	profs := make([]*ContentProfile, 2)
	for i, asset := range []string{"loot", "soldier"} {
		p, err := LoadContent(ContentConfig{Asset: asset, Samples: 6_000, CaptureDepth: 7, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		profs[i] = p
	}
	base, err := NewContentScenario(ScenarioParams{KneeSlot: 100, Slots: 200}, profs[0])
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSweep(base, AxisContent(profs...), AxisV(0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	sw.Workers = workers
	sw.Slots = 120
	sw.Seed = seed
	return sw
}

// TestContentSweepDeterminism pins the acceptance contract for
// content-backed sweeps: an AxisContent (2 assets) × AxisV grid is
// byte-identical at workers 1 and 4, on both backends — same seed ⇒
// identical measured profile ⇒ identical SweepReport at any worker or
// shard count.
func TestContentSweepDeterminism(t *testing.T) {
	base := sweepJSON(t, contentSweep(t, 1, 42))
	if got := sweepJSON(t, contentSweep(t, 4, 42)); got != base {
		t.Fatal("content sweep diverged between workers 1 and 4")
	}
	fleetRun := func(workers int) string {
		sw := contentSweep(t, workers, 42)
		sw.Backend = BackendFleet(8)
		sw.Slots = 60
		return sweepJSON(t, sw)
	}
	if fleetRun(1) != fleetRun(4) {
		t.Fatal("content fleet-backend sweep diverged across worker counts")
	}
}

// TestContentSweepBackendsCoincide: a deterministic content cell reports
// the same means in-process and as a single-session fleet — the measured
// ladders resolve identically down both backend paths.
func TestContentSweepBackendsCoincide(t *testing.T) {
	run := func(b SweepBackend) SweepRow {
		sw := contentSweep(t, 1, 42)
		sw.Backend = b
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Rows[0]
	}
	pool, fl := run(BackendPool()), run(BackendFleet(1))
	if math.Abs(pool.Utility-fl.Utility) > 1e-9 || math.Abs(pool.Backlog-fl.Backlog) > 1e-9 {
		t.Errorf("content backends diverge: pool (%v, %v) vs fleet (%v, %v)",
			pool.Utility, pool.Backlog, fl.Utility, fl.Backlog)
	}
}

// Regression (review finding): Run twice on the same markov-service
// session must not freeze the chain — a t regression resets the
// process state while the RNG stream continues, so the second run is
// still Markov-modulated (both capacity levels appear).
func TestMarkovServiceSurvivesSessionReRun(t *testing.T) {
	cost, util := cheapModels(t)
	p, err := NewThresholdPolicy([]int{2, 3, 4, 5}, 3000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	mb := &MarkovBandwidth{GoodRate: 5000, BadRate: 1500, PGoodBad: 0.2, PBadGood: 0.2}
	s, err := NewSession(
		WithPolicy(p),
		WithArrivals(&DeterministicArrivals{PerSlot: 1}),
		WithCost(cost), WithUtility(util),
		WithService(mb),
		WithSlots(300),
		WithSeed(33),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After the second run the chain must have visited both states.
	levels := map[float64]bool{}
	for slot := 0; slot < 300; slot++ {
		levels[mb.Bandwidth(slot)] = true // third restart; still mixing
	}
	if len(levels) != 2 {
		t.Fatalf("markov service froze after re-Run: levels %v", levels)
	}
}
