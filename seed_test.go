package qarv

import (
	"context"
	"encoding/json"
	"testing"
)

// stochasticSessionOpts builds a session where every seedable component
// is stochastic and none carries its own RNG — the configuration
// WithSeed exists for.
func stochasticSessionOpts(t *testing.T, seed uint64) []Option {
	t.Helper()
	cost, util := cheapModels(t)
	p, err := NewRandomPolicy([]int{2, 3, 4, 5}, 1) // RNG replaced by WithSeed
	if err != nil {
		t.Fatal(err)
	}
	return []Option{
		WithPolicy(p),
		WithArrivals(&PoissonArrivals{Mean: 1.3}),
		WithCost(cost),
		WithUtility(util),
		WithService(&NoisyService{Mean: 4000, Std: 600}),
		WithSlots(400),
		WithSeed(seed),
	}
}

func runSeeded(t *testing.T, seed uint64) []byte {
	t.Helper()
	s, err := NewSession(stochasticSessionOpts(t, seed)...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWithSeedDeterminism pins the WithSeed contract: two sessions built
// with the same options and seed produce byte-identical reports, and a
// different seed actually changes the run.
func TestWithSeedDeterminism(t *testing.T) {
	a, b := runSeeded(t, 42), runSeeded(t, 42)
	if string(a) != string(b) {
		t.Fatal("same seed produced different reports")
	}
	if c := runSeeded(t, 43); string(c) == string(a) {
		t.Fatal("different seed produced an identical report")
	}
}

// TestWithSeedMultiDevice: seeding reaches every device's stochastic
// components in a multi-device session and stays byte-deterministic.
func TestWithSeedMultiDevice(t *testing.T) {
	run := func(seed uint64) []byte {
		cost, util := cheapModels(t)
		devs := make([]Device, 3)
		for i := range devs {
			p, err := NewRandomPolicy([]int{2, 3, 4, 5}, 1)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = Device{
				Policy:   p,
				Cost:     cost,
				Utility:  util,
				Arrivals: &PoissonArrivals{Mean: 1.1},
			}
		}
		s, err := NewSession(
			WithDevices(devs...),
			WithService(&NoisyService{Mean: 12_000, Std: 1500}),
			WithSlots(300),
			WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := run(7), run(7); string(a) != string(b) {
		t.Fatal("same seed produced different multi-device reports")
	}
	if a, c := run(7), run(8); string(a) == string(c) {
		t.Fatal("different seed produced an identical multi-device report")
	}
}

// TestWithSeedDistinctStreams: the per-component child streams must be
// independent — a session whose arrivals and service share one seed must
// not hand them correlated draws (regression guard against reseeding
// every component with the same RNG instance).
func TestWithSeedDistinctStreams(t *testing.T) {
	arr := &PoissonArrivals{Mean: 5}
	svc := &NoisyService{Mean: 100, Std: 30}
	if _, err := NewSession(
		WithPolicy(&FixedDepth{Depth: 3}),
		WithArrivals(arr),
		WithCost(mustCost(t)), WithUtility(mustUtil(t)),
		WithService(svc),
		WithSlots(10),
		WithSeed(1),
	); err != nil {
		t.Fatal(err)
	}
	if arr.RNG == nil || svc.RNG == nil {
		t.Fatal("WithSeed did not reach the components")
	}
	if arr.RNG == svc.RNG {
		t.Fatal("components share one RNG instance")
	}
	// Distinct streams: the first draws must differ.
	if arr.RNG.Uint64() == svc.RNG.Uint64() {
		t.Fatal("component streams are correlated")
	}
}

func mustCost(t *testing.T) CostModel {
	t.Helper()
	cost, _ := cheapModels(t)
	return cost
}

func mustUtil(t *testing.T) UtilityModel {
	t.Helper()
	_, util := cheapModels(t)
	return util
}

// TestWithSeedMarkovService: the netem bandwidth processes double as
// service processes, and WithSeed reaches them through the same Reseed
// hook as the other stochastic components — a sim session on a
// Markov-modulated device capacity is deterministic per seed.
func TestWithSeedMarkovService(t *testing.T) {
	run := func(seed uint64) []byte {
		cost, util := cheapModels(t)
		p, err := NewThresholdPolicy([]int{2, 3, 4, 5}, 3000, 9000)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(
			WithPolicy(p),
			WithArrivals(&DeterministicArrivals{PerSlot: 1}),
			WithCost(cost),
			WithUtility(util),
			WithService(&MarkovBandwidth{
				GoodRate: 5000, BadRate: 1500,
				PGoodBad: 0.08, PBadGood: 0.2,
			}),
			WithSlots(400),
			WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(21), run(21)
	if string(a) != string(b) {
		t.Fatal("same seed produced different markov-service reports")
	}
	if c := run(22); string(c) == string(a) {
		t.Fatal("different seed produced an identical markov-service report")
	}
}

// Regression (review finding): Run twice on the same markov-service
// session must not freeze the chain — a t regression resets the
// process state while the RNG stream continues, so the second run is
// still Markov-modulated (both capacity levels appear).
func TestMarkovServiceSurvivesSessionReRun(t *testing.T) {
	cost, util := cheapModels(t)
	p, err := NewThresholdPolicy([]int{2, 3, 4, 5}, 3000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	mb := &MarkovBandwidth{GoodRate: 5000, BadRate: 1500, PGoodBad: 0.2, PBadGood: 0.2}
	s, err := NewSession(
		WithPolicy(p),
		WithArrivals(&DeterministicArrivals{PerSlot: 1}),
		WithCost(cost), WithUtility(util),
		WithService(mb),
		WithSlots(300),
		WithSeed(33),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After the second run the chain must have visited both states.
	levels := map[float64]bool{}
	for slot := 0; slot < 300; slot++ {
		levels[mb.Bandwidth(slot)] = true // third restart; still mixing
	}
	if len(levels) != 2 {
		t.Fatalf("markov service froze after re-Run: levels %v", levels)
	}
}
