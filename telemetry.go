package qarv

// The telemetry facade: re-exports the internal/obs registry and flight
// recorder so callers can opt sessions (WithTelemetry,
// WithFlightRecorder), fleets (FleetSpec.Metrics/Recorder), and sweeps
// (Sweep.Metrics/Recorder) into metric collection and trace capture.
// Telemetry is strictly observational — every report is byte-identical
// with it on or off — and deterministic: a registry snapshot is
// byte-identical per seed at any worker or shard count.

import (
	"net/http"

	"qarv/internal/obs"
)

type (
	// MetricsRegistry is a mergeable registry of named counters, gauges,
	// and sketch-backed histograms. Instruments are concurrency-safe;
	// registries merge losslessly (counters add, gauges keep the max,
	// histogram sketches merge) and snapshot in sorted name order, so
	// snapshots are byte-identical per seed at any shard or worker
	// count. A nil registry is valid everywhere and records nothing.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a registry's point-in-time export: sorted
	// counter/gauge/histogram values, encodable as JSON
	// (EncodeJSON) or Prometheus text exposition (WriteProm).
	MetricsSnapshot = obs.Snapshot
	// FlightRecorder is a fixed-size ring of slot-stamped span/event
	// records, exportable as JSON (WriteJSON) or a Chrome trace_event
	// file (WriteTrace). Concurrency-safe; keeps the newest records
	// once full. A nil recorder is valid everywhere and records
	// nothing.
	FlightRecorder = obs.FlightRecorder
	// FlightRecord is one recorded span or event: a virtual-slot
	// timestamp (wall-clock microseconds on the live stream server), a
	// category/name pair, a track (device, seat, or connection id), and
	// a value.
	FlightRecord = obs.Record
)

// NewMetricsRegistry returns an empty registry at the default sketch
// accuracy (1% relative quantile error).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFlightRecorder returns a recorder holding the newest capacity
// records; capacity <= 0 takes the default (8192).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// MetricsHandler serves a registry's current snapshot in Prometheus
// text exposition format — mount it on any mux, or use
// NewMetricsDebugMux for a ready-made mux with net/http/pprof wired in.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// NewMetricsDebugMux returns a mux serving /metrics (Prometheus text)
// plus the standard /debug/pprof endpoints — the wall-clock side of the
// telemetry layer, for live processes like the stream edge server.
func NewMetricsDebugMux(r *MetricsRegistry) *http.ServeMux { return obs.NewDebugMux(r) }
