// Package qarv is a Go implementation of "Quality-Aware Real-Time
// Augmented Reality Visualization under Delay Constraints" (Lee, Park,
// Jung, Kim — IEEE ICDCS 2022): a Lyapunov drift-plus-penalty controller
// that picks the Octree depth of AR point-cloud frames each time slot,
// maximizing time-average visualization quality subject to queue
// stability.
//
// The package is a facade over the implementation packages: it re-exports
// the controller (Eq. (3) of the paper), the baseline policies, the
// slotted simulator, the fleet-scale engine, the octree/point-cloud/PLY
// substrates, the synthetic 8i-like dataset generator, and the
// figure-reproduction experiments. The exported names below are the
// supported public API; see README.md for the system tour and quickstart.
//
// # Sessions
//
// Every scenario — the single-device slotted simulation, the shared-budget
// multi-device run, and the edge-offload uplink run — is driven through
// one composable entry point, the Session: a functional-options builder
// that validates once and runs under a context.
//
//	scn, _ := qarv.NewScenario(qarv.ScenarioParams{})
//	s, _ := qarv.NewSession(qarv.WithScenario(scn))
//	rep, _ := s.Run(ctx) // honors ctx cancellation down the slot loops
//	fmt.Println(rep.Verdict, rep.TimeAvgUtility, rep.TimeAvgBacklog)
//
// Options override any scenario default (WithPolicy, WithArrivals,
// WithService, WithCost, WithUtility, WithSlots, WithMaxBacklog), switch
// scenario kind (WithDevices, WithOffload, WithLink), make every
// stochastic component deterministic from one seed (WithSeed), and
// attach per-slot streaming hooks (WithObserver). Sweeps run N sessions
// concurrently with deterministic result ordering through a SessionPool:
//
//	pool := qarv.NewSessionPool(0, s1, s2, s3) // 0 = GOMAXPROCS workers
//	reports, _ := pool.Run(ctx)                // reports[i] belongs to si
//
// The legacy flat entry points (RunSim, RunMulti, Offload) remain as thin
// deprecated wrappers over Session; see MIGRATION.md.
//
// # Fleets
//
// Above the single session sits the fleet engine: 10k–1M independent
// device sessions striped across shards, with churn and weighted
// heterogeneous profile mixes, aggregated in O(1) memory through
// streaming quantile sketches (see NewFleet, FleetSpec, Profile):
//
//	fl, _ := qarv.NewFleet(qarv.FleetSpec{
//	    Sessions: 100_000, Slots: 1000, Churn: 0.001, Seed: 1,
//	    Profiles: []qarv.Profile{scn.FleetProfile("proposed", 1, 1)},
//	})
//	frep, _ := fl.Run(ctx)
//	fmt.Println(frep.Total.Sojourn.P99, frep.DeviceSlotsPerSec)
//
// # Sweeps
//
// Experiments are declarative: NewSweep crosses typed axes (AxisV,
// AxisArrivalRate, AxisPolicy, AxisAllocator, AxisNetwork, AxisSlots,
// or the generic Axis) into a grid over a calibrated scenario and runs
// every cell concurrently on a pluggable backend — BackendPool in
// process, BackendFleet as a session population per cell — with
// per-cell seed derivation, so reports are byte-identical at any
// worker count:
//
//	sw, _ := qarv.NewSweep(scn,
//	    qarv.AxisV(0.5, 1, 2),
//	    qarv.AxisNetwork(qarv.NetworkStatic(), qarv.NetworkMarkov(0.6)),
//	)
//	sw.Backend = qarv.BackendFleet(1000)
//	rep, _ := sw.Run(ctx)    // one SweepRow per cell, grid order
//	tab, _ := rep.Table()    // trace.Table → CSV/JSON/ASCII
//
// The classic ablations (VSweep, RateSweep, UtilitySweep, NetworkSweep,
// AllocatorSweep, FleetVSweep) are thin wrappers over this engine; see
// cmd/qarvsweep for grids from the command line and MIGRATION.md for
// the mapping.
//
// # Building blocks
//
//	cloud, _ := qarv.GenerateBody(qarv.BodyConfig{}, qarv.Pose{})
//	tree, _ := qarv.BuildOctree(cloud, 10)
//	scn, _ := qarv.NewScenario(qarv.ScenarioParams{})
//	ctrl, _ := scn.Controller()
//	depth := ctrl.Decide(0, backlog) // d*(t) = argmax V·pa(d) − Q·a(d)
package qarv

import (
	"context"
	"io"

	"qarv/internal/alloc"
	"qarv/internal/content"
	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/experiments"
	"qarv/internal/geom"
	"qarv/internal/netem"
	"qarv/internal/octree"
	"qarv/internal/ply"
	"qarv/internal/pointcloud"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
	"qarv/internal/render"
	"qarv/internal/sim"
	"qarv/internal/synthetic"
	"qarv/internal/trace"
)

// ---------------------------------------------------------------------------
// Core controller (the paper's contribution)
// ---------------------------------------------------------------------------

type (
	// Controller is the drift-plus-penalty depth controller (Eq. (3)).
	Controller = core.Controller
	// ControllerConfig parameterizes NewController.
	ControllerConfig = core.Config
	// Decision is a detailed per-slot control decision.
	Decision = core.Decision
	// Bounds packages the O(1/V)/O(V) theoretical guarantees.
	Bounds = core.Bounds
	// MultiQueueController jointly controls K streams under a shared
	// budget via a virtual queue.
	MultiQueueController = core.MultiQueueController
	// MultiQueueConfig parameterizes NewMultiQueueController.
	MultiQueueConfig = core.MultiQueueConfig
	// AutoTuner adapts V online to hold a target backlog.
	AutoTuner = core.AutoTuner
)

// NewAutoTuner wraps a controller whose V adapts toward targetBacklog.
func NewAutoTuner(cfg ControllerConfig, targetBacklog, gain float64, adjustEvery int) (*AutoTuner, error) {
	return core.NewAutoTuner(cfg, targetBacklog, gain, adjustEvery)
}

// NewController validates the configuration and builds a controller.
func NewController(cfg ControllerConfig) (*Controller, error) { return core.New(cfg) }

// CalibrateV picks V so the control knee lands at the given slot (see
// core.CalibrateV).
func CalibrateV(kneeSlot, serviceRate float64, cfg ControllerConfig) (float64, error) {
	return core.CalibrateV(kneeSlot, serviceRate, cfg)
}

// NewMultiQueueController builds the K-stream shared-budget controller.
func NewMultiQueueController(cfg MultiQueueConfig) (*MultiQueueController, error) {
	return core.NewMultiQueue(cfg)
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

type (
	// Policy selects a depth per slot from the backlog observation.
	Policy = policy.Policy
	// FixedDepth always picks its configured depth.
	FixedDepth = policy.FixedDepth
)

// NewMaxDepthPolicy returns the paper's "only max-Depth" baseline.
func NewMaxDepthPolicy(depths []int) (Policy, error) { return policy.NewMaxDepth(depths) }

// NewMinDepthPolicy returns the paper's "only min-Depth" baseline.
func NewMinDepthPolicy(depths []int) (Policy, error) { return policy.NewMinDepth(depths) }

// NewThresholdPolicy returns the hysteresis baseline.
func NewThresholdPolicy(depths []int, low, high float64) (Policy, error) {
	return policy.NewThreshold(depths, low, high)
}

// NewRandomPolicy returns the uniform-random baseline.
func NewRandomPolicy(depths []int, seed uint64) (Policy, error) {
	return policy.NewRandom(depths, geom.NewRNG(seed))
}

// BestFixedPolicy returns the offline best fixed-depth oracle for a known
// service rate.
func BestFixedPolicy(depths []int, cost CostModel, serviceRate float64) (Policy, error) {
	return policy.BestFixed(depths, cost, serviceRate)
}

// ---------------------------------------------------------------------------
// Quality and delay models
// ---------------------------------------------------------------------------

type (
	// UtilityModel maps depth to the quality pa(d).
	UtilityModel = quality.UtilityModel
	// GeometryReport summarizes geometric fidelity metrics.
	GeometryReport = quality.GeometryReport
	// CostModel maps depth to per-frame workload a(d).
	CostModel = delay.CostModel
	// PointCostModel charges work per rendered point.
	PointCostModel = delay.PointCostModel
	// ServiceProcess yields per-slot device capacity.
	ServiceProcess = delay.ServiceProcess
	// ConstantService is a fixed-capacity service process.
	ConstantService = delay.ConstantService
	// NoisyService draws capacity from a truncated Gaussian.
	NoisyService = delay.NoisyService
	// ModulatedService scales an inner service by a time factor
	// (failure injection).
	ModulatedService = delay.ModulatedService
	// Calibration is a fitted points→time cost relationship.
	Calibration = delay.Calibration
)

// RNG is the small, deterministic, splittable generator every stochastic
// component of the library draws from (synthetic captures, arrival
// processes, service jitter, random baselines, fleet profile factories).
type RNG = geom.RNG

// NewRNG returns the deterministic RNG used across the library.
func NewRNG(seed uint64) *RNG { return geom.NewRNG(seed) }

// NewLogPointUtility builds the default log-points utility model over an
// octree occupancy profile.
func NewLogPointUtility(profile []int) (UtilityModel, error) {
	return quality.NewLogPointUtility(profile)
}

// NewPointCostModel builds a per-point workload model over an occupancy
// profile.
func NewPointCostModel(profile []int, perPoint, perLevel, fixed float64) (*PointCostModel, error) {
	return delay.NewPointCostModel(profile, perPoint, perLevel, fixed)
}

// CompareGeometry computes PSNR/Hausdorff fidelity of test against ref.
func CompareGeometry(ref, test *Cloud) (GeometryReport, error) {
	return quality.CompareGeometry(ref, test)
}

// ---------------------------------------------------------------------------
// Point clouds, octrees, PLY, synthetic dataset
// ---------------------------------------------------------------------------

type (
	// Cloud is a point cloud with optional colors and normals.
	Cloud = pointcloud.Cloud
	// Color is an 8-bit RGB color.
	Color = pointcloud.Color
	// Vec3 is a 3-vector.
	Vec3 = geom.Vec3
	// AABB is an axis-aligned bounding box.
	AABB = geom.AABB
	// Octree is a depth-controllable octree over a cloud.
	Octree = octree.Octree
	// LODMode selects LOD point placement.
	LODMode = octree.LODMode
	// Character is a synthetic body preset.
	Character = synthetic.Character
	// BodyConfig controls synthetic body generation.
	BodyConfig = synthetic.Config
	// Pose is a body stance (gait phase, yaw, lean).
	Pose = synthetic.Pose
	// Sequence is an animated multi-frame synthetic capture.
	Sequence = synthetic.Sequence
)

// LOD placement modes.
const (
	LODCentroid    = octree.LODCentroid
	LODVoxelCenter = octree.LODVoxelCenter
)

// BuildOctree constructs an octree of the given max depth over a cloud.
func BuildOctree(c *Cloud, maxDepth int) (*Octree, error) { return octree.Build(c, maxDepth) }

// GenerateBody produces one synthetic voxelized full-body frame.
func GenerateBody(cfg BodyConfig, pose Pose) (*Cloud, error) { return synthetic.Generate(cfg, pose) }

// NewSequence returns an n-frame walking capture generator.
func NewSequence(cfg BodyConfig, frames int) (*Sequence, error) {
	return synthetic.NewSequence(cfg, frames)
}

// BodyPresets lists the four 8i-like character presets.
func BodyPresets() []Character { return synthetic.Presets() }

// CharacterByName returns a preset by name
// (longdress, loot, redandblack, soldier).
func CharacterByName(name string) (Character, error) { return synthetic.ByName(name) }

// WritePLY encodes a cloud in the 8i vertex layout.
// Formats: PLYASCII, PLYBinaryLE, PLYBinaryBE.
func WritePLY(w io.Writer, c *Cloud, format PLYFormat, comments ...string) error {
	return ply.WriteCloud(w, c, format, comments...)
}

// ReadPLY decodes a PLY stream into a cloud.
func ReadPLY(r io.Reader) (*Cloud, error) { return ply.ReadCloud(r) }

// PLYFormat identifies a PLY body encoding.
type PLYFormat = ply.Format

// Supported PLY encodings.
const (
	PLYASCII    = ply.ASCII
	PLYBinaryLE = ply.BinaryLittleEndian
	PLYBinaryBE = ply.BinaryBigEndian
)

// ---------------------------------------------------------------------------
// Queueing and simulation
// ---------------------------------------------------------------------------

type (
	// Backlog is the Lindley-recursion work queue Q(t).
	Backlog = queueing.Backlog
	// ArrivalProcess yields frames per slot.
	ArrivalProcess = queueing.ArrivalProcess
	// DeterministicArrivals is the paper's one-frame-per-slot process.
	DeterministicArrivals = queueing.DeterministicArrivals
	// PoissonArrivals delivers Poisson-distributed frames per slot.
	PoissonArrivals = queueing.PoissonArrivals
	// OnOffArrivals alternates bursts and silence.
	OnOffArrivals = queueing.OnOffArrivals
	// FrameQueue is a timestamped FIFO with partial service.
	FrameQueue = queueing.FrameQueue
	// Verdict classifies a backlog trajectory.
	Verdict = queueing.Verdict
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is a full run trajectory plus summaries.
	SimResult = sim.Result
	// Device is one client of a multi-device run.
	Device = sim.Device
	// MultiConfig describes a shared-service multi-device run.
	MultiConfig = sim.MultiConfig
	// MultiResult aggregates per-device results of a shared run.
	MultiResult = sim.MultiResult
	// Allocator splits the shared per-slot edge budget across devices
	// from their observed backlogs (see WithAllocator).
	Allocator = alloc.Allocator
	// EqualSplit is the information-free budget split (the default).
	EqualSplit = alloc.EqualSplit
	// ProportionalBacklog shares the budget proportionally to backlogs.
	ProportionalBacklog = alloc.ProportionalBacklog
	// MaxWeight serves the longest queues first (work-conserving).
	MaxWeight = alloc.MaxWeight
	// WeightedRoundRobin is a fluid deficit-round-robin split.
	WeightedRoundRobin = alloc.WeightedRoundRobin
	// SlotEvent is one slot's control decision and queue transition,
	// delivered to WithObserver hooks as the loop runs.
	SlotEvent = sim.SlotEvent
)

// Trajectory verdicts.
const (
	VerdictDiverging  = queueing.VerdictDiverging
	VerdictConverged  = queueing.VerdictConverged
	VerdictStabilized = queueing.VerdictStabilized
)

// NewMaxWeight returns a longest-queue-first allocator.
func NewMaxWeight() *MaxWeight { return alloc.NewMaxWeight() }

// NewWeightedRoundRobin returns a deficit-round-robin allocator; the
// i-th weight belongs to device i (missing entries weigh 1).
func NewWeightedRoundRobin(weights ...float64) *WeightedRoundRobin {
	return alloc.NewWeightedRoundRobin(weights...)
}

// AllocatorByName builds an allocator from a CLI-friendly name: the
// static builtins "equal", "proportional", "maxweight", and "wrr", plus
// the registered parameterized learners "bandit[:ARMS]" and
// "gradient[:STEP]". Unknown names error with the full enumeration
// (AllocatorNames).
func AllocatorByName(name string) (Allocator, error) { return alloc.ByName(name) }

// RunSim executes one slotted simulation.
//
// Deprecated: build a Session instead — NewSession(WithPolicy(...), ...,
// WithSlots(n)).Run(ctx) — which adds context cancellation, observers,
// and pooling. RunSim remains as a thin wrapper and produces identical
// results for identical configurations.
func RunSim(cfg SimConfig) (*SimResult, error) {
	opts := []Option{
		WithPolicy(cfg.Policy), WithArrivals(cfg.Arrivals), WithCost(cfg.Cost),
		WithUtility(cfg.Utility), WithService(cfg.Service), WithSlots(cfg.Slots),
		WithMaxBacklog(cfg.MaxBacklog),
	}
	if cfg.Observer != nil {
		opts = append(opts, WithObserver(cfg.Observer))
	}
	s, err := NewSession(opts...)
	if err != nil {
		return nil, err
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Sim, nil
}

// RunMulti executes a shared-service multi-device simulation.
//
// Deprecated: use NewSession(WithDevices(...), WithService(...),
// WithSlots(n)).Run(ctx). RunMulti remains as a thin wrapper.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	if len(cfg.Devices) == 0 {
		return nil, sim.ErrNoDevices
	}
	opts := []Option{
		WithDevices(cfg.Devices...), WithService(cfg.Service), WithSlots(cfg.Slots),
	}
	if cfg.Observer != nil {
		opts = append(opts, WithObserver(cfg.Observer))
	}
	s, err := NewSession(opts...)
	if err != nil {
		return nil, err
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Multi, nil
}

// ---------------------------------------------------------------------------
// Content-backed workloads (measured quality/bytes ladders)
// ---------------------------------------------------------------------------

type (
	// ContentConfig selects and parameterizes a content asset build: a
	// synthetic preset or PLY file, sample budget, capture depth,
	// measured ladder depths, seed, and quality metric.
	ContentConfig = content.Config
	// ContentProfile is an immutable measured workload profile: per-depth
	// occupancy, stream-byte, and PSNR ladders over one asset.
	ContentProfile = content.Profile
	// ContentView configures the camera of view-quality measurement.
	ContentView = content.View
	// ContentQuality selects the utility metric of a content build.
	ContentQuality = content.Quality
	// ContentLadderRow is one measured point of a quality/bytes ladder.
	ContentLadderRow = content.LadderRow
)

// Content quality metrics.
const (
	// ContentQualityGeometry measures D1 geometry PSNR per depth
	// (viewpoint independent). Default.
	ContentQualityGeometry = content.QualityGeometry
	// ContentQualityView measures rendered-image PSNR per depth through
	// the configured camera (viewpoint/distance dependent).
	ContentQualityView = content.QualityView
)

// BuildContent measures a fresh content profile from the configured
// asset: generate (or read) the cloud, build the octree, measure the
// stream-byte ladder and the PSNR ladder. Deterministic per config.
// Prefer LoadContent, which memoizes.
func BuildContent(cfg ContentConfig) (*ContentProfile, error) { return content.Build(cfg) }

// LoadContent returns the profile for cfg from the in-process content
// cache, building it on first use. The returned profile is immutable
// and shared; each distinct configuration builds exactly once per
// process.
func LoadContent(cfg ContentConfig) (*ContentProfile, error) { return content.Load(cfg) }

// NewContentScenario calibrates a Scenario over a measured content
// profile: cost a(d) is the measured stream-byte ladder, utility pa(d)
// the measured PSNR ladder, with the service rate and V recalibrated in
// the bytes domain. params supplies the control-side knobs (KneeSlot,
// ServiceFraction, Slots, and optionally Depths); content-side fields
// come from the profile.
func NewContentScenario(params ScenarioParams, prof *ContentProfile) (*Scenario, error) {
	return experiments.NewContentScenario(params, prof)
}

// ---------------------------------------------------------------------------
// Experiments (paper figures + ablations)
// ---------------------------------------------------------------------------

type (
	// ScenarioParams controls the calibrated Fig. 2 setup.
	ScenarioParams = experiments.ScenarioParams
	// Scenario is the calibrated experimental setup.
	Scenario = experiments.Scenario
	// Fig1Row is one depth's Fig. 1 fidelity row.
	Fig1Row = experiments.Fig1Row
	// Fig1Config parameterizes the Fig. 1 reproduction.
	Fig1Config = experiments.Fig1Config
	// Fig2Result bundles the three compared Fig. 2 runs.
	Fig2Result = experiments.Fig2Result
	// OffloadParams controls the edge-offload scenario.
	OffloadParams = experiments.OffloadParams
	// OffloadResult is an edge-offload run's trajectory and delivery
	// statistics.
	OffloadResult = experiments.OffloadResult
	// SharedUplinkParams controls the shared-uplink multi-device offload
	// scenario: N devices contending for one emulated uplink whose
	// bandwidth is divided per slot by an Allocator.
	SharedUplinkParams = experiments.SharedUplinkParams
	// SharedUplinkResult is a shared-uplink run's per-device trajectories
	// and delivery statistics.
	SharedUplinkResult = experiments.SharedUplinkResult
	// AllocDeviceSpec shapes one device of a heterogeneous fleet
	// (arrival rate and cost scale) in the allocator ablation.
	AllocDeviceSpec = experiments.AllocDeviceSpec
	// AllocatorSweepRow summarizes one allocator's run over the fleet.
	AllocatorSweepRow = experiments.AllocatorSweepRow
	// FleetVSweepRow is one V point of the fleet-scale V ablation.
	FleetVSweepRow = experiments.FleetVSweepRow
	// MultiDeviceRow summarizes one device of a shared-service run.
	MultiDeviceRow = experiments.MultiDeviceRow
	// Link is a FIFO uplink with bandwidth/latency/jitter/loss.
	Link = netem.Link
	// LinkConfig parameterizes NewLink.
	LinkConfig = netem.LinkConfig
	// TokenBucket polices admission at a sustained rate.
	TokenBucket = netem.TokenBucket
	// BandwidthProcess yields a link's serialization capacity per slot —
	// the time-varying generalization of LinkConfig.BytesPerSlot. Every
	// implementation in the library doubles as a ServiceProcess, so the
	// same processes drive WithService and fleet Profile.NewService.
	BandwidthProcess = netem.BandwidthProcess
	// LinkDynamics binds a BandwidthProcess to an offload uplink (see
	// WithLinkDynamics).
	LinkDynamics = netem.LinkDynamics
	// ConstantBandwidth is the degenerate fixed-rate process.
	ConstantBandwidth = netem.ConstantBandwidth
	// MarkovBandwidth is a two-state (good/bad) Markov-modulated
	// capacity process — the Gilbert–Elliott shape of a fading channel.
	MarkovBandwidth = netem.MarkovBandwidth
	// TraceBandwidth replays a piecewise-constant recorded capacity
	// trace, optionally wrapping every Period slots.
	TraceBandwidth = netem.TraceBandwidth
	// TracePoint is one step of a bandwidth trace.
	TracePoint = netem.TracePoint
	// HandoffBandwidth models mobility: exponential cell dwells, an
	// outage gap per handoff, and a uniform new-cell capacity scale.
	HandoffBandwidth = netem.HandoffBandwidth
	// NetworkSweepRow is one volatility point of the dynamic-network
	// ablation.
	NetworkSweepRow = experiments.NetworkSweepRow
	// Table is an exportable set of time series (CSV/JSON/ASCII chart).
	Table = trace.Table
)

// NewLink builds a network link emulator.
func NewLink(cfg LinkConfig) (*Link, error) { return netem.NewLink(cfg) }

// NewTraceBandwidth validates trace points (and an optional wrap
// period) into a replayable piecewise bandwidth process.
func NewTraceBandwidth(points []TracePoint, period int) (*TraceBandwidth, error) {
	return netem.NewTraceBandwidth(points, period)
}

// LoadBandwidthTrace reads a bandwidth trace file, dispatching on the
// extension: .json loads the {"period":N,"points":[...]} (or bare
// array) form, anything else the "slot,bytes_per_slot" CSV form.
func LoadBandwidthTrace(path string) (*TraceBandwidth, error) {
	return netem.LoadTraceFile(path)
}

// DefaultMarkovFactor returns the default Gilbert–Elliott fading factor
// chain (×1 good / ×0.3 bad, mean dwells 20 and 4 slots) — a unitless
// multiplier process for ModulatedService composition, shared by the
// CLIs' -net markov class. A nil rng pins the chain to its start state.
func DefaultMarkovFactor(rng *RNG) *MarkovBandwidth { return netem.DefaultMarkovFactor(rng) }

// DefaultHandoffFactor returns the default mobility factor process
// (mean 250-slot cell dwells, 4-slot outages, new-cell scale in
// [0.7, 1.2]) — the CLIs' -net handoff class. A nil rng never hands off.
func DefaultHandoffFactor(rng *RNG) *HandoffBandwidth { return netem.DefaultHandoffFactor(rng) }

// DefaultDiurnalTrace returns the built-in 240-slot daily-load factor
// trace (dips to ×0.6 mid-cycle) — the CLIs' file-less -net trace class.
func DefaultDiurnalTrace() *TraceBandwidth { return netem.DefaultDiurnalTrace() }

// LoadFactorTrace loads a -net style factor trace: an empty path
// returns DefaultDiurnalTrace, anything else loads the file
// (LoadBandwidthTrace) normalized to its peak, so measured bytes/slot
// captures and hand-written factor patterns both modulate sensibly.
func LoadFactorTrace(path string) (*TraceBandwidth, error) { return netem.LoadFactorTrace(path) }

// NetworkSweep runs the dynamic-network ablation: a fleet per
// volatility point, every session drawing its capacity from a
// mean-preserving Markov (good/bad) chain around the calibrated service
// rate. Mean utility degrades and tail backlog grows monotonically as
// volatility rises. Zero sessions/slots take defaults.
func NetworkSweep(s *Scenario, volatilities []float64, sessions, slots int, seed uint64) ([]NetworkSweepRow, error) {
	return experiments.NetworkSweep(s, volatilities, sessions, slots, seed)
}

// SharedUplink runs N devices against one emulated uplink, its
// serialization bandwidth split per slot by params.Allocator and its
// propagation leg (latency, jitter, loss) applied to every delivery.
func SharedUplink(params SharedUplinkParams) (*SharedUplinkResult, error) {
	return experiments.SharedUplink(params)
}

// AllocatorSweep runs the same heterogeneous fleet under each allocator
// and reports per-device stability — the ablation showing the shared
// budget's split policy is itself the lever. Zero-value
// specs/budget/slots/allocators take defaults (see HeterogeneousSpecs).
func AllocatorSweep(s *Scenario, specs []AllocDeviceSpec, budget float64, slots int, allocators []Allocator) ([]AllocatorSweepRow, error) {
	return experiments.AllocatorSweep(s, specs, budget, slots, allocators)
}

// HeterogeneousSpecs returns the canonical mixed fleet of the allocator
// ablation: one heavy device among n−1 light ones.
func HeterogeneousSpecs(n int) []AllocDeviceSpec { return experiments.HeterogeneousSpecs(n) }

// FleetVSweep runs the O(1/V)/O(V) ablation at fleet scale: a stochastic
// population (Poisson arrivals, noisy service) per V point, summarized
// through the fleet engine's streaming quantile sketches. Zero
// sessions/slots take defaults; see Scenario.FleetProfile to build
// custom fleet mixes from a calibrated scenario.
func FleetVSweep(s *Scenario, factors []float64, sessions, slots int, seed uint64) ([]FleetVSweepRow, error) {
	return experiments.FleetVSweep(s, factors, sessions, slots, seed)
}

// Offload runs the edge-offload scenario: octree streams over an emulated
// uplink, the controller stabilizing the transmit queue.
//
// Deprecated: use NewSession(WithOffload(p)).Run(ctx), optionally with
// WithLink for uplink shaping. Offload remains as a thin wrapper.
func Offload(p OffloadParams) (*OffloadResult, error) {
	s, err := NewSession(WithOffload(p))
	if err != nil {
		return nil, err
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Offload, nil
}

type (
	// RenderConfig controls a software splat render pass.
	RenderConfig = render.Config
	// RenderCamera is a pinhole camera.
	RenderCamera = render.Camera
	// RenderImage is a rendered framebuffer with depth.
	RenderImage = render.Image
	// RenderLadderRow is one depth of the view-domain quality ladder.
	RenderLadderRow = experiments.RenderLadderRow
	// RenderLadderConfig parameterizes RenderLadder.
	RenderLadderConfig = experiments.RenderLadderConfig
)

// RenderCloud splats a point cloud into a framebuffer.
func RenderCloud(c *Cloud, cfg RenderConfig) (*RenderImage, error) { return render.Render(c, cfg) }

// DefaultCamera frames a subject bounding box from 3 m away.
func DefaultCamera(subject AABB) RenderCamera { return render.DefaultCamera(subject) }

// RenderLadder measures per-depth image PSNR of the LOD ladder and
// returns the rows plus a view-domain utility model.
func RenderLadder(cfg RenderLadderConfig) ([]RenderLadderRow, UtilityModel, error) {
	return experiments.RenderLadder(cfg)
}

// NewScenario builds and calibrates the Fig. 2 scenario.
func NewScenario(p ScenarioParams) (*Scenario, error) { return experiments.NewScenario(p) }

// Fig1 regenerates the Fig. 1 per-depth resolution/fidelity rows.
func Fig1(cfg Fig1Config) ([]Fig1Row, error) { return experiments.Fig1(cfg) }

// Fig2 runs the paper's three controls over a calibrated scenario.
func Fig2(s *Scenario) (*Fig2Result, error) { return experiments.Fig2(s) }
