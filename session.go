package qarv

import (
	"context"
	"errors"
	"fmt"

	"qarv/internal/experiments"
	"qarv/internal/geom"
	"qarv/internal/queueing"
	"qarv/internal/sim"
)

// SessionKind identifies which scenario a Session drives.
type SessionKind int

// Session kinds, inferred from the options: WithOffload selects
// KindOffload, WithDevices selects KindMulti, anything else is a
// single-device KindSim run.
const (
	KindSim SessionKind = iota
	KindMulti
	KindOffload
)

// String implements fmt.Stringer.
func (k SessionKind) String() string {
	switch k {
	case KindSim:
		return "sim"
	case KindMulti:
		return "multi"
	case KindOffload:
		return "offload"
	default:
		return "unknown"
	}
}

// Session construction errors.
var (
	// ErrOptionConflict reports options that cannot be combined (e.g.
	// WithPolicy alongside WithDevices, which carry their own policies).
	ErrOptionConflict = errors.New("qarv: conflicting session options")
	// ErrLinkWithoutOffload reports WithLink on a non-offload session.
	ErrLinkWithoutOffload = errors.New("qarv: WithLink requires WithOffload")
	// ErrDynamicsWithoutOffload reports WithLinkDynamics on a non-offload
	// session. Sim, multi, and fleet runs express network dynamics
	// through their service processes instead — every BandwidthProcess
	// doubles as a ServiceProcess (see WithService and Profile.NewService).
	ErrDynamicsWithoutOffload = errors.New("qarv: WithLinkDynamics requires WithOffload")
	// ErrAllocatorWithoutDevices reports WithAllocator on a session that
	// has no shared budget to split.
	ErrAllocatorWithoutDevices = errors.New("qarv: WithAllocator requires WithDevices")
)

// Runner drives one scenario to completion under a context. Session and
// everything composed from sessions (SessionPool entries) implement it.
type Runner interface {
	// Run executes the scenario, honoring ctx cancellation down through
	// the slot loops, and returns the unified report.
	Run(ctx context.Context) (*Report, error)
}

// Report is the unified result of any session run. Exactly one of Sim,
// Multi, Offload is non-nil, matching Kind; the summary fields are
// always populated so sweeps can compare runs without switching on Kind.
type Report struct {
	Kind SessionKind

	Sim     *SimResult     // KindSim runs
	Multi   *MultiResult   // KindMulti runs
	Offload *OffloadResult // KindOffload runs

	// TimeAvgUtility is the run's time-average quality: the objective (1)
	// for sim runs, the fleet mean for multi runs, 0 for offload runs
	// (which track delivery latency instead).
	TimeAvgUtility float64
	// TimeAvgBacklog is the run's time-average backlog: constraint (2)
	// for sim runs, the fleet total for multi runs, and the mean uplink
	// queue in bytes for offload runs.
	TimeAvgBacklog float64
	// Verdict classifies the backlog trajectory (the summed trajectory
	// for multi runs); zero when the run is too short to classify.
	Verdict Verdict
}

// Session is the single entry point for every QARV scenario: a validated,
// immutable configuration assembled by NewSession from functional options
// and driven by Run. The same Session value may be Run repeatedly, but
// note that stateful policies (AutoTuner, the random baseline) carry
// state across runs — build one Session per run for reproducible sweeps.
type Session struct {
	kind    SessionKind
	simCfg  sim.Config
	multi   sim.MultiConfig
	offload experiments.OffloadParams
}

var _ Runner = (*Session)(nil)

// NewSession validates the options into a runnable Session. A Scenario
// (WithScenario) supplies defaults — controller, cost, utility, constant
// service at the calibrated rate, one-frame-per-slot arrivals, and the
// horizon — each overridable by the matching option. Structural
// validation happens here, once; sim and multi sessions cannot fail on
// configuration at Run. Offload sessions can still fail at Run on
// conditions only discoverable against the measured capture (e.g. a
// fixed bandwidth at or above bytes(d_max), which V-calibration
// rejects).
func NewSession(opts ...Option) (*Session, error) {
	var c sessionConfig
	for _, o := range opts {
		o(&c)
	}
	obs := fanOut(c.observers)

	if c.content != nil {
		if c.offload != nil {
			return nil, fmt.Errorf("%w: offload sessions measure their own capture; WithContent applies to sim and multi sessions", ErrOptionConflict)
		}
		// Recalibrate the session scenario over the measured profile: the
		// supplied scenario (if any) keeps its control-side knobs, while
		// cost, utility, service rate, V, and the candidate depths come
		// from the profile's measured ladders.
		var params ScenarioParams
		if c.scenario != nil {
			params = c.scenario.Params
			params.Depths = nil
		}
		scn, err := experiments.NewContentScenario(params, c.content)
		if err != nil {
			return nil, err
		}
		c.scenario = scn
	}

	switch {
	case c.offload != nil:
		if c.scenario != nil || c.policy != nil || c.arrivals != nil || c.service != nil ||
			c.cost != nil || c.utility != nil || c.maxSet || len(c.devices) > 0 {
			return nil, fmt.Errorf("%w: offload sessions configure capture and control through OffloadParams (WithSlots, WithLink, WithObserver still apply)", ErrOptionConflict)
		}
		if c.allocator != nil {
			return nil, ErrAllocatorWithoutDevices
		}
		p := *c.offload
		if c.slotsSet {
			if c.slots <= 0 {
				return nil, fmt.Errorf("%w: %d", sim.ErrBadSlots, c.slots)
			}
			p.Slots = c.slots
		}
		if c.link != nil {
			// The link config is authoritative, zeros included — a
			// lossless or zero-latency uplink is expressible here where
			// OffloadParams' scalar fields would re-default it.
			p.Link = c.link
		}
		if c.dynamics != nil {
			p.Dynamics = c.dynamics
		}
		p.Observer = chainObservers(p.Observer, obs)
		if c.metrics != nil {
			p.Metrics = c.metrics
		}
		if c.recorder != nil {
			p.Recorder = c.recorder
		}
		if c.seedSet {
			// One seed drives capture and link alike; WithLink's own
			// Seed (when nonzero) still wins for the link RNG.
			p.Seed = c.seed
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return &Session{kind: KindOffload, offload: p}, nil

	case len(c.devices) > 0:
		if c.policy != nil || c.arrivals != nil || c.cost != nil || c.utility != nil || c.maxSet {
			return nil, fmt.Errorf("%w: multi-device sessions configure policy, cost, utility, and arrivals per Device", ErrOptionConflict)
		}
		if c.link != nil {
			return nil, ErrLinkWithoutOffload
		}
		if c.dynamics != nil {
			return nil, ErrDynamicsWithoutOffload
		}
		cfg := sim.MultiConfig{
			Devices:   c.devices,
			Service:   c.service,
			Allocator: c.allocator,
			Slots:     c.slots,
			Observer:  obs,
			Metrics:   c.metrics,
			Recorder:  c.recorder,
		}
		if c.scenario != nil {
			if cfg.Service == nil {
				// The conventional budget: N× the calibrated single-device
				// rate, split equally (information-free sharing).
				cfg.Service = &ConstantService{Rate: float64(len(c.devices)) * c.scenario.ServiceRate}
			}
			if !c.slotsSet {
				cfg.Slots = c.scenario.Params.Slots
			}
		}
		if c.seedSet {
			rng := geom.NewRNG(c.seed)
			reseed(rng, cfg.Service)
			for _, dev := range cfg.Devices {
				reseed(rng, dev.Policy, dev.Arrivals)
			}
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return &Session{kind: KindMulti, multi: cfg}, nil

	default:
		if c.link != nil {
			return nil, ErrLinkWithoutOffload
		}
		if c.dynamics != nil {
			return nil, ErrDynamicsWithoutOffload
		}
		if c.allocator != nil {
			return nil, ErrAllocatorWithoutDevices
		}
		cfg := sim.Config{
			Policy:     c.policy,
			Arrivals:   c.arrivals,
			Cost:       c.cost,
			Utility:    c.utility,
			Service:    c.service,
			Slots:      c.slots,
			MaxBacklog: c.maxBacklog,
			Observer:   obs,
			Metrics:    c.metrics,
			Recorder:   c.recorder,
		}
		if c.scenario != nil {
			base := c.scenario.SimConfig(nil)
			if cfg.Policy == nil {
				ctrl, err := c.scenario.Controller()
				if err != nil {
					return nil, err
				}
				cfg.Policy = ctrl
			}
			if cfg.Arrivals == nil {
				cfg.Arrivals = base.Arrivals
			}
			if cfg.Cost == nil {
				cfg.Cost = base.Cost
			}
			if cfg.Utility == nil {
				cfg.Utility = base.Utility
			}
			if cfg.Service == nil {
				cfg.Service = base.Service
			}
			if !c.slotsSet {
				cfg.Slots = base.Slots
			}
		}
		if c.seedSet {
			reseed(geom.NewRNG(c.seed), cfg.Policy, cfg.Arrivals, cfg.Service)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return &Session{kind: KindSim, simCfg: cfg}, nil
	}
}

// reseeder is implemented by stochastic components that can have their
// RNG replaced (PoissonArrivals, NoisyService, the random policy, …).
type reseeder interface{ Reseed(*geom.RNG) }

// reseed hands each reseedable component an independent child stream of
// rng, in argument order. Components that don't implement Reseed (or are
// nil) are skipped without consuming a stream, so adding determinism to
// one component never perturbs another's draws.
func reseed(rng *geom.RNG, components ...any) {
	for _, c := range components {
		if r, ok := c.(reseeder); ok && r != nil {
			r.Reseed(rng.Split())
		}
	}
}

// Kind reports which scenario the session drives.
func (s *Session) Kind() SessionKind { return s.kind }

// Run executes the session. Cancellation of ctx is honored down through
// the slot loops: even a million-slot run aborts within a poll stride
// (queueing.PollEvery slots) of the cancel, returning the context's
// error wrapped with the slot it stopped at.
func (s *Session) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch s.kind {
	case KindOffload:
		res, err := experiments.OffloadContext(ctx, s.offload)
		if err != nil {
			return nil, err
		}
		return offloadReport(res), nil
	case KindMulti:
		res, err := sim.RunMultiContext(ctx, s.multi)
		if err != nil {
			return nil, err
		}
		return multiReport(res), nil
	default:
		res, err := sim.RunContext(ctx, s.simCfg)
		if err != nil {
			return nil, err
		}
		return simReport(res), nil
	}
}

// fanOut folds the registered observers into a single sim.Observer
// invoking them in registration order (nil when none registered).
func fanOut(observers []func(SlotEvent)) sim.Observer {
	switch len(observers) {
	case 0:
		return nil
	case 1:
		return observers[0]
	default:
		obs := observers
		return func(e SlotEvent) {
			for _, fn := range obs {
				fn(e)
			}
		}
	}
}

// chainObservers composes two optional observers, preserving order.
func chainObservers(a, b sim.Observer) sim.Observer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(e SlotEvent) { a(e); b(e) }
}

func simReport(res *sim.Result) *Report {
	rep := &Report{
		Kind:           KindSim,
		Sim:            res,
		TimeAvgUtility: res.TimeAvgUtility,
		TimeAvgBacklog: res.TimeAvgBacklog,
	}
	if v, err := res.Verdict(); err == nil {
		rep.Verdict = v
	}
	return rep
}

func multiReport(res *sim.MultiResult) *Report {
	rep := &Report{
		Kind:           KindMulti,
		Multi:          res,
		TimeAvgUtility: res.MeanTimeAvgUtility,
		TimeAvgBacklog: res.TotalTimeAvgBacklog,
	}
	if len(res.PerDevice) > 0 {
		sum := make([]float64, len(res.PerDevice[0].Backlog))
		for _, r := range res.PerDevice {
			for i, q := range r.Backlog {
				sum[i] += q
			}
		}
		if v, err := queueing.ClassifyTrajectory(sum, 0); err == nil {
			rep.Verdict = v
		}
	}
	return rep
}

func offloadReport(res *experiments.OffloadResult) *Report {
	rep := &Report{
		Kind:    KindOffload,
		Offload: res,
		Verdict: res.Verdict,
	}
	var sum float64
	for _, q := range res.BacklogBytes {
		sum += q
	}
	if n := len(res.BacklogBytes); n > 0 {
		rep.TimeAvgBacklog = sum / float64(n)
	}
	return rep
}
