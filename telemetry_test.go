package qarv

// Acceptance pins for the telemetry layer: metric snapshots are
// byte-identical per seed at any shard or worker count, and attaching
// telemetry never changes a single report byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// telemetryProfile is a fully stochastic cheap fleet class, so shard
// boundaries would show up immediately if any instrument were
// order-sensitive.
func telemetryProfile(t *testing.T) Profile {
	t.Helper()
	cost, util := cheapModels(t)
	return Profile{
		Name:   "stochastic",
		Weight: 1,
		NewPolicy: func(rng *RNG) (Policy, error) {
			return NewRandomPolicy([]int{2, 3, 4, 5}, rng.Uint64())
		},
		Cost:    cost,
		Utility: util,
		NewArrivals: func(rng *RNG) ArrivalProcess {
			return &PoissonArrivals{Mean: 1.2, RNG: rng}
		},
		NewService: func(rng *RNG) ServiceProcess {
			return &NoisyService{Mean: 4000, Std: 500, RNG: rng}
		},
	}
}

func runTelemetryFleet(t *testing.T, shards int, reg *MetricsRegistry) *FleetReport {
	t.Helper()
	fl, err := NewFleet(FleetSpec{
		Sessions: 64,
		Slots:    80,
		Shards:   shards,
		Churn:    0.002,
		Seed:     7,
		Profiles: []Profile{telemetryProfile(t)},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func snapshotJSON(t *testing.T, s *MetricsSnapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetTelemetryShardIndependence pins the tentpole contract: the
// merged metric snapshot of a stochastic fleet is byte-identical at
// shard counts 1, 4, and 16 for the same seed.
func TestFleetTelemetryShardIndependence(t *testing.T) {
	var base string
	for _, shards := range []int{1, 4, 16} {
		reg := NewMetricsRegistry()
		rep := runTelemetryFleet(t, shards, reg)
		if rep.Metrics == nil {
			t.Fatalf("shards=%d: report carries no metrics snapshot", shards)
		}
		got := snapshotJSON(t, reg.Snapshot())
		if onRep := snapshotJSON(t, rep.Metrics); onRep != got {
			t.Fatalf("shards=%d: report snapshot diverges from caller registry", shards)
		}
		if base == "" {
			base = got
			if !strings.Contains(base, "fleet_sessions_total") ||
				!strings.Contains(base, "fleet_session_lifetime_slots") {
				t.Fatalf("snapshot missing expected series:\n%s", base)
			}
			continue
		}
		if got != base {
			t.Errorf("shards=%d snapshot diverged from shards=1:\n%s\n--- vs ---\n%s", shards, got, base)
		}
	}
}

// TestFleetReportUnchangedByTelemetry pins the observability contract:
// a telemetry-on report marshals byte-identically to a telemetry-off
// report (wall-clock throughput fields zeroed on both sides — they
// differ run to run with or without telemetry).
func TestFleetReportUnchangedByTelemetry(t *testing.T) {
	marshal := func(rep *FleetReport) string {
		rep.Elapsed = 0
		rep.DeviceSlotsPerSec = 0
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	off := marshal(runTelemetryFleet(t, 4, nil))
	on := marshal(runTelemetryFleet(t, 4, NewMetricsRegistry()))
	if off != on {
		t.Errorf("telemetry changed the report:\noff: %s\non:  %s", off, on)
	}
}

// sweepWithTelemetry reruns the acceptance grid with a registry and
// recorder attached.
func sweepWithTelemetry(t *testing.T, workers int) (*Sweep, *MetricsRegistry) {
	t.Helper()
	sw := threeAxisSweep(t, workers, 42)
	reg := NewMetricsRegistry()
	sw.Metrics = reg
	sw.Recorder = NewFlightRecorder(0)
	return sw, reg
}

// TestSweepTelemetryWorkerIndependence: the sweep-level merged registry
// and the per-row snapshots are byte-identical at any worker count, and
// the report JSON matches the telemetry-off pin exactly.
func TestSweepTelemetryWorkerIndependence(t *testing.T) {
	plain := sweepJSON(t, threeAxisSweep(t, 1, 42))

	sw1, reg1 := sweepWithTelemetry(t, 1)
	if got := sweepJSON(t, sw1); got != plain {
		t.Fatal("telemetry changed the sweep report")
	}
	base := snapshotJSON(t, reg1.Snapshot())
	if !strings.Contains(base, "sim_slots_total") {
		t.Fatalf("sweep snapshot missing sim series:\n%s", base)
	}

	sw4, reg4 := sweepWithTelemetry(t, 4)
	rep, err := sw4.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotJSON(t, reg4.Snapshot()); got != base {
		t.Errorf("workers=4 sweep snapshot diverged:\n%s\n--- vs ---\n%s", got, base)
	}
	for _, row := range rep.Rows {
		if row.Metrics == nil {
			t.Fatalf("cell %d has no metrics snapshot", row.Cell)
		}
		if row.Metrics.Counters[0].Value <= 0 {
			t.Fatalf("cell %d counters empty", row.Cell)
		}
	}
}

// TestSessionTelemetryAndTrace: a session wired through WithTelemetry /
// WithFlightRecorder produces counters that agree with the report and a
// trace_event export that parses.
func TestSessionTelemetryAndTrace(t *testing.T) {
	reg := NewMetricsRegistry()
	rec := NewFlightRecorder(0)
	opts := append(cheapSessionOpts(t, 200),
		WithTelemetry(reg), WithFlightRecorder(rec))
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var slots int64
	for _, c := range snap.Counters {
		if c.Name == "sim_slots_total" {
			slots = c.Value
		}
	}
	if slots != 200 {
		t.Errorf("sim_slots_total = %d, want 200", slots)
	}
	if rep.Sim == nil || len(rep.Sim.Backlog) != 200 {
		t.Fatalf("unexpected report shape")
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace_event export does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace_event export is empty")
	}
}
