package qarv

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

var (
	facadeProfOnce sync.Once
	facadeProf     *ContentProfile
	facadeProfErr  error
)

// facadeProfile builds one small measured profile for the facade tests;
// LoadContent memoizes, so the asset pipeline runs once per process.
func facadeProfile(t *testing.T) *ContentProfile {
	t.Helper()
	facadeProfOnce.Do(func() {
		facadeProf, facadeProfErr = LoadContent(ContentConfig{
			Asset: "loot", Samples: 6_000, CaptureDepth: 7, Seed: 3,
		})
	})
	if facadeProfErr != nil {
		t.Fatal(facadeProfErr)
	}
	return facadeProf
}

func TestWithContentSession(t *testing.T) {
	prof := facadeProfile(t)

	run := func() *Report {
		t.Helper()
		s, err := NewSession(WithContent(prof), WithSlots(120), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := run()
	if rep.Sim == nil || len(rep.Sim.Depth) != 120 {
		t.Fatalf("sim result %+v, want a 120-slot trajectory", rep.Sim)
	}
	if rep.TimeAvgUtility <= 0 {
		t.Fatalf("average utility %v, want positive measured PSNR utility", rep.TimeAvgUtility)
	}
	// Same profile + seed must reproduce the report byte-for-byte.
	if again := run(); !reflect.DeepEqual(rep, again) {
		t.Fatal("content-backed session is not deterministic under a fixed seed")
	}
}

func TestWithContentScenarioKnobs(t *testing.T) {
	prof := facadeProfile(t)
	scn, err := NewContentScenario(ScenarioParams{KneeSlot: 80, Slots: 160}, prof)
	if err != nil {
		t.Fatal(err)
	}
	// A scenario alongside supplies the control knobs; the session still
	// resolves the profile's measured ladders.
	s, err := NewSession(WithScenario(scn), WithContent(prof), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil || len(rep.Sim.Depth) != 160 {
		t.Fatalf("sim result %+v, want the scenario's 160-slot trajectory", rep.Sim)
	}
}

func TestWithContentConflicts(t *testing.T) {
	prof := facadeProfile(t)
	_, err := NewSession(WithContent(prof), WithOffload(OffloadParams{}))
	if !errors.Is(err, ErrOptionConflict) {
		t.Fatalf("content with offload: err = %v, want ErrOptionConflict", err)
	}
	if _, err := NewSession(WithContent(nil), WithSlots(10)); err == nil {
		// WithContent(nil) leaves the pointer nil, so this degrades to a
		// sessions-without-models error rather than a content error.
		t.Fatal("nil content with no models: expected error")
	}
}
