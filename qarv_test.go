package qarv

import (
	"bytes"
	"math"
	"testing"
)

// End-to-end integration tests through the public facade only: everything
// a downstream user would touch, wired together the way README shows.

func TestEndToEndPipeline(t *testing.T) {
	// Capture.
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 40_000, CaptureDepth: 9, Seed: 3}, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Len() < 5000 || !cloud.HasColors() {
		t.Fatalf("capture: %d points, colors=%v", cloud.Len(), cloud.HasColors())
	}

	// Dataset IO round trip.
	var buf bytes.Buffer
	if err := WritePLY(&buf, cloud, PLYBinaryLE, "integration"); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != cloud.Len() {
		t.Fatalf("PLY round trip lost points: %d != %d", loaded.Len(), cloud.Len())
	}

	// Octree + profile.
	tree, err := BuildOctree(loaded, 9)
	if err != nil {
		t.Fatal(err)
	}
	profile := tree.Profile()
	if len(profile) != 10 || profile[9] != loaded.Len() && profile[9] > loaded.Len() {
		t.Fatalf("profile = %v", profile)
	}

	// Controller.
	util, err := NewLogPointUtility(profile)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	depths := []int{4, 5, 6, 7, 8, 9}
	service := 0.85 * float64(profile[9])
	cfg := ControllerConfig{Depths: depths, Utility: util, Cost: cost}
	v, err := CalibrateV(100, service, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.V = v
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate.
	res, err := RunSim(SimConfig{
		Policy:   ctrl,
		Arrivals: &DeterministicArrivals{PerSlot: 1},
		Cost:     cost,
		Utility:  util,
		Service:  &ConstantService{Rate: service},
		Slots:    600,
	})
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := res.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if verdict == VerdictDiverging {
		t.Errorf("end-to-end run diverged")
	}
	if res.TimeAvgUtility <= 0 {
		t.Error("no utility accrued")
	}
}

func TestFacadeScenarioAndFigures(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Samples: 40_000, Slots: 600, KneeSlot: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig2(scn)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatalf("figure shape: %v", err)
	}
	rows, err := Fig1(Fig1Config{Samples: 40_000, CaptureDepth: 9, Depths: []int{4, 6, 8}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Points >= rows[2].Points {
		t.Errorf("Fig1 rows = %+v", rows)
	}
}

func TestFacadeQualityMetrics(t *testing.T) {
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 20_000, CaptureDepth: 8, Seed: 4}, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildOctree(cloud, 8)
	if err != nil {
		t.Fatal(err)
	}
	lod, err := tree.LOD(5, LODCentroid)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareGeometry(cloud, lod)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PSNR <= 0 || math.IsInf(rep.PSNR, 1) {
		t.Errorf("PSNR = %v", rep.PSNR)
	}
	if rep.Hausdorff <= 0 {
		t.Errorf("Hausdorff = %v", rep.Hausdorff)
	}
}

func TestFacadePolicies(t *testing.T) {
	depths := []int{5, 6, 7}
	maxP, err := NewMaxDepthPolicy(depths)
	if err != nil {
		t.Fatal(err)
	}
	minP, err := NewMinDepthPolicy(depths)
	if err != nil {
		t.Fatal(err)
	}
	randP, err := NewRandomPolicy(depths, 9)
	if err != nil {
		t.Fatal(err)
	}
	thrP, err := NewThresholdPolicy(depths, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{maxP, minP, randP, thrP} {
		d := p.Decide(0, 50)
		if d < 5 || d > 7 {
			t.Errorf("%s chose %d outside the set", p.Name(), d)
		}
	}
	profile := []int{1, 10, 100, 1000, 5000, 20000, 50000, 90000}
	cost, err := NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := BestFixedPolicy(depths, cost, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Decide(0, 0) != 6 {
		t.Errorf("oracle picked %d, want 6", oracle.Decide(0, 0))
	}
}

func TestFacadeSequenceAndPresets(t *testing.T) {
	if len(BodyPresets()) != 4 {
		t.Error("presets missing")
	}
	ch, err := CharacterByName("loot")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewSequence(BodyConfig{Character: ch, SamplesTarget: 10_000, CaptureDepth: 8, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := seq.Frame(2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() == 0 {
		t.Error("empty sequence frame")
	}
}

func TestFacadeMultiDevice(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Samples: 30_000, Slots: 400, KneeSlot: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctrl1, err := scn.Controller()
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, err := scn.Controller()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMulti(MultiConfig{
		Devices: []Device{
			{Policy: ctrl1, Cost: scn.Cost, Utility: scn.Utility, Arrivals: &DeterministicArrivals{PerSlot: 1}},
			{Policy: ctrl2, Cost: scn.Cost, Utility: scn.Utility, Arrivals: &DeterministicArrivals{PerSlot: 1}},
		},
		Service: &ConstantService{Rate: 2 * scn.ServiceRate},
		Slots:   400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDevice) != 2 {
		t.Fatalf("devices = %d", len(res.PerDevice))
	}
}
