package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qarv/internal/ply"
	"qarv/internal/synthetic"
)

func writeTestPLY(t *testing.T) string {
	t.Helper()
	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: 8000, CaptureDepth: 8, Seed: 2,
	}, synthetic.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "body.ply")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ply.WriteCloud(f, cloud, ply.BinaryLittleEndian); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectPrintsLadder(t *testing.T) {
	path := writeTestPLY(t)
	var out bytes.Buffer
	if err := run([]string{"-depth", "8", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"points", "colors      true", "occupied voxels", "depth"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	// Ladder must reach ratio 1.00000 at the bottom row.
	if !strings.Contains(s, "1.00000") {
		t.Error("full-depth ratio missing")
	}
}

func TestInspectMetricsMode(t *testing.T) {
	path := writeTestPLY(t)
	var out bytes.Buffer
	if err := run([]string{"-depth", "6", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geom PSNR") {
		t.Error("metrics columns missing")
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must error")
	}
	if err := run([]string{"/nonexistent/file.ply"}, &bytes.Buffer{}); err == nil {
		t.Error("unreadable file must error")
	}
	// Not a PLY file.
	bad := filepath.Join(t.TempDir(), "bad.ply")
	if err := os.WriteFile(bad, []byte("not a ply"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("malformed file must error")
	}
}
