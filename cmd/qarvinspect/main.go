// Command qarvinspect reads a PLY point cloud and prints its octree
// depth ladder: per-depth occupancy (the controller's workload curve
// a(d)), point ratios, and geometry PSNR — the Fig. 1 table for any input
// cloud, including real 8i Voxelized Full Bodies files.
//
// Usage:
//
//	qarvinspect [-depth 10] [-metrics] file.ply
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"qarv/internal/octree"
	"qarv/internal/ply"
	"qarv/internal/quality"
	"qarv/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvinspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvinspect", flag.ContinueOnError)
	maxDepth := fs.Int("depth", 10, "octree max depth")
	metrics := fs.Bool("metrics", false, "compute PSNR metrics per depth (slow for large clouds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: qarvinspect [-depth N] [-metrics] file.ply")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cloud, err := ply.ReadCloud(f)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	b := cloud.Bounds()
	fmt.Fprintf(out, "file        %s\n", path)
	fmt.Fprintf(out, "points      %d\n", cloud.Len())
	fmt.Fprintf(out, "colors      %v\n", cloud.HasColors())
	fmt.Fprintf(out, "normals     %v\n", cloud.HasNormals())
	fmt.Fprintf(out, "bounds      %v\n", b)
	fmt.Fprintf(out, "extent      %v\n", b.Size())

	tree, err := octree.Build(cloud, *maxDepth)
	if err != nil {
		return err
	}
	profile := tree.Profile()
	headers := []string{"depth", "occupied voxels", "ratio"}
	if *metrics {
		headers = append(headers, "geom PSNR (dB)", "Hausdorff")
	}
	rows := make([][]string, 0, len(profile))
	full := profile[len(profile)-1]
	for d, n := range profile {
		row := []string{
			strconv.Itoa(d),
			strconv.Itoa(n),
			fmt.Sprintf("%.5f", float64(n)/float64(full)),
		}
		if *metrics && d >= 1 {
			lod, err := tree.LOD(d, octree.LODCentroid)
			if err != nil {
				return err
			}
			rep, err := quality.CompareGeometry(cloud, lod)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", rep.PSNR), fmt.Sprintf("%.6f", rep.Hausdorff))
		} else if *metrics {
			row = append(row, "-", "-")
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(out)
	return trace.RenderTextTable(out, headers, rows)
}
