package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one of the repo's commands into dir and returns the
// binary path. The e2e test exercises the real executables, not
// in-process run() calls, so exit codes and signal handling are covered.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "../.." // repo root from cmd/qarvedge
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestEndToEndFleetOverSockets builds qarvedge and qarvdevice, runs a
// 4-device fleet against a live edge on an ephemeral port, scrapes the
// edge's Prometheus endpoint mid-traffic, then interrupts the edge and
// asserts a graceful drain and zero exit codes on both sides.
func TestEndToEndFleetOverSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	edgeBin := buildCmd(t, dir, "qarvedge")
	deviceBin := buildCmd(t, dir, "qarvdevice")

	edge := exec.Command(edgeBin,
		"-addr", "127.0.0.1:0",
		"-rate", "16000000",
		"-alloc", "proportional",
		"-metrics-addr", "127.0.0.1:0",
		"-drain-timeout", "5s",
	)
	edgeOut, err := edge.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	edge.Stderr = os.Stderr
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	defer edge.Process.Kill()

	// The edge announces both its serve and metrics addresses on stdout.
	addrRe := regexp.MustCompile(`edge listening on (\S+) `)
	metricsRe := regexp.MustCompile(`metrics on http://(\S+)/metrics`)
	var addr, metricsAddr string
	var edgeTail []string
	scanner := bufio.NewScanner(edgeOut)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
	}()
	deadline := time.After(30 * time.Second)
	for addr == "" || metricsAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("edge exited before announcing addresses: %s", strings.Join(edgeTail, "\n"))
			}
			edgeTail = append(edgeTail, line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				addr = m[1]
			}
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				metricsAddr = m[1]
			}
		case <-deadline:
			t.Fatalf("timed out waiting for edge startup: %s", strings.Join(edgeTail, "\n"))
		}
	}

	device := exec.Command(deviceBin,
		"-addr", addr,
		"-devices", "4",
		"-frames", "25",
		"-interval", "2ms",
		"-samples", "8000",
		"-knee", "10",
	)
	deviceOutput, err := device.CombinedOutput()
	if err != nil {
		t.Fatalf("device fleet failed: %v\n%s", err, deviceOutput)
	}
	if !strings.Contains(string(deviceOutput), "drained=true (4/4 sessions, 0 failed)") {
		t.Errorf("fleet did not drain: %s", deviceOutput)
	}

	// Scrape the metrics endpoint: the served/acked counters and the
	// allocator-share series must be present and non-zero after traffic.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	metrics := string(body)
	for _, want := range []string{
		"stream_frames_total",
		"stream_bytes_total",
		"stream_bytes_acked_total",
		"stream_sessions_peak",
		"stream_alloc_share_bps",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "stream_frames_total ") && strings.HasSuffix(line, " 0") {
			t.Errorf("frame counter still zero after traffic: %q", line)
		}
	}

	// SIGINT triggers the graceful drain path; the edge must exit 0 and
	// report its final served/acked accounting.
	if err := edge.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	for line := range lines {
		edgeTail = append(edgeTail, line)
	}
	if err := edge.Wait(); err != nil {
		t.Fatalf("edge exit: %v\n%s", err, strings.Join(edgeTail, "\n"))
	}
	full := strings.Join(edgeTail, "\n")
	if !strings.Contains(full, "draining (bounded by") {
		t.Errorf("edge skipped the drain path: %s", full)
	}
	if !strings.Contains(full, "served 100 frames") || !strings.Contains(full, "acked 100 frames") {
		t.Errorf("edge accounting off (want 4x25 served and acked): %s", full)
	}
	if !strings.Contains(full, "0 ack failures") || !strings.Contains(full, "0 shed") {
		t.Errorf("unexpected failures in a healthy run: %s", full)
	}
}
