// Command qarvedge runs the edge-side service of a live qarv fleet: a
// TCP server that accepts depth-controlled octree streams from many
// device connections at once, multiplexes a shared uplink budget across
// them through a pluggable allocator, validates streams, and
// acknowledges frames with the served byte count and each connection's
// allocated share. Pair it with cmd/qarvdevice.
//
// Usage:
//
//	qarvedge [-addr 127.0.0.1:7464] [-rate BYTES_PER_SEC] [-alloc NAME]
//	         [-max-conns N] [-idle-timeout D] [-drain-timeout D]
//	         [-validate] [-duration 0] [-metrics-addr HOST:PORT]
//
// -rate is the shared uplink budget split across all live connections
// (0 = unpaced); -alloc picks the split strategy — any alloc.ByName
// form, the static four (equal, proportional, maxweight, wrr) or the
// learned families (bandit[:ARMS], gradient[:STEP]), which adapt the
// split online from live backlogs. -max-conns sheds connections beyond the cap,
// -idle-timeout drops devices that stop sending. With -duration 0 the
// server runs until interrupted; shutdown drains gracefully for
// -drain-timeout (0 = close abruptly). -metrics-addr additionally
// serves the live stream_* counters in Prometheus text format at
// /metrics, plus the standard /debug/pprof endpoints.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"qarv/internal/alloc"
	// The learned allocator families register with alloc.ByName from
	// learn's init; without this import the edge would only know the
	// static four.
	_ "qarv/internal/learn"
	"qarv/internal/obs"
	"qarv/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "qarvedge:", err)
		os.Exit(1)
	}
}

// run starts the server; if started is non-nil it receives the bound
// address (used by tests to reach an ephemeral port).
func run(args []string, out io.Writer, started func(addr string)) error {
	fs := flag.NewFlagSet("qarvedge", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7464", "listen address (use :0 for an ephemeral port)")
	rate := fs.Float64("rate", 2e6, "shared uplink budget in bytes/second, split across live connections (0 = unpaced)")
	allocName := fs.String("alloc", "equal", "budget allocator: "+strings.Join(alloc.Names(), ", "))
	maxConns := fs.Int("max-conns", 0, "shed connections beyond this many concurrent sessions (0 = unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop a connection idle for this long (0 = no limit)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-drain bound at shutdown (0 = close abruptly)")
	validate := fs.Bool("validate", true, "decode and validate every received stream")
	duration := fs.Duration("duration", 0, "serve for this long then exit (0 = until SIGINT)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	allocator, err := alloc.ByName(*allocName)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	srv, err := stream.Serve(*addr, stream.ServerConfig{
		Budget:      *rate,
		Allocator:   allocator,
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
		Validate:    *validate,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "edge listening on %s (budget %.0f B/s via %s, max-conns %d, validate=%v)\n",
		srv.Addr(), *rate, allocator.Name(), *maxConns, *validate)
	if reg != nil {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			_ = srv.Close() // the listen error is the one worth reporting
			return fmt.Errorf("metrics listen: %w", err)
		}
		defer ln.Close()
		msrv := &http.Server{Handler: obs.NewDebugMux(reg)}
		go func() {
			// Surface startup failures; the expected ErrServerClosed from
			// the deferred listener close stays quiet.
			if err := msrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "qarvedge: metrics server:", err)
			}
		}()
		fmt.Fprintf(out, "metrics on http://%s/metrics (pprof on /debug/pprof)\n", ln.Addr())
	}
	if started != nil {
		started(srv.Addr())
	}

	if *duration > 0 {
		time.Sleep(*duration)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	if *drainTimeout > 0 {
		fmt.Fprintf(out, "draining (bounded by %v)\n", *drainTimeout)
		err = srv.Drain(*drainTimeout)
	} else {
		err = srv.Close()
	}
	if err != nil && !errors.Is(err, stream.ErrServerClosed) {
		return err
	}
	// Drain/Close joined every handler, so the counters now include
	// frames that were mid-flight when shutdown began.
	st := srv.Stats()
	// Wait reports why the accept loop exited: ErrServerClosed is the
	// clean shutdown we just requested, anything else is a real failure.
	if err := srv.Wait(); !errors.Is(err, stream.ErrServerClosed) {
		return fmt.Errorf("accept loop failed: %w", err)
	}
	fmt.Fprintf(out, "served %d frames (%d bytes), acked %d frames (%d bytes), %d ack failures, %d corrupt rejected, %d shed\n",
		st.FramesServed, st.BytesServed, st.FramesAcked, st.BytesAcked, st.AckFailures, st.Corrupt, st.Shed)
	return nil
}
