// Command qarvedge runs the edge-side receiver of a live qarv session: a
// TCP server that accepts depth-controlled octree streams from devices,
// paces processing at a configured throughput, validates streams, and
// acknowledges frames. Pair it with cmd/qarvdevice.
//
// Usage:
//
//	qarvedge [-addr 127.0.0.1:7464] [-rate BYTES_PER_SEC] [-validate]
//	         [-duration 0] [-metrics-addr HOST:PORT]
//
// With -duration 0 the server runs until interrupted. -metrics-addr
// additionally serves the live stream_* counters in Prometheus text
// format at /metrics, plus the standard /debug/pprof endpoints.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"qarv/internal/obs"
	"qarv/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "qarvedge:", err)
		os.Exit(1)
	}
}

// run starts the server; if started is non-nil it receives the bound
// address (used by tests to reach an ephemeral port).
func run(args []string, out io.Writer, started func(addr string)) error {
	fs := flag.NewFlagSet("qarvedge", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7464", "listen address (use :0 for an ephemeral port)")
	rate := fs.Float64("rate", 2e6, "processing throughput in bytes/second (0 = unpaced)")
	validate := fs.Bool("validate", true, "decode and validate every received stream")
	duration := fs.Duration("duration", 0, "serve for this long then exit (0 = until SIGINT)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	srv, err := stream.Serve(*addr, stream.ServerConfig{
		BytesPerSecond: *rate,
		Validate:       *validate,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "edge listening on %s (rate %.0f B/s, validate=%v)\n",
		srv.Addr(), *rate, *validate)
	if reg != nil {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			_ = srv.Close() // the listen error is the one worth reporting
			return fmt.Errorf("metrics listen: %w", err)
		}
		defer ln.Close()
		msrv := &http.Server{Handler: obs.NewDebugMux(reg)}
		go func() {
			// Surface startup failures; the expected ErrServerClosed from
			// the deferred listener close stays quiet.
			if err := msrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "qarvedge: metrics server:", err)
			}
		}()
		fmt.Fprintf(out, "metrics on http://%s/metrics (pprof on /debug/pprof)\n", ln.Addr())
	}
	if started != nil {
		started(srv.Addr())
	}

	if *duration > 0 {
		time.Sleep(*duration)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	if err := srv.Close(); err != nil && !errors.Is(err, stream.ErrServerClosed) {
		return err
	}
	// Close drained every handler, so the counters now include frames
	// that were mid-flight when shutdown began.
	frames, bytes, corrupt := srv.Stats()
	// Wait reports why the accept loop exited: ErrServerClosed is the
	// clean shutdown we just requested, anything else is a real failure.
	if err := srv.Wait(); !errors.Is(err, stream.ErrServerClosed) {
		return fmt.Errorf("accept loop failed: %w", err)
	}
	fmt.Fprintf(out, "served %d frames, %d bytes, %d corrupt rejected\n", frames, bytes, corrupt)
	return nil
}
