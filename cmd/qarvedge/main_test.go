package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qarv/internal/stream"
)

func TestEdgeServesAndReportsStats(t *testing.T) {
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-rate", "0", "-duration", "1500ms"},
			&out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("server never started")
	}
	client, err := stream.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// -validate is on by default: send one corrupt frame; it must be
	// rejected, not acked.
	if err := client.SendFrame(stream.Frame{ID: 1, Depth: 5, Payload: []byte("junk")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "edge listening on") {
		t.Errorf("missing startup line: %s", s)
	}
	if !strings.Contains(s, "1 corrupt rejected") {
		t.Errorf("corrupt frame not reported: %s", s)
	}
}

func TestEdgeBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, nil); err == nil {
		t.Error("bad flag must error")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}, &bytes.Buffer{}, nil); err == nil {
		t.Error("unbindable address must error")
	}
}
