//go:build unix

package main

import "syscall"

// raiseFDLimit best-effort raises the soft open-file limit toward want
// (capped at the hard limit), so a multi-thousand-session loopback
// bench doesn't trip the default 1024-descriptor soft limit on CI
// runners. Failures are ignored: the bench then simply reports failed
// sessions.
func raiseFDLimit(want uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= want {
		return
	}
	lim.Cur = want
	if lim.Cur > lim.Max {
		lim.Cur = lim.Max
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
