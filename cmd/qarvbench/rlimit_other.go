//go:build !unix

package main

// raiseFDLimit is a no-op off Unix; the edge bench then runs under
// whatever descriptor limit the platform grants.
func raiseFDLimit(uint64) {}
