package main

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"qarv/internal/alloc"
	"qarv/internal/geom"
	"qarv/internal/learn"
	"qarv/internal/policy"
)

// learnBenchDevices is the contending-fleet size of the allocator
// benchmarks — the same 8-device shape the learning ablation sweeps.
const learnBenchDevices = 8

// runLearnBench benches the learning layer's per-slot overhead: each
// ByName-reachable allocator's Allocate(+Learn) cycle over an
// 8-device backlog state, and each display-policy wrapper's Decide,
// against the static baselines — the BENCH_learn.json series. The
// numbers bound what a learned strategy costs a slot loop relative to
// EqualSplit, so regressions in the learners' hot paths surface in the
// bench history rather than in sweep wall-clock.
func runLearnBench(out io.Writer) error {
	rows := make([]benchRow, 0, 16)
	for _, name := range alloc.CanonicalNames() {
		a, err := alloc.ByName(name)
		if err != nil {
			return fmt.Errorf("allocator %s: %w", name, err)
		}
		if r, ok := a.(interface{ Reseed(*geom.RNG) }); ok {
			r.Reseed(geom.NewRNG(1))
		}
		learner, _ := a.(alloc.Learner)
		backlogs := make([]float64, learnBenchDevices)
		utilities := make([]float64, learnBenchDevices)
		shares := make([]float64, learnBenchDevices)
		rows = append(rows, record("learn-alloc-"+name, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for d := range backlogs {
					backlogs[d] = float64((i*7 + d*13) % 97)
					utilities[d] = float64((i+d)%10) / 10
				}
				a.Allocate(i, 100, backlogs, shares)
				if learner != nil {
					learner.Learn(i, utilities, backlogs)
				}
			}
		}))
	}

	// Display-policy wrappers around a trivial inner policy, so the
	// measured cost is the wrapper's own (EWMA update, ring buffer), not
	// the controller's argmax.
	policies := []struct {
		name string
		p    policy.Policy
	}{
		{"learn-policy-stock", &policy.FixedDepth{Depth: 8}},
		{"learn-policy-predictive", learn.NewPredictive(&policy.FixedDepth{Depth: 8}, 0, 0)},
		{"learn-policy-delayed", learn.NewLagged(&policy.FixedDepth{Depth: 8}, 0)},
		{"learn-policy-predictive-delayed",
			learn.NewLagged(learn.NewPredictive(&policy.FixedDepth{Depth: 8}, 0, 0), 0)},
	}
	for _, pc := range policies {
		p := pc.p
		rows = append(rows, record(pc.name, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Decide(i, float64((i*11)%1000))
			}
		}))
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
