// Command qarvbench records the content pipeline's benchmark artifact:
// it drives the four content-path benchmarks (octree build, PLY decode,
// stream-size ladder, full content-profile build) through
// testing.Benchmark and writes the results as JSON — the
// BENCH_content.json history artifact, companion to qarvfleet's
// BENCH_fleet.json.
//
// Usage:
//
//	qarvbench [-samples N] [-benchtime D] [-json]
//
// Output goes to stdout; `make bench-content` redirects it into
// BENCH_content.json. -benchtime takes the testing package's syntax
// ("1s", "100x") — CI smokes use 1x, history runs the 1s default.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"qarv/internal/content"
	"qarv/internal/octree"
	"qarv/internal/ply"
	"qarv/internal/pointcloud"
	"qarv/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvbench:", err)
		os.Exit(1)
	}
}

// benchRow is one benchmark's record in the JSON artifact.
type benchRow struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func run(args []string, out io.Writer) error {
	testing.Init()
	fs := flag.NewFlagSet("qarvbench", flag.ContinueOnError)
	samples := fs.Int("samples", 100_000, "synthetic capture surface samples for the octree/PLY workloads")
	benchtime := fs.String("benchtime", "", `per-benchmark budget in testing syntax ("1s", "100x"); empty keeps the 1s default`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}

	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: *samples,
		CaptureDepth:  10,
		Seed:          1,
	}, synthetic.Pose{})
	if err != nil {
		return fmt.Errorf("generate capture: %w", err)
	}
	tree, err := octree.Build(cloud, 10)
	if err != nil {
		return fmt.Errorf("build octree: %w", err)
	}
	var plyBuf bytes.Buffer
	if err := ply.WriteCloud(&plyBuf, cloud, ply.BinaryLittleEndian); err != nil {
		return fmt.Errorf("encode ply: %w", err)
	}
	plyData := plyBuf.Bytes()

	rows := []benchRow{
		record("octree-build", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := octree.Build(cloud, 10); err != nil {
					b.Fatal(err)
				}
			}
		}),
		record("ply-decode", int64(len(plyData)), func(b *testing.B) {
			var got *pointcloud.Cloud
			for i := 0; i < b.N; i++ {
				c, err := ply.ReadCloud(bytes.NewReader(plyData))
				if err != nil {
					b.Fatal(err)
				}
				got = c
			}
			if got.Len() != cloud.Len() {
				b.Fatalf("decoded %d points, want %d", got.Len(), cloud.Len())
			}
		}),
		record("stream-size-profile", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tree.StreamSizeProfile(cloud.HasColors()); err != nil {
					b.Fatal(err)
				}
			}
		}),
		record("content-profile", 0, func(b *testing.B) {
			cfg := content.Config{Asset: "loot", Samples: 20_000, CaptureDepth: 8, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := content.Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// record runs one benchmark function and flattens its result into a
// JSON row; setBytes (when positive) reports decode throughput.
func record(name string, setBytes int64, fn func(b *testing.B)) benchRow {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if setBytes > 0 {
			b.SetBytes(setBytes)
		}
		fn(b)
	})
	row := benchRow{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if setBytes > 0 && res.NsPerOp() > 0 {
		row.MBPerSec = float64(setBytes) / float64(res.NsPerOp()) * 1e9 / 1e6
	}
	return row
}
