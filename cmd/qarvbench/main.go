// Command qarvbench records the repository's benchmark artifacts. Its
// default mode drives the four content-path benchmarks (octree build,
// PLY decode, stream-size ladder, full content-profile build) through
// testing.Benchmark and writes the results as JSON — the
// BENCH_content.json history artifact, companion to qarvfleet's
// BENCH_fleet.json.
//
// With -edge it instead benches the live edge service: N concurrent
// device sessions over real loopback TCP connections against one
// stream.Server, recording sessions/sec, frames/sec, and p50/p99/max
// end-to-end frame latency — the BENCH_edge.json series.
//
// With -learn it benches the learning layer's per-slot overhead: every
// ByName-reachable allocator's Allocate(+Learn) cycle and the
// display-policy wrappers' Decide, against the static baselines — the
// BENCH_learn.json series.
//
// Usage:
//
//	qarvbench [-samples N] [-benchtime D]
//	qarvbench -edge [-sessions N] [-frames M] [-payload BYTES]
//	          [-edge-budget BYTES_PER_SEC] [-edge-alloc NAME]
//	qarvbench -learn [-benchtime D]
//
// Output goes to stdout; `make bench-content`, `make bench-edge`, and
// `make bench-learn` redirect it into the artifact files. -benchtime
// takes the testing package's syntax ("1s", "100x") — CI smokes use
// 1x, history runs the 1s default.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"qarv/internal/content"
	"qarv/internal/octree"
	"qarv/internal/ply"
	"qarv/internal/pointcloud"
	"qarv/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvbench:", err)
		os.Exit(1)
	}
}

// benchRow is one benchmark's record in the JSON artifact.
type benchRow struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func run(args []string, out io.Writer) error {
	testing.Init()
	fs := flag.NewFlagSet("qarvbench", flag.ContinueOnError)
	samples := fs.Int("samples", 100_000, "synthetic capture surface samples for the octree/PLY workloads")
	benchtime := fs.String("benchtime", "", `per-benchmark budget in testing syntax ("1s", "100x"); empty keeps the 1s default`)
	edge := fs.Bool("edge", false, "bench the live edge service over loopback TCP instead of the content pipeline")
	sessions := fs.Int("sessions", 1000, "edge bench: concurrent device sessions")
	frames := fs.Int("frames", 20, "edge bench: frames per session")
	payload := fs.Int("payload", 4096, "edge bench: payload bytes per frame")
	edgeBudget := fs.Float64("edge-budget", 0, "edge bench: shared uplink budget in bytes/second (0 = unpaced)")
	edgeAlloc := fs.String("edge-alloc", "equal", "edge bench: budget allocator (any alloc.ByName form, learned families included)")
	learnBench := fs.Bool("learn", false, "bench the learning layer's per-slot overhead (allocators and display-policy wrappers) instead of the content pipeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *edge {
		return runEdgeBench(*sessions, *frames, *payload, *edgeBudget, *edgeAlloc, out)
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}
	if *learnBench {
		return runLearnBench(out)
	}

	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: *samples,
		CaptureDepth:  10,
		Seed:          1,
	}, synthetic.Pose{})
	if err != nil {
		return fmt.Errorf("generate capture: %w", err)
	}
	tree, err := octree.Build(cloud, 10)
	if err != nil {
		return fmt.Errorf("build octree: %w", err)
	}
	var plyBuf bytes.Buffer
	if err := ply.WriteCloud(&plyBuf, cloud, ply.BinaryLittleEndian); err != nil {
		return fmt.Errorf("encode ply: %w", err)
	}
	plyData := plyBuf.Bytes()

	rows := []benchRow{
		record("octree-build", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := octree.Build(cloud, 10); err != nil {
					b.Fatal(err)
				}
			}
		}),
		record("ply-decode", int64(len(plyData)), func(b *testing.B) {
			var got *pointcloud.Cloud
			for i := 0; i < b.N; i++ {
				c, err := ply.ReadCloud(bytes.NewReader(plyData))
				if err != nil {
					b.Fatal(err)
				}
				got = c
			}
			if got.Len() != cloud.Len() {
				b.Fatalf("decoded %d points, want %d", got.Len(), cloud.Len())
			}
		}),
		record("stream-size-profile", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tree.StreamSizeProfile(cloud.HasColors()); err != nil {
					b.Fatal(err)
				}
			}
		}),
		record("content-profile", 0, func(b *testing.B) {
			cfg := content.Config{Asset: "loot", Samples: 20_000, CaptureDepth: 8, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := content.Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// record runs one benchmark function and flattens its result into a
// JSON row; setBytes (when positive) reports decode throughput.
func record(name string, setBytes int64, fn func(b *testing.B)) benchRow {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if setBytes > 0 {
			b.SetBytes(setBytes)
		}
		fn(b)
	})
	row := benchRow{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if setBytes > 0 && res.NsPerOp() > 0 {
		row.MBPerSec = float64(setBytes) / float64(res.NsPerOp()) * 1e9 / 1e6
	}
	return row
}
