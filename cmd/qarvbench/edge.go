package main

// The edge bench: the BENCH_edge.json series. It stands up a real
// stream.Server on loopback, runs N concurrent device sessions over N
// real TCP connections — each shipping M frames and waiting for every
// acknowledgement — and records fleet-level capacity numbers:
// sessions/sec (full connect→stream→drain lifecycles), frames/sec, and
// the p50/p99/max end-to-end frame latency (send→ack round trip,
// including queueing behind the shared uplink budget).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"qarv/internal/alloc"
	"qarv/internal/stream"
)

// edgeBenchResult is the BENCH_edge.json artifact: one record per run,
// configuration echoed alongside the measurements.
type edgeBenchResult struct {
	Name              string  `json:"name"`
	Sessions          int     `json:"sessions"`
	FramesPerSession  int     `json:"frames_per_session"`
	PayloadBytes      int     `json:"payload_bytes"`
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`
	Allocator         string  `json:"allocator"`
	ElapsedSec        float64 `json:"elapsed_sec"`
	SessionsPerSec    float64 `json:"sessions_per_sec"`
	FramesPerSec      float64 `json:"frames_per_sec"`
	P50FrameLatencyMs float64 `json:"p50_frame_latency_ms"`
	P99FrameLatencyMs float64 `json:"p99_frame_latency_ms"`
	MaxFrameLatencyMs float64 `json:"max_frame_latency_ms"`
	FramesServed      int     `json:"frames_served"`
	BytesServed       uint64  `json:"bytes_served"`
	AckFailures       int     `json:"ack_failures"`
	Shed              int     `json:"shed"`
	FailedSessions    int     `json:"failed_sessions"`
}

// runEdgeBench drives the loopback fleet and writes the JSON artifact.
func runEdgeBench(sessions, frames, payloadBytes int, budget float64, allocName string, out io.Writer) error {
	if sessions < 1 || frames < 1 || payloadBytes < 1 {
		return fmt.Errorf("edge bench needs positive -sessions, -frames, -payload (got %d, %d, %d)",
			sessions, frames, payloadBytes)
	}
	allocator, err := alloc.ByName(allocName)
	if err != nil {
		return err
	}
	raiseFDLimit(uint64(4*sessions + 64))
	srv, err := stream.Serve("127.0.0.1:0", stream.ServerConfig{
		Budget:    budget,
		Allocator: allocator,
	})
	if err != nil {
		return err
	}
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	latCh := make(chan []time.Duration, sessions)
	errCh := make(chan error, sessions)
	var wg sync.WaitGroup
	//qarv:allow nondeterminism benchmarking a live server is wall-clock by definition
	start := time.Now()
	for dev := 0; dev < sessions; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			client, err := stream.Dial(srv.Addr())
			if err != nil {
				errCh <- fmt.Errorf("session %d: dial: %w", dev, err)
				return
			}
			defer client.Close()
			for i := 0; i < frames; i++ {
				if err := client.SendFrame(stream.Frame{
					ID:      uint32(i),
					Depth:   8,
					Payload: payload,
				}); err != nil {
					errCh <- fmt.Errorf("session %d frame %d: %w", dev, i, err)
					return
				}
			}
			if !client.WaitForAcks(2 * time.Minute) {
				errCh <- fmt.Errorf("session %d: did not drain", dev)
				return
			}
			latCh <- client.Latencies()
		}(dev)
	}
	wg.Wait()
	//qarv:allow nondeterminism benchmarking a live server is wall-clock by definition
	elapsed := time.Since(start)
	close(latCh)
	close(errCh)
	if err := srv.Drain(10 * time.Second); err != nil {
		return err
	}
	st := srv.Stats()

	var latencies []time.Duration
	for ls := range latCh {
		latencies = append(latencies, ls...)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	failed := len(errCh)
	res := edgeBenchResult{
		Name:              "edge-loopback-fleet",
		Sessions:          sessions,
		FramesPerSession:  frames,
		PayloadBytes:      payloadBytes,
		BudgetBytesPerSec: budget,
		Allocator:         allocator.Name(),
		ElapsedSec:        elapsed.Seconds(),
		SessionsPerSec:    float64(sessions-failed) / elapsed.Seconds(),
		FramesPerSec:      float64(len(latencies)) / elapsed.Seconds(),
		P50FrameLatencyMs: latencyMs(latencies, 0.50),
		P99FrameLatencyMs: latencyMs(latencies, 0.99),
		MaxFrameLatencyMs: latencyMs(latencies, 1),
		FramesServed:      st.FramesServed,
		BytesServed:       st.BytesServed,
		AckFailures:       st.AckFailures,
		Shed:              st.Shed,
		FailedSessions:    failed,
	}
	if failed > 0 {
		// Surface the first failure but still emit the artifact: a
		// partially failed run is a datapoint, not a silent gap.
		err = <-errCh
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(res); encErr != nil {
		return encErr
	}
	return err
}

// latencyMs returns the q-quantile (by nearest-rank on the sorted
// slice; q=1 means max) in milliseconds, or 0 when empty.
func latencyMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
