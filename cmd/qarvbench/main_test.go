package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunEmitsBenchRows: a 1x run emits the four content-path rows as
// well-formed JSON with positive timings.
func TestRunEmitsBenchRows(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-samples", "5000", "-benchtime", "1x"}, &out); err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	want := []string{"octree-build", "ply-decode", "stream-size-profile", "content-profile"}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if row.Name != want[i] {
			t.Errorf("row %d name %q, want %q", i, row.Name, want[i])
		}
		if row.Iterations < 1 || row.NsPerOp <= 0 {
			t.Errorf("row %q has no measurement: %+v", row.Name, row)
		}
	}
	if rows[1].MBPerSec <= 0 {
		t.Errorf("ply-decode missing throughput: %+v", rows[1])
	}
}

// TestRunRejectsBadFlags: unknown flags and malformed benchtimes fail.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-benchtime", "banana"}, &bytes.Buffer{}); err == nil {
		t.Error("malformed benchtime accepted")
	}
}
