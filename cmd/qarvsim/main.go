// Command qarvsim runs one AR-visualization control scenario and prints
// its trajectory summary — the interactive companion to qarvfig for
// exploring policies, V values, and service rates.
//
// Usage:
//
//	qarvsim [-policy proposed|max|min|random|threshold|fixed:N]
//	        [-v V] [-knee SLOT] [-slots T] [-samples N] [-service-frac F]
//	        [-seed S] [-chart]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"qarv/internal/experiments"
	"qarv/internal/geom"
	"qarv/internal/policy"
	"qarv/internal/sim"
	"qarv/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvsim", flag.ContinueOnError)
	policyName := fs.String("policy", "proposed", "policy: proposed, max, min, random, threshold, fixed:N")
	vOverride := fs.Float64("v", 0, "override the calibrated V (0 = use calibration)")
	knee := fs.Float64("knee", 400, "calibrated knee slot for the proposed policy")
	slots := fs.Int("slots", 800, "simulation horizon")
	samples := fs.Int("samples", 400_000, "synthetic capture surface samples")
	serviceFrac := fs.Float64("service-frac", 0.6, "service rate position in (a(d_max-1), a(d_max))")
	seed := fs.Int64("seed", 1, "random seed")
	chart := fs.Bool("chart", false, "render ASCII backlog/depth charts")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn, err := experiments.NewScenario(experiments.ScenarioParams{
		Samples:         *samples,
		Slots:           *slots,
		Seed:            uint64(*seed),
		ServiceFraction: *serviceFrac,
		KneeSlot:        *knee,
	})
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}

	p, err := buildPolicy(*policyName, *vOverride, scn, uint64(*seed))
	if err != nil {
		return err
	}
	res, err := sim.Run(scn.SimConfig(p))
	if err != nil {
		return err
	}
	verdict, err := res.Verdict()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "policy            %s\n", res.PolicyName)
	fmt.Fprintf(out, "slots             %d\n", *slots)
	fmt.Fprintf(out, "service rate      %.0f points/slot\n", scn.ServiceRate)
	if strings.HasPrefix(*policyName, "proposed") {
		v := scn.V
		if *vOverride > 0 {
			v = *vOverride
		}
		fmt.Fprintf(out, "V                 %.6g\n", v)
	}
	fmt.Fprintf(out, "verdict           %s\n", verdict)
	fmt.Fprintf(out, "time-avg utility  %.4f\n", res.TimeAvgUtility)
	fmt.Fprintf(out, "time-avg backlog  %.0f\n", res.TimeAvgBacklog)
	fmt.Fprintf(out, "final backlog     %.0f\n", res.FinalBacklog)
	fmt.Fprintf(out, "max backlog       %.0f\n", res.MaxBacklog)
	fmt.Fprintf(out, "frames completed  %d (mean sojourn %.2f slots)\n",
		len(res.Completed), res.MeanSojourn)
	hist := res.DepthHistogram()
	fmt.Fprint(out, "depth histogram   ")
	for _, d := range scn.Params.Depths {
		if n, ok := hist[d]; ok {
			fmt.Fprintf(out, "%d:%d  ", d, n)
		}
	}
	fmt.Fprintln(out)

	if *chart {
		tab := trace.NewTable("Time step", len(res.Backlog))
		if err := tab.Add(trace.Series{Name: "backlog", Values: res.Backlog}); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "Queue backlog"}); err != nil {
			return err
		}
		dep := trace.NewTable("Time step", len(res.Depth))
		if err := dep.Add(trace.FromInts("depth", res.Depth)); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := dep.RenderASCII(out, trace.ChartOptions{Title: "Control action (# of depth)", Height: 8}); err != nil {
			return err
		}
	}
	return nil
}

func buildPolicy(name string, vOverride float64, scn *experiments.Scenario, seed uint64) (policy.Policy, error) {
	switch {
	case name == "proposed":
		if vOverride > 0 {
			return scn.ControllerWithV(vOverride)
		}
		return scn.Controller()
	case name == "max":
		return policy.NewMaxDepth(scn.Params.Depths)
	case name == "min":
		return policy.NewMinDepth(scn.Params.Depths)
	case name == "random":
		return policy.NewRandom(scn.Params.Depths, geom.NewRNG(seed))
	case name == "threshold":
		ctrl, err := scn.Controller()
		if err != nil {
			return nil, err
		}
		return policy.NewThreshold(scn.Params.Depths,
			0.5*ctrl.SwitchBacklog(), ctrl.SwitchBacklog())
	case strings.HasPrefix(name, "fixed:"):
		d, err := strconv.Atoi(strings.TrimPrefix(name, "fixed:"))
		if err != nil {
			return nil, fmt.Errorf("bad fixed depth %q: %w", name, err)
		}
		return &policy.FixedDepth{Depth: d}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
