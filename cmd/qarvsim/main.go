// Command qarvsim runs one AR-visualization control scenario and prints
// its trajectory summary — the interactive companion to qarvfig for
// exploring policies, V values, and service rates. It drives the run
// through the qarv Session API, so Ctrl-C cancels cleanly mid-run.
//
// Usage:
//
//	qarvsim [-policy proposed|max|min|random|threshold|oracle|fixed:N|
//	                 predictive[:H]|delayed[:L]|predictive-delayed[:L]]
//	        [-v V] [-knee SLOT] [-slots T] [-samples N] [-service-frac F]
//	        [-seed S] [-chart] [-metrics FILE] [-trace FILE]
//	        [-devices N] [-alloc equal|proportional|maxweight|wrr|
//	                             bandit[:ARMS]|gradient[:STEP]]
//	        [-net static|markov|trace[:FILE]|handoff]
//	        [-content ASSET|FILE.ply]
//
// With -devices N the run becomes the shared-edge multi-device scenario:
// N copies of the chosen policy contend for N× the calibrated service
// budget, split per slot by the -alloc strategy. The bandit and
// gradient allocators learn the split online from per-slot utility and
// backlog feedback; their trajectories are seeded from -seed. The
// predictive/delayed policy forms wrap the proposed controller with the
// learning layer's display prediction across a delayed control loop.
//
// -net makes the service capacity time-varying: markov modulates it
// with a Gilbert–Elliott good/bad fading chain (×1 / ×0.3), trace
// replays a piecewise pattern (the built-in diurnal cycle, or a
// CSV/JSON trace file normalized to its peak — measured bytes/slot
// captures and hand-written factor patterns both work), and handoff
// injects mobility outages with new-cell capacity scales. In
// multi-device runs the modulation applies to the shared edge budget
// the allocator splits.
//
// -content grounds the run in a measured content profile: the named
// synthetic asset (or a .ply file) is captured, its octree stream bytes
// and PSNR measured per depth, and the controller calibrated over those
// ladders — cost becomes bytes/frame and the service rate bytes/slot.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"qarv"
	"qarv/cmd/internal/names"
	"qarv/cmd/internal/telemetry"
	"qarv/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first Ctrl-C cancels ctx, unregister the handler so a
	// second Ctrl-C falls back to default termination even during the
	// non-cancelable scenario calibration.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvsim", flag.ContinueOnError)
	policyName := fs.String("policy", "proposed", "policy: "+names.PolicyUsage())
	vOverride := fs.Float64("v", 0, "override the calibrated V (0 = use calibration)")
	knee := fs.Float64("knee", 400, "calibrated knee slot for the proposed policy")
	slots := fs.Int("slots", 800, "simulation horizon")
	samples := fs.Int("samples", 400_000, "synthetic capture surface samples")
	serviceFrac := fs.Float64("service-frac", 0.6, "service rate position in (a(d_max-1), a(d_max))")
	seed := fs.Int64("seed", 1, "random seed")
	chart := fs.Bool("chart", false, "render ASCII backlog/depth charts")
	devices := fs.Int("devices", 0, "run N devices sharing the edge budget (0 = single device)")
	allocName := fs.String("alloc", "", "multi-device budget split: "+names.AllocatorUsage()+" (default equal)")
	netName := fs.String("net", "static", "network dynamics modulating the service: static, markov, trace[:FILE], handoff")
	contentAsset := fs.String("content", "", "ground the run in a measured content profile: synthetic asset name or a .ply file (cost/utility become the asset's measured byte/PSNR ladders)")
	sinks := telemetry.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sinks.Resolve()
	if *allocName != "" && *devices <= 0 {
		return fmt.Errorf("-alloc %q requires -devices", *allocName)
	}

	var scn *qarv.Scenario
	var err error
	unit := "points/slot"
	if *contentAsset != "" {
		prof, perr := qarv.LoadContent(qarv.ContentConfig{
			Asset:   *contentAsset,
			Samples: *samples,
			Seed:    uint64(*seed),
		})
		if perr != nil {
			return fmt.Errorf("content profile: %w", perr)
		}
		scn, err = qarv.NewContentScenario(qarv.ScenarioParams{
			Slots:           *slots,
			ServiceFraction: *serviceFrac,
			KneeSlot:        *knee,
		}, prof)
		unit = "bytes/slot"
	} else {
		scn, err = qarv.NewScenario(qarv.ScenarioParams{
			Samples:         *samples,
			Slots:           *slots,
			Seed:            uint64(*seed),
			ServiceFraction: *serviceFrac,
			KneeSlot:        *knee,
		})
	}
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}

	// Calibration isn't cancelable; honor a Ctrl-C that arrived during it.
	if err := ctx.Err(); err != nil {
		return err
	}
	if *devices > 0 {
		return runMulti(ctx, out, scn, sinks, unit, *devices, *allocName, *policyName, *netName, *vOverride, uint64(*seed), *chart)
	}
	p, err := buildPolicy(*policyName, *vOverride, scn, uint64(*seed))
	if err != nil {
		return err
	}
	opts := []qarv.Option{qarv.WithScenario(scn), qarv.WithPolicy(p),
		qarv.WithTelemetry(sinks.Registry), qarv.WithFlightRecorder(sinks.Recorder)}
	svc, netLabel, err := netService(*netName, scn.ServiceRate, uint64(*seed))
	if err != nil {
		return err
	}
	if svc != nil {
		opts = append(opts, qarv.WithService(svc))
	}
	sess, err := qarv.NewSession(opts...)
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	res := rep.Sim

	fmt.Fprintf(out, "policy            %s\n", res.PolicyName)
	if *contentAsset != "" {
		fmt.Fprintf(out, "content           %s (measured byte/PSNR ladders)\n", scn.Params.Character)
	}
	fmt.Fprintf(out, "slots             %d\n", *slots)
	fmt.Fprintf(out, "service rate      %.0f %s\n", scn.ServiceRate, unit)
	if netLabel != "static" {
		fmt.Fprintf(out, "network           %s\n", netLabel)
	}
	if strings.HasPrefix(*policyName, "proposed") {
		v := scn.V
		if *vOverride > 0 {
			v = *vOverride
		}
		fmt.Fprintf(out, "V                 %.6g\n", v)
	}
	fmt.Fprintf(out, "verdict           %s\n", rep.Verdict)
	fmt.Fprintf(out, "time-avg utility  %.4f\n", res.TimeAvgUtility)
	fmt.Fprintf(out, "time-avg backlog  %.0f\n", res.TimeAvgBacklog)
	fmt.Fprintf(out, "final backlog     %.0f\n", res.FinalBacklog)
	fmt.Fprintf(out, "max backlog       %.0f\n", res.MaxBacklog)
	fmt.Fprintf(out, "frames completed  %d (mean sojourn %.2f slots)\n",
		len(res.Completed), res.MeanSojourn)
	hist := res.DepthHistogram()
	fmt.Fprint(out, "depth histogram   ")
	for _, d := range scn.Params.Depths {
		if n, ok := hist[d]; ok {
			fmt.Fprintf(out, "%d:%d  ", d, n)
		}
	}
	fmt.Fprintln(out)

	if *chart {
		tab := trace.NewTable("Time step", len(res.Backlog))
		if err := tab.Add(trace.Series{Name: "backlog", Values: res.Backlog}); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "Queue backlog"}); err != nil {
			return err
		}
		dep := trace.NewTable("Time step", len(res.Depth))
		if err := dep.Add(trace.FromInts("depth", res.Depth)); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := dep.RenderASCII(out, trace.ChartOptions{Title: "Control action (# of depth)", Height: 8}); err != nil {
			return err
		}
	}
	return sinks.Export(out)
}

// runMulti drives the shared-edge multi-device scenario: n copies of the
// chosen policy (each a fresh instance acting on purely local state)
// contend for n× the calibrated budget under the named allocator,
// optionally modulated by the -net dynamics.
func runMulti(ctx context.Context, out io.Writer, scn *qarv.Scenario, sinks *telemetry.Sinks, unit string, n int, allocName, policyName, netName string, vOverride float64, seed uint64, chart bool) error {
	if allocName == "" {
		allocName = "equal"
	}
	allocator, err := names.Allocator(allocName, seed)
	if err != nil {
		return err
	}
	devs := make([]qarv.Device, n)
	for i := range devs {
		p, err := buildPolicy(policyName, vOverride, scn, seed+uint64(i))
		if err != nil {
			return err
		}
		devs[i] = qarv.Device{
			Policy:   p,
			Cost:     scn.Cost,
			Utility:  scn.Utility,
			Arrivals: &qarv.DeterministicArrivals{PerSlot: 1},
		}
	}
	opts := []qarv.Option{qarv.WithScenario(scn),
		qarv.WithDevices(devs...), qarv.WithAllocator(allocator),
		qarv.WithTelemetry(sinks.Registry), qarv.WithFlightRecorder(sinks.Recorder)}
	svc, netLabel, err := netService(netName, float64(n)*scn.ServiceRate, seed)
	if err != nil {
		return err
	}
	if svc != nil {
		opts = append(opts, qarv.WithService(svc))
	}
	sess, err := qarv.NewSession(opts...)
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	res := rep.Multi
	fmt.Fprintf(out, "policy            %s\n", devs[0].Policy.Name())
	fmt.Fprintf(out, "devices           %d\n", n)
	fmt.Fprintf(out, "allocator         %s\n", res.Allocator)
	fmt.Fprintf(out, "edge budget       %.0f %s\n", float64(n)*scn.ServiceRate, unit)
	if netLabel != "static" {
		fmt.Fprintf(out, "network           %s\n", netLabel)
	}
	fmt.Fprintf(out, "fleet verdict     %s\n", rep.Verdict)
	fmt.Fprintf(out, "mean utility      %.4f\n", res.MeanTimeAvgUtility)
	fmt.Fprintf(out, "total avg backlog %.0f\n", res.TotalTimeAvgBacklog)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "device  verdict     avg backlog  completed  mean sojourn")
	for i, r := range res.PerDevice {
		verdict, err := r.Verdict()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%6d  %-10s  %11.0f  %9d  %12.2f\n",
			i, verdict, r.TimeAvgBacklog, len(r.Completed), r.MeanSojourn)
	}
	if chart {
		tab := trace.NewTable("Time step", len(res.PerDevice[0].Backlog))
		for i, r := range res.PerDevice {
			if err := tab.Add(trace.Series{Name: fmt.Sprintf("device %d", i), Values: r.Backlog}); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "Per-device queue backlog"}); err != nil {
			return err
		}
	}
	return sinks.Export(out)
}

// netService builds the -net dynamics as a service process modulating
// the given base rate: a nil process (with label "static") means the
// scenario's own constant service stands. The factor processes are the
// same netem types the offload dynamics use; their RNGs derive from the
// run seed so repeated runs replay the same capacity path.
func netService(name string, rate float64, seed uint64) (qarv.ServiceProcess, string, error) {
	base := &qarv.ConstantService{Rate: rate}
	traceFile := ""
	if file, ok := strings.CutPrefix(name, "trace:"); ok {
		name, traceFile = "trace", file
	}
	switch name {
	case "", "static":
		return nil, "static", nil
	case "markov":
		mb := qarv.DefaultMarkovFactor(qarv.NewRNG(seed ^ 0x6e6574))
		return &qarv.ModulatedService{Inner: base, Factor: mb.Bandwidth}, mb.Name(), nil
	case "trace":
		tb, err := qarv.LoadFactorTrace(traceFile)
		if err != nil {
			return nil, "", err
		}
		return &qarv.ModulatedService{Inner: base, Factor: tb.Bandwidth}, tb.Name(), nil
	case "handoff":
		hb := qarv.DefaultHandoffFactor(qarv.NewRNG(seed ^ 0x6e6574))
		return &qarv.ModulatedService{Inner: base, Factor: hb.Bandwidth}, hb.Name(), nil
	default:
		return nil, "", fmt.Errorf("unknown network %q (want static, markov, trace[:FILE], handoff)", name)
	}
}

// buildPolicy resolves -policy through the shared CLI grammar
// (cmd/internal/names): the sweep policy names — learning-layer
// predictive/delayed forms included — plus fixed:N.
func buildPolicy(name string, vOverride float64, scn *qarv.Scenario, seed uint64) (qarv.Policy, error) {
	return names.Policy(scn, name, vOverride, seed)
}
