// Command qarvsim runs one AR-visualization control scenario and prints
// its trajectory summary — the interactive companion to qarvfig for
// exploring policies, V values, and service rates. It drives the run
// through the qarv Session API, so Ctrl-C cancels cleanly mid-run.
//
// Usage:
//
//	qarvsim [-policy proposed|max|min|random|threshold|fixed:N]
//	        [-v V] [-knee SLOT] [-slots T] [-samples N] [-service-frac F]
//	        [-seed S] [-chart]
//	        [-devices N] [-alloc equal|proportional|maxweight|wrr]
//
// With -devices N the run becomes the shared-edge multi-device scenario:
// N copies of the chosen policy contend for N× the calibrated service
// budget, split per slot by the -alloc strategy.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"qarv"
	"qarv/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first Ctrl-C cancels ctx, unregister the handler so a
	// second Ctrl-C falls back to default termination even during the
	// non-cancelable scenario calibration.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvsim", flag.ContinueOnError)
	policyName := fs.String("policy", "proposed", "policy: proposed, max, min, random, threshold, fixed:N")
	vOverride := fs.Float64("v", 0, "override the calibrated V (0 = use calibration)")
	knee := fs.Float64("knee", 400, "calibrated knee slot for the proposed policy")
	slots := fs.Int("slots", 800, "simulation horizon")
	samples := fs.Int("samples", 400_000, "synthetic capture surface samples")
	serviceFrac := fs.Float64("service-frac", 0.6, "service rate position in (a(d_max-1), a(d_max))")
	seed := fs.Int64("seed", 1, "random seed")
	chart := fs.Bool("chart", false, "render ASCII backlog/depth charts")
	devices := fs.Int("devices", 0, "run N devices sharing the edge budget (0 = single device)")
	allocName := fs.String("alloc", "", "multi-device budget split: equal, proportional, maxweight, wrr (default equal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *allocName != "" && *devices <= 0 {
		return fmt.Errorf("-alloc %q requires -devices", *allocName)
	}

	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:         *samples,
		Slots:           *slots,
		Seed:            uint64(*seed),
		ServiceFraction: *serviceFrac,
		KneeSlot:        *knee,
	})
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}

	// Calibration isn't cancelable; honor a Ctrl-C that arrived during it.
	if err := ctx.Err(); err != nil {
		return err
	}
	if *devices > 0 {
		return runMulti(ctx, out, scn, *devices, *allocName, *policyName, *vOverride, uint64(*seed), *chart)
	}
	p, err := buildPolicy(*policyName, *vOverride, scn, uint64(*seed))
	if err != nil {
		return err
	}
	sess, err := qarv.NewSession(qarv.WithScenario(scn), qarv.WithPolicy(p))
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	res := rep.Sim

	fmt.Fprintf(out, "policy            %s\n", res.PolicyName)
	fmt.Fprintf(out, "slots             %d\n", *slots)
	fmt.Fprintf(out, "service rate      %.0f points/slot\n", scn.ServiceRate)
	if strings.HasPrefix(*policyName, "proposed") {
		v := scn.V
		if *vOverride > 0 {
			v = *vOverride
		}
		fmt.Fprintf(out, "V                 %.6g\n", v)
	}
	fmt.Fprintf(out, "verdict           %s\n", rep.Verdict)
	fmt.Fprintf(out, "time-avg utility  %.4f\n", res.TimeAvgUtility)
	fmt.Fprintf(out, "time-avg backlog  %.0f\n", res.TimeAvgBacklog)
	fmt.Fprintf(out, "final backlog     %.0f\n", res.FinalBacklog)
	fmt.Fprintf(out, "max backlog       %.0f\n", res.MaxBacklog)
	fmt.Fprintf(out, "frames completed  %d (mean sojourn %.2f slots)\n",
		len(res.Completed), res.MeanSojourn)
	hist := res.DepthHistogram()
	fmt.Fprint(out, "depth histogram   ")
	for _, d := range scn.Params.Depths {
		if n, ok := hist[d]; ok {
			fmt.Fprintf(out, "%d:%d  ", d, n)
		}
	}
	fmt.Fprintln(out)

	if *chart {
		tab := trace.NewTable("Time step", len(res.Backlog))
		if err := tab.Add(trace.Series{Name: "backlog", Values: res.Backlog}); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "Queue backlog"}); err != nil {
			return err
		}
		dep := trace.NewTable("Time step", len(res.Depth))
		if err := dep.Add(trace.FromInts("depth", res.Depth)); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := dep.RenderASCII(out, trace.ChartOptions{Title: "Control action (# of depth)", Height: 8}); err != nil {
			return err
		}
	}
	return nil
}

// runMulti drives the shared-edge multi-device scenario: n copies of the
// chosen policy (each a fresh instance acting on purely local state)
// contend for n× the calibrated budget under the named allocator.
func runMulti(ctx context.Context, out io.Writer, scn *qarv.Scenario, n int, allocName, policyName string, vOverride float64, seed uint64, chart bool) error {
	if allocName == "" {
		allocName = "equal"
	}
	allocator, err := qarv.AllocatorByName(allocName)
	if err != nil {
		return err
	}
	devs := make([]qarv.Device, n)
	for i := range devs {
		p, err := buildPolicy(policyName, vOverride, scn, seed+uint64(i))
		if err != nil {
			return err
		}
		devs[i] = qarv.Device{
			Policy:   p,
			Cost:     scn.Cost,
			Utility:  scn.Utility,
			Arrivals: &qarv.DeterministicArrivals{PerSlot: 1},
		}
	}
	sess, err := qarv.NewSession(qarv.WithScenario(scn),
		qarv.WithDevices(devs...), qarv.WithAllocator(allocator))
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	res := rep.Multi
	fmt.Fprintf(out, "policy            %s\n", devs[0].Policy.Name())
	fmt.Fprintf(out, "devices           %d\n", n)
	fmt.Fprintf(out, "allocator         %s\n", res.Allocator)
	fmt.Fprintf(out, "edge budget       %.0f points/slot\n", float64(n)*scn.ServiceRate)
	fmt.Fprintf(out, "fleet verdict     %s\n", rep.Verdict)
	fmt.Fprintf(out, "mean utility      %.4f\n", res.MeanTimeAvgUtility)
	fmt.Fprintf(out, "total avg backlog %.0f\n", res.TotalTimeAvgBacklog)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "device  verdict     avg backlog  completed  mean sojourn")
	for i, r := range res.PerDevice {
		verdict, err := r.Verdict()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%6d  %-10s  %11.0f  %9d  %12.2f\n",
			i, verdict, r.TimeAvgBacklog, len(r.Completed), r.MeanSojourn)
	}
	if chart {
		tab := trace.NewTable("Time step", len(res.PerDevice[0].Backlog))
		for i, r := range res.PerDevice {
			if err := tab.Add(trace.Series{Name: fmt.Sprintf("device %d", i), Values: r.Backlog}); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "Per-device queue backlog"}); err != nil {
			return err
		}
	}
	return nil
}

func buildPolicy(name string, vOverride float64, scn *qarv.Scenario, seed uint64) (qarv.Policy, error) {
	switch {
	case name == "proposed":
		if vOverride > 0 {
			return scn.ControllerWithV(vOverride)
		}
		return scn.Controller()
	case name == "max":
		return qarv.NewMaxDepthPolicy(scn.Params.Depths)
	case name == "min":
		return qarv.NewMinDepthPolicy(scn.Params.Depths)
	case name == "random":
		return qarv.NewRandomPolicy(scn.Params.Depths, seed)
	case name == "threshold":
		ctrl, err := scn.Controller()
		if err != nil {
			return nil, err
		}
		return qarv.NewThresholdPolicy(scn.Params.Depths,
			0.5*ctrl.SwitchBacklog(), ctrl.SwitchBacklog())
	case strings.HasPrefix(name, "fixed:"):
		d, err := strconv.Atoi(strings.TrimPrefix(name, "fixed:"))
		if err != nil {
			return nil, fmt.Errorf("bad fixed depth %q: %w", name, err)
		}
		return &qarv.FixedDepth{Depth: d}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
