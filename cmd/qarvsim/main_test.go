package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func simArgs(extra ...string) []string {
	base := []string{"-samples", "30000", "-slots", "400", "-knee", "150"}
	return append(base, extra...)
}

func TestRunProposedStabilizes(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "proposed"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "drift-plus-penalty") {
		t.Errorf("missing policy name:\n%s", s)
	}
	if !strings.Contains(s, "verdict           stabilized") {
		t.Errorf("proposed not stabilized:\n%s", s)
	}
	if !strings.Contains(s, "depth histogram") {
		t.Error("missing histogram")
	}
}

func TestRunMaxDiverges(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "max"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict           diverging") {
		t.Errorf("max-depth not diverging:\n%s", out.String())
	}
}

func TestRunFixedPolicy(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "fixed:7"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fixed-depth(7)") {
		t.Error("fixed policy not applied")
	}
}

func TestRunChartFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "min", "-chart"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Queue backlog") ||
		!strings.Contains(out.String(), "Control action") {
		t.Error("charts missing")
	}
}

func TestRunVOverride(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "proposed", "-v", "123456"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "123456") {
		t.Error("V override not reported")
	}
}

func TestRunMultiDeviceAllocator(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-devices", "3", "-alloc", "maxweight"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "allocator         max-weight") {
		t.Errorf("allocator not reported:\n%s", s)
	}
	if !strings.Contains(s, "devices           3") {
		t.Errorf("device count not reported:\n%s", s)
	}
	if !strings.Contains(s, "mean sojourn") {
		t.Errorf("per-device frame accounting missing:\n%s", s)
	}
}

func TestRunMultiDeviceChart(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-devices", "2", "-chart"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Per-device queue backlog") ||
		!strings.Contains(s, "device 1") {
		t.Errorf("per-device chart missing:\n%s", s)
	}
}

func TestRunMultiDeviceDefaultAllocator(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-devices", "2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocator         equal-split") {
		t.Errorf("default allocator not equal-split:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), simArgs("-policy", "alchemy"), &bytes.Buffer{}); err == nil {
		t.Error("unknown policy must error")
	}
	if err := run(context.Background(), simArgs("-policy", "fixed:x"), &bytes.Buffer{}); err == nil {
		t.Error("bad fixed depth must error")
	}
	if err := run(context.Background(), []string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag must error")
	}
	if err := run(context.Background(), simArgs("-alloc", "maxweight"), &bytes.Buffer{}); err == nil {
		t.Error("-alloc without -devices must error")
	}
	if err := run(context.Background(), simArgs("-devices", "2", "-alloc", "fifo"), &bytes.Buffer{}); err == nil {
		t.Error("unknown allocator must error")
	}
}

func TestRunNetworkDynamics(t *testing.T) {
	for _, net := range []string{"markov", "trace", "handoff"} {
		var out bytes.Buffer
		if err := run(context.Background(),
			append(simArgs(), "-net", net), &out); err != nil {
			t.Fatalf("-net %s: %v", net, err)
		}
		if !strings.Contains(out.String(), "network") {
			t.Errorf("-net %s: missing network line in:\n%s", net, out.String())
		}
	}
	// Multi-device: the modulation applies to the shared budget.
	var out bytes.Buffer
	if err := run(context.Background(),
		append(simArgs(), "-devices", "3", "-alloc", "maxweight", "-net", "markov"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "network           markov-bw") {
		t.Errorf("multi-device -net missing network line:\n%s", out.String())
	}
	// Unknown networks and missing trace files are rejected.
	if err := run(context.Background(), append(simArgs(), "-net", "nosuch"), &out); err == nil ||
		!strings.Contains(err.Error(), "unknown network") {
		t.Errorf("bad -net accepted: %v", err)
	}
	if err := run(context.Background(), append(simArgs(), "-net", "trace:/no/such.csv"), &out); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestRunContentProfile grounds the run in a measured asset: the
// scenario must report bytes-domain units and the content line.
func TestRunContentProfile(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "6000", "-slots", "200", "-knee", "100",
		"-content", "loot",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "content           loot") {
		t.Errorf("missing content line:\n%s", s)
	}
	if !strings.Contains(s, "bytes/slot") {
		t.Errorf("service rate not in bytes domain:\n%s", s)
	}
	if err := run(context.Background(), []string{"-content", "no-such-asset"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown content asset accepted")
	}
}

// TestRunContentMultiDevice: -content composes with -devices (the
// shared edge budget is split in the bytes domain).
func TestRunContentMultiDevice(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "6000", "-slots", "200", "-knee", "100",
		"-content", "loot", "-devices", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "edge budget") || !strings.Contains(out.String(), "bytes/slot") {
		t.Errorf("multi-device content run missing bytes-domain budget:\n%s", out.String())
	}
}

func TestRunLearnedAllocator(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-devices", "3", "-alloc", "bandit:4"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocator         bandit:4") {
		t.Errorf("bandit allocator not reported:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), simArgs("-devices", "3", "-alloc", "gradient:0.3"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocator         gradient:0.3") {
		t.Errorf("gradient allocator not reported:\n%s", out.String())
	}
}

func TestRunLearnedPolicyForms(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simArgs("-policy", "predictive-delayed:6"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "delayed:6(predictive:6(") {
		t.Errorf("composed learning policy not reported:\n%s", s)
	}
	// Unknown-name errors enumerate the shared grammar.
	err := run(context.Background(), simArgs("-policy", "clairvoyant"), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "predictive[:H]") {
		t.Errorf("policy error %v does not enumerate the grammar", err)
	}
	err = run(context.Background(), simArgs("-devices", "2", "-alloc", "fifo"), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "bandit[:ARMS]") {
		t.Errorf("alloc error %v does not enumerate the grammar", err)
	}
}
