// Command qarvsweep runs a declarative grid experiment through the
// sweep engine: axes given as repeated -axis flags are crossed into a
// grid of cells over the calibrated scenario and executed concurrently
// on the chosen backend (in-process pool, or a session fleet per cell),
// with per-cell seed derivation so output is byte-identical at any
// worker count.
//
// Usage:
//
//	qarvsweep -axis v=0.5,1,2 -axis net=static,markov:0.6,handoff
//	          [-axis rate=0.8,1] [-axis arrivals=0.9,1.1] [-axis slots=400,800]
//	          [-axis alloc=equal,maxweight] [-axis policy=proposed,max,min]
//	          [-backend pool|fleet] [-sessions N] [-workers N]
//	          [-samples N] [-slots T] [-knee K] [-seed S]
//	          [-json] [-csv FILE] [-chart] [-quiet]
//	          [-metrics FILE] [-trace FILE]
//
// Axis kinds: v (factors of the calibrated V), rate (service-rate
// fractions), arrivals (Poisson means), slots (horizons), net
// (static, markov[:VOLATILITY[:DWELL]], handoff, trace[:FILE]), alloc
// (allocator names, learned forms bandit[:ARMS] and gradient[:STEP]
// included; pool backend only), policy (proposed, max, min, random,
// threshold, oracle, predictive[:H], delayed[:L],
// predictive-delayed[:L]), content (assets measured through the
// content pipeline — synthetic names or .ply files; cells run over each
// asset's measured byte/PSNR ladders), viewdist (ASSET:D1,D2,... —
// view-PSNR at each camera distance in meters). Unknown kinds are
// rejected with the list.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"qarv"
	"qarv/cmd/internal/names"
	"qarv/cmd/internal/telemetry"
	"qarv/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvsweep:", err)
		os.Exit(1)
	}
}

type options struct {
	axes     []string
	backend  string
	sessions int
	workers  int
	samples  int
	slots    int
	knee     float64
	seed     uint64
	jsonOut  bool
	csvPath  string
	chart    bool
	quiet    bool
	sinks    *telemetry.Sinks
}

// axisFlags collects repeated -axis specs in order.
type axisFlags []string

// String implements flag.Value.
func (a *axisFlags) String() string { return strings.Join(*a, " ") }

// Set implements flag.Value.
func (a *axisFlags) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("qarvsweep", flag.ContinueOnError)
	var o options
	var seed int64
	var axes axisFlags
	fs.Var(&axes, "axis", "axis spec name=v1,v2,... (repeatable): v, rate, arrivals, slots, net, alloc, policy, content, viewdist")
	fs.StringVar(&o.backend, "backend", "pool", "cell executor: pool (in-process) or fleet (a session population per cell)")
	fs.IntVar(&o.sessions, "sessions", 256, "sessions per cell on the fleet backend")
	fs.IntVar(&o.workers, "workers", 0, "concurrent cells (0 = GOMAXPROCS); output is identical for every value")
	fs.IntVar(&o.samples, "samples", 400_000, "surface samples for the synthetic capture")
	fs.IntVar(&o.slots, "slots", 0, "default cell horizon (0 = scenario horizon; -axis slots wins)")
	fs.Float64Var(&o.knee, "knee", 400, "target knee slot for V calibration")
	fs.Int64Var(&seed, "seed", 1, "sweep seed (cells derive decorrelated seeds from it)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the full SweepReport as JSON")
	fs.StringVar(&o.csvPath, "csv", "", "also write the report table as CSV to FILE")
	fs.BoolVar(&o.chart, "chart", false, "render an ASCII chart of the metrics over the grid")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the text table on stdout")
	o.sinks = telemetry.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	o.sinks.Resolve()
	o.seed = uint64(seed)
	o.axes = axes
	return o, nil
}

// parseFloats splits a comma list into floats.
func parseFloats(kind, list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("axis %s: bad value %q", kind, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildAxis turns one -axis spec into a typed engine axis. The options
// supply the content pipeline's capture knobs (samples, seed) for the
// content and viewdist kinds.
func buildAxis(spec string, o options) (qarv.SweepAxis, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok || list == "" {
		return qarv.SweepAxis{}, fmt.Errorf("axis spec %q: want name=v1,v2,...", spec)
	}
	switch name {
	case "v":
		vals, err := parseFloats(name, list)
		if err != nil {
			return qarv.SweepAxis{}, err
		}
		return qarv.AxisV(vals...), nil
	case "rate":
		vals, err := parseFloats(name, list)
		if err != nil {
			return qarv.SweepAxis{}, err
		}
		return qarv.AxisServiceRate(vals...), nil
	case "arrivals":
		vals, err := parseFloats(name, list)
		if err != nil {
			return qarv.SweepAxis{}, err
		}
		return qarv.AxisArrivalRate(vals...), nil
	case "slots":
		parts := strings.Split(list, ",")
		slots := make([]int, 0, len(parts))
		for _, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return qarv.SweepAxis{}, fmt.Errorf("axis slots: bad value %q", p)
			}
			slots = append(slots, n)
		}
		return qarv.AxisSlots(slots...), nil
	case "alloc":
		return qarv.AxisAllocator(names.List(list)...), nil
	case "policy":
		specs := make([]qarv.PolicySpec, 0)
		for _, p := range names.List(list) {
			ps, err := names.Spec(p)
			if err != nil {
				return qarv.SweepAxis{}, err
			}
			specs = append(specs, ps)
		}
		return qarv.AxisPolicy(specs...), nil
	case "net":
		nets := make([]qarv.SweepNetwork, 0)
		for _, p := range names.List(list) {
			n, err := buildNetwork(p)
			if err != nil {
				return qarv.SweepAxis{}, err
			}
			nets = append(nets, n)
		}
		return qarv.AxisNetwork(nets...), nil
	case "content":
		assets := strings.Split(list, ",")
		profiles := make([]*qarv.ContentProfile, 0, len(assets))
		for _, a := range assets {
			prof, err := qarv.LoadContent(qarv.ContentConfig{
				Asset:   strings.TrimSpace(a),
				Samples: o.samples,
				Seed:    o.seed,
			})
			if err != nil {
				return qarv.SweepAxis{}, fmt.Errorf("axis content: %w", err)
			}
			profiles = append(profiles, prof)
		}
		return qarv.AxisContent(profiles...), nil
	case "viewdist":
		asset, distList, ok := strings.Cut(list, ":")
		if !ok || distList == "" {
			return qarv.SweepAxis{}, fmt.Errorf("axis viewdist: want viewdist=ASSET:D1,D2,...")
		}
		dists, err := parseFloats(name, distList)
		if err != nil {
			return qarv.SweepAxis{}, err
		}
		return qarv.AxisViewDistance(qarv.ContentConfig{
			Asset:   strings.TrimSpace(asset),
			Samples: o.samples,
			Seed:    o.seed,
		}, dists...), nil
	default:
		return qarv.SweepAxis{}, fmt.Errorf("unknown axis %q (want v, rate, arrivals, slots, net, alloc, policy, content, viewdist)", name)
	}
}

// buildNetwork parses one net-axis token: static,
// markov[:VOLATILITY[:DWELL]], handoff, or trace[:FILE]. The optional
// dwell (mean fading-state duration in slots) selects the slow-fading
// shape the learning ablation's predictive policy targets.
func buildNetwork(token string) (qarv.SweepNetwork, error) {
	kind, arg, _ := strings.Cut(token, ":")
	switch kind {
	case "static":
		return qarv.NetworkStatic(), nil
	case "markov":
		vol := 0.6
		volArg, dwellArg, hasDwell := strings.Cut(arg, ":")
		if volArg != "" {
			v, err := strconv.ParseFloat(volArg, 64)
			if err != nil {
				return qarv.SweepNetwork{}, fmt.Errorf("net markov: bad volatility %q", volArg)
			}
			vol = v
		}
		if hasDwell {
			d, err := strconv.ParseFloat(dwellArg, 64)
			if err != nil {
				return qarv.SweepNetwork{}, fmt.Errorf("net markov: bad dwell %q", dwellArg)
			}
			return qarv.NetworkMarkovDwell(vol, d), nil
		}
		return qarv.NetworkMarkov(vol), nil
	case "handoff":
		return qarv.NetworkHandoff(), nil
	case "trace":
		tb, err := qarv.LoadFactorTrace(arg)
		if err != nil {
			return qarv.SweepNetwork{}, err
		}
		return qarv.NetworkTraceShape(tb), nil
	default:
		return qarv.SweepNetwork{}, fmt.Errorf("unknown network %q (want static, markov[:VOL[:DWELL]], handoff, trace[:FILE])", token)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if len(o.axes) == 0 {
		return fmt.Errorf("no axes: pass at least one -axis (e.g. -axis v=0.5,1,2)")
	}
	if o.jsonOut && o.chart {
		return fmt.Errorf("-json and -chart are mutually exclusive: the chart would corrupt the JSON stream (use -csv alongside -json instead)")
	}
	axes := make([]qarv.SweepAxis, 0, len(o.axes))
	for _, spec := range o.axes {
		ax, err := buildAxis(spec, o)
		if err != nil {
			return err
		}
		axes = append(axes, ax)
	}

	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:  o.samples,
		KneeSlot: o.knee,
		Seed:     o.seed,
	})
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	sw, err := qarv.NewSweep(scn, axes...)
	if err != nil {
		return err
	}
	sw.Workers = o.workers
	sw.Slots = o.slots
	sw.Seed = o.seed
	sw.Metrics = o.sinks.Registry
	sw.Recorder = o.sinks.Recorder
	switch o.backend {
	case "pool":
		sw.Backend = qarv.BackendPool()
	case "fleet":
		sw.Backend = qarv.BackendFleet(o.sessions)
	default:
		return fmt.Errorf("unknown -backend %q (want pool or fleet)", o.backend)
	}

	rep, err := sw.Run(ctx)
	if err != nil {
		return err
	}

	if o.csvPath != "" {
		tab, err := rep.Table()
		if err != nil {
			return err
		}
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		return o.sinks.Export(out)
	}
	if !o.quiet {
		fmt.Fprintf(out, "sweep: %d cells over %s (backend %s, seed %d)\n\n",
			len(rep.Rows), strings.Join(rep.Axes, " × "), rep.Backend, rep.Seed)
		headers, cells := rep.TextTable()
		if err := trace.RenderTextTable(out, headers, cells); err != nil {
			return err
		}
	}
	if o.chart {
		tab, err := rep.Table()
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := tab.RenderASCII(out, trace.ChartOptions{Title: "sweep metrics over grid cells"}); err != nil {
			return err
		}
	}
	return o.sinks.Export(out)
}
