package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunGridJSON: a 2×2 grid on the fleet backend emits a well-formed
// JSON report with one row per cell, plus a CSV table.
func TestRunGridJSON(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "sweep.csv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "30000", "-slots", "120", "-seed", "3",
		"-axis", "v=0.5,2", "-axis", "net=static,markov:0.5",
		"-backend", "fleet", "-sessions", "6",
		"-csv", csv, "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Axes    []string `json:"axes"`
		Backend string   `json:"backend"`
		Rows    []struct {
			Cell   int `json:"cell"`
			Coords []struct {
				Axis  string `json:"axis"`
				Label string `json:"label"`
			} `json:"coords"`
			Sessions int64 `json:"sessions"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Axes) != 2 || rep.Axes[0] != "v" || rep.Axes[1] != "net" {
		t.Errorf("axes = %v", rep.Axes)
	}
	if rep.Backend != "fleet" || len(rep.Rows) != 4 {
		t.Fatalf("backend %q rows %d", rep.Backend, len(rep.Rows))
	}
	for i, row := range rep.Rows {
		if row.Cell != i || len(row.Coords) != 2 || row.Sessions != 6 {
			t.Errorf("row %d = %+v", i, row)
		}
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "cell,") {
		t.Errorf("csv header = %q", strings.SplitN(string(raw), "\n", 2)[0])
	}
}

// TestRunTextTable: the default output is an aligned text table headed
// by the axis names.
func TestRunTextTable(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "30000", "-slots", "120",
		"-axis", "policy=proposed,min",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "policy") || !strings.Contains(out.String(), "verdict") {
		t.Errorf("output missing table: %q", out.String())
	}
}

// TestRunContentAxis drives the content axis end-to-end through the
// CLI: a content (2 assets) × v grid must emit measured-ladder cells
// byte-identical at -workers 1 and 4 (the acceptance determinism pin at
// the outermost layer).
func TestRunContentAxis(t *testing.T) {
	sweep := func(workers string) string {
		var out bytes.Buffer
		err := run(context.Background(), []string{
			"-samples", "6000", "-slots", "100", "-seed", "5",
			"-axis", "content=loot,soldier", "-axis", "v=0.5,1",
			"-workers", workers, "-json",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	base := sweep("1")
	if got := sweep("4"); got != base {
		t.Fatal("content sweep diverged between -workers 1 and 4")
	}
	var rep struct {
		Axes []string `json:"axes"`
		Rows []struct {
			Coords []struct {
				Axis  string `json:"axis"`
				Label string `json:"label"`
			} `json:"coords"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(base), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Axes) != 2 || rep.Axes[0] != "content" || len(rep.Rows) != 4 {
		t.Fatalf("axes %v rows %d, want [content v] and 4 cells", rep.Axes, len(rep.Rows))
	}
	if rep.Rows[0].Coords[0].Label != "loot" || rep.Rows[2].Coords[0].Label != "soldier" {
		t.Errorf("content labels %q/%q, want loot/soldier",
			rep.Rows[0].Coords[0].Label, rep.Rows[2].Coords[0].Label)
	}
}

// TestRunRejectsBadInput: missing axes, malformed specs, unknown kinds
// and backends all fail with a clear error.
func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-axis", "v"},
		{"-axis", "nosuch=1,2"},
		{"-axis", "v=a,b"},
		{"-axis", "net=warp"},
		{"-axis", "v=1", "-backend", "nosuch"},
		{"-axis", "v=1", "-json", "-chart"},
		{"-axis", "content=no-such-asset"},
		{"-axis", "viewdist=2,4"},
		{"-axis", "viewdist=loot:x"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestRunLearnedAxes: the learned allocator and policy forms plus the
// dwell-parameterized markov shape flow through the axis grammar.
func TestRunLearnedAxes(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "30000", "-slots", "120", "-seed", "3",
		"-axis", "alloc=equal,bandit:4,gradient:0.3",
		"-axis", "net=markov:0.8:32",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"bandit:4", "gradient:0.3", "markov-v0.80-d32"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	out.Reset()
	err = run(context.Background(), []string{
		"-samples", "30000", "-slots", "120",
		"-axis", "policy=proposed,predictive-delayed:6",
		"-axis", "net=static",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "predictive-delayed:6") {
		t.Errorf("policy label missing:\n%s", out.String())
	}
	// Unknown learned forms are rejected with the grammar enumerated.
	err = run(context.Background(), []string{
		"-samples", "30000", "-axis", "alloc=bandit:x", "-axis", "net=static",
	}, &bytes.Buffer{})
	if err == nil {
		t.Error("bandit:x must error")
	}
	err = run(context.Background(), []string{
		"-samples", "30000", "-axis", "policy=precognitive", "-axis", "net=static",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "predictive[:H]") {
		t.Errorf("policy error %v does not enumerate the grammar", err)
	}
}
