package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunGridJSON: a 2×2 grid on the fleet backend emits a well-formed
// JSON report with one row per cell, plus a CSV table.
func TestRunGridJSON(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "sweep.csv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "30000", "-slots", "120", "-seed", "3",
		"-axis", "v=0.5,2", "-axis", "net=static,markov:0.5",
		"-backend", "fleet", "-sessions", "6",
		"-csv", csv, "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Axes    []string `json:"axes"`
		Backend string   `json:"backend"`
		Rows    []struct {
			Cell   int `json:"cell"`
			Coords []struct {
				Axis  string `json:"axis"`
				Label string `json:"label"`
			} `json:"coords"`
			Sessions int64 `json:"sessions"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Axes) != 2 || rep.Axes[0] != "v" || rep.Axes[1] != "net" {
		t.Errorf("axes = %v", rep.Axes)
	}
	if rep.Backend != "fleet" || len(rep.Rows) != 4 {
		t.Fatalf("backend %q rows %d", rep.Backend, len(rep.Rows))
	}
	for i, row := range rep.Rows {
		if row.Cell != i || len(row.Coords) != 2 || row.Sessions != 6 {
			t.Errorf("row %d = %+v", i, row)
		}
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "cell,") {
		t.Errorf("csv header = %q", strings.SplitN(string(raw), "\n", 2)[0])
	}
}

// TestRunTextTable: the default output is an aligned text table headed
// by the axis names.
func TestRunTextTable(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "30000", "-slots", "120",
		"-axis", "policy=proposed,min",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "policy") || !strings.Contains(out.String(), "verdict") {
		t.Errorf("output missing table: %q", out.String())
	}
}

// TestRunRejectsBadInput: missing axes, malformed specs, unknown kinds
// and backends all fail with a clear error.
func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-axis", "v"},
		{"-axis", "nosuch=1,2"},
		{"-axis", "v=a,b"},
		{"-axis", "net=warp"},
		{"-axis", "v=1", "-backend", "nosuch"},
		{"-axis", "v=1", "-json", "-chart"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
