// Command qarvfig regenerates every figure of the paper's evaluation into
// a results directory: CSV series, a JSON dump, and a terminal ASCII
// rendering of each figure (Fig. 1 as a table, Fig. 2(a)/(b) as charts),
// plus the ablation tables (see the benchmark harness in bench_test.go
// for the artifact index).
//
// Usage:
//
//	qarvfig [-fig 1|2a|2b|ablations|grid|offload|all] [-out results]
//	        [-samples N] [-slots T] [-seed S] [-quiet]
//
// The grid figure runs a V × network-volatility cross product through
// the declarative sweep engine (see cmd/qarvsweep for arbitrary grids).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"

	"qarv"
	"qarv/internal/experiments"
	"qarv/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first Ctrl-C cancels ctx, unregister the handler so a
	// second Ctrl-C falls back to default termination — the graceful
	// path covers the cancelable stages, the hard path everything else.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvfig:", err)
		os.Exit(1)
	}
}

type options struct {
	fig     string
	outDir  string
	samples int
	slots   int
	knee    float64
	seed    uint64
	quiet   bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("qarvfig", flag.ContinueOnError)
	var o options
	var seed int64
	fs.StringVar(&o.fig, "fig", "all", "figure to regenerate: 1, 2a, 2b, ablations, grid, offload, all")
	fs.StringVar(&o.outDir, "out", "results", "output directory for CSV/JSON")
	fs.IntVar(&o.samples, "samples", 400_000, "surface samples for the synthetic capture")
	fs.IntVar(&o.slots, "slots", 800, "simulation horizon (time steps)")
	fs.Float64Var(&o.knee, "knee", 400, "target knee slot for the Proposed scheme (V calibration)")
	fs.Int64Var(&seed, "seed", 1, "synthetic dataset seed")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress ASCII charts on stdout")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	o.seed = uint64(seed)
	return o, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	doFig1 := o.fig == "1" || o.fig == "all"
	doFig2 := o.fig == "2a" || o.fig == "2b" || o.fig == "all"
	doAbl := o.fig == "ablations" || o.fig == "all"
	doGrid := o.fig == "grid" || o.fig == "all"
	doOffload := o.fig == "offload" || o.fig == "all"
	if !doFig1 && !doFig2 && !doAbl && !doGrid && !doOffload {
		return fmt.Errorf("unknown -fig %q (want 1, 2a, 2b, ablations, grid, offload, all)", o.fig)
	}
	if doFig1 {
		if err := runFig1(ctx, o, out); err != nil {
			return fmt.Errorf("fig 1: %w", err)
		}
	}
	if doFig2 || doAbl || doGrid {
		if err := ctx.Err(); err != nil {
			return err
		}
		scn, err := qarv.NewScenario(qarv.ScenarioParams{
			Samples:  o.samples,
			Slots:    o.slots,
			KneeSlot: o.knee,
			Seed:     o.seed,
		})
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if doFig2 {
			if err := runFig2(ctx, o, scn, out); err != nil {
				return fmt.Errorf("fig 2: %w", err)
			}
		}
		if doAbl {
			if err := runAblations(ctx, o, scn, out); err != nil {
				return fmt.Errorf("ablations: %w", err)
			}
		}
		if doGrid {
			if err := runGrid(ctx, o, scn, out); err != nil {
				return fmt.Errorf("grid: %w", err)
			}
		}
	}
	if doOffload {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := runOffload(ctx, o, out); err != nil {
			return fmt.Errorf("offload: %w", err)
		}
	}
	return nil
}

// runGrid is the cross-product study the bespoke per-ablation loops
// could not express: V × network volatility, each cell a fleet, run
// through the sweep engine in one declarative call.
func runGrid(ctx context.Context, o options, scn *qarv.Scenario, out io.Writer) error {
	sw, err := qarv.NewSweep(scn,
		qarv.AxisV(0.5, 1, 2),
		qarv.AxisNetwork(qarv.NetworkStatic(), qarv.NetworkMarkov(0.3), qarv.NetworkMarkov(0.6)),
	)
	if err != nil {
		return err
	}
	sw.Backend = qarv.BackendFleet(64)
	sw.Slots = 2 * o.slots
	sw.Seed = o.seed
	rep, err := sw.Run(ctx)
	if err != nil {
		return err
	}
	tab, err := rep.Table()
	if err != nil {
		return err
	}
	if err := writeCSV(tab, filepath.Join(o.outDir, "grid.csv")); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintln(out, "\nGRID — V × network volatility (64-session fleet per cell)")
		headers, cells := rep.TextTable()
		if err := trace.RenderTextTable(out, headers, cells); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %s\n", filepath.Join(o.outDir, "grid.csv"))
	return nil
}

func runOffload(ctx context.Context, o options, out io.Writer) error {
	sess, err := qarv.NewSession(qarv.WithOffload(qarv.OffloadParams{
		Samples:  o.samples,
		Slots:    o.slots,
		KneeSlot: o.knee,
		Seed:     o.seed,
	}))
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	res := rep.Offload
	tab := trace.NewTable("Time step", len(res.BacklogBytes))
	if err := tab.Add(trace.Series{Name: "uplink backlog (bytes)", Values: res.BacklogBytes}); err != nil {
		return err
	}
	if err := tab.Add(trace.FromInts("depth", res.Depth)); err != nil {
		return err
	}
	if err := writeCSV(tab, filepath.Join(o.outDir, "offload.csv")); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintln(out, "\nEXT-OFFLOAD — octree streams over an emulated uplink")
		if err := trace.RenderTextTable(out,
			[]string{"metric", "value"},
			[][]string{
				{"uplink bandwidth (B/slot)", fmt.Sprintf("%.0f", res.Bandwidth)},
				{"bytes(5) .. bytes(10)", fmt.Sprintf("%d .. %d", res.Bytes[5], res.Bytes[10])},
				{"calibrated V", fmt.Sprintf("%.4g", res.V)},
				{"verdict", res.Verdict.String()},
				{"mean depth", fmt.Sprintf("%.2f", res.MeanDepth)},
				{"mean latency (slots)", fmt.Sprintf("%.2f", res.MeanLatency)},
				{"p95 latency (slots)", fmt.Sprintf("%.2f", res.P95Latency)},
				{"frames lost", strconv.Itoa(res.LossCount)},
			}); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %s\n", filepath.Join(o.outDir, "offload.csv"))
	return nil
}

func runFig1(ctx context.Context, o options, out io.Writer) error {
	rows, err := experiments.Fig1Context(ctx, experiments.Fig1Config{Samples: o.samples, Seed: o.seed})
	if err != nil {
		return err
	}
	if err := experiments.Fig1Invariants(rows); err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	headers := []string{"octree depth", "points", "point ratio", "geom PSNR (dB)", "Hausdorff (m)", "color PSNR (dB)"}
	cells := make([][]string, len(rows))
	depths := make([]float64, 0, len(rows))
	points := trace.Series{Name: "points"}
	psnr := trace.Series{Name: "psnr_dB"}
	for i, r := range rows {
		cells[i] = []string{
			strconv.Itoa(r.Depth),
			strconv.Itoa(r.Points),
			fmt.Sprintf("%.4f", r.PointRatio),
			fmt.Sprintf("%.2f", r.PSNR),
			fmt.Sprintf("%.5f", r.Hausdorff),
			fmt.Sprintf("%.2f", r.ColorPSNR),
		}
		depths = append(depths, float64(r.Depth))
		points.Values = append(points.Values, float64(r.Points))
		psnr.Values = append(psnr.Values, r.PSNR)
	}
	tab := trace.NewTableWithX("depth", depths)
	if err := tab.Add(points); err != nil {
		return err
	}
	if err := tab.Add(psnr); err != nil {
		return err
	}
	if err := writeCSV(tab, filepath.Join(o.outDir, "fig1.csv")); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintln(out, "\nFig. 1 — AR visualization resolution depending on Octree depth")
		if err := trace.RenderTextTable(out, headers, cells); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %s\n", filepath.Join(o.outDir, "fig1.csv"))
	return nil
}

func runFig2(ctx context.Context, o options, scn *experiments.Scenario, out io.Writer) error {
	res, err := experiments.Fig2Context(ctx, scn)
	if err != nil {
		return err
	}
	if err := res.CheckShape(); err != nil {
		return fmt.Errorf("shape check: %w", err)
	}
	backlog, err := res.BacklogTable()
	if err != nil {
		return err
	}
	control, err := res.ControlTable()
	if err != nil {
		return err
	}
	if err := writeCSV(backlog, filepath.Join(o.outDir, "fig2a.csv")); err != nil {
		return err
	}
	if err := writeCSV(control, filepath.Join(o.outDir, "fig2b.csv")); err != nil {
		return err
	}
	if !o.quiet {
		if o.fig == "2a" || o.fig == "all" {
			fmt.Fprintln(out)
			if err := backlog.RenderASCII(out, trace.ChartOptions{
				Title: "Fig. 2(a) — Queue/stability dynamics (backlog vs time)",
			}); err != nil {
				return err
			}
		}
		if o.fig == "2b" || o.fig == "all" {
			fmt.Fprintln(out)
			if err := control.RenderASCII(out, trace.ChartOptions{
				Title: "Fig. 2(b) — Control action updates (# of depth vs time)",
			}); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "\nscenario: service=%.0f pts/slot, calibrated V=%.4g, knee slot=%d\n",
			scn.ServiceRate, scn.V, res.KneeSlot())
		fmt.Fprintf(out, "verdicts: proposed=stabilized  max-depth=diverging  min-depth=converged (checked)\n")
	}
	fmt.Fprintf(out, "wrote %s and %s\n",
		filepath.Join(o.outDir, "fig2a.csv"), filepath.Join(o.outDir, "fig2b.csv"))
	return nil
}

func runAblations(ctx context.Context, o options, scn *experiments.Scenario, out io.Writer) error {
	// Each sweep checks the context between points; the boundary checks
	// here end the whole batch promptly after a cancel.
	vRows, err := experiments.VSweepContext(ctx, scn, nil, 0)
	if err != nil {
		return err
	}
	vHeaders := []string{"V", "avg utility", "avg backlog", "max backlog", "verdict", "bound gap", "bound backlog"}
	vCells := make([][]string, len(vRows))
	for i, r := range vRows {
		vCells[i] = []string{
			fmt.Sprintf("%.4g", r.V),
			fmt.Sprintf("%.4f", r.TimeAvgUtility),
			fmt.Sprintf("%.0f", r.TimeAvgBacklog),
			fmt.Sprintf("%.0f", r.MaxBacklog),
			r.Verdict,
			fmt.Sprintf("%.4g", r.BoundUtilityGap),
			fmt.Sprintf("%.4g", r.BoundBacklog),
		}
	}
	rRows, err := experiments.RateSweepContext(ctx, scn, nil, 0)
	if err != nil {
		return err
	}
	rHeaders := []string{"rate ×", "avg utility", "avg backlog", "verdict", "mean depth"}
	rCells := make([][]string, len(rRows))
	for i, r := range rRows {
		rCells[i] = []string{
			fmt.Sprintf("%.2f", r.RateFraction),
			fmt.Sprintf("%.4f", r.TimeAvgUtility),
			fmt.Sprintf("%.0f", r.TimeAvgBacklog),
			r.Verdict,
			fmt.Sprintf("%.2f", r.MeanDepth),
		}
	}
	// ABL-UTIL.
	uRows, err := experiments.UtilitySweepContext(ctx, scn, 0)
	if err != nil {
		return err
	}
	uHeaders := []string{"utility model", "avg backlog", "verdict", "mean depth", "knee slot"}
	uCells := make([][]string, len(uRows))
	for i, r := range uRows {
		uCells[i] = []string{
			r.Model,
			fmt.Sprintf("%.0f", r.TimeAvgBacklog),
			r.Verdict,
			fmt.Sprintf("%.2f", r.MeanDepth),
			strconv.Itoa(r.KneeSlot),
		}
	}
	// ABL-MD.
	mRows, err := experiments.MultiDeviceContext(ctx, scn, 4, 0)
	if err != nil {
		return err
	}
	mHeaders := []string{"device", "avg utility", "avg backlog", "verdict"}
	mCells := make([][]string, len(mRows))
	for i, r := range mRows {
		mCells[i] = []string{
			strconv.Itoa(r.Device),
			fmt.Sprintf("%.4f", r.TimeAvgUtility),
			fmt.Sprintf("%.0f", r.TimeAvgBacklog),
			r.Verdict,
		}
	}
	// ABL-BASE.
	bRows, err := experiments.BaselinesContext(ctx, scn, 0, o.seed)
	if err != nil {
		return err
	}
	bHeaders := []string{"policy", "avg utility", "avg backlog", "max backlog", "verdict"}
	bCells := make([][]string, len(bRows))
	for i, r := range bRows {
		bCells[i] = []string{
			r.Policy,
			fmt.Sprintf("%.4f", r.TimeAvgUtility),
			fmt.Sprintf("%.0f", r.TimeAvgBacklog),
			fmt.Sprintf("%.0f", r.MaxBacklog),
			r.Verdict,
		}
	}

	f, err := os.Create(filepath.Join(o.outDir, "ablations.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	writeBoth := func(title string, headers []string, cells [][]string) error {
		for _, w := range []io.Writer{f, out} {
			if w == out && o.quiet {
				continue
			}
			if _, err := fmt.Fprintf(w, "\n%s\n", title); err != nil {
				return err
			}
			if err := trace.RenderTextTable(w, headers, cells); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeBoth("ABL-V — V tradeoff (O(1/V) utility gap vs O(V) backlog)", vHeaders, vCells); err != nil {
		return err
	}
	if err := writeBoth("ABL-RATE — service-rate robustness", rHeaders, rCells); err != nil {
		return err
	}
	if err := writeBoth("ABL-UTIL — utility-model sensitivity", uHeaders, uCells); err != nil {
		return err
	}
	if err := writeBoth("ABL-MD — distributed multi-device (shared service)", mHeaders, mCells); err != nil {
		return err
	}
	if err := writeBoth("ABL-BASE — extended baseline comparison", bHeaders, bCells); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", filepath.Join(o.outDir, "ablations.txt"))
	return nil
}

func writeCSV(t *trace.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
