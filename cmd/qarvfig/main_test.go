package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1WritesCSVAndTable(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-fig", "1", "-samples", "30000", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "depth,points,psnr_dB") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if !strings.Contains(out.String(), "octree depth") {
		t.Error("missing text table on stdout")
	}
}

func TestRunFig2WritesBothCSVs(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-fig", "2a", "-samples", "30000", "-slots", "400",
		"-knee", "150", "-out", dir, "-quiet"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2a.csv", "fig2b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		head := strings.SplitN(string(data), "\n", 2)[0]
		if !strings.Contains(head, "Proposed") || !strings.Contains(head, "only max-Depth") {
			t.Errorf("%s header = %q", name, head)
		}
		if rows := strings.Count(string(data), "\n"); rows != 401 {
			t.Errorf("%s rows = %d, want 401 (header + 400 slots)", name, rows)
		}
	}
	// Quiet mode suppresses the chart.
	if strings.Contains(out.String(), "Fig. 2(a)") {
		t.Error("quiet mode printed the chart")
	}
}

func TestRunChartsOnStdout(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-fig", "2b", "-samples", "30000", "-slots", "400",
		"-knee", "150", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Control action updates") {
		t.Error("missing 2b chart title")
	}
	if !strings.Contains(out.String(), "[*] Proposed") {
		t.Error("missing legend")
	}
}

func TestRunOffloadFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-fig", "offload", "-samples", "30000", "-slots", "400",
		"-knee", "150", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "offload.csv")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EXT-OFFLOAD") ||
		!strings.Contains(out.String(), "uplink bandwidth") {
		t.Error("offload summary missing")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "7"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nonsense"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRunGridFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-fig", "grid", "-samples", "30000", "-slots", "120",
		"-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "grid.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// 3 V factors × 3 network shapes = 9 cells plus the header.
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 10 {
		t.Fatalf("grid.csv lines = %d", len(lines))
	}
	if !strings.Contains(out.String(), "GRID — V × network volatility") {
		t.Errorf("missing grid table on stdout: %q", out.String())
	}
}
