package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qarv/internal/ply"
)

func TestGenerateFramesAllFormats(t *testing.T) {
	for _, format := range []string{"ascii", "binary_le", "binary_be"} {
		dir := t.TempDir()
		var out bytes.Buffer
		err := run([]string{
			"-character", "soldier", "-frames", "2", "-samples", "8000",
			"-depth", "8", "-format", format, "-out", dir, "-seed", "3",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		for i := 0; i < 2; i++ {
			path := filepath.Join(dir, "soldier_vox8_000"+string(rune('0'+i))+".ply")
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("%s: %v", format, err)
			}
			cloud, err := ply.ReadCloud(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s frame %d: %v", format, i, err)
			}
			if cloud.Len() < 1000 || !cloud.HasColors() {
				t.Errorf("%s frame %d: %d points", format, i, cloud.Len())
			}
		}
		if !strings.Contains(out.String(), "wrote") {
			t.Error("no progress output")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-format", "exr"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format must error")
	}
	if err := run([]string{"-character", "gopher"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown character must error")
	}
	if err := run([]string{"-wat"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag must error")
	}
}
