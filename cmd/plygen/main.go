// Command plygen generates synthetic 8i-style voxelized full-body PLY
// frames — the repository's stand-in for the 8i dataset (see
// internal/synthetic). Frames follow a walking loop like the real
// captures' motion sequences.
//
// Usage:
//
//	plygen [-character longdress] [-frames 1] [-samples 400000]
//	       [-depth 10] [-format binary_le|binary_be|ascii] [-out dir]
//	       [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"qarv/internal/ply"
	"qarv/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "plygen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("plygen", flag.ContinueOnError)
	character := fs.String("character", "longdress", "preset: longdress, loot, redandblack, soldier")
	frames := fs.Int("frames", 1, "number of animation frames")
	samples := fs.Int("samples", 400_000, "surface samples before voxelization")
	depth := fs.Int("depth", 10, "capture voxelization depth (10 = 1024^3)")
	format := fs.String("format", "binary_le", "PLY encoding: ascii, binary_le, binary_be")
	outDir := fs.String("out", "data", "output directory")
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var plyFormat ply.Format
	switch *format {
	case "ascii":
		plyFormat = ply.ASCII
	case "binary_le":
		plyFormat = ply.BinaryLittleEndian
	case "binary_be":
		plyFormat = ply.BinaryBigEndian
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	ch, err := synthetic.ByName(*character)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	seq, err := synthetic.NewSequence(synthetic.Config{
		Character:     ch,
		SamplesTarget: *samples,
		CaptureDepth:  *depth,
		Seed:          uint64(*seed),
	}, *frames)
	if err != nil {
		return err
	}
	for i := 0; i < *frames; i++ {
		cloud, err := seq.Frame(i)
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		name := fmt.Sprintf("%s_vox%d_%04d.ply", *character, *depth, i)
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		comment := fmt.Sprintf("synthetic 8i-style capture: %s frame %d depth %d", *character, i, *depth)
		if err := ply.WriteCloud(f, cloud, plyFormat, comment); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d voxels)\n", path, cloud.Len())
	}
	return nil
}
