package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"nondeterminism:", "ctxloop:", "reseedclone:", "errstyle:", "doccheck:"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestDoccheckLegacyCLI pins the retired cmd/doccheck's CLI contract on
// qarvcheck -doccheck: same usage error, same per-directory report
// lines, same ok lines and -q suppression, same exit codes.
func TestDoccheckLegacyCLI(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "doccheck", "src", "qarv", "internal", "render")
	clean := filepath.Join("..", "..", "internal", "lint", "testdata", "reseedclone", "src", "qarv", "internal", "geom")

	var out, errb bytes.Buffer
	if code := run([]string{"-doccheck"}, &out, &errb); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage: doccheck [-q] DIR [DIR...]") {
		t.Errorf("usage line diverged: %q", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-doccheck", fixture}, &out, &errb); code != 1 {
		t.Errorf("fixture: exit = %d, want 1", code)
	}
	wantLines := []string{
		"render.go:9: exported type Undocumented is missing a doc comment",
		"render.go:17: exported var V is missing a doc comment",
		"render.go:22: exported function UndocumentedFunc is missing a doc comment",
		"render.go:32: exported method N is missing a doc comment",
		"render.go:38: exported var Y is missing a doc comment",
	}
	for _, line := range wantLines {
		if !strings.Contains(out.String(), line) {
			t.Errorf("stdout missing %q:\n%s", line, out.String())
		}
	}
	if got := errb.String(); got != "doccheck: 5 exported identifier(s) missing doc comments\n" {
		t.Errorf("summary diverged: %q", got)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-doccheck", clean}, &out, &errb); code != 0 {
		t.Errorf("clean dir: exit = %d, stderr: %s", code, errb.String())
	}
	if got := out.String(); got != "doccheck: "+clean+": ok\n" {
		t.Errorf("ok line diverged: %q", got)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-doccheck", "-q", clean}, &out, &errb); code != 0 || out.Len() != 0 {
		t.Errorf("-q clean dir: exit = %d, stdout = %q", code, out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-doccheck", filepath.Join(fixture, "no-such-dir")}, &out, &errb); code != 2 {
		t.Errorf("bad dir: exit = %d, want 2", code)
	}
}

// TestSuiteOnRepository runs the full multichecker over the module the
// test binary lives in — the same invocation `make check` and CI use —
// and requires it to be clean.
func TestSuiteOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check in -short mode")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("qarvcheck ./... exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "qarvcheck: ok") {
		t.Errorf("missing ok line: %q", out.String())
	}
}

// TestSuiteSubtreePattern checks ./dir/... pattern resolution against a
// single known-clean subtree.
func TestSuiteSubtreePattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-q", filepath.Join("..", "..", "internal", "alloc")}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-q clean run printed: %q", out.String())
	}
}
