// Command qarvcheck is the repository's static-analysis multichecker:
// it loads and type-checks the module with nothing outside the
// standard library and runs the internal/lint analyzer suite — the
// mechanical form of the determinism, cancellation, isolation, error,
// and godoc contracts that the bench/sweep methodology rests on.
//
// Usage:
//
//	qarvcheck [-q] [./... | ./dir ...]   run every analyzer (default ./...)
//	qarvcheck -list                      print the analyzers and contracts
//	qarvcheck -doccheck [-q] DIR...      legacy doccheck-compatible mode
//
// Findings print as file:line:col: message (analyzer); exit status 1
// when anything is found, 2 on usage or load errors. A finding is
// suppressed by the directive `//qarv:allow <analyzer> <reason>` on
// the offending line or the line above — the reason is mandatory and
// the analyzer name must be real, or the directive is itself a
// finding.
//
// The -doccheck mode replaces the retired cmd/doccheck byte-for-byte:
// same arguments, same per-directory report lines, same ok lines,
// same exit codes — so `doccheck [-q] DIR...` scripts migrate by
// s/doccheck/qarvcheck -doccheck/.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qarv/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, dispatches the mode,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qarvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doccheck := fs.Bool("doccheck", false, "legacy mode: run only the godoc pass, byte-compatible with the old cmd/doccheck")
	list := fs.Bool("list", false, "print the analyzers and the contracts they enforce")
	quiet := fs.Bool("q", false, "suppress ok lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *list:
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	case *doccheck:
		return runDoccheck(fs.Args(), *quiet, stdout, stderr)
	default:
		return runSuite(fs.Args(), *quiet, stdout, stderr)
	}
}

// runDoccheck reproduces the retired cmd/doccheck CLI exactly.
func runDoccheck(dirs []string, quiet bool, stdout, stderr io.Writer) int {
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "usage: doccheck [-q] DIR [DIR...]")
		return 2
	}
	missing := 0
	for _, dir := range dirs {
		n, err := lint.DoccheckDir(stdout, dir)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %s: %v\n", dir, err)
			return 2
		}
		if n == 0 && !quiet {
			fmt.Fprintf(stdout, "doccheck: %s: ok\n", dir)
		}
		missing += n
	}
	if missing > 0 {
		fmt.Fprintf(stderr, "doccheck: %d exported identifier(s) missing doc comments\n", missing)
		return 1
	}
	return 0
}

// runSuite loads the requested packages and runs the full analyzer
// suite over them.
func runSuite(patterns []string, quiet bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "qarvcheck: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "qarvcheck: %v\n", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "qarvcheck: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "qarvcheck: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "qarvcheck: %d finding(s)\n", len(diags))
		return 1
	}
	if !quiet {
		fmt.Fprintf(stdout, "qarvcheck: ok (%d packages, %d analyzers)\n", len(pkgs), len(lint.Analyzers()))
	}
	return 0
}

// loadPatterns resolves `./...`, `./dir/...`, and plain directory
// arguments (relative to the working directory) into loaded packages.
func loadPatterns(loader *lint.Loader, root string, patterns []string) ([]*lint.Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	add := func(p *lint.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
			continue
		}
		dir := strings.TrimSuffix(pat, "/...")
		recursive := dir != pat
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(absRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("qarvcheck: %s is outside module %s", pat, root)
		}
		if recursive {
			sub, err := loadSubtree(loader, root, rel)
			if err != nil {
				return nil, err
			}
			for _, p := range sub {
				add(p)
			}
			continue
		}
		path := loader.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		p, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		add(p)
	}
	return pkgs, nil
}

// loadSubtree loads every package under the module-relative directory
// rel.
func loadSubtree(loader *lint.Loader, root, rel string) ([]*lint.Package, error) {
	all, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	prefix := loader.ModulePath
	if rel != "." {
		prefix += "/" + filepath.ToSlash(rel)
	}
	var pkgs []*lint.Package
	for _, p := range all {
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			// Prefer a path relative to the working directory so
			// findings print repo-relative, clickable positions.
			if rel, err := filepath.Rel(abs, d); err == nil && !strings.HasPrefix(rel, "..") {
				return rel, nil
			}
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
