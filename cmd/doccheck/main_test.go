package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkSource(t *testing.T, src string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files are excluded from the check.
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"),
		[]byte("package x\n\nfunc TestUndocumented() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := checkDir(&out, dir)
	if err != nil {
		t.Fatal(err)
	}
	return n, out.String()
}

func TestCheckDirFlagsMissingDocs(t *testing.T) {
	n, out := checkSource(t, `package x

func Exported() {}

type T struct{}

func (T) Method() {}

const C = 1

var V = 2
`)
	if n != 5 {
		t.Fatalf("missing = %d, want 5:\n%s", n, out)
	}
	for _, want := range []string{"function Exported", "type T", "method Method", "const C", "var V"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestCheckDirAcceptsDocumentedAndUnexported(t *testing.T) {
	n, out := checkSource(t, `package x

// Exported is documented.
func Exported() {}

// T is documented.
type T struct{}

// Method is documented.
func (T) Method() {}

type hidden struct{}

func (hidden) Method() {} // methods on unexported types are fine

func internal() {}

// Group doc covers the block.
const (
	A = 1
	B = 2
)

var v = 3 // unexported

// C is documented inline at the spec.
var C = 4
`)
	if n != 0 {
		t.Fatalf("false positives:\n%s", out)
	}
}
