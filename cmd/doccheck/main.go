// Command doccheck is the repository's godoc linter: it fails when an
// exported identifier in the given package directories lacks a doc
// comment — a `go vet`-style stand-in for revive's `exported` rule that
// needs nothing outside the standard library, so CI can enforce the
// documentation contract without external tooling.
//
// Usage:
//
//	doccheck [-q] DIR [DIR...]
//
// For every directory, doccheck parses the non-test Go files and
// reports each exported top-level declaration without a doc comment:
// functions, methods on exported types, type specs, and const/var
// specs. A doc comment on a grouped declaration block (`// Trajectory
// verdicts.` above a const block) documents every spec in the block, as
// godoc renders it. Exit status 1 when anything is missing.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-directory ok lines")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-q] DIR [DIR...]")
		os.Exit(2)
	}
	missing := 0
	for _, dir := range flag.Args() {
		n, err := checkDir(os.Stdout, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if n == 0 && !*quiet {
			fmt.Printf("doccheck: %s: ok\n", dir)
		}
		missing += n
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", missing)
		os.Exit(1)
	}
}

// checkDir parses one package directory and prints a line per exported
// identifier lacking documentation, returning the count.
func checkDir(out io.Writer, dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	missing := 0
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(out, "%s:%d: exported %s %s is missing a doc comment\n", p.Filename, p.Line, what, name)
		missing++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						// A block-level comment documents every spec in
						// the group, as godoc renders it.
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), declWhat(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package's godoc
// surface). Plain functions pass trivially.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// declWhat labels a value declaration for the report line.
func declWhat(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
