package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

func parse(t *testing.T, args ...string) *Sinks {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Flags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	s.Resolve()
	return s
}

func TestZeroValueCollectsNothing(t *testing.T) {
	s := parse(t)
	if s.Registry != nil || s.Recorder != nil {
		t.Fatal("sinks materialized without flags")
	}
	var out bytes.Buffer
	if err := s.Export(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("export wrote %q with no sinks", out.String())
	}
}

func TestStdoutExport(t *testing.T) {
	s := parse(t, "-metrics", "-", "-trace", "-")
	if s.Registry == nil || s.Recorder == nil {
		t.Fatal("flags did not materialize sinks")
	}
	s.Registry.Counter("demo_total").Add(3)
	s.Recorder.Event(1, "demo", "tick", -1, 1)
	var out bytes.Buffer
	if err := s.Export(&out); err != nil {
		t.Fatal(err)
	}
	// Both documents land on out: a snapshot object then a trace_event
	// object. Decode them in sequence to prove each parses.
	dec := json.NewDecoder(&out)
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("metrics document does not parse: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("snapshot content wrong: %+v", snap)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := dec.Decode(&trace); err != nil {
		t.Fatalf("trace document does not parse: %v", err)
	}
	if len(trace.TraceEvents) != 1 {
		t.Fatalf("trace events: %d, want 1", len(trace.TraceEvents))
	}
}

func TestFileExportAndErrors(t *testing.T) {
	dir := t.TempDir()
	s := parse(t, "-metrics", dir+"/m.json", "-trace", dir+"/t.json")
	s.Registry.Gauge("demo_depth").Record(4)
	var out bytes.Buffer
	if err := s.Export(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("file export leaked onto the report stream")
	}

	bad := parse(t, "-metrics", dir+"/no/such/dir/m.json")
	if err := bad.Export(&out); err == nil || !strings.Contains(err.Error(), "write metrics") {
		t.Fatalf("unwritable path accepted: %v", err)
	}
}
