// Package telemetry is the shared CLI glue for the observability
// layer: it turns -metrics/-trace flag values into a metrics registry
// and flight recorder, and exports both after the run. Telemetry output
// always goes to its own files (or stdout via "-"), never into the
// report stream, so report bytes are identical with telemetry on or
// off.
package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qarv"
)

// Sinks holds a command's telemetry destinations. The zero value (no
// flags set) collects and writes nothing.
type Sinks struct {
	metricsPath string
	tracePath   string

	// Registry is non-nil when -metrics was given; pass it to the
	// engine being run (Spec.Metrics, Sweep.Metrics, WithTelemetry).
	Registry *qarv.MetricsRegistry
	// Recorder is non-nil when -trace was given.
	Recorder *qarv.FlightRecorder
}

// Flags registers -metrics and -trace on fs and returns the sinks,
// resolved by Resolve after fs.Parse.
func Flags(fs *flag.FlagSet) *Sinks {
	s := &Sinks{}
	fs.StringVar(&s.metricsPath, "metrics", "", "write the run's metric snapshot as JSON to FILE (\"-\" = stdout)")
	fs.StringVar(&s.tracePath, "trace", "", "write the run's flight-recorder trace as a Chrome trace_event FILE (\"-\" = stdout)")
	return s
}

// Resolve materializes the sinks the parsed flags asked for. Call it
// after fs.Parse and before the run.
func (s *Sinks) Resolve() {
	if s.metricsPath != "" {
		s.Registry = qarv.NewMetricsRegistry()
	}
	if s.tracePath != "" {
		s.Recorder = qarv.NewFlightRecorder(0)
	}
}

// Export writes the collected telemetry: the registry snapshot as
// indented JSON to the -metrics path and the recorder as a Chrome
// trace_event file to the -trace path. A path of "-" writes to out.
func (s *Sinks) Export(out io.Writer) error {
	if s.Registry != nil {
		err := writeTo(out, s.metricsPath, s.Registry.Snapshot().EncodeJSON)
		if err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if s.Recorder != nil {
		if err := writeTo(out, s.tracePath, s.Recorder.WriteTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeTo streams write into path, or into out when path is "-".
func writeTo(out io.Writer, path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
