// Package names maps the CLI-facing allocator and policy grammars
// shared by qarvsim, qarvfleet, and qarvsweep onto the qarv facade, so
// the three commands parse one grammar, print one enumeration in flag
// help, and fail with errors that list every valid name.
package names

import (
	"fmt"
	"strconv"
	"strings"

	"qarv"
)

// allocSeedSalt decorrelates a learning allocator's arm draws from the
// run's other seeded streams.
const allocSeedSalt = 0x616c6c6f63 // "alloc"

// Allocator resolves a CLI allocator name — static builtins or
// parameterized learners — and seeds any learning allocator from the
// run seed, so repeated runs replay the same learned trajectory.
func Allocator(name string, seed uint64) (qarv.Allocator, error) {
	a, err := qarv.AllocatorByName(name)
	if err != nil {
		return nil, err
	}
	if r, ok := a.(interface{ Reseed(*qarv.RNG) }); ok {
		r.Reseed(qarv.NewRNG(seed ^ allocSeedSalt))
	}
	return a, nil
}

// AllocatorUsage enumerates every allocator name for flag help.
func AllocatorUsage() string { return strings.Join(qarv.AllocatorNames(), ", ") }

// PolicyUsage enumerates every policy name Policy accepts for flag
// help: the sweep grammar plus qarvsim's fixed-depth form.
func PolicyUsage() string {
	return strings.Join(qarv.SweepPolicyNames(), ", ") + ", fixed:N"
}

// Spec resolves a sweep policy token; errors enumerate the grammar.
func Spec(name string) (qarv.PolicySpec, error) { return qarv.SweepPolicyByName(name) }

// Policy builds a runnable policy over a calibrated scenario: the Spec
// grammar plus "fixed:N", with vOverride (when positive) replacing the
// calibrated V of the proposed controller. Stochastic policies draw
// from a stream derived from seed.
func Policy(scn *qarv.Scenario, name string, vOverride float64, seed uint64) (qarv.Policy, error) {
	switch {
	case name == "proposed" && vOverride > 0:
		return scn.ControllerWithV(vOverride)
	case strings.HasPrefix(name, "fixed:"):
		d, err := strconv.Atoi(strings.TrimPrefix(name, "fixed:"))
		if err != nil {
			return nil, fmt.Errorf("bad fixed depth %q: %w", name, err)
		}
		return &qarv.FixedDepth{Depth: d}, nil
	}
	spec, err := qarv.SweepPolicyByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w (or fixed:N)", err)
	}
	return spec.New(scn, qarv.NewRNG(seed))
}

// List splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func List(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
