// Command qarvfleet runs the sharded fleet-simulation engine: N
// independent device sessions (10k–1M) drawn from a weighted profile
// mix, with optional churn, summarized through streaming quantile
// sketches — memory stays O(shards) however long the horizon.
//
// Usage:
//
//	qarvfleet [-n N] [-shards S] [-slots T] [-churn C] [-seed SEED]
//	          [-mix name:weight,name:weight,...] [-acc A]
//	          [-net class:weight,class:weight,...]
//	          [-content asset:weight,asset:weight,...]
//	          [-samples N] [-service-frac F] [-json]
//	          [-metrics FILE] [-trace FILE]
//
// Profile names available in -mix (all built over one calibrated
// scenario):
//
//	proposed        drift-plus-penalty controller at the calibrated V
//	lowv / highv    proposed at 0.1× / 10× the calibrated V
//	max / min       the paper's only max-Depth / only min-Depth controls
//	threshold       two-watermark hysteresis around the switch backlog
//	random          uniform-random depth (seeded per session)
//	poisson         proposed + Poisson(1) arrivals (seeded per session)
//	bursty          proposed + on-off burst arrivals (2 frames / 2 slots)
//	noisy           proposed + ±10% Gaussian service jitter per session
//	offload         proposed in the bytes domain: stream-size costs
//	                against an uplink-bandwidth service rate
//	oracle          best fixed depth for the calibrated service rate
//	delayed         proposed observing the backlog a control-loop delay
//	                stale (the display-update lag regime)
//	predictive      proposed with the learning layer's backlog
//	                extrapolation one delay ahead
//	predictive-delayed  both: prediction across the same delayed loop
//
// The default mix models a mostly-well-provisioned deployment:
// proposed:0.7,noisy:0.15,bursty:0.15.
//
// -net crosses the policy mix with a weighted network-class mix: every
// (profile, class) pair becomes a fleet device class whose service is
// modulated by the network (weights multiply). Classes:
//
//	static          the profile's own service, unchanged (the default)
//	markov          Gilbert–Elliott good/bad fading: ×1 in the good
//	                state, ×0.3 in the bad (mean dwells 20 / 4 slots),
//	                seeded per session
//	trace           a built-in diurnal-style piecewise factor pattern;
//	                trace:FILE replays a CSV/JSON trace normalized to
//	                its peak, so measured bytes/slot captures and
//	                hand-written factor patterns (peak 1) both scale
//	                the profile's service sensibly
//	handoff         mobility: mean 250-slot cell dwells, 4-slot outages,
//	                new-cell capacity scale drawn from [0.7, 1.2]
//
// Example: -net static:0.5,markov:0.3,handoff:0.2 runs every policy
// class under all three network regimes at once — the mixed
// static/Markov/trace/handoff fleets the dynamic-network subsystem
// exists for.
//
// -content replaces -mix with measured content classes: each asset
// (synthetic name or .ply file) runs through the content pipeline once
// and its sessions drive the proposed controller over the asset's
// measured stream-byte and PSNR ladders, service calibrated in the
// bytes domain. -net still crosses network classes over content
// classes. Example: -content loot:0.6,soldier:0.4.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"qarv"
	"qarv/cmd/internal/names"
	"qarv/cmd/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvfleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvfleet", flag.ContinueOnError)
	n := fs.Int("n", 10_000, "concurrent device sessions (seats)")
	shards := fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	slots := fs.Int("slots", 1000, "horizon per seat (slots)")
	churn := fs.Float64("churn", 0, "per-slot departure hazard in [0,1); departures backfill")
	seed := fs.Uint64("seed", 1, "fleet seed (deterministic report for a given spec+seed)")
	mix := fs.String("mix", "proposed:0.7,noisy:0.15,bursty:0.15", "weighted profile mix: name:weight,...")
	netMix := fs.String("net", "static", "weighted network-class mix crossed with -mix: static, markov, trace[:FILE], handoff (class:weight,...)")
	acc := fs.Float64("acc", 0.01, "quantile-sketch relative accuracy")
	samples := fs.Int("samples", 60_000, "synthetic capture surface samples (scenario calibration)")
	serviceFrac := fs.Float64("service-frac", 0.6, "service rate position in (a(d_max-1), a(d_max))")
	jsonOut := fs.Bool("json", false, "emit the full FleetReport as JSON")
	contentMix := fs.String("content", "", "weighted content classes asset[:weight],... — each class's sessions run over that asset's measured byte/PSNR ladders (replaces -mix)")
	sinks := telemetry.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sinks.Resolve()
	mixSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "mix" {
			mixSet = true
		}
	})
	if *contentMix != "" && mixSet {
		return fmt.Errorf("-content and -mix are mutually exclusive: content classes replace the policy mix")
	}

	var profiles []qarv.Profile
	if *contentMix != "" {
		var err error
		profiles, err = parseContentMix(*contentMix, *samples, *serviceFrac, *seed)
		if err != nil {
			return err
		}
	} else {
		scn, err := qarv.NewScenario(qarv.ScenarioParams{
			Samples:         *samples,
			ServiceFraction: *serviceFrac,
			Seed:            *seed,
		})
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		profiles, err = parseMix(scn, *mix)
		if err != nil {
			return err
		}
	}
	// Calibration isn't cancelable; honor a Ctrl-C that arrived during it.
	if err := ctx.Err(); err != nil {
		return err
	}
	classes, err := parseNetMix(*netMix)
	if err != nil {
		return err
	}
	profiles = crossNetwork(profiles, classes)
	fl, err := qarv.NewFleet(qarv.FleetSpec{
		Sessions: *n,
		Slots:    *slots,
		Shards:   *shards,
		Churn:    *churn,
		Seed:     *seed,
		Accuracy: *acc,
		Profiles: profiles,
		Metrics:  sinks.Registry,
		Recorder: sinks.Recorder,
	})
	if err != nil {
		return err
	}
	rep, err := fl.Run(ctx)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(out, rep)
	}
	return sinks.Export(out)
}

// parseContentMix builds content-backed device classes from
// "asset[:weight],asset[:weight],...": each asset (synthetic name or
// .ply file) is measured once through the content pipeline and becomes
// a fleet class running the proposed controller over that asset's
// measured stream-byte and PSNR ladders, service calibrated in the
// bytes domain. Weights split the fleet across assets.
func parseContentMix(mix string, samples int, serviceFrac float64, seed uint64) ([]qarv.Profile, error) {
	var out []qarv.Profile
	for _, entry := range strings.Split(mix, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		asset, weightStr, found := strings.Cut(entry, ":")
		weight := 1.0
		if found {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("content entry %q: bad weight: %w", entry, err)
			}
			weight = w
		}
		prof, err := qarv.LoadContent(qarv.ContentConfig{
			Asset:   strings.TrimSpace(asset),
			Samples: samples,
			Seed:    seed,
		})
		if err != nil {
			return nil, fmt.Errorf("content entry %q: %w", entry, err)
		}
		scn, err := qarv.NewContentScenario(qarv.ScenarioParams{ServiceFraction: serviceFrac}, prof)
		if err != nil {
			return nil, fmt.Errorf("content entry %q: %w", entry, err)
		}
		out = append(out, scn.FleetProfile(prof.Name(), weight, 1))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -content %q", mix)
	}
	return out, nil
}

// parseMix builds the profile list from "name:weight,name:weight,...".
func parseMix(scn *qarv.Scenario, mix string) ([]qarv.Profile, error) {
	var out []qarv.Profile
	for _, entry := range strings.Split(mix, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, weightStr, found := strings.Cut(entry, ":")
		weight := 1.0
		if found {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("mix entry %q: bad weight: %w", entry, err)
			}
			weight = w
		}
		p, err := buildProfile(scn, strings.TrimSpace(name), weight)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -mix %q", mix)
	}
	return out, nil
}

// buildProfile maps a mix name to a device class over the calibrated
// scenario. Every class starts from the scenario-derived proposed
// profile and swaps the dimension it varies (policy, V, arrivals,
// service, or the cost domain).
func buildProfile(scn *qarv.Scenario, name string, weight float64) (qarv.Profile, error) {
	depths := scn.Params.Depths
	p := scn.FleetProfile(name, weight, 1)
	switch name {
	case "proposed":
	case "lowv":
		p = scn.FleetProfile(name, weight, 0.1)
	case "highv":
		p = scn.FleetProfile(name, weight, 10)
	case "max":
		p.NewPolicy = func(*qarv.RNG) (qarv.Policy, error) { return qarv.NewMaxDepthPolicy(depths) }
	case "min":
		p.NewPolicy = func(*qarv.RNG) (qarv.Policy, error) { return qarv.NewMinDepthPolicy(depths) }
	case "threshold":
		ctrl, err := scn.Controller()
		if err != nil {
			return p, err
		}
		high := ctrl.SwitchBacklog()
		p.NewPolicy = func(*qarv.RNG) (qarv.Policy, error) {
			return qarv.NewThresholdPolicy(depths, 0.5*high, high)
		}
	case "random":
		p.NewPolicy = func(rng *qarv.RNG) (qarv.Policy, error) {
			return qarv.NewRandomPolicy(depths, rng.Uint64())
		}
	case "poisson":
		p.NewArrivals = func(rng *qarv.RNG) qarv.ArrivalProcess {
			return &qarv.PoissonArrivals{Mean: 1, RNG: rng}
		}
	case "bursty":
		p.NewArrivals = func(*qarv.RNG) qarv.ArrivalProcess {
			return &qarv.OnOffArrivals{OnSlots: 2, OffSlots: 2, PerSlotOn: 2}
		}
	case "noisy":
		rate := scn.ServiceRate
		p.NewService = func(rng *qarv.RNG) qarv.ServiceProcess {
			return &qarv.NoisyService{Mean: rate, Std: 0.1 * rate, RNG: rng}
		}
	case "offload":
		return offloadProfile(scn, name, weight)
	default:
		// Anything else resolves through the shared CLI policy grammar
		// (cmd/internal/names): oracle, predictive, delayed,
		// predictive-delayed, … — a fleet of the proposed controller
		// wrapped by the learning layer. Parameterized forms are bare
		// here (defaults apply): the ":" separates the mix weight.
		spec, err := names.Spec(name)
		if err != nil {
			return p, fmt.Errorf("unknown profile %q (see qarvfleet -h for the list): %w", name, err)
		}
		p.NewPolicy = func(rng *qarv.RNG) (qarv.Policy, error) {
			return spec.New(scn, rng)
		}
	}
	return p, nil
}

// offloadProfile moves the controller into the bytes domain: per-frame
// cost is the octree stream size bytes(d) and the service rate is an
// uplink bandwidth placed the same fraction into (bytes(d_max−1),
// bytes(d_max)) that the scenario's compute rate sits in its cost range
// — the fleet-scale stand-in for the edge-offload scenario.
func offloadProfile(scn *qarv.Scenario, name string, weight float64) (qarv.Profile, error) {
	depths := scn.Params.Depths
	// Approximate bytes(d) from the occupancy profile: one occupancy
	// byte per 8 nodes per level plus 3 color bytes per point at the
	// cut, matching the serializer's asymptotics without re-encoding.
	bytesProfile := make([]int, len(scn.Profile))
	cum := 0
	for d, points := range scn.Profile {
		cum += (points + 7) / 8
		bytesProfile[d] = cum + 3*points
	}
	cost, err := qarv.NewPointCostModel(bytesProfile, 1, 0, 0)
	if err != nil {
		return qarv.Profile{}, fmt.Errorf("offload cost model: %w", err)
	}
	util, err := qarv.NewLogPointUtility(scn.Profile)
	if err != nil {
		return qarv.Profile{}, fmt.Errorf("offload utility model: %w", err)
	}
	dMax, second := depths[0], depths[0]
	for _, d := range depths {
		if d > dMax {
			second, dMax = dMax, d
		} else if d > second {
			second = d
		}
	}
	frac := scn.Params.ServiceFraction
	bandwidth := cost.FrameCost(second) + frac*(cost.FrameCost(dMax)-cost.FrameCost(second))
	v, err := qarv.CalibrateV(scn.Params.KneeSlot, bandwidth, qarv.ControllerConfig{
		Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		return qarv.Profile{}, fmt.Errorf("offload V: %w", err)
	}
	return qarv.Profile{
		Name:   name,
		Weight: weight,
		NewPolicy: func(*qarv.RNG) (qarv.Policy, error) {
			return qarv.NewController(qarv.ControllerConfig{
				V: v, Depths: depths, Utility: util, Cost: cost,
			})
		},
		Cost:    cost,
		Utility: util,
		NewService: func(*qarv.RNG) qarv.ServiceProcess {
			return &qarv.ConstantService{Rate: bandwidth}
		},
	}, nil
}

// netClass is one entry of the -net mix: a named network regime that
// modulates a profile's service process.
type netClass struct {
	name   string
	weight float64
	// wrap modulates a profile's service by the class's capacity-factor
	// process; nil leaves the service untouched (static).
	wrap func(rng *qarv.RNG, inner qarv.ServiceProcess) qarv.ServiceProcess
}

// parseNetMix builds the network-class list from
// "class:weight,class:weight,...". Classes: static, markov,
// trace[:FILE], handoff. Trace files hold slot,factor pairs (CSV or
// JSON); factors scale each profile's own service. Parsing is
// positional: "class", "class:weight", "trace:FILE",
// "trace:FILE:weight" — for the ambiguous "trace:X" form a numeric X
// is a weight (name trace files with an extension).
func parseNetMix(mix string) ([]netClass, error) {
	var out []netClass
	for _, entry := range strings.Split(mix, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		name := parts[0]
		weight := 1.0
		file := ""
		switch {
		case len(parts) == 1:
		case len(parts) == 2:
			if w, err := strconv.ParseFloat(parts[1], 64); err == nil {
				weight = w
			} else if name == "trace" {
				file = parts[1]
			} else {
				return nil, fmt.Errorf("net entry %q: bad weight %q", entry, parts[1])
			}
		case len(parts) == 3 && name == "trace":
			file = parts[1]
			w, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("net entry %q: bad weight %q", entry, parts[2])
			}
			weight = w
		default:
			return nil, fmt.Errorf("net entry %q: want class[:weight] or trace:FILE[:weight]", entry)
		}
		c, err := buildNetClass(name, weight, file)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -net %q", mix)
	}
	return out, nil
}

// buildNetClass maps a -net name to its capacity-factor regime. The
// factor processes are built per session from the session's service RNG
// stream, so mixes stay byte-deterministic per seed at any shard count.
func buildNetClass(name string, weight float64, file string) (netClass, error) {
	c := netClass{name: name, weight: weight}
	switch name {
	case "static":
	case "markov":
		c.wrap = func(rng *qarv.RNG, inner qarv.ServiceProcess) qarv.ServiceProcess {
			mb := qarv.DefaultMarkovFactor(rng.Split())
			return &qarv.ModulatedService{Inner: inner, Factor: mb.Bandwidth}
		}
	case "trace":
		tb, err := qarv.LoadFactorTrace(file)
		if err != nil {
			return c, err
		}
		// The trace is a pure function of the slot — one instance is
		// safely shared by every session and shard.
		c.wrap = func(_ *qarv.RNG, inner qarv.ServiceProcess) qarv.ServiceProcess {
			return &qarv.ModulatedService{Inner: inner, Factor: tb.Bandwidth}
		}
	case "handoff":
		c.wrap = func(rng *qarv.RNG, inner qarv.ServiceProcess) qarv.ServiceProcess {
			hb := qarv.DefaultHandoffFactor(rng.Split())
			return &qarv.ModulatedService{Inner: inner, Factor: hb.Bandwidth}
		}
	default:
		return c, fmt.Errorf("unknown network class %q (want static, markov, trace[:FILE], handoff)", name)
	}
	return c, nil
}

// crossNetwork crosses the policy mix with the network mix: every
// (profile, class) pair becomes one fleet device class (weights
// multiply), the class's factor process modulating the profile's own
// service. A pure static -net leaves the profiles untouched, so default
// runs (and BENCH_fleet.json) are unchanged.
func crossNetwork(profiles []qarv.Profile, classes []netClass) []qarv.Profile {
	if len(classes) == 1 && classes[0].wrap == nil {
		return profiles
	}
	out := make([]qarv.Profile, 0, len(profiles)*len(classes))
	for _, p := range profiles {
		for _, c := range classes {
			combined := p
			combined.Weight = p.Weight * c.weight
			if c.wrap != nil {
				combined.Name = p.Name + "+" + c.name
				inner := p.NewService
				wrap := c.wrap
				combined.NewService = func(rng *qarv.RNG) qarv.ServiceProcess {
					return wrap(rng, inner(rng))
				}
			}
			out = append(out, combined)
		}
	}
	return out
}

func printReport(out io.Writer, rep *qarv.FleetReport) {
	fmt.Fprintf(out, "seats             %d\n", rep.Seats)
	fmt.Fprintf(out, "slots/seat        %d\n", rep.Slots)
	fmt.Fprintf(out, "shards            %d\n", rep.Shards)
	fmt.Fprintf(out, "churn             %g\n", rep.Churn)
	fmt.Fprintf(out, "sessions run      %d (%d departures)\n", rep.Total.Sessions, rep.Total.Departures)
	fmt.Fprintf(out, "device-slots      %d\n", rep.Total.DeviceSlots)
	fmt.Fprintf(out, "elapsed           %v\n", rep.Elapsed)
	fmt.Fprintf(out, "throughput        %.0f device-slots/sec\n", rep.DeviceSlotsPerSec)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "profile      sessions   frames      P50 sjrn  P95 sjrn  P99 sjrn  mean util  P95 backlog  div/conv/stab")
	rows := append([]qarv.FleetProfileReport{rep.Total}, rep.PerProfile...)
	for i, p := range rows {
		name := p.Name
		if i == 0 {
			name = "ALL"
		}
		fmt.Fprintf(out, "%-12s %8d  %9d  %8.1f  %8.1f  %8.1f  %9.3f  %11.0f  %d/%d/%d\n",
			name, p.Sessions, p.FramesCompleted,
			p.Sojourn.P50, p.Sojourn.P95, p.Sojourn.P99,
			p.Utility.Mean, p.Backlog.P95,
			p.Verdicts.Diverging, p.Verdicts.Converged, p.Verdicts.Stabilized)
	}
}
