package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"qarv"
)

// fleetArgs keeps the scenario calibration and the fleet tiny so CLI
// tests stay fast.
func fleetArgs(extra ...string) []string {
	base := []string{"-samples", "30000", "-n", "64", "-slots", "200"}
	return append(base, extra...)
}

func TestRunDefaultMix(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), fleetArgs(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"seats             64",
		"device-slots      12800",
		"device-slots/sec",
		"proposed", "noisy", "bursty",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(),
		fleetArgs("-json", "-mix", "proposed:1", "-churn", "0.01"), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a FleetReport: %v\n%s", err, out.String())
	}
	if rep.Seats != 64 || rep.Total.DeviceSlots != 64*200 {
		t.Errorf("report shape wrong: seats=%d device-slots=%d", rep.Seats, rep.Total.DeviceSlots)
	}
	if rep.Total.Sessions <= 64 {
		t.Errorf("churn produced no replacements: %d sessions", rep.Total.Sessions)
	}
	if rep.DeviceSlotsPerSec <= 0 {
		t.Error("missing device-slots/sec")
	}
	if len(rep.PerProfile) != 1 || rep.PerProfile[0].Name != "proposed" {
		t.Errorf("per-profile breakdown wrong: %+v", rep.PerProfile)
	}
}

func TestRunEveryProfileName(t *testing.T) {
	var out bytes.Buffer
	mix := "proposed:2,lowv:1,highv:1,max:0.5,min:0.5,threshold:1,random:1,poisson:1,bursty:1,noisy:1,offload:1," +
		"oracle:1,delayed:1,predictive:1,predictive-delayed:1"
	if err := run(context.Background(),
		fleetArgs("-json", "-n", "40", "-mix", mix), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// Weighted draws over 40 seats won't hit every class; the run
	// proving every name builds and executes is the point.
	if len(rep.PerProfile) < 5 {
		t.Errorf("only %d profiles materialized", len(rep.PerProfile))
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), fleetArgs("-mix", "nosuch:1"), &out); err == nil ||
		!strings.Contains(err.Error(), "unknown profile") {
		t.Errorf("bad mix accepted: %v", err)
	}
	if err := run(context.Background(), fleetArgs("-mix", "proposed:x"), &out); err == nil ||
		!strings.Contains(err.Error(), "bad weight") {
		t.Errorf("bad weight accepted: %v", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, fleetArgs(), &out); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}

func TestRunNetworkMix(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(),
		fleetArgs("-json", "-mix", "proposed:1,noisy:1",
			"-net", "static:0.4,markov:0.3,trace:0.2,handoff:0.1"), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// 2 policy classes × 4 network classes = 8 device classes offered;
	// static keeps the bare profile name, the rest are suffixed.
	names := map[string]bool{}
	for _, p := range rep.PerProfile {
		names[p.Name] = true
	}
	for _, want := range []string{"proposed", "proposed+markov", "noisy+handoff"} {
		if !names[want] {
			t.Errorf("missing crossed class %q in %v", want, names)
		}
	}
	if rep.Total.DeviceSlots != 64*200 {
		t.Errorf("device-slots = %d", rep.Total.DeviceSlots)
	}
}

func TestRunNetworkMixDeterministicAcrossShards(t *testing.T) {
	run1 := func(shards string) string {
		var out bytes.Buffer
		if err := run(context.Background(),
			fleetArgs("-json", "-shards", shards, "-churn", "0.005",
				"-net", "static:1,markov:1,handoff:1"), &out); err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		// Drop the wall-clock and execution-detail fields, plus the
		// float-sum-backed fields ("mean", "dropped_work") that the
		// engine only guarantees up to FP association order across shard
		// counts — the scenario's calibrated rates are fractional, so
		// shard regrouping can move their last bits (see the
		// internal/fleet package comment). Everything else — counters,
		// sketch quantiles, min/max, verdicts — must be byte-identical.
		delete(rep, "elapsed_ns")
		delete(rep, "device_slots_per_sec")
		delete(rep, "shards")
		var scrub func(v any)
		scrub = func(v any) {
			switch x := v.(type) {
			case map[string]any:
				delete(x, "mean")
				delete(x, "dropped_work")
				for _, child := range x {
					scrub(child)
				}
			case []any:
				for _, child := range x {
					scrub(child)
				}
			}
		}
		scrub(rep)
		norm, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(norm)
	}
	if a, b := run1("1"), run1("4"); a != b {
		t.Error("-net fleet differs across shard counts")
	}
}

func TestRunNetworkTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	if err := os.WriteFile(path, []byte("# factors\n0,1\n50,0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(),
		fleetArgs("-json", "-mix", "proposed:1", "-net", "trace:"+path), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.PerProfile) != 1 || rep.PerProfile[0].Name != "proposed+trace" {
		t.Errorf("per-profile: %+v", rep.PerProfile)
	}
}

func TestRunRejectsBadNet(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), fleetArgs("-net", "nosuch"), &out); err == nil ||
		!strings.Contains(err.Error(), "unknown network class") {
		t.Errorf("bad net accepted: %v", err)
	}
	if err := run(context.Background(), fleetArgs("-net", "trace:/no/such/file.csv"), &out); err == nil {
		t.Error("missing trace file accepted")
	}
	// Positional parsing: a second numeric part is malformed for
	// non-trace classes, and trailing garbage is rejected rather than
	// silently reinterpreted.
	if err := run(context.Background(), fleetArgs("-net", "markov:2:3"), &out); err == nil ||
		!strings.Contains(err.Error(), "net entry") {
		t.Errorf("markov:2:3 accepted: %v", err)
	}
	if err := run(context.Background(), fleetArgs("-net", "markov:x"), &out); err == nil ||
		!strings.Contains(err.Error(), "bad weight") {
		t.Errorf("markov:x accepted: %v", err)
	}
	if err := run(context.Background(), fleetArgs("-net", "trace:file.csv:x"), &out); err == nil ||
		!strings.Contains(err.Error(), "bad weight") {
		t.Errorf("trace:file.csv:x accepted: %v", err)
	}
}

func TestParseNetMixForms(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.csv"
	if err := os.WriteFile(path, []byte("0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	classes, err := parseNetMix("static, markov:2, trace:" + path + ":0.5, handoff")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Fatalf("classes: %d", len(classes))
	}
	if classes[1].weight != 2 || classes[2].weight != 0.5 || classes[3].weight != 1 {
		t.Errorf("weights: %v %v %v", classes[1].weight, classes[2].weight, classes[3].weight)
	}
	// The ambiguous numeric form is a weight, as documented.
	classes, err = parseNetMix("trace:7")
	if err != nil {
		t.Fatal(err)
	}
	if classes[0].weight != 7 {
		t.Errorf("trace:7 weight = %v, want 7 (built-in trace)", classes[0].weight)
	}
}

// TestRunContentClasses: -content splits the fleet across measured
// assets, each class calibrated over its own byte/PSNR ladders.
func TestRunContentClasses(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-samples", "6000", "-n", "32", "-slots", "100",
		"-content", "loot:0.5,soldier:0.5", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a FleetReport: %v\n%s", err, out.String())
	}
	if len(rep.PerProfile) != 2 {
		t.Fatalf("per-profile classes %d, want 2", len(rep.PerProfile))
	}
	names := rep.PerProfile[0].Name + "," + rep.PerProfile[1].Name
	if !strings.Contains(names, "loot") || !strings.Contains(names, "soldier") {
		t.Errorf("content class names %q, want loot and soldier", names)
	}
}

// TestRunContentRejections: -content conflicts with an explicit -mix and
// rejects unknown assets.
func TestRunContentRejections(t *testing.T) {
	if err := run(context.Background(), fleetArgs("-content", "loot", "-mix", "proposed:1"), &bytes.Buffer{}); err == nil {
		t.Error("-content with explicit -mix accepted")
	}
	if err := run(context.Background(), fleetArgs("-content", "no-such-asset"), &bytes.Buffer{}); err == nil {
		t.Error("unknown content asset accepted")
	}
	if err := run(context.Background(), fleetArgs("-content", "loot:x"), &bytes.Buffer{}); err == nil {
		t.Error("bad content weight accepted")
	}
}

// TestRunTelemetrySmoke is the CI telemetry smoke: one fleet run with
// -metrics/-trace writing to files must produce a parseable metric
// snapshot and Chrome trace_event document, and the report bytes on
// stdout must be identical with telemetry on or off (wall-clock fields
// scrubbed — they differ run to run regardless of telemetry).
func TestRunTelemetrySmoke(t *testing.T) {
	runJSON := func(extra ...string) string {
		var out bytes.Buffer
		if err := run(context.Background(),
			fleetArgs(append([]string{"-json", "-churn", "0.005"}, extra...)...), &out); err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("report does not parse: %v", err)
		}
		delete(rep, "elapsed_ns")
		delete(rep, "device_slots_per_sec")
		norm, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(norm)
	}

	dir := t.TempDir()
	metricsPath := dir + "/metrics.json"
	tracePath := dir + "/trace.json"
	off := runJSON()
	on := runJSON("-metrics", metricsPath, "-trace", tracePath)
	if off != on {
		t.Errorf("telemetry changed the report:\noff: %s\non:  %s", off, on)
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metric snapshot does not parse: %v", err)
	}
	sessions := int64(0)
	for _, c := range snap.Counters {
		if c.Name == "fleet_sessions_total" {
			sessions = c.Value
		}
	}
	if sessions < 64 {
		t.Errorf("fleet_sessions_total = %d, want >= 64", sessions)
	}

	raw, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Name  string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace_event document does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace_event document is empty")
	}
	for _, ev := range trace.TraceEvents {
		if ev.Phase == "" || ev.Name == "" {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}
}
