package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"qarv"
)

// fleetArgs keeps the scenario calibration and the fleet tiny so CLI
// tests stay fast.
func fleetArgs(extra ...string) []string {
	base := []string{"-samples", "30000", "-n", "64", "-slots", "200"}
	return append(base, extra...)
}

func TestRunDefaultMix(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), fleetArgs(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"seats             64",
		"device-slots      12800",
		"device-slots/sec",
		"proposed", "noisy", "bursty",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(),
		fleetArgs("-json", "-mix", "proposed:1", "-churn", "0.01"), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a FleetReport: %v\n%s", err, out.String())
	}
	if rep.Seats != 64 || rep.Total.DeviceSlots != 64*200 {
		t.Errorf("report shape wrong: seats=%d device-slots=%d", rep.Seats, rep.Total.DeviceSlots)
	}
	if rep.Total.Sessions <= 64 {
		t.Errorf("churn produced no replacements: %d sessions", rep.Total.Sessions)
	}
	if rep.DeviceSlotsPerSec <= 0 {
		t.Error("missing device-slots/sec")
	}
	if len(rep.PerProfile) != 1 || rep.PerProfile[0].Name != "proposed" {
		t.Errorf("per-profile breakdown wrong: %+v", rep.PerProfile)
	}
}

func TestRunEveryProfileName(t *testing.T) {
	var out bytes.Buffer
	mix := "proposed:2,lowv:1,highv:1,max:0.5,min:0.5,threshold:1,random:1,poisson:1,bursty:1,noisy:1,offload:1"
	if err := run(context.Background(),
		fleetArgs("-json", "-n", "40", "-mix", mix), &out); err != nil {
		t.Fatal(err)
	}
	var rep qarv.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// Weighted draws over 40 seats won't hit every class; the run
	// proving every name builds and executes is the point.
	if len(rep.PerProfile) < 5 {
		t.Errorf("only %d profiles materialized", len(rep.PerProfile))
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), fleetArgs("-mix", "nosuch:1"), &out); err == nil ||
		!strings.Contains(err.Error(), "unknown profile") {
		t.Errorf("bad mix accepted: %v", err)
	}
	if err := run(context.Background(), fleetArgs("-mix", "proposed:x"), &out); err == nil ||
		!strings.Contains(err.Error(), "bad weight") {
		t.Errorf("bad weight accepted: %v", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, fleetArgs(), &out); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}
