package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qarv/internal/stream"
)

func TestDeviceSessionAgainstInProcessEdge(t *testing.T) {
	// Unpaced server: the session must drain with all depths at max.
	srv, err := stream.Serve("127.0.0.1:0", stream.ServerConfig{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	err = run([]string{
		"-addr", srv.Addr(),
		"-frames", "40",
		"-interval", "1ms",
		"-samples", "8000",
		"-knee", "10",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "drained=true") {
		t.Errorf("session did not drain: %s", s)
	}
	if !strings.Contains(s, "depth histogram") {
		t.Errorf("missing histogram: %s", s)
	}
	ss := srv.Stats()
	if ss.FramesServed != 40 || ss.Corrupt != 0 {
		t.Errorf("server saw %d frames, %d corrupt", ss.FramesServed, ss.Corrupt)
	}
}

func TestDeviceAdaptsAgainstPacedEdge(t *testing.T) {
	// A slow edge: the device must back off below depth 10.
	srv, err := stream.Serve("127.0.0.1:0", stream.ServerConfig{
		Budget: 1.5e6, // intentionally tight for 5ms frames
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	err = run([]string{
		"-addr", srv.Addr(),
		"-frames", "80",
		"-interval", "5ms",
		"-samples", "8000",
		"-knee", "10",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	// The histogram must contain at least one depth below 10.
	line := ""
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(l, "depth histogram") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no histogram: %s", out.String())
	}
	backedOff := false
	for _, d := range []string{"5:", "6:", "7:", "8:", "9:"} {
		if strings.Contains(line, d) {
			backedOff = true
		}
	}
	if !backedOff {
		t.Errorf("device never backed off against a slow edge: %s", line)
	}
	_ = time.Millisecond
}

func TestMultiDeviceFleetAgainstPacedEdge(t *testing.T) {
	// Four controller loops over four real connections sharing one
	// budget: every session must drain, the aggregate must conserve
	// bytes, and each device must have learned its allocated share from
	// the acks.
	srv, err := stream.Serve("127.0.0.1:0", stream.ServerConfig{
		Budget:   16e6,
		Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	err = run([]string{
		"-addr", srv.Addr(),
		"-devices", "4",
		"-frames", "30",
		"-interval", "2ms",
		"-samples", "8000",
		"-knee", "10",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "drained=true (4/4 sessions, 0 failed)") {
		t.Errorf("fleet did not fully drain: %s", s)
	}
	if !strings.Contains(s, "allocated share mean") {
		t.Errorf("no allocated-share line (ack backpressure signal missing): %s", s)
	}
	ss := srv.Stats()
	if ss.FramesServed != 4*30 || ss.FramesAcked != 4*30 {
		t.Errorf("server served %d acked %d, want 120/120", ss.FramesServed, ss.FramesAcked)
	}
	if ss.BytesServed != ss.BytesAcked {
		t.Errorf("served/acked bytes diverged with healthy connections: %+v", ss)
	}
}

func TestDeviceErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -addr must error")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-frames", "1", "-samples", "4000"}, &bytes.Buffer{}); err == nil {
		t.Error("dead edge must error")
	}
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag must error")
	}
	if err := run([]string{"-addr", "x", "-character", "nobody"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown character must error")
	}
}
