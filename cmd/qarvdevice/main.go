// Command qarvdevice runs the device side of a live qarv session against
// a qarvedge server: it generates a synthetic capture, encodes the octree
// stream at every candidate depth, and streams frames with the
// drift-plus-penalty controller deciding each frame's depth from the live
// unacknowledged-byte backlog. With -devices N it becomes a fleet
// driver: N independent controller loops over N real TCP connections,
// all sharing the edge's uplink budget — the end-to-end socket version
// of the simulator's multi-device scenario.
//
// Usage:
//
//	qarvdevice -addr HOST:PORT [-devices 1] [-frames 300] [-interval 10ms]
//	           [-samples 60000] [-knee 30] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/octree"
	"qarv/internal/quality"
	"qarv/internal/stream"
	"qarv/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvdevice:", err)
		os.Exit(1)
	}
}

// deviceResult is one controller loop's outcome.
type deviceResult struct {
	stats   stream.ClientStats
	hist    map[int]int
	drained bool
	err     error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvdevice", flag.ContinueOnError)
	addr := fs.String("addr", "", "edge server address (required)")
	devices := fs.Int("devices", 1, "concurrent device sessions, each with its own connection and controller")
	frames := fs.Int("frames", 300, "frames to stream per device")
	interval := fs.Duration("interval", 10*time.Millisecond, "frame period")
	samples := fs.Int("samples", 60_000, "synthetic capture surface samples")
	knee := fs.Float64("knee", 30, "V-calibration knee (frames)")
	seed := fs.Int64("seed", 1, "capture seed")
	character := fs.String("character", "longdress", "synthetic character preset")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return errors.New("missing -addr (start cmd/qarvedge first)")
	}
	if *devices < 1 {
		return errors.New("-devices must be at least 1")
	}

	// Capture and per-depth encodings, shared read-only by every device.
	ch, err := synthetic.ByName(*character)
	if err != nil {
		return err
	}
	cloud, err := synthetic.Generate(synthetic.Config{
		Character:     ch,
		SamplesTarget: *samples,
		CaptureDepth:  10,
		Seed:          uint64(*seed),
	}, synthetic.Pose{})
	if err != nil {
		return err
	}
	tree, err := octree.Build(cloud, 10)
	if err != nil {
		return err
	}
	depths := []int{5, 6, 7, 8, 9, 10}
	payloads := make(map[int][]byte, len(depths))
	bytesProfile, err := tree.StreamSizeProfile(true)
	if err != nil {
		return err
	}
	for _, d := range depths {
		p, err := tree.SerializeWithColorsBytes(d)
		if err != nil {
			return err
		}
		payloads[d] = p
	}
	util, err := quality.NewLogPointUtility(tree.Profile())
	if err != nil {
		return err
	}
	cost, err := delay.NewPointCostModel(bytesProfile, 1, 0, 0)
	if err != nil {
		return err
	}

	// Controller calibrated against the nominal per-frame budget implied
	// by the frame interval at the depth-9/10 boundary; the live backlog
	// supplies the actual feedback.
	perFrameBudget := float64(bytesProfile[9]) + 0.6*float64(bytesProfile[10]-bytesProfile[9])
	cfg := core.Config{Depths: depths, Utility: util, Cost: cost}
	v, err := core.CalibrateV(*knee, perFrameBudget, cfg)
	if err != nil {
		return err
	}
	cfg.V = v

	fmt.Fprintf(out, "streaming %d devices x %d frames to %s (V=%.4g)\n", *devices, *frames, *addr, v)

	results := make([]deviceResult, *devices)
	var wg sync.WaitGroup
	for dev := 0; dev < *devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			results[dev] = runDevice(*addr, cfg, depths, payloads, *frames, *interval)
		}(dev)
	}
	wg.Wait()

	// Aggregate across the fleet.
	var agg stream.ClientStats
	hist := make(map[int]int, len(depths))
	drained, failed := 0, 0
	var firstErr error
	var latencySum time.Duration
	var latencyN int
	var shareSum float64
	for _, r := range results {
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		agg.SentFrames += r.stats.SentFrames
		agg.AckedFrames += r.stats.AckedFrames
		agg.SentBytes += r.stats.SentBytes
		agg.AckedBytes += r.stats.AckedBytes
		agg.AckRegressions += r.stats.AckRegressions
		if r.stats.MaxLatency > agg.MaxLatency {
			agg.MaxLatency = r.stats.MaxLatency
		}
		latencySum += r.stats.MeanLatency * time.Duration(r.stats.AckedFrames)
		latencyN += r.stats.AckedFrames
		shareSum += r.stats.AllocatedBps
		for d, n := range r.hist {
			hist[d] += n
		}
		if r.drained {
			drained++
		}
	}
	allDrained := failed == 0 && drained == *devices
	fmt.Fprintf(out, "sent %d frames (%d bytes), acked %d, drained=%v (%d/%d sessions, %d failed)\n",
		agg.SentFrames, agg.SentBytes, agg.AckedFrames, allDrained, drained, *devices, failed)
	if latencyN > 0 {
		agg.MeanLatency = latencySum / time.Duration(latencyN)
	}
	fmt.Fprintf(out, "round trip mean %v max %v\n", agg.MeanLatency, agg.MaxLatency)
	if ok := *devices - failed; ok > 0 && shareSum > 0 {
		fmt.Fprintf(out, "allocated share mean %.0f B/s across %d sessions\n", shareSum/float64(ok), ok)
	}
	fmt.Fprint(out, "depth histogram  ")
	for _, d := range depths {
		if hist[d] > 0 {
			fmt.Fprintf(out, "%d:%d  ", d, hist[d])
		}
	}
	fmt.Fprintln(out)
	if agg.AckRegressions > 0 {
		return fmt.Errorf("%d ack regressions observed (server accounting bug)", agg.AckRegressions)
	}
	if firstErr != nil {
		return fmt.Errorf("%d of %d sessions failed: %w", failed, *devices, firstErr)
	}
	if !allDrained {
		return errors.New("session did not drain")
	}
	return nil
}

// runDevice drives one controller loop over one live connection.
func runDevice(addr string, cfg core.Config, depths []int, payloads map[int][]byte, frames int, interval time.Duration) deviceResult {
	res := deviceResult{hist: make(map[int]int, len(depths))}
	ctrl, err := core.New(cfg)
	if err != nil {
		res.err = err
		return res
	}
	client, err := stream.Dial(addr)
	if err != nil {
		res.err = err
		return res
	}
	defer client.Close()
	for i := 0; i < frames; i++ {
		q := client.BacklogBytes()
		d := ctrl.Decide(i, q)
		res.hist[d]++
		if err := client.SendFrame(stream.Frame{
			ID:      uint32(i),
			Depth:   uint8(d),
			Payload: payloads[d],
		}); err != nil {
			res.err = fmt.Errorf("frame %d: %w", i, err)
			return res
		}
		time.Sleep(interval)
	}
	res.drained = client.WaitForAcks(30 * time.Second)
	res.stats = client.Stats()
	return res
}
