// Command qarvdevice runs the device side of a live qarv session against
// a qarvedge server: it generates a synthetic capture, encodes the octree
// stream at every candidate depth, and streams frames with the
// drift-plus-penalty controller deciding each frame's depth from the live
// unacknowledged-byte backlog.
//
// Usage:
//
//	qarvdevice -addr HOST:PORT [-frames 300] [-interval 10ms]
//	           [-samples 60000] [-knee 30] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/octree"
	"qarv/internal/quality"
	"qarv/internal/stream"
	"qarv/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qarvdevice:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qarvdevice", flag.ContinueOnError)
	addr := fs.String("addr", "", "edge server address (required)")
	frames := fs.Int("frames", 300, "frames to stream")
	interval := fs.Duration("interval", 10*time.Millisecond, "frame period")
	samples := fs.Int("samples", 60_000, "synthetic capture surface samples")
	knee := fs.Float64("knee", 30, "V-calibration knee (frames)")
	seed := fs.Int64("seed", 1, "capture seed")
	character := fs.String("character", "longdress", "synthetic character preset")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return errors.New("missing -addr (start cmd/qarvedge first)")
	}

	// Capture and per-depth encodings.
	ch, err := synthetic.ByName(*character)
	if err != nil {
		return err
	}
	cloud, err := synthetic.Generate(synthetic.Config{
		Character:     ch,
		SamplesTarget: *samples,
		CaptureDepth:  10,
		Seed:          uint64(*seed),
	}, synthetic.Pose{})
	if err != nil {
		return err
	}
	tree, err := octree.Build(cloud, 10)
	if err != nil {
		return err
	}
	depths := []int{5, 6, 7, 8, 9, 10}
	payloads := make(map[int][]byte, len(depths))
	bytesProfile, err := tree.StreamSizeProfile(true)
	if err != nil {
		return err
	}
	for _, d := range depths {
		p, err := tree.SerializeWithColorsBytes(d)
		if err != nil {
			return err
		}
		payloads[d] = p
	}
	util, err := quality.NewLogPointUtility(tree.Profile())
	if err != nil {
		return err
	}
	cost, err := delay.NewPointCostModel(bytesProfile, 1, 0, 0)
	if err != nil {
		return err
	}

	// Controller calibrated against the nominal per-frame budget implied
	// by the frame interval at the depth-9/10 boundary; the live backlog
	// supplies the actual feedback.
	perFrameBudget := float64(bytesProfile[9]) + 0.6*float64(bytesProfile[10]-bytesProfile[9])
	cfg := core.Config{Depths: depths, Utility: util, Cost: cost}
	v, err := core.CalibrateV(*knee, perFrameBudget, cfg)
	if err != nil {
		return err
	}
	cfg.V = v
	ctrl, err := core.New(cfg)
	if err != nil {
		return err
	}

	client, err := stream.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Fprintf(out, "streaming %d frames to %s (V=%.4g)\n", *frames, *addr, v)

	hist := make(map[int]int, len(depths))
	for i := 0; i < *frames; i++ {
		q := client.BacklogBytes()
		d := ctrl.Decide(i, q)
		hist[d]++
		if err := client.SendFrame(stream.Frame{
			ID:      uint32(i),
			Depth:   uint8(d),
			Payload: payloads[d],
		}); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		time.Sleep(*interval)
	}
	drained := client.WaitForAcks(30 * time.Second)
	st := client.Stats()
	fmt.Fprintf(out, "sent %d frames (%d bytes), acked %d, drained=%v\n",
		st.SentFrames, st.SentBytes, st.AckedFrames, drained)
	fmt.Fprintf(out, "round trip mean %v max %v\n", st.MeanLatency, st.MaxLatency)
	fmt.Fprint(out, "depth histogram  ")
	for _, d := range depths {
		if hist[d] > 0 {
			fmt.Fprintf(out, "%d:%d  ", d, hist[d])
		}
	}
	fmt.Fprintln(out)
	if !drained {
		return errors.New("session did not drain")
	}
	return nil
}
