package qarv

import (
	"context"

	"qarv/internal/fleet"
)

// ---------------------------------------------------------------------------
// Fleet simulation (10k–1M independent device sessions)
// ---------------------------------------------------------------------------

type (
	// FleetSpec describes one fleet run: the concurrent session count,
	// horizon, shard parallelism, churn hazard, profile mix, seed, and
	// quantile-sketch accuracy.
	FleetSpec = fleet.Spec
	// Profile is one device class of a fleet mix: per-session policy,
	// arrival, and service factories over shared cost/utility models.
	Profile = fleet.Profile
	// FleetReport is the merged result of a fleet run: fleet-wide and
	// per-profile streaming aggregates (quantile summaries of sojourn,
	// backlog, and utility; frame accounting; stability-verdict counts)
	// plus the engine's device-slots/sec throughput.
	FleetReport = fleet.Report
	// FleetProfileReport is one device class's merged accounting.
	FleetProfileReport = fleet.ProfileReport
	// QuantileSummary condenses one metric's distribution: exact
	// count/mean/min/max plus sketched P50/P95/P99.
	QuantileSummary = fleet.QuantileSummary
	// VerdictCounts tallies per-session stability classifications.
	VerdictCounts = fleet.VerdictCounts
)

// Fleet is a validated, immutable fleet-simulation run, constructed by
// NewFleet and driven by Run. Reports are deterministic for a given spec
// and seed, except for the wall-clock fields (Elapsed,
// DeviceSlotsPerSec); across different shard counts everything but the
// last bits of the float-sum-backed Mean/DroppedWork fields is identical
// too (see the internal/fleet package comment).
type Fleet struct {
	spec fleet.Spec
}

// NewFleet validates the spec into a runnable Fleet.
func NewFleet(spec FleetSpec) (*Fleet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Fleet{spec: spec}, nil
}

// Run executes the fleet. Cancellation of ctx is honored inside every
// shard's slot loops (within a queueing.PollEvery stride, exactly like
// Session.Run).
func (f *Fleet) Run(ctx context.Context) (*FleetReport, error) {
	return fleet.RunContext(ctx, f.spec)
}

// FleetSessionSeed derives the RNG seed of one device seat from the
// fleet seed — exposed so callers can reproduce any single fleet
// session out-of-band as a standalone Session (see fleet.SeatSeed).
func FleetSessionSeed(seed uint64, seat int) uint64 {
	return fleet.SeatSeed(seed, seat)
}
