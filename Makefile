GO ?= go

.PHONY: all build test race vet doccheck bench bench-fleet sweep-smoke examples clean

all: vet doccheck build test

# doccheck fails when any exported identifier lacks a doc comment (see
# cmd/doccheck); the root package and internal/netem are the contract,
# the rest of the tree is checked because it is already clean.
doccheck:
	$(GO) run ./cmd/doccheck -q . internal/* cmd/* examples/*

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench: bench-fleet
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/fleet

# bench-fleet records the fleet engine's headline capacity number
# (device-slots/sec, plus the full streaming report) into the bench
# history artifact BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/qarvfleet -n 20000 -slots 500 -churn 0.001 -json > BENCH_fleet.json

# sweep-smoke drives a tiny 2×2 grid end to end through cmd/qarvsweep
# (fleet backend, JSON report) — the sweep engine's CLI smoke test.
sweep-smoke:
	$(GO) run ./cmd/qarvsweep -samples 60000 -slots 200 -seed 1 \
		-axis v=0.5,2 -axis net=static,markov:0.5 \
		-backend fleet -sessions 8 -json > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vsweep
	$(GO) run ./examples/multidevice
	$(GO) run ./examples/offload
	$(GO) run ./examples/streaming
	$(GO) run ./examples/allocators
	$(GO) run ./examples/fleet
	$(GO) run ./examples/networks
	$(GO) run ./examples/sweep

clean:
	$(GO) clean ./...
	rm -rf results data
