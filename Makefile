GO ?= go

.PHONY: all build test race vet check doccheck fuzz-smoke bench bench-fleet bench-content bench-edge bench-learn edge-smoke sweep-smoke learn-smoke examples clean

all: vet check build test

# check runs the qarvcheck analyzer suite (cmd/qarvcheck) over the
# whole module: nondeterminism (no wall clock, math/rand, or
# map-iteration-ordered output in deterministic packages), ctxloop
# (slot/shard loops must thread cancellation), reseedclone (types
# holding *geom.RNG implement the full Reseed/Clone run-isolation
# contract), errstyle (sentinels wrapped with %w, no discarded
# errors), and doccheck (exported identifiers documented). The tree
# must stay finding-free; deliberate exceptions carry a reasoned
# //qarv:allow directive.
check:
	$(GO) run ./cmd/qarvcheck ./...

# doccheck is the retired cmd/doccheck CLI, preserved byte-for-byte
# behind `qarvcheck -doccheck`: fails when any exported identifier
# lacks a doc comment. Redundant with `make check` (which includes the
# same pass) but kept for scripts that depend on the legacy interface.
doccheck:
	$(GO) run ./cmd/qarvcheck -doccheck -q . internal/* cmd/* examples/*

# fuzz-smoke runs each fuzz target briefly — enough to replay the
# checked-in corpora and catch regressions in the parsers' error paths
# without a long fuzzing campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzPLYDecode -fuzztime 10s ./internal/ply
	$(GO) test -run '^$$' -fuzz FuzzReadTraceCSV -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzReadTraceJSON -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzReadMessage -fuzztime 10s ./internal/stream

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench: bench-fleet
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/fleet

# bench-fleet records the fleet engine's headline capacity number
# (device-slots/sec, plus the full streaming report) into the bench
# history artifact BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/qarvfleet -n 20000 -slots 500 -churn 0.001 -json > BENCH_fleet.json

# bench-content records the content pipeline's timings (octree build,
# PLY decode, stream-size ladder, full profile build) into the bench
# history artifact BENCH_content.json. BENCHTIME=1x makes it a smoke.
BENCHTIME ?= 1s
bench-content:
	$(GO) run ./cmd/qarvbench -benchtime $(BENCHTIME) > BENCH_content.json

# bench-edge records the live edge service's capacity numbers
# (sessions/sec, frames/sec, p50/p99/max end-to-end frame latency) from
# EDGE_SESSIONS concurrent loopback TCP sessions against one
# stream.Server, into the bench history artifact BENCH_edge.json.
# EDGE_SESSIONS=64 makes it a CI smoke; history runs use the default.
EDGE_SESSIONS ?= 1000
EDGE_FRAMES ?= 20
bench-edge:
	$(GO) run ./cmd/qarvbench -edge -sessions $(EDGE_SESSIONS) \
		-frames $(EDGE_FRAMES) -payload 4096 > BENCH_edge.json

# bench-learn records the learning layer's per-slot overhead (every
# ByName-reachable allocator's Allocate+Learn cycle, the display-policy
# wrappers' Decide) into the bench history artifact BENCH_learn.json.
# BENCHTIME=1x makes it a smoke.
bench-learn:
	$(GO) run ./cmd/qarvbench -learn -benchtime $(BENCHTIME) > BENCH_learn.json

# edge-smoke runs the socket-level edge suite: the soak/conservation,
# drain, shed, idle-timeout, and ack-failure tests under the race
# detector, then the end-to-end two-binary CLI test.
edge-smoke:
	$(GO) test -race -count=1 ./internal/stream
	$(GO) test -count=1 -run 'TestEndToEnd|TestMultiDevice' ./cmd/qarvedge ./cmd/qarvdevice

# sweep-smoke drives a tiny 2×2 grid end to end through cmd/qarvsweep
# (fleet backend, JSON report) — the sweep engine's CLI smoke test.
sweep-smoke:
	$(GO) run ./cmd/qarvsweep -samples 60000 -slots 200 -seed 1 \
		-axis v=0.5,2 -axis net=static,markov:0.5 \
		-backend fleet -sessions 8 -json > /dev/null

# learn-smoke runs the learning layer end to end through cmd/qarvsweep:
# a small learned-allocator × network grid must produce byte-identical
# JSON at -workers 1 and -workers 4, a learned-policy axis must run
# through the fleet-shaped grid, and the learn bench must execute at 1x.
learn-smoke:
	$(GO) run ./cmd/qarvsweep -samples 60000 -slots 200 -seed 1 \
		-axis alloc=equal,bandit:4,gradient:0.2 -axis net=static,markov:0.8:64 \
		-workers 1 -json > learn_smoke_w1.json
	$(GO) run ./cmd/qarvsweep -samples 60000 -slots 200 -seed 1 \
		-axis alloc=equal,bandit:4,gradient:0.2 -axis net=static,markov:0.8:64 \
		-workers 4 -json > learn_smoke_w4.json
	cmp learn_smoke_w1.json learn_smoke_w4.json
	rm -f learn_smoke_w1.json learn_smoke_w4.json
	$(GO) run ./cmd/qarvsweep -samples 60000 -slots 200 -seed 1 \
		-axis policy=proposed,predictive-delayed:6 -axis net=static \
		-json > /dev/null
	$(GO) run ./cmd/qarvbench -learn -benchtime 1x > /dev/null

# telemetry-smoke runs the observability layer end to end: the pin
# tests proving metric snapshots are byte-identical per seed at any
# shard/worker count and that telemetry never changes report bytes,
# the CLI sink tests, then a real qarvfleet run that must emit a
# non-empty snapshot and trace_event file.
telemetry-smoke:
	$(GO) test -run 'Telemetry' . ./cmd/qarvfleet
	$(GO) test ./internal/obs ./cmd/internal/telemetry
	$(GO) run ./cmd/qarvfleet -samples 30000 -n 64 -slots 200 -json \
		-metrics telemetry_smoke_metrics.json -trace telemetry_smoke_trace.json > /dev/null
	test -s telemetry_smoke_metrics.json && test -s telemetry_smoke_trace.json
	rm -f telemetry_smoke_metrics.json telemetry_smoke_trace.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vsweep
	$(GO) run ./examples/multidevice
	$(GO) run ./examples/offload
	$(GO) run ./examples/streaming
	$(GO) run ./examples/allocators
	$(GO) run ./examples/fleet
	$(GO) run ./examples/networks
	$(GO) run ./examples/sweep
	$(GO) run ./examples/content
	$(GO) run ./examples/learn

clean:
	$(GO) clean ./...
	rm -rf results data
