GO ?= go

.PHONY: all build test race vet bench examples clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vsweep
	$(GO) run ./examples/multidevice
	$(GO) run ./examples/offload
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
	rm -rf results data
