GO ?= go

.PHONY: all build test race vet bench bench-fleet examples clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench: bench-fleet
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/fleet

# bench-fleet records the fleet engine's headline capacity number
# (device-slots/sec, plus the full streaming report) into the bench
# history artifact BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/qarvfleet -n 20000 -slots 500 -churn 0.001 -json > BENCH_fleet.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vsweep
	$(GO) run ./examples/multidevice
	$(GO) run ./examples/offload
	$(GO) run ./examples/streaming
	$(GO) run ./examples/allocators
	$(GO) run ./examples/fleet

clean:
	$(GO) clean ./...
	rm -rf results data
