package qarv

// Option configures a Session. Options are applied in order by
// NewSession, which then resolves scenario defaults and validates the
// assembled configuration exactly once.
type Option func(*sessionConfig)

// sessionConfig is the raw accumulation of options before NewSession
// resolves and validates it into a runnable Session.
type sessionConfig struct {
	scenario   *Scenario
	policy     Policy
	arrivals   ArrivalProcess
	service    ServiceProcess
	cost       CostModel
	utility    UtilityModel
	slots      int
	slotsSet   bool
	maxBacklog float64
	maxSet     bool
	content    *ContentProfile
	devices    []Device
	allocator  Allocator
	offload    *OffloadParams
	link       *LinkConfig
	dynamics   *LinkDynamics
	observers  []func(SlotEvent)
	seed       uint64
	seedSet    bool
	metrics    *MetricsRegistry
	recorder   *FlightRecorder
}

// WithScenario seeds the session from a calibrated Scenario: its cost,
// utility, service rate, horizon, and (unless overridden by WithPolicy)
// its drift-plus-penalty controller. Any other option applied alongside
// overrides the scenario's corresponding field.
func WithScenario(s *Scenario) Option {
	return func(c *sessionConfig) { c.scenario = s }
}

// WithContent grounds the session in a measured content profile
// (LoadContent/BuildContent): NewSession calibrates a scenario whose
// cost a(d) is the profile's measured stream-byte ladder and whose
// utility pa(d) is its measured PSNR ladder (NewContentScenario), then
// resolves it exactly like WithScenario. A scenario passed alongside
// supplies the control-side knobs (KneeSlot, ServiceFraction, Slots);
// the candidate depths come from the profile's measured ladder. Other
// options still override the resolved defaults. Not valid with
// WithOffload, which measures its own capture.
func WithContent(p *ContentProfile) Option {
	return func(c *sessionConfig) { c.content = p }
}

// WithPolicy sets the depth-selection policy driving the run.
func WithPolicy(p Policy) Option {
	return func(c *sessionConfig) { c.policy = p }
}

// WithArrivals sets the frame arrival process (default: one frame per
// slot, the paper's setting, when a scenario supplies the rest).
func WithArrivals(a ArrivalProcess) Option {
	return func(c *sessionConfig) { c.arrivals = a }
}

// WithService sets the per-slot service (device capacity) process.
func WithService(s ServiceProcess) Option {
	return func(c *sessionConfig) { c.service = s }
}

// WithCost sets the depth→workload cost model a(d).
func WithCost(m CostModel) Option {
	return func(c *sessionConfig) { c.cost = m }
}

// WithUtility sets the depth→quality utility model pa(d).
func WithUtility(u UtilityModel) Option {
	return func(c *sessionConfig) { c.utility = u }
}

// WithSlots sets the simulation horizon T.
func WithSlots(n int) Option {
	return func(c *sessionConfig) { c.slots = n; c.slotsSet = true }
}

// WithMaxBacklog bounds the queue; overflow drops work (single-device
// sessions only).
func WithMaxBacklog(b float64) Option {
	return func(c *sessionConfig) { c.maxBacklog = b; c.maxSet = true }
}

// WithDevices switches the session to a shared-service multi-device run:
// each device brings its own policy, cost, utility, and arrivals, and
// the session's service budget is split among them by the allocator
// (default: an equal, information-free split — see WithAllocator).
func WithDevices(devs ...Device) Option {
	return func(c *sessionConfig) { c.devices = append(c.devices, devs...) }
}

// WithAllocator selects how a multi-device session splits the shared
// per-slot edge budget across devices from their observed backlogs:
// EqualSplit (the default — the paper's information-free baseline),
// ProportionalBacklog, NewMaxWeight (longest queue first,
// work-conserving), or NewWeightedRoundRobin. Only valid together with
// WithDevices. Allocators may carry per-run state; build one session
// per run for reproducible sweeps.
func WithAllocator(a Allocator) Option {
	return func(c *sessionConfig) { c.allocator = a }
}

// WithOffload switches the session to the edge-offload scenario: octree
// streams over an emulated uplink, the controller stabilizing the
// transmit queue. WithSlots still applies; the remaining knobs live on
// OffloadParams (and WithLink).
func WithOffload(p OffloadParams) Option {
	return func(c *sessionConfig) { c.offload = &p }
}

// WithLink shapes the offload session's uplink exactly: BytesPerSlot
// (when positive) fixes the bandwidth, LatencySlots/JitterSlots/LossProb
// are used verbatim — zeros included, so lossless or zero-latency links
// are expressible — and Seed (when nonzero) drives the link's RNG
// independently of the capture seed. Shape values are validated at
// NewSession. Only valid together with WithOffload.
func WithLink(l LinkConfig) Option {
	return func(c *sessionConfig) { c.link = &l }
}

// WithLinkDynamics makes the offload session's uplink time-varying: the
// dynamics' BandwidthProcess (Markov-modulated good/bad capacity, a
// piecewise bandwidth trace loaded from CSV/JSON, mobility handoffs
// with outage gaps, or any custom process) retunes the link at the top
// of every slot, and the controller observes the transmit queue through
// the link's exact byte accounting. The static sizing (Bandwidth,
// BandwidthFraction, or WithLink's BytesPerSlot) still anchors V
// calibration; the process modulates the live link from there. Dynamics
// RNGs are reseeded from the session seed (or LinkDynamics.Seed when
// nonzero) at the start of every run, so WithSeed keeps reports
// byte-identical. Only valid together with WithOffload, and mutually
// exclusive with OffloadParams.BandwidthDrop.
func WithLinkDynamics(d *LinkDynamics) Option {
	return func(c *sessionConfig) { c.dynamics = d }
}

// WithSeed makes the session's stochastic components deterministic from
// one seed: NewSession derives a splittable RNG from it and reseeds, in
// a fixed documented order, every resolved component that implements
// Reseed(*RNG) — PoissonArrivals, NoisyService, and the random baseline
// policy among the built-ins (for sim sessions: policy, arrivals,
// service; for multi sessions: the shared service, then each device's
// policy and arrivals in device order). Offload sessions instead get
// OffloadParams.Seed replaced, which drives both the capture and the
// link RNG (an explicit WithLink seed still wins for the link); note
// offload runs normalize seed 0 to 1 — OffloadParams' zero-value
// convention — so WithSeed(0) and WithSeed(1) coincide there, while
// sim and multi sessions treat every seed value as distinct.
//
// Two sessions built with the same options and the same seed produce
// byte-identical reports. Reseeding happens once, at NewSession — a
// single session Run twice continues its RNG streams, so build one
// session per run for reproducible sweeps.
func WithSeed(seed uint64) Option {
	return func(c *sessionConfig) { c.seed = seed; c.seedSet = true }
}

// WithObserver registers a per-slot hook invoked synchronously from the
// run loop with every slot's decision and queue transition — streaming
// and tracing consumers subscribe here instead of post-processing full
// trajectories. Multiple observers are invoked in registration order.
func WithObserver(fn func(SlotEvent)) Option {
	return func(c *sessionConfig) { c.observers = append(c.observers, fn) }
}

// WithTelemetry attaches a metrics registry: the run loop folds its
// per-slot counters and sketch-backed histograms (sim_* series for sim
// and multi sessions, offload_* for offload sessions) into r. Telemetry
// never changes what the session computes — reports are byte-identical
// with and without it — and a session run with a nil registry pays only
// a pointer check per slot. Registries merge losslessly (Merge) and
// snapshot deterministically (Snapshot), so one registry may be shared
// across sessions or kept per run and folded afterwards.
func WithTelemetry(r *MetricsRegistry) Option {
	return func(c *sessionConfig) { c.metrics = r }
}

// WithFlightRecorder attaches a flight recorder: a fixed-size ring that
// captures slot-stamped span/event records from the run loop (slot
// phases, depth changes, drops, allocator decisions, link-rate changes)
// for export as JSON or a Chrome trace_event file. Like WithTelemetry,
// recording never perturbs the run. The recorder is concurrency-safe
// and may be shared across sessions; its ring keeps the newest records
// once full (see Dropped).
func WithFlightRecorder(fr *FlightRecorder) Option {
	return func(c *sessionConfig) { c.recorder = fr }
}
