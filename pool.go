package qarv

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"qarv/internal/experiments"
)

// SessionPool runs a batch of sessions concurrently over a fixed-size
// worker pool with deterministic result ordering: reports[i] always
// belongs to the i-th runner regardless of scheduling, so a concurrent
// sweep is byte-identical to the sequential loop it replaces (sessions
// must not share stateful policies or RNGs — give each its own, as
// NewSession-per-point sweeps naturally do).
//
// The first session error cancels the shared context, aborting the
// in-flight runs and skipping the unstarted ones, errgroup-style.
type SessionPool struct {
	workers int
	runners []Runner
}

// NewSessionPool builds a pool over the given runners. workers bounds
// concurrency; <= 0 takes GOMAXPROCS.
func NewSessionPool(workers int, runners ...Runner) *SessionPool {
	return &SessionPool{workers: workers, runners: runners}
}

// Add appends runners to the pool (not safe during Run).
func (p *SessionPool) Add(runners ...Runner) { p.runners = append(p.runners, runners...) }

// Len reports how many runners the pool holds.
func (p *SessionPool) Len() int { return len(p.runners) }

// Run executes every runner and returns their reports in submission
// order. On the first error the remaining work is canceled and that
// error (annotated with the failing session's index) is returned.
func (p *SessionPool) Run(ctx context.Context) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.runners) {
		workers = len(p.runners)
	}

	reports := make([]*Report, len(p.runners))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep, err := p.runners[i].Run(ctx)
				if err != nil {
					err = fmt.Errorf("qarv: session %d: %w", i, err)
					mu.Lock()
					// Prefer the first non-context error: a cancellation
					// fanned out to sibling workers (or observed by a
					// run racing the root-cause latch) must not mask the
					// worker error that caused it — mirroring the fleet
					// engine's shard-error handling.
					if firstErr == nil || (experiments.IsContextError(firstErr) && !experiments.IsContextError(err)) {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					continue
				}
				reports[i] = rep
			}
		}()
	}
	fed := 0
feed:
	for i := range p.runners {
		select {
		case jobs <- i:
			fed++
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if fed < len(p.runners) {
		// Cancellation stopped the feed before every session ran, so the
		// batch is incomplete. (A cancel arriving after all sessions were
		// fed and finished cleanly does NOT discard the batch —
		// errgroup-style, only worker errors and unstarted work count.)
		return nil, ctx.Err()
	}
	return reports, nil
}
