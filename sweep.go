package qarv

import (
	"context"

	"qarv/internal/experiments"
)

// ---------------------------------------------------------------------------
// Declarative sweeps (one experiment engine over sessions and fleets)
// ---------------------------------------------------------------------------

type (
	// Sweep is a declarative grid experiment: the cross product of its
	// axes over a calibrated scenario, executed concurrently on a
	// pluggable backend with per-cell seed derivation, so reports are
	// byte-identical at any worker count. Build with NewSweep, configure
	// the exported knobs (Workers, Backend, Slots, Seed), then Run.
	Sweep = experiments.Sweep
	// SweepAxis is one dimension of a sweep grid; axes cross in
	// declaration order with the last axis varying fastest.
	SweepAxis = experiments.SweepAxis
	// SweepAxisPoint is one value of a sweep axis: a label, an optional
	// numeric coordinate, and the cell mutation it applies.
	SweepAxisPoint = experiments.AxisPoint
	// SweepCell is the mutable per-cell configuration axis points and
	// Sweep.Configure hooks mutate before the backend runs the cell.
	SweepCell = experiments.SweepCell
	// SweepBackend executes resolved sweep cells: BackendPool runs each
	// cell in process, BackendFleet runs each cell as a session
	// population.
	SweepBackend = experiments.SweepBackend
	// SweepReport is the unified result of a sweep: one SweepRow per
	// grid cell, exportable as a trace.Table (CSV/JSON/ASCII chart).
	SweepReport = experiments.SweepReport
	// SweepRow is one grid cell's outcome: axis coordinates plus the
	// common metric set (utility, backlog, sojourn quantiles, verdict).
	SweepRow = experiments.SweepRow
	// SweepCoord locates a sweep row along one axis.
	SweepCoord = experiments.SweepCoord
	// SweepCellResult is a row's full backend result for drill-down.
	SweepCellResult = experiments.SweepCellResult
	// SweepNetwork names one capacity shape of a network axis.
	SweepNetwork = experiments.SweepNetwork
	// PolicySpec names one depth-policy candidate of a policy axis.
	PolicySpec = experiments.PolicySpec
)

// NewSweep validates typed axes into a runnable sweep over the
// calibrated scenario: the grid is their cross product, each cell
// resolved from the scenario defaults (proposed controller at the
// calibrated V, one-frame-per-slot arrivals, constant service at the
// calibrated rate) with every axis overriding its knob.
//
//	sw, _ := qarv.NewSweep(scn,
//	    qarv.AxisV(0.5, 1, 2),
//	    qarv.AxisNetwork(qarv.NetworkStatic(), qarv.NetworkMarkov(0.6)),
//	)
//	sw.Backend = qarv.BackendFleet(1000) // population-scale cells
//	rep, _ := sw.Run(ctx)                // rows in grid order
func NewSweep(s *Scenario, axes ...SweepAxis) (*Sweep, error) {
	return experiments.NewSweep(s, axes...)
}

// BackendPool returns the in-process sweep backend: each cell is one
// simulation run (single-device, or shared-budget multi-device when the
// cell carries an allocator), executed SessionPool-style across the
// sweep's workers.
func BackendPool() SweepBackend { return experiments.BackendPool() }

// BackendFleet returns the fleet sweep backend: each cell runs a
// population of the given session count (<= 0 takes 256) through the
// sharded fleet engine.
func BackendFleet(sessions int) SweepBackend { return experiments.BackendFleet(sessions) }

// SweepCellSeed derives the seed of one grid cell from a sweep seed —
// exposed so callers can reproduce any single cell out-of-band.
func SweepCellSeed(seed uint64, cell int) uint64 { return experiments.CellSeed(seed, cell) }

// Axis is the generic sweep-axis escape hatch: a named numeric axis
// whose apply function receives the cell and the point's value.
func Axis(name string, apply func(c *SweepCell, v float64) error, values ...float64) SweepAxis {
	return experiments.Axis(name, apply, values...)
}

// AxisV sweeps the Lyapunov tradeoff knob: each point runs the proposed
// controller at factor × the calibrated V.
func AxisV(factors ...float64) SweepAxis { return experiments.AxisV(factors...) }

// AxisServiceRate sweeps provisioning: each point scales the cell's
// base capacity by the fraction.
func AxisServiceRate(fractions ...float64) SweepAxis {
	return experiments.AxisServiceRate(fractions...)
}

// AxisArrivalRate sweeps offered load: each point replaces the paper's
// one-frame-per-slot arrivals with Poisson arrivals at the given mean.
func AxisArrivalRate(means ...float64) SweepAxis { return experiments.AxisArrivalRate(means...) }

// AxisSlots sweeps the horizon.
func AxisSlots(slots ...int) SweepAxis { return experiments.AxisSlots(slots...) }

// AxisPolicy sweeps the control policy over named policy factories (see
// SweepPolicyByName for the built-ins).
func AxisPolicy(specs ...PolicySpec) SweepAxis { return experiments.AxisPolicy(specs...) }

// SweepPolicyByName builds a built-in policy spec: "proposed", "max",
// "min", "random", "threshold", "oracle", or the learning-layer forms
// "predictive[:H]", "delayed[:L]", and "predictive-delayed[:L]" (the
// proposed controller extrapolated H slots ahead, observed L slots
// stale, or both composed). Unknown names error with the full
// enumeration (SweepPolicyNames).
func SweepPolicyByName(name string) (PolicySpec, error) { return experiments.PolicyByName(name) }

// AxisAllocator sweeps the shared-budget split strategy by allocator
// name (any AllocatorByName form, learned allocators included),
// switching cells to multi-device runs; pool backend only.
func AxisAllocator(names ...string) SweepAxis { return experiments.AxisAllocator(names...) }

// AxisContent sweeps the content asset: each point recalibrates the
// cell's scenario over that profile's measured stream-byte and PSNR
// ladders (NewContentScenario), keeping the sweep's control-side knobs
// so cells stay comparable across assets. Build the profiles up front
// with LoadContent so the asset pipeline runs once per asset.
func AxisContent(profiles ...*ContentProfile) SweepAxis {
	return experiments.AxisContent(profiles...)
}

// AxisViewDistance sweeps viewing distance: each point rebuilds the
// base asset's content profile with view-PSNR quality measured through
// a camera at that distance (meters) and recalibrates the cell's
// scenario over it — the viewpoint-dependent quality axis. Profiles
// resolve through the content cache, so each distance builds once per
// process.
func AxisViewDistance(base ContentConfig, distances ...float64) SweepAxis {
	return experiments.AxisViewDistance(base, distances...)
}

// AxisNetwork sweeps the network/capacity shape (NetworkStatic,
// NetworkMarkov, NetworkHandoff, NetworkTraceShape, or custom).
func AxisNetwork(nets ...SweepNetwork) SweepAxis { return experiments.AxisNetwork(nets...) }

// NetworkStatic is the constant-capacity sweep shape.
func NetworkStatic() SweepNetwork { return experiments.NetworkStatic() }

// NetworkMarkov is the mean-preserving Gilbert–Elliott fading sweep
// shape at the given volatility in [0, 1) (good = (1+v)×, bad = (1−v)×
// the base rate, symmetric 10-slot mean dwells).
func NetworkMarkov(volatility float64) SweepNetwork { return experiments.NetworkMarkov(volatility) }

// NetworkHandoff is the mobility sweep shape: base capacity modulated
// by the default handoff factor process.
func NetworkHandoff() SweepNetwork { return experiments.NetworkHandoff() }

// NetworkTraceShape replays a factor trace over the base capacity
// (clone-per-run, so concurrent cells never share replay state).
func NetworkTraceShape(tb *TraceBandwidth) SweepNetwork { return experiments.NetworkTrace(tb) }

// ---------------------------------------------------------------------------
// Context parity for the legacy sweep entry points
// ---------------------------------------------------------------------------

// NetworkSweepContext is NetworkSweep under a cancelable context,
// honored inside every shard's slot loops — no public sweep is
// uncancellable.
func NetworkSweepContext(ctx context.Context, s *Scenario, volatilities []float64, sessions, slots int, seed uint64) ([]NetworkSweepRow, error) {
	return experiments.NetworkSweepContext(ctx, s, volatilities, sessions, slots, seed)
}

// AllocatorSweepContext is AllocatorSweep under a cancelable context.
func AllocatorSweepContext(ctx context.Context, s *Scenario, specs []AllocDeviceSpec, budget float64, slots int, allocators []Allocator) ([]AllocatorSweepRow, error) {
	return experiments.AllocatorSweepContext(ctx, s, specs, budget, slots, allocators)
}

// FleetVSweepContext is FleetVSweep under a cancelable context, honored
// inside every shard's slot loops.
func FleetVSweepContext(ctx context.Context, s *Scenario, factors []float64, sessions, slots int, seed uint64) ([]FleetVSweepRow, error) {
	return experiments.FleetVSweepContext(ctx, s, factors, sessions, slots, seed)
}
