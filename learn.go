package qarv

import (
	"context"

	"qarv/internal/alloc"
	"qarv/internal/experiments"
	"qarv/internal/learn"
)

// ---------------------------------------------------------------------------
// Learning layer (online allocators + predictive display policy)
// ---------------------------------------------------------------------------

type (
	// Bandit is the EXP3 online-learning allocator: arms are discrete
	// backlog-tilt share configurations, rewarded per slot by observed
	// device utility minus a backlog penalty. Build with NewBandit or
	// AllocatorByName("bandit:ARMS").
	Bandit = learn.Bandit
	// Gradient is the projected-gradient online allocator: per-device
	// weights on the share simplex chase backlog pressure and utility
	// deficit with a decaying step. Build with NewGradient or
	// AllocatorByName("gradient:STEP").
	Gradient = learn.Gradient
	// PredictivePolicy wraps a depth policy with an EWMA motion model
	// over the backlog trajectory, extrapolating the observation one
	// control-loop delay ahead before deciding.
	PredictivePolicy = learn.Predictive
	// LaggedPolicy feeds a depth policy observations a fixed number of
	// slots stale — the controller across a delayed control loop.
	LaggedPolicy = learn.Lagged
	// LearnSweepParams configures the learning-layer ablation; zero
	// values take the documented defaults.
	LearnSweepParams = experiments.LearnSweepParams
	// LearnSweepReport is the ablation's seed-pinned outcome: raw
	// allocator and policy grids plus per-regime winner tables.
	LearnSweepReport = experiments.LearnSweepReport
	// LearnRegime names the winning strategy of one network regime.
	LearnRegime = experiments.LearnRegime
)

// Learning-layer defaults, re-exported for callers building learners
// directly.
const (
	DefaultBanditArms        = learn.DefaultArms
	DefaultGradientStep      = learn.DefaultStep
	DefaultPredictiveHorizon = learn.DefaultHorizon
	DefaultControlLag        = learn.DefaultLag
)

// NewBandit returns the EXP3 allocator over arms backlog-tilt share
// configurations (engines reseed it per run).
func NewBandit(arms int) *Bandit { return learn.NewBandit(arms) }

// NewGradient returns the projected-gradient allocator with the given
// step size (<= 0 takes DefaultGradientStep).
func NewGradient(step float64) *Gradient { return learn.NewGradient(step) }

// NewPredictivePolicy wraps inner with backlog extrapolation: horizon
// slots ahead (<= 0 takes DefaultPredictiveHorizon) at EWMA smoothing
// alpha (<= 0 takes the package default).
func NewPredictivePolicy(inner Policy, horizon, alpha float64) *PredictivePolicy {
	return learn.NewPredictive(inner, horizon, alpha)
}

// NewLaggedPolicy wraps inner with a lag-slot observation delay (<= 0
// takes DefaultControlLag).
func NewLaggedPolicy(inner Policy, lag int) *LaggedPolicy { return learn.NewLagged(inner, lag) }

// AllocatorNames lists every name AllocatorByName accepts — builtins
// plus registered parameterized forms — in display order.
func AllocatorNames() []string { return alloc.Names() }

// SweepPolicyNames lists every name SweepPolicyByName accepts, in
// display order.
func SweepPolicyNames() []string { return experiments.PolicyNames() }

// NetworkMarkovDwell is the slow-fading sweep shape: Gilbert–Elliott
// fading at the given volatility with mean state dwells of dwellSlots
// slots — the sustained-drift regime where predictive display pays.
func NetworkMarkovDwell(volatility, dwellSlots float64) SweepNetwork {
	return experiments.NetworkMarkovDwell(volatility, dwellSlots)
}

// LearnSweep runs the learning-layer ablation over a calibrated
// scenario: learned allocators against every static split strategy, and
// the predictive-display policy against the stock controller with and
// without control-loop delay, each crossed with the network axis. The
// report is byte-identical per seed at any worker count, and its regime
// tables name each network column's winner by the drift-plus-penalty
// score V·U − Q̄.
func LearnSweep(ctx context.Context, s *Scenario, params LearnSweepParams) (*LearnSweepReport, error) {
	return experiments.LearnSweep(ctx, s, params)
}
