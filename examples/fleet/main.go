// Fleet walkthrough: simulate thousands of independent AR devices in one
// run — the paper's distributed controller at deployment scale.
//
//  1. Calibrate one scenario (capture, models, service rate, V).
//  2. Describe the fleet as a weighted mix of device classes: mostly
//     well-provisioned proposed-controller devices, some on jittery
//     hardware, some behind bursty traffic.
//  3. Run 5,000 concurrent sessions with churn: devices leave mid-run
//     (per-slot hazard) and fresh ones take their seats.
//  4. Read the population off streaming quantile sketches — tail sojourn
//     and backlog percentiles, per-class stability verdicts — without
//     ever materializing a per-frame trajectory.
//
// Run: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. One calibrated scenario shared by every class (60k samples keeps
	// this instant; the models are immutable and safely shared by shards).
	// The knee is calibrated early (slot 100): under churn, a session
	// that departs before the controller's knee spends its whole life in
	// the ramp-up transient and is honestly classified as diverging — an
	// early knee keeps that transient short relative to mean lifetime.
	scn, err := qarv.NewScenario(qarv.ScenarioParams{Samples: 60_000, KneeSlot: 100})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated: service %.0f points/slot, V* = %.3g\n\n", scn.ServiceRate, scn.V)

	// 2. The device-class mix. Scenario.FleetProfile gives the proposed
	// controller against the calibrated rate; overriding a field varies
	// one dimension per class. Factories get a per-session RNG stream, so
	// stochastic classes decorrelate across the fleet automatically.
	steady := scn.FleetProfile("steady", 0.70, 1)

	jittery := scn.FleetProfile("jittery", 0.15, 1)
	rate := scn.ServiceRate
	jittery.NewService = func(rng *qarv.RNG) qarv.ServiceProcess {
		return &qarv.NoisyService{Mean: rate, Std: 0.15 * rate, RNG: rng}
	}

	bursty := scn.FleetProfile("bursty", 0.15, 1)
	bursty.NewArrivals = func(*qarv.RNG) qarv.ArrivalProcess {
		return &qarv.OnOffArrivals{OnSlots: 2, OffSlots: 2, PerSlotOn: 2}
	}

	// 3. 5,000 seats for 1,200 slots each with 0.1% per-slot churn: a
	// departing session's seat is immediately refilled by a new arrival,
	// so the concurrent population stays constant while thousands of
	// extra sessions churn through.
	fl, err := qarv.NewFleet(qarv.FleetSpec{
		Sessions: 5_000,
		Slots:    1_200,
		Churn:    0.001,
		Seed:     1,
		Profiles: []qarv.Profile{steady, jittery, bursty},
	})
	if err != nil {
		return err
	}
	rep, err := fl.Run(context.Background())
	if err != nil {
		return err
	}

	// 4. The merged report: everything below came out of O(1)-memory
	// sketches, so the same code scales to -n 1000000.
	fmt.Printf("sessions: %d (%d departed mid-run), %d device-slots in %v (%.1fM device-slots/sec)\n\n",
		rep.Total.Sessions, rep.Total.Departures, rep.Total.DeviceSlots,
		rep.Elapsed.Round(1_000_000), rep.DeviceSlotsPerSec/1e6)
	for _, p := range rep.PerProfile {
		fmt.Printf("%-8s %5d sessions | sojourn P50/P95/P99 %.0f/%.0f/%.0f slots | P95 backlog %.0f | %d stabilized, %d diverging\n",
			p.Name, p.Sessions, p.Sojourn.P50, p.Sojourn.P95, p.Sojourn.P99,
			p.Backlog.P95, p.Verdicts.Stabilized, p.Verdicts.Diverging)
	}

	// The tail tells the provisioning story the mean hides: the bursty
	// 15% of the fleet carries a visibly fatter sojourn tail and P95
	// backlog than the steady majority at near-identical mean utility.
	tot := rep.Total
	fmt.Printf("\nfleet: mean utility %.3f | sojourn P99 %.0f slots | max backlog %.0f\n",
		tot.Utility.Mean, tot.Sojourn.P99, tot.Backlog.Max)
	return nil
}
