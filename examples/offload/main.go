// Offload: the paper's delay model moved onto the network. Instead of
// rendering on the device, each frame's octree stream (occupancy bytes +
// delta-coded colors) is shipped over a finite uplink to an edge renderer.
// The controller's workload a(d) becomes the encoded stream size bytes(d)
// and the service rate the uplink bandwidth — the same closed-form
// decision of Eq. (3) now stabilizes the *transmit* queue.
//
// Mid-session the uplink loses half its bandwidth (handover/congestion);
// the controller sheds depth, keeps latency bounded, and recovers.
//
// Run: go run ./examples/offload
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sess, err := qarv.NewSession(qarv.WithOffload(qarv.OffloadParams{
		Samples:    60_000,
		Slots:      3000,
		KneeSlot:   250,
		Seed:       11,
		DropStart:  900,
		DropEnd:    1200,
		DropFactor: 0.5, // uplink halves for 300 slots
	}))
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	res := rep.Offload

	fmt.Println("edge-offload session (octree streams over an emulated uplink)")
	fmt.Printf("uplink bandwidth    %.0f B/slot (drops to 50%% during slots 900-1200)\n", res.Bandwidth)
	fmt.Printf("stream sizes        depth 5: %d B ... depth 10: %d B\n", res.Bytes[5], res.Bytes[10])
	fmt.Printf("calibrated V        %.4g\n", res.V)
	fmt.Println()
	fmt.Printf("verdict             %s\n", res.Verdict)
	fmt.Printf("mean depth          %.2f\n", res.MeanDepth)
	fmt.Printf("frames delivered    %d (lost %d to link-layer loss)\n", len(res.Latency), res.LossCount)
	fmt.Printf("mean latency        %.2f slots\n", res.MeanLatency)
	fmt.Printf("p95 latency         %.2f slots\n", res.P95Latency)

	// Depth response to the bandwidth drop.
	window := func(lo, hi int) float64 {
		var s float64
		for _, d := range res.Depth[lo:hi] {
			s += float64(d)
		}
		return s / float64(hi-lo)
	}
	fmt.Println()
	fmt.Printf("mean depth before drop   %.2f\n", window(400, 900))
	fmt.Printf("mean depth during drop   %.2f\n", window(950, 1200))
	fmt.Printf("mean depth recovered     %.2f  (backlog drained, quality restored)\n", window(2500, 3000))
	fmt.Println()
	fmt.Println("The bytes-domain controller behaves exactly like the on-device one:")
	fmt.Println("max quality while the uplink is cheap, graceful depth shedding when")
	fmt.Println("bandwidth vanishes, recovery when it returns — all from Eq. (3).")
	return nil
}
