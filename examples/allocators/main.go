// Allocators: the shared-edge budget split as a first-class policy.
//
// The paper's multi-device claim (§II) keeps every device fully
// distributed — each controller sees only its own backlog. But the edge
// server still decides how its per-slot budget is divided, and related
// work (Ren et al.; Chen et al., "Learn to Optimize Resource Allocation
// under QoS Constraint of AR") shows that split is the lever. This
// walkthrough builds a deliberately unfair fleet — one heavy device
// (3 frames/slot at 2× cost) among seven light ones — and runs it under
// every allocator:
//
//   - equal-split: the paper's information-free baseline. The heavy
//     device's minimum demand exceeds budget/8, so it diverges.
//   - proportional-backlog: shares follow queue lengths; the heavy
//     device attracts budget and the fleet stabilizes.
//   - max-weight: longest-queue-first, work-conserving; stabilizes
//     whenever any split can.
//   - weighted-round-robin: deficit rounds with demand-proportional
//     weights.
//
// Each device keeps its own drift-plus-penalty controller on purely
// local state throughout — only the server-side split changes.
//
// Run: go run ./examples/allocators
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:  60_000,
		Slots:    1000,
		KneeSlot: 250,
		Seed:     5,
	})
	if err != nil {
		return err
	}

	// The canonical heterogeneous fleet and the ablation over every
	// allocator (defaults: 1.25× the fleet's min-depth demand as budget).
	rows, err := qarv.AllocatorSweep(scn, nil, 0, 2000, nil)
	if err != nil {
		return err
	}

	fmt.Println("8 devices, one edge budget; device 0 is heavy (3 frames/slot at 2x cost)")
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("%-22s diverging=%d  total avg backlog=%10.0f  fleet mean sojourn=%6.2f slots\n",
			row.Allocator, row.Diverging, row.TotalTimeAvgBacklog, row.MeanSojourn)
		for _, d := range row.PerDevice {
			marker := " "
			if d.Verdict == "diverging" {
				marker = "!"
			}
			fmt.Printf("  %s device %d: %-11s avg backlog %10.0f  mean sojourn %6.2f\n",
				marker, d.Device, d.Verdict, d.TimeAvgBacklog, d.MeanSojourn)
		}
		fmt.Println()
	}

	// The same subsystem drives ad-hoc sessions: WithAllocator swaps the
	// split on any multi-device run.
	devs := make([]qarv.Device, 4)
	for i := range devs {
		ctrl, err := scn.Controller()
		if err != nil {
			return err
		}
		devs[i] = qarv.Device{
			Policy:   ctrl,
			Cost:     scn.Cost,
			Utility:  scn.Utility,
			Arrivals: &qarv.DeterministicArrivals{PerSlot: 1},
		}
	}
	sess, err := qarv.NewSession(
		qarv.WithScenario(scn),
		qarv.WithDevices(devs...),
		qarv.WithAllocator(qarv.NewMaxWeight()),
	)
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("session API: 4 homogeneous devices under %s -> %s, mean utility %.3f\n",
		rep.Multi.Allocator, rep.Verdict, rep.Multi.MeanTimeAvgUtility)

	// And the shared-uplink offload scenario: the same fleet contends
	// for one emulated uplink's serialization bandwidth.
	shared, err := qarv.SharedUplink(qarv.SharedUplinkParams{
		Devices:   3,
		Allocator: qarv.NewMaxWeight(),
		Samples:   60_000,
		Slots:     800,
		KneeSlot:  200,
		Seed:      5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("shared uplink: %d devices on %.0f bytes/slot under %s -> mean latency %.2f slots (p95 %.2f), %d lost\n",
		len(shared.PerDevice), shared.Bandwidth, shared.Allocator,
		shared.MeanLatency, shared.P95Latency, shared.LossCount)
	return nil
}
