// Networks: the dynamic-network subsystem end to end. Every other
// walkthrough idealizes the network as a fixed-capacity pipe; real AR
// links fade, follow measured traces, and hand off between cells — the
// regime the paper's "network-based applications" motivation and the
// related edge-MAR work actually target. This example runs the same
// calibrated controller through four network regimes, three ways:
//
//  1. Single sessions whose *service* is the network: the netem
//     bandwidth processes (constant, Markov good/bad fading, piecewise
//     trace replay, mobility handoffs) double as service processes, so
//     WithService plugs them straight into the slot loop.
//  2. An offload session whose *uplink* is the network: WithLinkDynamics
//     retunes the emulated link every slot while the controller
//     stabilizes the transmit queue in bytes.
//  3. The NetworkSweep ablation: a fleet per volatility point under a
//     mean-preserving capacity spread — same average bandwidth, rising
//     variance — showing quality degrade and tail backlog grow
//     monotonically with volatility.
//
// Run: go run ./examples/networks
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	scn, err := qarv.NewScenario(qarv.ScenarioParams{Samples: 60_000})
	if err != nil {
		return err
	}
	rate := scn.ServiceRate
	fmt.Printf("calibrated: service %.0f points/slot, V* = %.3g\n\n", rate, scn.V)

	// --- 1. One device, four networks -----------------------------------
	//
	// Each regime keeps the *mean* capacity at the calibrated rate; what
	// changes is how the capacity moves. The processes carry no RNG here
	// — WithSeed reaches them through the same Reseed hook as every
	// other stochastic component, so each run is reproducible.
	trace, err := qarv.NewTraceBandwidth([]qarv.TracePoint{
		{Slot: 0, BytesPerSlot: 1.2 * rate},
		{Slot: 200, BytesPerSlot: 0.8 * rate},
		{Slot: 400, BytesPerSlot: 1.0 * rate},
	}, 600)
	if err != nil {
		return err
	}
	networks := []struct {
		name string
		svc  qarv.ServiceProcess
	}{
		{"static", &qarv.ConstantService{Rate: rate}},
		{"markov", &qarv.MarkovBandwidth{
			GoodRate: 1.3 * rate, BadRate: 0.7 * rate,
			PGoodBad: 0.1, PBadGood: 0.1,
		}},
		{"trace", trace},
		{"handoff", &qarv.HandoffBandwidth{
			BaseRate:          rate,
			MeanIntervalSlots: 200,
			OutageSlots:       3,
			ScaleLo:           0.85,
			ScaleHi:           1.15,
		}},
	}
	fmt.Println("network   verdict      time-avg utility  time-avg backlog")
	for _, n := range networks {
		s, err := qarv.NewSession(
			qarv.WithScenario(scn),
			qarv.WithService(n.svc),
			qarv.WithSeed(7),
		)
		if err != nil {
			return err
		}
		rep, err := s.Run(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %-12s %16.3f %17.0f\n",
			n.name, rep.Verdict, rep.TimeAvgUtility, rep.TimeAvgBacklog)
	}

	// --- 2. Offload over a fading uplink --------------------------------
	//
	// The controller now ships octree streams (bytes) over the emulated
	// link; LinkDynamics retunes the link's serialization rate every
	// slot, and outage slots suspend it entirely. Already-scheduled
	// deliveries are never revised — the controller sees the backlog
	// through the link's exact byte accounting instead.
	offload := func(dyn *qarv.LinkDynamics) (*qarv.OffloadResult, error) {
		opts := []qarv.Option{
			qarv.WithOffload(qarv.OffloadParams{Samples: 60_000, KneeSlot: 200}),
			qarv.WithSeed(7),
		}
		if dyn != nil {
			opts = append(opts, qarv.WithLinkDynamics(dyn))
		}
		s, err := qarv.NewSession(opts...)
		if err != nil {
			return nil, err
		}
		rep, err := s.Run(ctx)
		if err != nil {
			return nil, err
		}
		return rep.Offload, nil
	}
	static, err := offload(nil)
	if err != nil {
		return err
	}
	faded, err := offload(&qarv.LinkDynamics{Process: &qarv.MarkovBandwidth{
		GoodRate: 1.3 * static.Bandwidth, BadRate: 0.5 * static.Bandwidth,
		PGoodBad: 0.05, PBadGood: 0.15,
	}})
	if err != nil {
		return err
	}
	fmt.Printf("\noffload uplink %-9s mean depth %.2f | mean latency %.1f slots | verdict %s\n",
		static.Network, static.MeanDepth, static.MeanLatency, static.Verdict)
	fmt.Printf("offload uplink %-9s mean depth %.2f | mean latency %.1f slots | verdict %s\n",
		faded.Network, faded.MeanDepth, faded.MeanLatency, faded.Verdict)
	fmt.Println("the fading uplink buys stability with depth: same controller, lower LOD.")

	// --- 3. The volatility cost curve -----------------------------------
	//
	// Mean-preserving spread: every point has the *same* average
	// capacity; only the variance differs. Quality still degrades and
	// the tail backlog still grows — bandwidth volatility is a resource
	// cost of its own, which is why dynamics belong in every scenario.
	rows, err := qarv.NetworkSweep(scn, []float64{0, 0.3, 0.6, 0.9}, 128, 0, 1)
	if err != nil {
		return err
	}
	fmt.Println("\nvolatility  mean utility  P95 backlog  diverging/sessions")
	for _, r := range rows {
		fmt.Printf("%10.1f %13.3f %12.0f  %d/%d\n",
			r.Volatility, r.MeanUtility, r.P95Backlog, r.Verdicts.Diverging, r.Sessions)
	}
	return nil
}
