// Vsweep: the Lyapunov tradeoff knob made visible. The drift-plus-penalty
// theory promises a utility gap shrinking as O(1/V) while the backlog
// grows as O(V). This example sweeps V around the calibrated V* — one
// Session per point, all of them run concurrently by a SessionPool with
// deterministic result ordering — and prints measured utility/backlog
// against the theoretical bounds — the ABL-V ablation.
//
// Run: go run ./examples/vsweep
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples: 60_000,
		Slots:   800,
		Seed:    1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated V* = %.4g (knee at slot %.0f)\n\n", scn.V, scn.Params.KneeSlot)

	// Horizon scales with the largest V so every run reaches steady state.
	const slots = 20_000
	factors := []float64{0.05, 0.2, 0.5, 1, 2, 4}

	// One session per sweep point — each with its own controller instance,
	// so the concurrent runs share no state and the pool's reports are
	// byte-identical to a sequential loop.
	controllers := make([]*qarv.Controller, len(factors))
	pool := qarv.NewSessionPool(0) // 0 workers = GOMAXPROCS
	for i, f := range factors {
		ctrl, err := scn.ControllerWithV(scn.V * f)
		if err != nil {
			return err
		}
		controllers[i] = ctrl
		s, err := qarv.NewSession(
			qarv.WithScenario(scn),
			qarv.WithPolicy(ctrl),
			qarv.WithSlots(slots),
		)
		if err != nil {
			return err
		}
		pool.Add(s)
	}
	reports, err := pool.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Println("   V/V*     avg utility    avg backlog      verdict      bound gap O(1/V)   bound Q O(V)")
	for i, rep := range reports {
		var gap, qBound float64
		if b, err := controllers[i].TheoreticalBounds(scn.ServiceRate); err == nil {
			gap, qBound = b.UtilityGap, b.BacklogBound
		}
		fmt.Printf("%7.2f  %14.4f  %13.0f  %11s  %17.3g  %13.3g\n",
			factors[i], rep.TimeAvgUtility, rep.TimeAvgBacklog, rep.Verdict,
			gap, qBound)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  * utility climbs toward its ceiling as V grows (gap ~ O(1/V)),")
	fmt.Println("  * the price is a backlog growing linearly in V (bound ~ O(V)),")
	fmt.Println("  * every setting stays stable — V only moves along the tradeoff.")
	return nil
}
