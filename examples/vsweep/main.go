// Vsweep: the Lyapunov tradeoff knob made visible. The drift-plus-penalty
// theory promises a utility gap shrinking as O(1/V) while the backlog
// grows as O(V). This example sweeps V around the calibrated V* and prints
// measured utility/backlog against the theoretical bounds, reproducing the
// ABL-V ablation of DESIGN.md.
//
// Run: go run ./examples/vsweep
package main

import (
	"fmt"
	"log"

	"qarv"
	"qarv/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples: 60_000,
		Slots:   800,
		Seed:    1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated V* = %.4g (knee at slot %.0f)\n\n", scn.V, scn.Params.KneeSlot)

	factors := []float64{0.05, 0.2, 0.5, 1, 2, 4}
	// Horizon scales with the largest V so every run reaches steady state.
	rows, err := experiments.VSweep(scn, factors, 20_000)
	if err != nil {
		return err
	}

	fmt.Println("   V/V*     avg utility    avg backlog      verdict      bound gap O(1/V)   bound Q O(V)")
	for i, r := range rows {
		fmt.Printf("%7.2f  %14.4f  %13.0f  %11s  %17.3g  %13.3g\n",
			factors[i], r.TimeAvgUtility, r.TimeAvgBacklog, r.Verdict,
			r.BoundUtilityGap, r.BoundBacklog)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  * utility climbs toward its ceiling as V grows (gap ~ O(1/V)),")
	fmt.Println("  * the price is a backlog growing linearly in V (bound ~ O(V)),")
	fmt.Println("  * every setting stays stable — V only moves along the tradeoff.")
	return nil
}
