// Sweep: the whole ablation story in one declarative call. Instead of a
// hand-written nested loop per study, qarv.NewSweep crosses typed axes
// — here the Lyapunov knob V against network volatility — into a grid
// of cells, runs every cell concurrently (each one a fleet of sessions
// on the fleet backend), and returns one unified report whose rows are
// byte-identical at any worker count thanks to per-cell seed
// derivation. The same grid is reachable from the command line:
//
//	qarvsweep -axis v=0.5,1,2 -axis net=static,markov:0.3,markov:0.6 \
//	          -backend fleet -sessions 64
//
// Run: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"qarv"
	"qarv/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples: 60_000,
		Slots:   800,
		Seed:    1,
	})
	if err != nil {
		return err
	}

	// Two axes, six cells: every V factor crossed with every network
	// shape. The network axis modulates each session's capacity around
	// the calibrated rate — NetworkMarkov(v) is the mean-preserving
	// Gilbert–Elliott spread of the ABL-NET ablation.
	sw, err := qarv.NewSweep(scn,
		qarv.AxisV(0.5, 1, 2),
		qarv.AxisNetwork(qarv.NetworkStatic(), qarv.NetworkMarkov(0.6)),
	)
	if err != nil {
		return err
	}
	sw.Backend = qarv.BackendFleet(32) // 32 sessions per cell
	// The knee scales with V: give the largest factor room to settle so
	// still-ramping trajectories aren't misread as diverging.
	sw.Slots = 3200
	sw.Seed = 1

	rep, err := sw.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("%d cells over %s × %s (backend %s)\n\n",
		len(rep.Rows), rep.Axes[0], rep.Axes[1], rep.Backend)
	headers, cells := rep.TextTable()
	if err := trace.RenderTextTable(os.Stdout, headers, cells); err != nil {
		return err
	}

	fmt.Println("\nReading the grid:")
	fmt.Println("  * down a column: utility climbs with V (the O(1/V) gap closing),")
	fmt.Println("  * across a row: volatility costs utility and fattens backlog tails")
	fmt.Println("    at every V — the two effects compose, which is exactly what a")
	fmt.Println("    cross-product study shows that two separate sweeps cannot.")
	return nil
}
