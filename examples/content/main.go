// Content: controller calibration over measured ladders instead of
// analytic models. qarv.LoadContent runs an asset through the full
// content pipeline — synthetic capture (or a .ply file), octree build,
// per-depth stream bytes, per-depth PSNR — and the resulting profile
// grounds everything above it: cost a(d) becomes the measured bytes of
// the depth-d stream, utility pa(d) the measured PSNR, and the service
// rate and V recalibrate in the bytes domain. The same profile then
// drives a single session and a two-asset sweep. From the command line:
//
//	qarvsim   -content loot
//	qarvfleet -content loot:0.6,soldier:0.4
//	qarvsweep -axis content=loot,soldier -axis v=0.5,1,2
//
// Run: go run ./examples/content
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"qarv"
	"qarv/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Measure two assets. LoadContent caches by configuration, so each
	// asset's capture/octree/PSNR pipeline runs once per process however
	// many scenarios consume it.
	profiles := make([]*qarv.ContentProfile, 0, 2)
	for _, asset := range []string{"loot", "soldier"} {
		prof, err := qarv.LoadContent(qarv.ContentConfig{
			Asset:   asset,
			Samples: 40_000,
			Seed:    1,
		})
		if err != nil {
			return err
		}
		profiles = append(profiles, prof)
	}

	// The measured ladder: every candidate depth's point count, exact
	// stream bytes, and PSNR against the full-depth cloud.
	fmt.Printf("measured ladder for %q:\n", profiles[0].Name())
	fmt.Println("  depth    points      bytes    PSNR (dB)")
	for _, row := range profiles[0].Ladder() {
		fmt.Printf("  %5d  %8d  %9d    %6.2f\n", row.Depth, row.Points, row.Bytes, row.PSNR)
	}

	// One content-backed session: the controller trades measured bytes
	// against measured decibels.
	sess, err := qarv.NewSession(
		qarv.WithContent(profiles[0]),
		qarv.WithSlots(800),
		qarv.WithSeed(1),
	)
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("\nsession over %q: verdict %s, time-avg PSNR utility %.2f dB, avg backlog %.0f bytes\n",
		profiles[0].Name(), rep.Verdict, rep.TimeAvgUtility, rep.TimeAvgBacklog)

	// The content axis makes assets a grid dimension: each column below
	// recalibrates over its asset's own ladders while V varies, so the
	// tradeoff curve is per-content, not per-model.
	scn, err := qarv.NewContentScenario(qarv.ScenarioParams{Slots: 800}, profiles[0])
	if err != nil {
		return err
	}
	sw, err := qarv.NewSweep(scn,
		qarv.AxisContent(profiles...),
		qarv.AxisV(0.5, 1, 2),
	)
	if err != nil {
		return err
	}
	sw.Seed = 1
	swRep, err := sw.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("\n%d cells over %s × %s:\n\n", len(swRep.Rows), swRep.Axes[0], swRep.Axes[1])
	headers, cells := swRep.TextTable()
	if err := trace.RenderTextTable(os.Stdout, headers, cells); err != nil {
		return err
	}

	fmt.Println("\nReading the grid: the two assets occupy different byte regimes,")
	fmt.Println("so the same V factor lands at different backlog/quality points —")
	fmt.Println("content is a real experimental dimension, not a label.")
	return nil
}
