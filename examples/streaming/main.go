// Streaming: an AR telepresence session under realistic stress — bursty
// frame arrivals (talk spurts) and a mid-session thermal-throttling window
// — the workload the paper's introduction motivates (real-time AR on
// mobile devices with time-varying compute).
//
// The example shows the controller absorbing both disturbances: depth
// drops during bursts and throttling, recovers afterwards, and the
// per-frame latency distribution stays bounded while "only max-Depth"
// would have overflowed.
//
// Run: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Calibrated scenario (synthetic capture + octree profile + V).
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:  60_000,
		Slots:    2400,
		KneeSlot: 200,
		Seed:     42,
	})
	if err != nil {
		return err
	}
	ctrl, err := scn.Controller()
	if err != nil {
		return err
	}

	// Telepresence traffic: 30-slot talk spurts at 2 frames/slot, 10-slot
	// pauses. Average load 1.5 frames/slot — heavier than Fig. 2.
	arrivals := &qarv.OnOffArrivals{OnSlots: 30, OffSlots: 10, PerSlotOn: 2}

	// Device capacity: jittery, with a thermal-throttling window at 60%
	// capacity between slots 1200 and 1600.
	service := &qarv.ModulatedService{
		Inner: &qarv.NoisyService{
			Mean: 2.2 * scn.ServiceRate, // headroom for the 1.5×-load bursts
			Std:  0.1 * scn.ServiceRate,
			RNG:  qarv.NewRNG(7),
		},
		Factor: func(t int) float64 {
			if t >= 1200 && t < 1600 {
				return 0.6
			}
			return 1
		},
	}

	// The Session composes the calibrated scenario with the stressed
	// arrivals and service; an observer watches the throttle window's
	// worst backlog live instead of post-processing the trajectory.
	var worstThrottled float64
	sess, err := qarv.NewSession(
		qarv.WithScenario(scn),
		qarv.WithPolicy(ctrl),
		qarv.WithArrivals(arrivals),
		qarv.WithService(service),
		qarv.WithObserver(func(e qarv.SlotEvent) {
			if e.Slot >= 1200 && e.Slot < 1600 && e.Backlog > worstThrottled {
				worstThrottled = e.Backlog
			}
		}),
	)
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	res := rep.Sim

	fmt.Printf("session verdict        %s\n", rep.Verdict)
	fmt.Printf("worst throttled queue  %.0f work units\n", worstThrottled)
	fmt.Printf("time-avg utility       %.3f\n", res.TimeAvgUtility)
	fmt.Printf("frames completed       %d\n", len(res.Completed))
	fmt.Printf("mean frame latency     %.2f slots\n", res.MeanSojourn)

	// Latency distribution.
	var p95 float64
	if len(res.Completed) > 0 {
		lat := make([]int, len(res.Completed))
		for i, c := range res.Completed {
			lat[i] = c.Sojourn
		}
		p95 = percentileInt(lat, 0.95)
	}
	fmt.Printf("p95 frame latency      %.0f slots\n", p95)

	// How the controller responded to the throttling window.
	fmt.Printf("mean depth normal      %.2f\n", meanDepth(res.Depth[400:1200]))
	fmt.Printf("mean depth throttled   %.2f  (slots 1200-1600, 60%% capacity)\n",
		meanDepth(res.Depth[1200:1600]))
	fmt.Printf("mean depth recovered   %.2f\n", meanDepth(res.Depth[1700:]))

	fmt.Println("\nDepth dipped through the throttle window and recovered after —")
	fmt.Println("quality adapted instead of the queue overflowing.")
	return nil
}

func meanDepth(depths []int) float64 {
	if len(depths) == 0 {
		return 0
	}
	var s float64
	for _, d := range depths {
		s += float64(d)
	}
	return s / float64(len(depths))
}

func percentileInt(xs []int, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion sort is fine at example scale.
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx])
}
