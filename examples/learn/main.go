// Learn: where online learning beats the paper's static control plane.
//
// The drift-plus-penalty controller (Eq. (3)) is reactive — each slot
// it observes Q(t) and solves a closed form. This walkthrough runs the
// layer above it, internal/learn, in the two places a fixed rule
// demonstrably leaves utility on the table:
//
//   - the shared-edge budget split: an EXP3 bandit over backlog-tilt
//     arms (arm 0 IS equal-split, high arms approximate max-weight)
//     and a projected-gradient ascent on the share simplex, both
//     learning from observed utilities and backlogs;
//   - the display decision under control delay: deciding on L-slot-old
//     state (delayed:L) versus extrapolating the backlog forward along
//     an EWMA velocity estimate first (predictive-delayed:L).
//
// qarv.LearnSweep crosses both against network regimes — static,
// fast-fading Markov, slow-fading Markov (long dwells), mobility
// handoffs — and ranks each regime stability-first: fewer diverging
// trajectories wins outright, the drift-plus-penalty score V·U − Q̄
// breaks ties. The findings this prints are seed-pinned in
// internal/experiments/learnsweep_test.go.
//
// Run: go run ./examples/learn
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:  40_000,
		Slots:    800,
		KneeSlot: 200,
		Seed:     3,
	})
	if err != nil {
		return err
	}

	// The canonical grid: six allocators (four static + two learned)
	// and three display policies across five network regimes.
	rep, err := qarv.LearnSweep(context.Background(), scn, qarv.LearnSweepParams{})
	if err != nil {
		return err
	}

	fmt.Printf("learning ablation (seed %d, V=%.3f, control lag %d slots)\n\n",
		rep.Seed, rep.V, rep.Lag)

	fmt.Println("allocator grid — 8 heterogeneous devices contend for one edge budget:")
	printRegimes(rep.AllocRegimes)

	fmt.Println("policy grid — the controller across a delayed control loop:")
	printRegimes(rep.PolicyRegimes)

	// The learned components are ordinary Allocators/Policies: plug a
	// bandit into any multi-device session the same way as maxweight.
	devs := make([]qarv.Device, 4)
	for i := range devs {
		ctrl, err := scn.Controller()
		if err != nil {
			return err
		}
		devs[i] = qarv.Device{
			Policy:   ctrl,
			Cost:     scn.Cost,
			Utility:  scn.Utility,
			Arrivals: &qarv.DeterministicArrivals{PerSlot: 1},
		}
	}
	sess, err := qarv.NewSession(
		qarv.WithScenario(scn),
		qarv.WithDevices(devs...),
		qarv.WithAllocator(qarv.NewBandit(qarv.DefaultBanditArms)),
		qarv.WithSeed(3),
	)
	if err != nil {
		return err
	}
	srep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("session API: 4 devices under %s -> %s, mean utility %.3f\n",
		srep.Multi.Allocator, srep.Verdict, srep.Multi.MeanTimeAvgUtility)
	return nil
}

// printRegimes lists each network column's winner with the full
// stability picture: strategies that kept every trajectory stable
// versus the diverging counts of those that did not.
func printRegimes(regimes []qarv.LearnRegime) {
	for _, r := range regimes {
		fmt.Printf("  %-22s winner %-22s score %12.4g", r.Net, r.Winner, r.Score)
		if r.RunnerUp != "" {
			fmt.Printf("  (runner-up %s, %.4g)", r.RunnerUp, r.RunnerUpScore)
		}
		fmt.Println()
		names := make([]string, 0, len(r.Diverging))
		for name := range r.Diverging {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if d := r.Diverging[name]; d > 0 {
				fmt.Printf("    ! %-20s %d diverging trajectories\n", name, d)
			}
		}
	}
	fmt.Println()
}
