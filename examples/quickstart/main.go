// Quickstart: the minimal end-to-end pipeline of the paper.
//
//  1. Generate a voxelized full-body capture (the 8i-dataset substitute).
//  2. Build its octree and read the per-depth workload profile a(d).
//  3. Build the drift-plus-penalty controller (Eq. (3)).
//  4. Run a short control session through the unified Session API,
//     watching each slot's decision live via an observer hook.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. One synthetic capture frame (~60k samples keeps this instant;
	// use 400k+ for 8i-scale clouds).
	cloud, err := qarv.GenerateBody(qarv.BodyConfig{
		SamplesTarget: 60_000,
		CaptureDepth:  10,
		Seed:          1,
	}, qarv.Pose{})
	if err != nil {
		return err
	}
	fmt.Printf("capture: %d voxels, bounds %v\n", cloud.Len(), cloud.Bounds().Size())

	// 2. Octree + workload profile. profile[d] = points rendered at depth
	// d = the work a(d) each frame enqueues when the controller picks d.
	tree, err := qarv.BuildOctree(cloud, 10)
	if err != nil {
		return err
	}
	profile := tree.Profile()
	fmt.Println("octree occupancy a(d):")
	for d := 5; d <= 10; d++ {
		fmt.Printf("  depth %2d: %7d points\n", d, profile[d])
	}

	// 3. Controller over R = {5..10} with quality pa(d) = log2(1+points).
	util, err := qarv.NewLogPointUtility(profile)
	if err != nil {
		return err
	}
	cost, err := qarv.NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		return err
	}
	depths := []int{5, 6, 7, 8, 9, 10}
	serviceRate := 0.8 * float64(profile[10]) // device renders 80% of a full frame per slot
	v, err := qarv.CalibrateV(50, serviceRate, qarv.ControllerConfig{
		Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		return err
	}
	ctrl, err := qarv.NewController(qarv.ControllerConfig{
		V: v, Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncontroller: V=%.4g calibrated for a knee at slot 50\n", v)

	// 4. One Session drives the whole control loop: one frame per slot,
	// fixed service, and an observer streaming each slot's decision as it
	// happens — no hand-rolled Lindley recursion, no post-processing.
	fmt.Println("\nslot  backlog      depth  note")
	sess, err := qarv.NewSession(
		qarv.WithPolicy(ctrl),
		qarv.WithArrivals(&qarv.DeterministicArrivals{PerSlot: 1}),
		qarv.WithCost(cost),
		qarv.WithUtility(util),
		qarv.WithService(&qarv.ConstantService{Rate: serviceRate}),
		qarv.WithSlots(100),
		qarv.WithObserver(func(e qarv.SlotEvent) {
			if e.Slot%10 == 0 || (e.Slot > 45 && e.Slot < 55) {
				note := ""
				if e.Depth < 10 {
					note = "<- backed off to protect the delay constraint"
				}
				fmt.Printf("%4d  %11.0f  %5d  %s\n", e.Slot, e.Backlog, e.Depth, note)
			}
		}),
	)
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("\nsession verdict: %s (time-avg utility %.3f)\n",
		rep.Verdict, rep.TimeAvgUtility)
	fmt.Println("The controller rides max quality while the queue is cheap, then")
	fmt.Println("drops depth exactly when the backlog threatens stability.")
	return nil
}
