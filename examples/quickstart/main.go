// Quickstart: the minimal end-to-end pipeline of the paper.
//
//  1. Generate a voxelized full-body capture (the 8i-dataset substitute).
//  2. Build its octree and read the per-depth workload profile a(d).
//  3. Build the drift-plus-penalty controller (Eq. (3)).
//  4. Drive a short control loop by hand and watch the depth adapt to the
//     backlog.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. One synthetic capture frame (~60k samples keeps this instant;
	// use 400k+ for 8i-scale clouds).
	cloud, err := qarv.GenerateBody(qarv.BodyConfig{
		SamplesTarget: 60_000,
		CaptureDepth:  10,
		Seed:          1,
	}, qarv.Pose{})
	if err != nil {
		return err
	}
	fmt.Printf("capture: %d voxels, bounds %v\n", cloud.Len(), cloud.Bounds().Size())

	// 2. Octree + workload profile. profile[d] = points rendered at depth
	// d = the work a(d) each frame enqueues when the controller picks d.
	tree, err := qarv.BuildOctree(cloud, 10)
	if err != nil {
		return err
	}
	profile := tree.Profile()
	fmt.Println("octree occupancy a(d):")
	for d := 5; d <= 10; d++ {
		fmt.Printf("  depth %2d: %7d points\n", d, profile[d])
	}

	// 3. Controller over R = {5..10} with quality pa(d) = log2(1+points).
	util, err := qarv.NewLogPointUtility(profile)
	if err != nil {
		return err
	}
	cost, err := qarv.NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		return err
	}
	depths := []int{5, 6, 7, 8, 9, 10}
	serviceRate := 0.8 * float64(profile[10]) // device renders 80% of a full frame per slot
	v, err := qarv.CalibrateV(50, serviceRate, qarv.ControllerConfig{
		Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		return err
	}
	ctrl, err := qarv.NewController(qarv.ControllerConfig{
		V: v, Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncontroller: V=%.4g calibrated for a knee at slot 50\n", v)

	// 4. Hand-rolled control loop: one frame per slot, fixed service.
	var queue qarv.Backlog
	fmt.Println("\nslot  backlog      depth  note")
	for t := 0; t < 100; t++ {
		q := queue.Level()
		d := ctrl.Decide(t, q) // d*(t) = argmax V·pa(d) − Q(t)·a(d)
		queue.Step(cost.FrameCost(d), serviceRate)
		if t%10 == 0 || (t > 45 && t < 55) {
			note := ""
			if d < 10 {
				note = "<- backed off to protect the delay constraint"
			}
			fmt.Printf("%4d  %11.0f  %5d  %s\n", t, q, d, note)
		}
	}
	fmt.Println("\nThe controller rides max quality while the queue is cheap, then")
	fmt.Println("drops depth exactly when the backlog threatens stability.")
	return nil
}
