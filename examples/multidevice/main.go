// Multidevice: the paper's "fully distributed" claim (§II) under
// contention. Four AR devices share one edge server's rendering budget.
// Each runs its own drift-plus-penalty controller on purely local state —
// its own backlog — with no coordination, no knowledge of the other
// queues, and no side information, exactly as the paper argues the
// closed-form decision permits.
//
// The example verifies that every device independently stabilizes and
// that their depth choices converge to a fair share of the budget.
//
// Run: go run ./examples/multidevice
package main

import (
	"context"
	"fmt"
	"log"

	"qarv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const devices = 4

	scn, err := qarv.NewScenario(qarv.ScenarioParams{
		Samples:  60_000,
		Slots:    2000,
		KneeSlot: 300,
		Seed:     5,
	})
	if err != nil {
		return err
	}

	devs := make([]qarv.Device, devices)
	for i := range devs {
		// Each device gets its own controller instance (local state only).
		ctrl, err := scn.Controller()
		if err != nil {
			return err
		}
		devs[i] = qarv.Device{
			Policy:   ctrl,
			Cost:     scn.Cost,
			Utility:  scn.Utility,
			Arrivals: &qarv.DeterministicArrivals{PerSlot: 1},
		}
	}

	// WithDevices switches the session to the shared-budget multi-device
	// run; the scenario supplies the default edge budget of devices × the
	// single-device rate, split equally with no backlog awareness
	// (information-free sharing).
	sess, err := qarv.NewSession(qarv.WithScenario(scn), qarv.WithDevices(devs...))
	if err != nil {
		return err
	}
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}
	res := rep.Multi

	fmt.Printf("edge budget: %.0f points/slot shared by %d devices (no coordination)\n\n",
		float64(devices)*scn.ServiceRate, devices)
	fmt.Println("device  verdict     avg utility  avg backlog  final backlog")
	for i, r := range res.PerDevice {
		verdict, err := r.Verdict()
		if err != nil {
			return err
		}
		fmt.Printf("%6d  %-10s  %11.3f  %11.0f  %13.0f\n",
			i, verdict, r.TimeAvgUtility, r.TimeAvgBacklog, r.FinalBacklog)
	}
	fmt.Printf("\nfleet mean utility %.3f, total avg backlog %.0f\n",
		res.MeanTimeAvgUtility, res.TotalTimeAvgBacklog)
	fmt.Println("\nEvery device stabilized on local state alone — the closed-form")
	fmt.Println("decision of Eq. (3) needs no cross-device information.")
	return nil
}
