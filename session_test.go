package qarv

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qarv/internal/sim"
)

// cheapModels builds a tiny hand-rolled sim configuration that needs no
// synthetic capture — fast enough for million-slot cancellation runs.
func cheapModels(t *testing.T) (CostModel, UtilityModel) {
	t.Helper()
	profile := []int{1, 10, 100, 1000, 5000, 20000}
	cost, err := NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	util, err := NewLogPointUtility(profile)
	if err != nil {
		t.Fatal(err)
	}
	return cost, util
}

func cheapSessionOpts(t *testing.T, slots int) []Option {
	t.Helper()
	cost, util := cheapModels(t)
	p, err := NewThresholdPolicy([]int{2, 3, 4, 5}, 3000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	return []Option{
		WithPolicy(p),
		WithArrivals(&DeterministicArrivals{PerSlot: 1}),
		WithCost(cost),
		WithUtility(util),
		WithService(&ConstantService{Rate: 4000}),
		WithSlots(slots),
	}
}

func TestSessionOptionValidation(t *testing.T) {
	cost, util := cheapModels(t)
	fixed := &FixedDepth{Depth: 3}
	arr := &DeterministicArrivals{PerSlot: 1}
	svc := &ConstantService{Rate: 100}

	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"missing policy", []Option{WithArrivals(arr), WithCost(cost), WithUtility(util), WithService(svc), WithSlots(10)}, sim.ErrNilPolicy},
		{"missing arrivals", []Option{WithPolicy(fixed), WithCost(cost), WithUtility(util), WithService(svc), WithSlots(10)}, sim.ErrNilArrivals},
		{"missing slots", []Option{WithPolicy(fixed), WithArrivals(arr), WithCost(cost), WithUtility(util), WithService(svc)}, sim.ErrBadSlots},
		{"policy with devices", []Option{WithPolicy(fixed), WithDevices(Device{Policy: fixed, Cost: cost, Utility: util, Arrivals: arr}), WithService(svc), WithSlots(10)}, ErrOptionConflict},
		{"max backlog with devices", []Option{WithMaxBacklog(5), WithDevices(Device{Policy: fixed, Cost: cost, Utility: util, Arrivals: arr}), WithService(svc), WithSlots(10)}, ErrOptionConflict},
		{"link without offload", append(cheapSessionOpts(t, 10), WithLink(LinkConfig{BytesPerSlot: 100})), ErrLinkWithoutOffload},
		{"offload with policy", []Option{WithOffload(OffloadParams{}), WithPolicy(fixed)}, ErrOptionConflict},
		{"incomplete device", []Option{WithDevices(Device{Policy: fixed}), WithService(svc), WithSlots(10)}, sim.ErrNilCost},
		{"no devices no policy", nil, sim.ErrNilPolicy},
		{"allocator without devices", append(cheapSessionOpts(t, 10), WithAllocator(EqualSplit{})), ErrAllocatorWithoutDevices},
		{"allocator with offload", []Option{WithOffload(OffloadParams{}), WithAllocator(NewMaxWeight())}, ErrAllocatorWithoutDevices},
		{"dynamics without offload", append(cheapSessionOpts(t, 10), WithLinkDynamics(&LinkDynamics{Process: &ConstantBandwidth{Rate: 1}})), ErrDynamicsWithoutOffload},
		{"dynamics with devices", []Option{
			WithDevices(Device{Policy: fixed, Cost: cost, Utility: util, Arrivals: arr}),
			WithService(svc), WithSlots(10),
			WithLinkDynamics(&LinkDynamics{Process: &ConstantBandwidth{Rate: 1}}),
		}, ErrDynamicsWithoutOffload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSession(tc.opts...); !errors.Is(err, tc.want) {
				t.Errorf("NewSession = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := NewSession(WithOffload(OffloadParams{Character: "no-such-preset"})); err == nil {
		t.Error("bad offload character accepted")
	}
	// Offload sessions reject the same config mistakes the other kinds
	// do, at construction: non-positive horizons and malformed links.
	if _, err := NewSession(WithOffload(OffloadParams{}), WithSlots(-5)); !errors.Is(err, sim.ErrBadSlots) {
		t.Errorf("offload WithSlots(-5) = %v, want ErrBadSlots", err)
	}
	if _, err := NewSession(WithOffload(OffloadParams{}), WithLink(LinkConfig{LossProb: -0.5})); err == nil {
		t.Error("negative loss probability accepted at construction")
	}
	if _, err := NewSession(WithOffload(OffloadParams{}), WithLink(LinkConfig{LatencySlots: -1})); err == nil {
		t.Error("negative latency accepted at construction")
	}
	// Malformed dynamics are rejected at construction too.
	if _, err := NewSession(WithOffload(OffloadParams{}), WithLinkDynamics(&LinkDynamics{})); err == nil {
		t.Error("dynamics without a process accepted at construction")
	}
	if _, err := NewSession(WithOffload(OffloadParams{}),
		WithLinkDynamics(&LinkDynamics{Process: &MarkovBandwidth{GoodRate: -1}})); err == nil {
		t.Error("invalid markov dynamics accepted at construction")
	}
	if _, err := NewSession(
		WithOffload(OffloadParams{DropStart: 10, DropEnd: 20, DropFactor: 0.5}),
		WithLinkDynamics(&LinkDynamics{Process: &ConstantBandwidth{Rate: 1}})); err == nil {
		t.Error("BandwidthDrop combined with dynamics accepted at construction")
	}
}

func TestSessionCancellationSim(t *testing.T) {
	// A million-slot run must abort promptly on cancel. The observer
	// cancels deterministically mid-run; the loop polls once per
	// queueing.PollEvery slots, so the run must die long before the end.
	const slots = 1_000_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var lastSlot int
	opts := append(cheapSessionOpts(t, slots), WithObserver(func(e SlotEvent) {
		lastSlot = e.Slot
		if e.Slot == 500 {
			cancel()
		}
	}))
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if lastSlot > 10_000 {
		t.Errorf("run continued to slot %d after cancel at 500", lastSlot)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}

	// A pre-canceled context aborts before any meaningful work — even on
	// runs shorter than one cancellation-poll stride (the first slot
	// polls too).
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	for _, shortSlots := range []int{10, slots} {
		s2, err := NewSession(cheapSessionOpts(t, shortSlots)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Run(pre); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled %d-slot Run = %v", shortSlots, err)
		}
	}
}

func TestSessionCancellationMulti(t *testing.T) {
	cost, util := cheapModels(t)
	devs := make([]Device, 3)
	for i := range devs {
		devs[i] = Device{
			Policy:   &FixedDepth{Depth: 3},
			Cost:     cost,
			Utility:  util,
			Arrivals: &DeterministicArrivals{PerSlot: 1},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewSession(
		WithDevices(devs...),
		WithService(&ConstantService{Rate: 12000}),
		WithSlots(1_000_000),
		WithObserver(func(e SlotEvent) {
			if e.Slot == 200 && e.Device == 0 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi Run = %v, want context.Canceled", err)
	}
}

func TestSessionCancellationOffload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewSession(
		WithOffload(OffloadParams{
			Samples: 8000, CaptureDepth: 8, Depths: []int{4, 5, 6, 7, 8},
			KneeSlot: 50,
		}),
		WithSlots(2_000_000),
		WithObserver(func(e SlotEvent) {
			if e.Slot == 300 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("offload Run = %v, want context.Canceled", err)
	}
}

func TestSessionObserverSeesEverySlot(t *testing.T) {
	const slots = 2000
	var events []SlotEvent
	opts := append(cheapSessionOpts(t, slots), WithObserver(func(e SlotEvent) {
		events = append(events, e)
	}))
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != slots {
		t.Fatalf("observer saw %d events, want %d", len(events), slots)
	}
	for i, e := range events {
		if e.Slot != i || e.Device != -1 {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Backlog != rep.Sim.Backlog[i] || e.Depth != rep.Sim.Depth[i] ||
			e.Arrived != rep.Sim.Arrived[i] || e.Served != rep.Sim.Served[i] {
			t.Fatalf("event %d %+v disagrees with trajectory", i, e)
		}
	}
}

func TestSessionPoolDeterminism(t *testing.T) {
	// The same sweep run sequentially and at full concurrency must yield
	// byte-identical reports in the same order.
	build := func() []Runner {
		runners := make([]Runner, 8)
		for i := range runners {
			cost, util := cheapModels(t)
			opts := []Option{
				WithPolicy(&FixedDepth{Depth: 2 + i%4}),
				WithArrivals(&DeterministicArrivals{PerSlot: 1}),
				WithCost(cost),
				WithUtility(util),
				WithService(&ConstantService{Rate: 1000 * float64(i+1)}),
				WithSlots(5000),
			}
			s, err := NewSession(opts...)
			if err != nil {
				t.Fatal(err)
			}
			runners[i] = s
		}
		return runners
	}
	seq, err := NewSessionPool(1, build()...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSessionPool(4, build()...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("concurrent pool reports differ from sequential reports")
	}
	for i, rep := range par {
		if rep == nil || rep.Kind != KindSim {
			t.Fatalf("report %d = %+v", i, rep)
		}
	}
}

// failingRunner counts its runs and always errors.
type failingRunner struct{ runs int }

func (f *failingRunner) Run(context.Context) (*Report, error) {
	f.runs++
	return nil, errors.New("boom")
}

func TestSessionPoolFirstErrorCancels(t *testing.T) {
	slow, err := NewSession(cheapSessionOpts(t, 1_000_000)...)
	if err != nil {
		t.Fatal(err)
	}
	fail := &failingRunner{}
	pool := NewSessionPool(1, fail, slow, slow, slow)
	if _, err := pool.Run(context.Background()); err == nil {
		t.Fatal("pool swallowed the error")
	} else if !strings.Contains(err.Error(), "session 0") {
		t.Errorf("error %q does not identify the failing session", err)
	}
}

// canceledRunner simulates a session that aborted on a cancellation it
// observed mid-slot-loop, the way sim.RunContext wraps ctx.Err().
type canceledRunner struct{}

func (canceledRunner) Run(context.Context) (*Report, error) {
	return nil, fmt.Errorf("sim: canceled at slot 12: %w", context.Canceled)
}

// rootCauseRunner waits until a sibling's error has canceled the pool,
// then fails with the real (root-cause-shaped) error — deterministically
// reproducing the latch race where a cancellation-shaped failure wins.
type rootCauseRunner struct{}

func (rootCauseRunner) Run(ctx context.Context) (*Report, error) {
	<-ctx.Done()
	return nil, errors.New("device exploded")
}

// Regression (PR 5): a cancellation-shaped failure latched first must
// not mask the root-cause worker error — the pool prefers the first
// non-context error, mirroring the fleet engine's shard-error handling.
func TestSessionPoolRootCauseErrorPreferred(t *testing.T) {
	// Session 0 is fed first and parks until the pool is canceled, so
	// session 1's context-wrapped failure is always latched first (and
	// cancels the pool); session 0's real error arrives strictly
	// afterwards and must replace it.
	_, err := NewSessionPool(2, rootCauseRunner{}, canceledRunner{}).Run(context.Background())
	if err == nil {
		t.Fatal("pool swallowed the errors")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("root cause masked by a cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "device exploded") {
		t.Fatalf("error %q does not carry the root cause", err)
	}
	if !strings.Contains(err.Error(), "session 0") {
		t.Errorf("error %q does not identify the failing session", err)
	}
}

func TestSessionPoolLateCancelKeepsCompletedBatch(t *testing.T) {
	// A cancel arriving after every session finished must not discard
	// the successful batch (errgroup semantics: only worker errors and
	// unstarted work fail the pool).
	quick1, err := NewSession(cheapSessionOpts(t, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	quick2, err := NewSession(cheapSessionOpts(t, 100)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports, err := NewSessionPool(1, quick1, quick2).Run(ctx)
	if err != nil {
		t.Fatalf("pool = %v", err)
	}
	cancel()
	if len(reports) != 2 || reports[0] == nil || reports[1] == nil {
		t.Fatalf("reports = %v", reports)
	}

	// Whereas a pre-canceled context fails the pool: nothing was fed.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := NewSessionPool(1, quick1).Run(pre); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled pool = %v, want context.Canceled", err)
	}
}

func TestRunSimSessionEquivalence(t *testing.T) {
	// The deprecated flat entry point and the Session API must produce
	// identical results for identical configurations and seeds.
	cost, util := cheapModels(t)
	mk := func() SimConfig {
		p, err := NewRandomPolicy([]int{2, 3, 4, 5}, 42)
		if err != nil {
			t.Fatal(err)
		}
		return SimConfig{
			Policy:   p,
			Arrivals: &DeterministicArrivals{PerSlot: 1},
			Cost:     cost,
			Utility:  util,
			Service:  &ConstantService{Rate: 4000},
			Slots:    3000,
		}
	}
	legacy, err := RunSim(mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	s, err := NewSession(
		WithPolicy(cfg.Policy), WithArrivals(cfg.Arrivals), WithCost(cfg.Cost),
		WithUtility(cfg.Utility), WithService(cfg.Service), WithSlots(cfg.Slots),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, rep.Sim) {
		t.Error("RunSim and Session results differ for identical seeds")
	}
}

func TestSessionScenarioDefaultsAndOverrides(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Samples: 30_000, Slots: 400, KneeSlot: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Scenario alone: the calibrated controller and defaults.
	s, err := NewSession(WithScenario(scn))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindSim || len(rep.Sim.Backlog) != 400 {
		t.Fatalf("report = kind %v, %d slots", rep.Kind, len(rep.Sim.Backlog))
	}
	if rep.Verdict == VerdictDiverging {
		t.Error("calibrated scenario diverged")
	}

	// Overrides: a different policy and horizon on the same scenario.
	minP, err := NewMinDepthPolicy(scn.Params.Depths)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(WithScenario(scn), WithPolicy(minP), WithSlots(200))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Sim.Backlog) != 200 {
		t.Errorf("override slots = %d", len(rep2.Sim.Backlog))
	}
	if rep2.Sim.PolicyName != minP.Name() {
		t.Errorf("override policy = %q", rep2.Sim.PolicyName)
	}

	// Multi-device from a scenario: budget defaults to N× calibrated rate.
	ctrl1, err := scn.Controller()
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, err := scn.Controller()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p Policy) Device {
		return Device{Policy: p, Cost: scn.Cost, Utility: scn.Utility,
			Arrivals: &DeterministicArrivals{PerSlot: 1}}
	}
	s3, err := NewSession(WithScenario(scn), WithDevices(mk(ctrl1), mk(ctrl2)))
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := s3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Kind != KindMulti || len(rep3.Multi.PerDevice) != 2 {
		t.Fatalf("multi report = %+v", rep3)
	}
}

func TestSessionWithAllocator(t *testing.T) {
	cost, util := cheapModels(t)
	arr := &DeterministicArrivals{PerSlot: 1}
	devices := func() []Device {
		devs := make([]Device, 2)
		for i := range devs {
			devs[i] = Device{Policy: &FixedDepth{Depth: 3}, Cost: cost, Utility: util, Arrivals: arr}
		}
		return devs
	}
	// Default split is the information-free equal one.
	s, err := NewSession(WithDevices(devices()...),
		WithService(&ConstantService{Rate: 4000}), WithSlots(200))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Multi.Allocator != "equal-split" {
		t.Errorf("default allocator = %q", rep.Multi.Allocator)
	}
	// WithAllocator swaps the split; per-device frame accounting flows.
	s, err = NewSession(WithDevices(devices()...),
		WithService(&ConstantService{Rate: 4000}), WithSlots(200),
		WithAllocator(NewMaxWeight()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err = s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Multi.Allocator != "max-weight" {
		t.Errorf("allocator = %q, want max-weight", rep.Multi.Allocator)
	}
	for i, r := range rep.Multi.PerDevice {
		if len(r.Completed) == 0 {
			t.Errorf("device %d reports no completed frames", i)
		}
	}
}

func TestSessionOffloadWithLink(t *testing.T) {
	base := OffloadParams{
		Samples: 8000, CaptureDepth: 8, Depths: []int{4, 5, 6, 7, 8},
		KneeSlot: 50, Slots: 400, Seed: 3,
	}
	// The fixed bandwidth must sit below bytes(d_max) or V-calibration
	// (correctly) refuses: every depth stable means no tradeoff to tune.
	s, err := NewSession(WithOffload(base), WithLink(LinkConfig{
		BytesPerSlot: 20_000, LatencySlots: 1, JitterSlots: 0.1, LossProb: 0.001,
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindOffload || rep.Offload == nil {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Offload.Bandwidth != 20_000 {
		t.Errorf("bandwidth = %v, want the WithLink override", rep.Offload.Bandwidth)
	}
	if rep.TimeAvgBacklog <= 0 {
		t.Error("offload summary backlog missing")
	}

	// A lossless link is expressible: explicit zeros are honored rather
	// than re-defaulted to the offload's 1% loss / 2-slot latency.
	s2, err := NewSession(WithOffload(base), WithLink(LinkConfig{
		BytesPerSlot: 20_000, LatencySlots: 0, JitterSlots: 0, LossProb: 0,
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Offload.LossCount != 0 {
		t.Errorf("lossless link dropped %d frames", rep2.Offload.LossCount)
	}

	// The link seed is respected: different seeds, different traces.
	run := func(seed uint64) *OffloadResult {
		s, err := NewSession(WithOffload(base), WithLink(LinkConfig{
			BytesPerSlot: 20_000, JitterSlots: 2, LossProb: 0.2, Seed: seed,
		}))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Offload
	}
	a, b, c := run(1), run(2), run(1)
	if a.LossCount != c.LossCount || !reflect.DeepEqual(a.Latency, c.Latency) {
		t.Error("same link seed produced different traces")
	}
	if a.LossCount == b.LossCount && reflect.DeepEqual(a.Latency, b.Latency) {
		t.Error("different link seeds produced identical traces")
	}
}

func TestSessionOffloadWithDynamics(t *testing.T) {
	base := OffloadParams{
		Samples: 8000, CaptureDepth: 8, Depths: []int{4, 5, 6, 7, 8},
		KneeSlot: 50, Slots: 400, Seed: 3,
	}
	run := func(seed uint64) *OffloadResult {
		s, err := NewSession(
			WithOffload(base),
			WithLink(LinkConfig{BytesPerSlot: 20_000, LatencySlots: 1}),
			WithLinkDynamics(&LinkDynamics{Process: &MarkovBandwidth{
				GoodRate: 26_000, BadRate: 10_000,
				PGoodBad: 0.1, PBadGood: 0.2,
			}}),
			WithSeed(seed),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind != KindOffload || rep.Offload == nil {
			t.Fatalf("report = %+v", rep)
		}
		return rep.Offload
	}
	a, b, c := run(7), run(7), run(8)
	if a.Network != "markov-bw" {
		t.Errorf("network = %q", a.Network)
	}
	// WithSeed keeps the whole report byte-identical, dynamics included.
	if !reflect.DeepEqual(a.BacklogBytes, b.BacklogBytes) || !reflect.DeepEqual(a.Latency, b.Latency) ||
		a.LossCount != b.LossCount || a.MeanDepth != b.MeanDepth {
		t.Error("same seed produced different dynamic-offload reports")
	}
	// A different seed drives a different capacity path.
	if reflect.DeepEqual(a.BacklogBytes, c.BacklogBytes) {
		t.Error("different seeds produced identical capacity paths")
	}
	// LinkDynamics.Seed decouples the dynamics stream from the capture
	// seed: same session seed, different dynamics seed, different path.
	s, err := NewSession(
		WithOffload(base),
		WithLink(LinkConfig{BytesPerSlot: 20_000, LatencySlots: 1}),
		WithLinkDynamics(&LinkDynamics{
			Process: &MarkovBandwidth{GoodRate: 26_000, BadRate: 10_000, PGoodBad: 0.1, PBadGood: 0.2},
			Seed:    999,
		}),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(rep.Offload.BacklogBytes, a.BacklogBytes) {
		t.Error("LinkDynamics.Seed did not decouple the dynamics stream")
	}
}

// Regression (review finding): offload runs clone the configured
// dynamics before reseeding, so one Session can Run concurrently —
// previously all offload state was rebuilt per run and Dynamics was
// the first cross-run mutable exception.
func TestSessionOffloadDynamicsConcurrentRuns(t *testing.T) {
	s, err := NewSession(
		WithOffload(OffloadParams{
			Samples: 8000, CaptureDepth: 8, Depths: []int{4, 5, 6, 7, 8},
			KneeSlot: 50, Slots: 200, Seed: 3,
		}),
		WithLink(LinkConfig{BytesPerSlot: 20_000, LatencySlots: 1}),
		WithLinkDynamics(&LinkDynamics{Process: &MarkovBandwidth{
			GoodRate: 26_000, BadRate: 10_000, PGoodBad: 0.1, PBadGood: 0.2,
		}}),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	results := make([]*Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Offload.BacklogBytes, results[0].Offload.BacklogBytes) {
			t.Fatalf("concurrent run %d diverged from run 0", i)
		}
	}
}
