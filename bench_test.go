// Benchmark harness: one benchmark per paper artifact (see README.md for
// the artifact index; BenchmarkFleet lives in internal/fleet).
//
//	FIG1  -> BenchmarkFig1DepthResolution
//	FIG2A -> BenchmarkFig2aQueueDynamics
//	FIG2B -> BenchmarkFig2bControlActions
//	TBL-C -> BenchmarkControllerDecisionPerCandidates (the O(N) claim)
//	ABL-* -> BenchmarkAblation*
//
// Benches report the figures' headline numbers as custom metrics
// (ReportMetric) so `go test -bench=. -benchmem` regenerates the rows the
// paper reports; cmd/qarvfig writes the full series as CSV.
package qarv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"qarv/internal/experiments"
	"qarv/internal/quality"
	"qarv/internal/sim"
)

// benchParams mirrors the shared test scenario: smaller than the paper's
// capture but with the same occupancy growth law and the knee calibrated
// to slot 400.
func benchParams() ScenarioParams {
	return ScenarioParams{Samples: 60_000, Slots: 800, Seed: 1}
}

var (
	benchOnce sync.Once
	benchScn  *Scenario
	benchErr  error
)

func benchScenario(b *testing.B) *Scenario {
	b.Helper()
	benchOnce.Do(func() { benchScn, benchErr = NewScenario(benchParams()) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchScn
}

// BenchmarkFig1DepthResolution regenerates Fig. 1: the per-depth LOD
// ladder (d = 5..10) of one voxelized full-body frame. Metrics report the
// rendered point count and geometry PSNR per depth.
func BenchmarkFig1DepthResolution(b *testing.B) {
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 60_000, CaptureDepth: 10, Seed: 1}, Pose{})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := BuildOctree(cloud, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{5, 6, 7, 8, 9, 10} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var points int
			for i := 0; i < b.N; i++ {
				lod, err := tree.LOD(depth, LODCentroid)
				if err != nil {
					b.Fatal(err)
				}
				points = lod.Len()
			}
			b.ReportMetric(float64(points), "points")
			lod, _ := tree.LOD(depth, LODCentroid)
			rep, err := quality.CompareGeometry(cloud, lod)
			if err != nil {
				b.Fatal(err)
			}
			if rep.PSNR < 1e6 { // skip +Inf at full depth
				b.ReportMetric(rep.PSNR, "psnr_dB")
			}
		})
	}
}

// BenchmarkFig2aQueueDynamics regenerates Fig. 2(a): the 800-slot queue
// trajectories of Proposed / only max-Depth / only min-Depth. Metrics
// report each control's final backlog — the numbers the figure plots at
// t = 800 (max diverged, min at 0, Proposed bounded).
func BenchmarkFig2aQueueDynamics(b *testing.B) {
	s := benchScenario(b)
	var res *Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.CheckShape(); err != nil {
		b.Fatalf("figure shape violated: %v", err)
	}
	b.ReportMetric(res.Proposed.FinalBacklog, "proposed_finalQ")
	b.ReportMetric(res.MaxDepth.FinalBacklog, "maxdepth_finalQ")
	b.ReportMetric(res.MinDepth.FinalBacklog, "mindepth_finalQ")
}

// BenchmarkFig2bControlActions regenerates Fig. 2(b): the control action
// (# of depth) series. Metrics report the knee slot (the paper's
// "recognized optimized point" ≈ 400) and the Proposed scheme's mean
// depth before and after the knee.
func BenchmarkFig2bControlActions(b *testing.B) {
	s := benchScenario(b)
	var res *Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	knee := res.KneeSlot()
	b.ReportMetric(float64(knee), "knee_slot")
	var before, after float64
	for t := 0; t < knee; t++ {
		before += float64(res.Proposed.Depth[t])
	}
	for t := knee; t < len(res.Proposed.Depth); t++ {
		after += float64(res.Proposed.Depth[t])
	}
	if knee > 0 {
		b.ReportMetric(before/float64(knee), "depth_before_knee")
	}
	if rest := len(res.Proposed.Depth) - knee; rest > 0 {
		b.ReportMetric(after/float64(rest), "depth_after_knee")
	}
}

// BenchmarkControllerDecisionPerCandidates measures the per-slot decision
// cost as |R| grows — the paper's O(N) complexity claim (§II). ns/op must
// scale linearly in the candidate count.
func BenchmarkControllerDecisionPerCandidates(b *testing.B) {
	profile := make([]int, 22)
	for i := range profile {
		profile[i] = 1 << uint(i)
	}
	util, err := NewLogPointUtility(profile)
	if err != nil {
		b.Fatal(err)
	}
	cost, err := NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16, 21} {
		b.Run(fmt.Sprintf("candidates=%d", n), func(b *testing.B) {
			depths := make([]int, n)
			for i := range depths {
				depths[i] = i + 1
			}
			ctrl, err := NewController(ControllerConfig{
				V: 1000, Depths: depths, Utility: util, Cost: cost,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := 12345.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ctrl.Decide(i, q)
			}
		})
	}
}

// BenchmarkAblationVSweep regenerates ABL-V: the O(1/V) quality gap vs
// O(V) backlog tradeoff around the calibrated V*.
func BenchmarkAblationVSweep(b *testing.B) {
	s := benchScenario(b)
	var rows []experiments.VSweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.VSweep(s, []float64{0.1, 1, 3}, 4000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TimeAvgBacklog, fmt.Sprintf("avgQ_V=%.2gx", r.V/s.V))
	}
}

// BenchmarkAblationRateSweep regenerates ABL-RATE: robustness of the
// calibrated controller to service-rate shifts.
func BenchmarkAblationRateSweep(b *testing.B) {
	s := benchScenario(b)
	var rows []experiments.RateSweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RateSweep(s, []float64{0.7, 1.0, 1.3}, 1600)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanDepth, fmt.Sprintf("meanDepth_rate=%.1fx", r.RateFraction))
	}
}

// BenchmarkAblationUtilitySweep regenerates ABL-UTIL: stability must be
// utility-model independent after per-model V recalibration.
func BenchmarkAblationUtilitySweep(b *testing.B) {
	s := benchScenario(b)
	var rows []experiments.UtilitySweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.UtilitySweep(s, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.KneeSlot), "knee_"+r.Model)
	}
}

// BenchmarkMultiDevice regenerates ABL-MD: N distributed controllers
// sharing an edge budget, each on local state only.
func BenchmarkMultiDevice(b *testing.B) {
	s := benchScenario(b)
	var rows []experiments.MultiDeviceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.MultiDevice(s, 4, 1600)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, r := range rows {
		if r.TimeAvgBacklog > worst {
			worst = r.TimeAvgBacklog
		}
	}
	b.ReportMetric(worst, "worst_device_avgQ")
}

// BenchmarkOffloadUplink regenerates EXT-OFFLOAD: the controller driving
// octree streams (geometry + colors) over an emulated uplink; metrics
// report delivery latency and the knee behaviour in the bytes domain.
func BenchmarkOffloadUplink(b *testing.B) {
	var res *OffloadResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Offload(OffloadParams{
			Samples: 60_000, Slots: 800, KneeSlot: 400, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanLatency, "mean_latency_slots")
	b.ReportMetric(res.P95Latency, "p95_latency_slots")
	b.ReportMetric(res.MeanDepth, "mean_depth")
	b.ReportMetric(float64(res.Bytes[10]), "bytes_at_depth10")
}

// BenchmarkMultiQueueSharedBudget regenerates EXT-MQ: K streams under a
// shared budget priced by a virtual queue; the metric is achieved budget
// utilization (must approach but never exceed 1).
func BenchmarkMultiQueueSharedBudget(b *testing.B) {
	s := benchScenario(b)
	aMax := s.Cost.FrameCost(10)
	budget := 2.5 * aMax
	var utilization float64
	for i := 0; i < b.N; i++ {
		m, err := NewMultiQueueController(MultiQueueConfig{
			Streams: 4,
			Budget:  budget,
			Controller: ControllerConfig{
				V: s.V, Depths: s.Params.Depths, Utility: s.Utility, Cost: s.Cost,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		backlogs := make([]float64, 4)
		var total float64
		const slots = 2000
		for t := 0; t < slots; t++ {
			decisions, err := m.DecideAll(backlogs)
			if err != nil {
				b.Fatal(err)
			}
			total += m.TotalCost(decisions)
			for k, d := range decisions {
				backlogs[k] = maxf(backlogs[k]+s.Cost.FrameCost(d)-1.2*aMax, 0)
			}
		}
		utilization = total / slots / budget
	}
	b.ReportMetric(utilization, "budget_utilization")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkRenderLadder regenerates EXT-VIEW: the image-domain version of
// Fig. 1 (per-depth view PSNR of the LOD ladder rendered by the software
// splatter).
func BenchmarkRenderLadder(b *testing.B) {
	var rows []RenderLadderRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = RenderLadder(RenderLadderConfig{
			Samples: 40_000, CaptureDepth: 9, Depths: []int{5, 7, 9},
			Width: 160, Height: 160, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ViewPSNR, fmt.Sprintf("viewPSNR_d%d", r.Depth))
	}
}

// BenchmarkAutoTunerConvergence regenerates EXT-TUNE: the online V tuner
// converging the backlog to a target without knowing the service rate.
func BenchmarkAutoTunerConvergence(b *testing.B) {
	s := benchScenario(b)
	target := 100_000.0
	var finalBacklog float64
	for i := 0; i < b.N; i++ {
		tuner, err := NewAutoTuner(ControllerConfig{
			Depths: s.Params.Depths, Utility: s.Utility, Cost: s.Cost,
		}, target, 0.3, 40)
		if err != nil {
			b.Fatal(err)
		}
		cfg := s.SimConfig(tuner)
		cfg.Slots = 8000
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Mean backlog over the last quarter.
		var tail float64
		n := 0
		for t := 3 * len(res.Backlog) / 4; t < len(res.Backlog); t++ {
			tail += res.Backlog[t]
			n++
		}
		finalBacklog = tail / float64(n)
	}
	b.ReportMetric(finalBacklog, "steady_backlog")
	b.ReportMetric(target, "target_backlog")
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks (capacity planning for the pipeline stages)
// ---------------------------------------------------------------------------

// BenchmarkOctreeBuild measures octree construction over a full frame —
// the per-frame preprocessing cost on the capture side.
func BenchmarkOctreeBuild(b *testing.B) {
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 60_000, CaptureDepth: 10, Seed: 1}, Pose{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cloud.Len()), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOctree(cloud, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOctreeSerialize measures occupancy-stream encoding at depth 9 —
// the AR stream payload generation cost.
func BenchmarkOctreeSerialize(b *testing.B) {
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 60_000, CaptureDepth: 10, Seed: 1}, Pose{})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := BuildOctree(cloud, 10)
	if err != nil {
		b.Fatal(err)
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := tree.SerializeBytes(9)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "stream_bytes")
}

// BenchmarkPLYRoundTrip measures dataset IO (binary little-endian, the 8i
// format) for a full frame.
func BenchmarkPLYRoundTrip(b *testing.B) {
	cloud, err := GenerateBody(BodyConfig{SamplesTarget: 30_000, CaptureDepth: 9, Seed: 1}, Pose{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WritePLY(&buf, cloud, PLYBinaryLE); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadPLY(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation800Slots measures the full Fig. 2 simulation loop
// cost (three policies, 800 slots) — the harness's own overhead.
func BenchmarkSimulation800Slots(b *testing.B) {
	s := benchScenario(b)
	ctrl, err := s.Controller()
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.SimConfig(ctrl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
