module qarv

go 1.21
