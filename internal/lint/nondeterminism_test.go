package lint

import "testing"

func TestNondeterminismGolden(t *testing.T) {
	runGolden(t, "nondeterminism", []*Analyzer{NondeterminismAnalyzer},
		"qarv/internal/sim", "qarv/internal/stream")
}

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"qarv/internal/sim", true},
		{"qarv/internal/fleet", true},
		{"qarv/internal/experiments", true},
		{"qarv/internal/queueing", true},
		{"qarv/internal/netem", true},
		{"qarv/internal/policy", true},
		{"qarv/internal/alloc", true},
		{"qarv/internal/stats", true},
		{"qarv/internal/stream", false},
		{"qarv/internal/lint", false},
		{"qarv", false},
		{"qarv/cmd/qarvsim", false},
		{"example.com/other/internal/sim", true}, // suffix-matched, module-agnostic
	}
	for _, c := range cases {
		if got := IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
