package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrstyleAnalyzer enforces the repository's two error conventions.
// First, sentinel errors (package-level `var ErrFoo = errors.New(...)`)
// are part of the public contract — callers match them with
// errors.Is — so passing one to fmt.Errorf without %w severs the chain
// and silently breaks every errors.Is caller. Second, an error-
// returning call whose result is discarded outright (a bare expression
// statement) hides failures; discarding must be explicit (`_ = f()`)
// so the reader sees the decision. Best-effort output (the fmt print
// family, bytes.Buffer/strings.Builder writers) and deferred cleanup
// calls are exempt.
var ErrstyleAnalyzer = &Analyzer{
	Name: "errstyle",
	Doc: "wrap Err... sentinels with %w in fmt.Errorf, and never discard an error " +
		"implicitly — assign to _ when dropping one on purpose",
	Run: runErrstyle,
}

// runErrstyle applies both error-style checks to one package.
func runErrstyle(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkSentinelWrap(pass, x)
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call)
				}
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred cleanup (f.Close()) and fire-and-forget
				// goroutines are established idioms; their error
				// handling is the reviewer's call.
				return false
			}
			return true
		})
	}
	return nil
}

// checkSentinelWrap flags fmt.Errorf calls that pass an Err* sentinel
// without a %w verb in a literal format string.
func checkSentinelWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	if !isPkgFunc(pass, sel, "fmt", "Errorf") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	if strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name := sentinelName(pass, arg); name != "" {
			pass.Reportf(call.Pos(), "sentinel %s passed to fmt.Errorf without %%w; callers lose errors.Is matching", name)
			return
		}
	}
}

// sentinelName returns the name of a package-level error sentinel
// (an exported or unexported variable named Err*/err* of an error
// type) referenced by expr, or "".
func sentinelName(pass *Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch x := expr.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return ""
	}
	name := obj.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
		return ""
	}
	// Package-level only: local error variables are not sentinels.
	if obj.Parent() == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !isErrorType(obj.Type()) {
		return ""
	}
	return name
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// checkDiscardedError flags a bare call statement whose result set
// includes an error.
func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	if isBestEffortOutput(pass, call) {
		return
	}
	t := pass.Info.TypeOf(call)
	if t == nil {
		return
	}
	switch r := t.(type) {
	case *types.Tuple:
		for i := 0; i < r.Len(); i++ {
			if isErrorType(r.At(i).Type()) {
				pass.Reportf(call.Pos(), "call discards its error result; handle it or assign to _ explicitly")
				return
			}
		}
	default:
		if isErrorType(t) {
			pass.Reportf(call.Pos(), "call discards its error result; handle it or assign to _ explicitly")
		}
	}
}

// isBestEffortOutput exempts the fmt print family and never-failing
// in-memory writers (bytes.Buffer, strings.Builder) from the
// discarded-error check.
func isBestEffortOutput(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			return true
		}
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if named, ok := deref(recv).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "bytes.Buffer", "strings.Builder":
				return true
			}
		}
	}
	return false
}
