package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantExp is one `// want "regexp"` expectation during a golden run.
type wantExp struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// runGolden is the suite's analysistest: it loads the testdata module
// under testdata/<name>/src/qarv using the real module path (so
// package-path-sensitive rules like IsDeterministic fire exactly as
// they do on the repository), runs the given analyzers through the
// full driver (including //qarv:allow filtering), and checks the
// diagnostics against `// want "regexp"` comments: every want must be
// matched by a same-line diagnostic, and every diagnostic must be
// wanted.
func runGolden(t *testing.T, name string, analyzers []*Analyzer, pkgPaths ...string) {
	t.Helper()
	dir := filepath.Join("testdata", name, "src", "qarv")
	loader := NewLoaderAt("qarv", dir)
	var pkgs []*Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	wants := make(map[string][]*wantExp) // "file:line" → expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg, f, wants)
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.raw)
			}
		}
	}
}

// wantRE extracts the quoted expectations from a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses a file's want comments into the expectation map.
func collectWants(t *testing.T, pkg *Package, f *ast.File, wants map[string][]*wantExp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], &wantExp{re: re, raw: m[1]})
			}
		}
	}
}
