package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader errors.
var (
	// ErrNoGoMod marks a module root without a parseable go.mod.
	ErrNoGoMod = errors.New("lint: no module path found in go.mod")
	// ErrNotInModule marks an import path outside the loaded module
	// that the standard-library importer also does not know.
	ErrNotInModule = errors.New("lint: import path not in module or std")
	// ErrImportCycle marks a module-internal import cycle (the type
	// checker would reject it too; the loader reports it first).
	ErrImportCycle = errors.New("lint: import cycle")
)

// A Package is one loaded, type-checked module package: the parsed
// non-test files plus the type-checker's facts, everything an Analyzer
// needs.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test files, with comments, sorted by
	// file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info records the type-checking facts for Files.
	Info *types.Info
}

// A Loader parses and type-checks packages of one module using only
// the standard library: module-internal import paths resolve to
// directories under the module root, everything else is delegated to
// the compiler's source importer. Loaded packages are cached, so a
// whole-module load type-checks each package once.
type Loader struct {
	// ModulePath is the module's path from go.mod (import-path prefix
	// of every module package).
	ModulePath string
	// Dir is the module root directory.
	Dir string
	// Fset is the shared file set for all loaded packages.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module in dir (go.mod must
// name the module path).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return NewLoaderAt(modPath, dir), nil
}

// NewLoaderAt returns a loader treating dir as the root of a module
// named modPath, without consulting go.mod. The golden-file tests use
// it to present testdata trees under the real module's import paths.
func NewLoaderAt(modPath, dir string) *Loader {
	fset := token.NewFileSet()
	// The source importer type-checks std from $GOROOT/src; disabling
	// cgo selects the pure-Go variants (net's Go resolver and friends)
	// so packages like internal/stream load without a C toolchain.
	build.Default.CgoEnabled = false
	return &Loader{
		ModulePath: modPath,
		Dir:        dir,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%w: %s", ErrNoGoMod, gomod)
}

// LoadAll walks the module tree and loads every package (directory
// with non-test .go files), skipping testdata, hidden, and VCS
// directories — the same universe `go list ./...` sees. Packages come
// back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.Dir, p)
			if err != nil {
				return err
			}
			paths = append(paths, l.importPathFor(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a module-root-relative directory to its import
// path.
func (l *Loader) importPathFor(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + rel
}

// hasGoFiles reports whether dir contains at least one non-test .go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the module package with the given import
// path (cached across calls).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("%w through %s", ErrImportCycle, path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	if rel == "" {
		rel = "."
	}
	dir := filepath.Join(l.Dir, filepath.FromSlash(rel))

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: moduleImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test .go files of dir in file-name order,
// honoring build constraints (//go:build lines and _GOOS/_GOARCH file
// suffixes) for the host platform, exactly as `go build` would — a
// package with platform-split files must not type-check both variants
// of the same declaration at once.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
				continue
			}
			names = append(names, name)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImporter resolves module-internal import paths through the
// loader and everything else through the source importer.
type moduleImporter struct{ l *Loader }

// Import implements types.Importer.
func (m moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNotInModule, path, err)
	}
	return pkg, nil
}
