package lint

import (
	"go/ast"
	"go/types"
)

// ReseedCloneAnalyzer enforces the run-isolation contract on stochastic
// components: any named struct holding a *geom.RNG field owns mutable
// random state, so a Session run must be able to (a) re-derive that
// state from the run seed (Reseed) and (b) take an independent deep
// copy so concurrent runs never share a generator (Clone). A struct
// with the field but only half the contract is exactly how isolation
// rots — a new component gets Reseed for determinism, skips Clone, and
// the first concurrent sweep corrupts both runs' streams. Types whose
// RNG is deliberately run-scoped (constructed fresh inside the run and
// never reused) carry //qarv:allow reseedclone with that reason.
var ReseedCloneAnalyzer = &Analyzer{
	Name: "reseedclone",
	Doc: "structs holding *geom.RNG must implement both Reseed(*geom.RNG) and Clone " +
		"so per-run reseeding and run isolation cannot drift apart",
	Run: runReseedClone,
}

// runReseedClone checks every named struct type in the package.
func runReseedClone(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok || !holdsRNG(st) {
					continue
				}
				missing := missingContract(named)
				if missing != "" {
					pass.Reportf(ts.Pos(), "%s holds *geom.RNG but lacks %s; implement the full Reseed/Clone run-isolation contract", ts.Name.Name, missing)
				}
			}
		}
	}
	return nil
}

// holdsRNG reports whether the struct has a direct field of type
// *geom.RNG.
func holdsRNG(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isNamedIn(st.Field(i).Type(), "RNG", "internal/geom") {
			return true
		}
	}
	return false
}

// missingContract names the missing half(s) of the Reseed/Clone
// contract on *T, or returns "" when both are present (directly or
// promoted).
func missingContract(named *types.Named) string {
	ms := types.NewMethodSet(types.NewPointer(named))
	hasReseed := ms.Lookup(nil, "Reseed") != nil || lookupAnyPkg(ms, "Reseed")
	hasClone := ms.Lookup(nil, "Clone") != nil || lookupAnyPkg(ms, "Clone")
	switch {
	case !hasReseed && !hasClone:
		return "Reseed and Clone"
	case !hasReseed:
		return "Reseed"
	case !hasClone:
		return "Clone"
	}
	return ""
}

// lookupAnyPkg finds an exported method by name regardless of the
// querying package (Lookup(nil, ...) only sees exported names, which
// is what the contract methods are; this helper keeps the intent
// explicit if an unexported Reseed ever appears).
func lookupAnyPkg(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
