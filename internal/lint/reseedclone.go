package lint

import (
	"go/ast"
	"go/types"
)

// ReseedCloneAnalyzer enforces the run-isolation contract on stochastic
// components: any named struct holding a *geom.RNG field owns mutable
// random state, so a Session run must be able to (a) re-derive that
// state from the run seed (Reseed) and (b) take an independent deep
// copy so concurrent runs never share a generator (Clone). A struct
// with the field but only half the contract is exactly how isolation
// rots — a new component gets Reseed for determinism, skips Clone, and
// the first concurrent sweep corrupts both runs' streams. Types whose
// RNG is deliberately run-scoped (constructed fresh inside the run and
// never reused) carry //qarv:allow reseedclone with that reason.
var ReseedCloneAnalyzer = &Analyzer{
	Name: "reseedclone",
	Doc: "structs holding *geom.RNG must implement both Reseed(*geom.RNG) and Clone " +
		"so per-run reseeding and run isolation cannot drift apart",
	Run: runReseedClone,
}

// runReseedClone checks every named struct type in the package.
func runReseedClone(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok || !holdsRNG(st, nil) {
					continue
				}
				missing, promoted := missingContract(named)
				switch {
				case promoted != "":
					pass.Reportf(ts.Pos(), "%s holds *geom.RNG but lacks Clone: the promoted Clone returns %s, copying only the embedded state; declare Clone on %s itself", ts.Name.Name, promoted, ts.Name.Name)
				case missing != "":
					pass.Reportf(ts.Pos(), "%s holds *geom.RNG but lacks %s; implement the full Reseed/Clone run-isolation contract", ts.Name.Name, missing)
				}
			}
		}
	}
	return nil
}

// holdsRNG reports whether the struct holds a *geom.RNG directly or
// through embedded structs: a type embedding a learner embeds its
// generator, so it owns random state just as surely as a direct field.
// seen guards against embedding cycles.
func holdsRNG(st *types.Struct, seen map[*types.Struct]bool) bool {
	if seen[st] {
		return false
	}
	if seen == nil {
		seen = map[*types.Struct]bool{}
	}
	seen[st] = true
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isNamedIn(f.Type(), "RNG", "internal/geom") {
			return true
		}
		if !f.Embedded() {
			continue
		}
		ft := f.Type()
		if p, ok := ft.Underlying().(*types.Pointer); ok {
			ft = p.Elem()
		}
		if inner, ok := ft.Underlying().(*types.Struct); ok && holdsRNG(inner, seen) {
			return true
		}
	}
	return false
}

// missingContract checks the Reseed/Clone contract on *T. missing
// names the absent half(s) ("" when satisfied); promoted, when
// non-empty, is the return type of a Clone promoted from an embedded
// field — such a Clone copies only the embedded state, so it does NOT
// satisfy the contract (the classic leak: wrap a learner, inherit its
// Clone, and every "isolated" copy still shares the wrapper's state).
func missingContract(named *types.Named) (missing, promoted string) {
	ms := types.NewMethodSet(types.NewPointer(named))
	hasReseed := lookupMethod(ms, "Reseed") != nil
	hasClone := false
	if clone := lookupMethod(ms, "Clone"); clone != nil {
		if ret := cloneReturn(clone); returnsOuter(ret, named) {
			hasClone = true
		} else if hasReseed {
			return "", types.TypeString(ret, nil)
		}
	}
	switch {
	case !hasReseed && !hasClone:
		return "Reseed and Clone", ""
	case !hasReseed:
		return "Reseed", ""
	case !hasClone:
		return "Clone", ""
	}
	return "", ""
}

// lookupMethod finds a method by name regardless of the querying
// package (the contract methods are exported, but keeping the scan
// explicit means an unexported Reseed still counts).
func lookupMethod(ms *types.MethodSet, name string) *types.Selection {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return ms.At(i)
		}
	}
	return nil
}

// cloneReturn extracts a Clone method's single result type (nil when
// the signature doesn't have exactly one result).
func cloneReturn(sel *types.Selection) types.Type {
	sig, ok := sel.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return nil
	}
	return sig.Results().At(0).Type()
}

// returnsOuter reports whether a Clone result type is the contract
// holder itself (T or *T) — the only shape that yields a full copy.
func returnsOuter(ret types.Type, named *types.Named) bool {
	if ret == nil {
		return false
	}
	if p, ok := ret.(*types.Pointer); ok {
		ret = p.Elem()
	}
	rn, ok := ret.(*types.Named)
	return ok && rn.Obj() == named.Obj()
}
