package lint

import "testing"

func TestReseedCloneGolden(t *testing.T) {
	runGolden(t, "reseedclone", []*Analyzer{ReseedCloneAnalyzer}, "qarv/internal/policy")
}
