package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowDirectives pins the driver's //qarv:allow semantics on the
// directive fixture: reasoned directives for the right analyzer
// suppress same-line and next-line findings; a directive without a
// reason, with an unknown analyzer, or with no analyzer at all is
// itself a finding (from the unsuppressible "qarvallow"
// pseudo-analyzer) and leaves the underlying finding alive; a
// directive for the wrong analyzer suppresses nothing.
func TestAllowDirectives(t *testing.T) {
	loader := NewLoaderAt("qarv", filepath.Join("testdata", "directive", "src", "qarv"))
	pkg, err := loader.Load("qarv/internal/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{NondeterminismAnalyzer, CtxloopAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	type finding struct {
		line     int
		analyzer string
	}
	want := map[finding]string{
		// missingReason: the bad directive plus the surviving finding.
		{22, "qarvallow"}:      "carries no reason",
		{23, "nondeterminism"}: "wall-clock read time.Now",
		// unknownAnalyzer: typo-protection plus the surviving finding.
		{28, "qarvallow"}:      `unknown analyzer "nondetreminism"`,
		{29, "nondeterminism"}: "wall-clock read time.Now",
		// bareDirective: no analyzer named, finding survives.
		{34, "qarvallow"}:      "names no analyzer",
		{35, "nondeterminism"}: "wall-clock read time.Now",
		// wrongAnalyzer: a valid ctxloop allowance does not cover
		// nondeterminism.
		{41, "nondeterminism"}: "wall-clock read time.Now",
	}
	got := make(map[finding]string, len(diags))
	for _, d := range diags {
		got[finding{d.Pos.Line, d.Analyzer}] = d.Message
	}
	for f, substr := range want {
		msg, ok := got[f]
		if !ok {
			t.Errorf("missing expected finding at line %d (%s)", f.line, f.analyzer)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("finding at line %d (%s) = %q, want substring %q", f.line, f.analyzer, msg, substr)
		}
	}
	for f, msg := range got {
		if _, ok := want[f]; !ok {
			t.Errorf("unexpected finding at line %d (%s): %q — suppression failed?", f.line, f.analyzer, msg)
		}
	}
}
