package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// DoccheckAnalyzer is the godoc contract absorbed from the retired
// cmd/doccheck: every exported top-level identifier — functions,
// methods on exported types, type specs, const/var specs — must carry
// a doc comment. A doc comment on a grouped declaration block
// documents every spec in the block, as godoc renders it.
var DoccheckAnalyzer = &Analyzer{
	Name: "doccheck",
	Doc:  "exported identifiers must have doc comments (the repository's godoc contract)",
	Run:  runDoccheck,
}

// runDoccheck applies the doc-comment check to every file of the
// package.
func runDoccheck(pass *Pass) error {
	for _, f := range pass.Files {
		doccheckFile(f, func(pos token.Pos, what, name string) {
			pass.Reportf(pos, "exported %s %s is missing a doc comment", what, name)
		})
	}
	return nil
}

// doccheckFile reports each exported top-level declaration in f that
// lacks a doc comment. It is the single source of truth shared by the
// analyzer and the byte-compatible legacy dir mode.
func doccheckFile(f *ast.File, report func(pos token.Pos, what, name string)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				// A block-level comment documents every spec in the
				// group, as godoc renders it.
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), declWhat(d.Tok), name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package's godoc
// surface). Plain functions pass trivially.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// declWhat labels a value declaration for the report line.
func declWhat(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// DoccheckDir replicates the retired cmd/doccheck on one package
// directory, byte-for-byte: it parses the non-test files itself (no
// type checking) and prints one line per undocumented exported
// identifier in the old tool's exact format, returning the count.
// qarvcheck -doccheck drives it so the legacy CLI contract survives
// the merge.
func DoccheckDir(out io.Writer, dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	missing := 0
	// Deterministic order across the (rare) multi-package dirs; the
	// old tool ranged the map directly, which is byte-identical for
	// the usual single-package case.
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		files := make([]string, 0, len(pkgs[name].Files))
		for fname := range pkgs[name].Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			doccheckFile(pkgs[name].Files[fname], func(pos token.Pos, what, ident string) {
				p := fset.Position(pos)
				fmt.Fprintf(out, "%s:%d: exported %s %s is missing a doc comment\n", p.Filename, p.Line, what, ident)
				missing++
			})
		}
	}
	return missing, nil
}
