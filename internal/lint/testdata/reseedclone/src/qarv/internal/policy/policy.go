// Package policy is the reseedclone golden fixture.
package policy

import "qarv/internal/geom"

// Full carries both halves of the contract: clean.
type Full struct {
	rng *geom.RNG
}

// Reseed implements the per-run reseeding half.
func (f *Full) Reseed(rng *geom.RNG) { f.rng = rng }

// Clone implements the run-isolation half.
func (f *Full) Clone() *Full {
	c := *f
	c.rng = f.rng.Clone()
	return &c
}

// HalfReseed reseeds but cannot be isolated: the rot the analyzer
// exists to catch.
type HalfReseed struct { // want "HalfReseed holds \*geom.RNG but lacks Clone"
	RNG *geom.RNG
}

// Reseed implements half the contract.
func (h *HalfReseed) Reseed(rng *geom.RNG) { h.RNG = rng }

// HalfClone isolates but cannot be reseeded.
type HalfClone struct { // want "HalfClone holds \*geom.RNG but lacks Reseed"
	RNG *geom.RNG
}

// Clone implements half the contract.
func (h *HalfClone) Clone() *HalfClone {
	c := *h
	return &c
}

// Naked holds random state with neither half.
type Naked struct { // want "Naked holds \*geom.RNG but lacks Reseed and Clone"
	RNG *geom.RNG
}

// Plain has no RNG: the contract does not apply, a lone Clone is fine.
type Plain struct {
	Depth int
}

// Clone is an ordinary deep copy, no contract implied.
func (p *Plain) Clone() *Plain {
	c := *p
	return &c
}

// Wrapped inherits Reseed and Clone by promotion, but the promoted
// Clone returns *Full — a copy of the embedded state only, with
// Wrapped's own rng still shared. The analyzer must reject it.
type Wrapped struct { // want "Wrapped holds \*geom.RNG but lacks Clone: the promoted Clone returns \*qarv/internal/policy.Full"
	Full
	rng *geom.RNG
}

// Learner mirrors internal/learn's bandit shape: weights plus a
// generator behind the full contract. Clean.
type Learner struct {
	rng     *geom.RNG
	weights []float64
}

// Reseed implements the per-run reseeding half.
func (l *Learner) Reseed(rng *geom.RNG) { l.rng = rng }

// Clone implements the run-isolation half.
func (l *Learner) Clone() *Learner {
	c := *l
	c.rng = l.rng.Clone()
	c.weights = append([]float64(nil), l.weights...)
	return &c
}

// TunedLearner embeds the learner — no direct RNG field, but it owns
// the generator transitively, and the promoted Clone yields a *Learner
// whose caller-visible TunedLearner state is never copied. The
// embedded-RNG case the strengthened analyzer exists to catch.
type TunedLearner struct { // want "TunedLearner holds \*geom.RNG but lacks Clone: the promoted Clone returns \*qarv/internal/policy.Learner"
	Learner
	Bonus float64
}

// WrappedLearner embeds the learner and declares its own Clone
// returning the outer type: the only promoted-contract shape that
// actually isolates. Clean.
type WrappedLearner struct {
	Learner
	Bonus float64
}

// Clone re-implements the run-isolation half over the whole struct.
func (w *WrappedLearner) Clone() *WrappedLearner {
	c := *w
	c.Learner = *w.Learner.Clone()
	return &c
}

// RunScoped's generator is constructed fresh inside each run, so the
// contract is waived with a reasoned directive.
//
//qarv:allow reseedclone run-scoped: constructed fresh per run, never shared
type RunScoped struct {
	rng *geom.RNG
}
