// Package policy is the reseedclone golden fixture.
package policy

import "qarv/internal/geom"

// Full carries both halves of the contract: clean.
type Full struct {
	rng *geom.RNG
}

// Reseed implements the per-run reseeding half.
func (f *Full) Reseed(rng *geom.RNG) { f.rng = rng }

// Clone implements the run-isolation half.
func (f *Full) Clone() *Full {
	c := *f
	c.rng = f.rng.Clone()
	return &c
}

// HalfReseed reseeds but cannot be isolated: the rot the analyzer
// exists to catch.
type HalfReseed struct { // want "HalfReseed holds \*geom.RNG but lacks Clone"
	RNG *geom.RNG
}

// Reseed implements half the contract.
func (h *HalfReseed) Reseed(rng *geom.RNG) { h.RNG = rng }

// HalfClone isolates but cannot be reseeded.
type HalfClone struct { // want "HalfClone holds \*geom.RNG but lacks Reseed"
	RNG *geom.RNG
}

// Clone implements half the contract.
func (h *HalfClone) Clone() *HalfClone {
	c := *h
	return &c
}

// Naked holds random state with neither half.
type Naked struct { // want "Naked holds \*geom.RNG but lacks Reseed and Clone"
	RNG *geom.RNG
}

// Plain has no RNG: the contract does not apply, a lone Clone is fine.
type Plain struct {
	Depth int
}

// Clone is an ordinary deep copy, no contract implied.
func (p *Plain) Clone() *Plain {
	c := *p
	return &c
}

// Wrapped satisfies the contract through promoted methods.
type Wrapped struct {
	Full
	rng *geom.RNG
}

// RunScoped's generator is constructed fresh inside each run, so the
// contract is waived with a reasoned directive.
//
//qarv:allow reseedclone run-scoped: constructed fresh per run, never shared
type RunScoped struct {
	rng *geom.RNG
}
