// Package geom is the reseedclone golden fixture's stand-in for the
// real qarv/internal/geom: the analyzer matches *geom.RNG fields by
// name and package suffix.
package geom

// RNG mirrors the real deterministic generator.
type RNG struct{ state uint64 }

// NewRNG mirrors the real constructor.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Clone mirrors the real deep copy.
func (r *RNG) Clone() *RNG {
	if r == nil {
		return nil
	}
	c := *r
	return &c
}
