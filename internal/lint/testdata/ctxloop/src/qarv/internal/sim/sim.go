// Package sim is the ctxloop golden fixture.
package sim

import (
	"context"

	"qarv/internal/queueing"
)

// Config carries the slot horizon.
type Config struct{ Slots int }

// The canonical pattern: poll the amortized checker every slot.
func runChecked(ctx context.Context, cfg Config) error {
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		if err := cancel.Check(); err != nil {
			return err
		}
	}
	return nil
}

// Direct ctx.Err polling is fine too.
func runCtxErr(ctx context.Context, cfg Config) error {
	for t := 0; t < cfg.Slots; t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Select on ctx.Done counts as a context check.
func runDone(ctx context.Context, cfg Config) error {
	for t := 0; t < cfg.Slots; t++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// Threading the context into the per-slot callee counts: the callee
// owns the cancellation check.
func runThreaded(ctx context.Context, cfg Config) {
	for t := 0; t < cfg.Slots; t++ {
		step(ctx, t)
	}
}

func step(ctx context.Context, t int) {}

// Handing the checker down counts the same way.
func runCheckerThreaded(ctx context.Context, cfg Config) {
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		stepChecked(cancel, t)
	}
}

func stepChecked(c *queueing.CancelCheck, t int) {}

// A slot loop with no cancellation path is the finding.
func runUncancellable(cfg Config) int {
	total := 0
	for t := 0; t < cfg.Slots; t++ { // want "slot loop neither polls queueing.CancelCheck nor checks a context"
		total += t
	}
	return total
}

// The fleet shape: induction variable named slot, condition-only for.
func runSeat(n int) int {
	total := 0
	slot := 0
	for slot < n { // want "slot loop neither polls queueing.CancelCheck nor checks a context"
		total += slot
		slot++
	}
	return total
}

// The poll may live in a nested loop (fleet polls per seat inside the
// shard's slot loop).
func runNested(ctx context.Context, cfg Config, seats int) error {
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		for s := 0; s < seats; s++ {
			if err := cancel.Check(); err != nil {
				return err
			}
		}
	}
	return nil
}

// An ordinary counting loop is not a slot loop.
func sum(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}
