// Package queueing is the ctxloop golden fixture's stand-in for the
// real qarv/internal/queueing: the analyzer matches CancelCheck by
// name and package suffix, so this stub exercises the same code path.
package queueing

import "context"

// CancelCheck mirrors the real amortized context poller.
type CancelCheck struct {
	ctx context.Context
}

// NewCancelCheck mirrors the real constructor.
func NewCancelCheck(ctx context.Context, every int) *CancelCheck {
	if ctx == nil {
		ctx = context.Background()
	}
	return &CancelCheck{ctx: ctx}
}

// Check mirrors the real poll.
func (c *CancelCheck) Check() error { return c.ctx.Err() }
