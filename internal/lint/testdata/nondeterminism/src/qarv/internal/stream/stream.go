// Package stream is the nondeterminism golden fixture for a package
// outside the deterministic set: wall-clock reads and math/rand are
// still findings (real sites carry //qarv:allow), but the map-order
// rules do not apply.
package stream

import "time"

func now() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

// Map iteration rules apply only inside the deterministic packages.
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
