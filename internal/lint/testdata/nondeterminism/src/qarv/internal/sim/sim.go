// Package sim is the nondeterminism golden fixture for a package
// inside the deterministic set (strict rules apply).
package sim

import (
	"fmt"
	"math/rand" // want "import of math/rand breaks seed reproducibility"
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() // want "wall-clock read time.Now"
}

func sinceStart(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

func legacyRand() int { return rand.Int() }

// Ordered output from a map without a sort: the classic leak.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration appends to \"keys\" without a subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

// Collect-then-sort is the sanctioned pattern.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice through a closure referencing the collected slice counts
// as the redeeming sort too.
func keysSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Nested map-range feeding a slice that is sorted afterwards is clean:
// both the outer and the inner range are redeemed by the sort.
func nestedSorted(groups map[string]map[string]int) []string {
	var all []string
	for _, inner := range groups {
		for k := range inner {
			all = append(all, k)
		}
	}
	sort.Strings(all)
	return all
}

// Order-insensitive accumulation is clean (float bit-drift is the
// reviewer's problem, not this analyzer's).
func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Map-to-map rewrites carry no order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A slice created inside the loop is per-iteration state, not ordered
// output.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Formatting inside a map range feeds output in iteration order.
func describe(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want "map iteration .* in iteration order"
		b.WriteString(fmt.Sprintf("%s=%d;", k, v))
	}
	return b.String()
}

// String concatenation accumulates in iteration order.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration concatenates strings in iteration order"
		s += k
	}
	return s
}

// Channel sends publish in iteration order.
func emit(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration sends on a channel in iteration order"
		ch <- k
	}
}
