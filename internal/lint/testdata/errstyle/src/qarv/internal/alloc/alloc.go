// Package alloc is the errstyle golden fixture.
package alloc

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrBadShare is an exported sentinel: callers match it with errors.Is.
var ErrBadShare = errors.New("alloc: bad share")

// errInternal is an unexported sentinel; the wrap contract applies to
// it just the same.
var errInternal = errors.New("alloc: internal")

// Wrapping a sentinel with %w preserves the errors.Is chain: clean.
func validateGood(v int) error {
	if v < 0 {
		return fmt.Errorf("%w: %d", ErrBadShare, v)
	}
	return nil
}

// Flattening a sentinel with %v severs the chain.
func validateBad(v int) error {
	if v < 0 {
		return fmt.Errorf("%v: %d", ErrBadShare, v) // want "sentinel ErrBadShare passed to fmt.Errorf without %w"
	}
	return nil
}

// The rule sees selector references to other packages' sentinels too.
func wrapStd(path string) error {
	return fmt.Errorf("open %s: %v", path, os.ErrNotExist) // want "sentinel ErrNotExist passed to fmt.Errorf without %w"
}

// Unexported sentinels get the same protection.
func wrapUnexported() error {
	return fmt.Errorf("context: %v", errInternal) // want "sentinel errInternal passed to fmt.Errorf without %w"
}

// A local variable named err is not a sentinel.
func localErr() error {
	err := errors.New("transient")
	return fmt.Errorf("wrap: %v", err)
}

// Discarding an error implicitly hides failures.
func removeQuiet(path string) {
	os.Remove(path) // want "call discards its error result"
}

// Multi-result calls are covered too.
func openQuiet(path string) {
	os.Open(path) // want "call discards its error result"
}

// Explicit discard states the decision: clean.
func removeExplicit(path string) {
	_ = os.Remove(path)
}

// Best-effort output and never-failing in-memory writers are exempt.
func output(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("done")
	buf.WriteString("ok")
	sb.WriteString("ok")
}

// Deferred cleanup is the reviewer's call, not the analyzer's.
func deferred(f *os.File) {
	defer f.Close()
}
