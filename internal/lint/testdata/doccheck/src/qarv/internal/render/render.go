// Package render is the doccheck golden fixture; the expected findings
// live in doccheck_test.go (trailing want comments would themselves
// count as doc comments on value specs).
package render

// Documented is documented.
type Documented struct{}

type Undocumented struct{}

// Grouped constants: the block comment documents every spec.
const (
	A = 1
	B = 2
)

var V = 3

// DocumentedFunc is documented.
func DocumentedFunc() {}

func UndocumentedFunc() {}

type hidden struct{}

// Exported methods on unexported types are not godoc surface.
func (h hidden) Exported() {}

// M is documented.
func (d Documented) M() {}

func (d Documented) N() {}

var (
	// W is documented by its own line.
	W = 4
	X = 5 // X is documented by an inline comment.
	Y = 6
)
