// Package sim is the //qarv:allow directive fixture; the expected
// findings live in directive_test.go (a want comment cannot share a
// line with the directive it asserts about).
package sim

import "time"

// A reasoned allow on the offending line suppresses the finding.
func allowedSameLine() time.Time {
	return time.Now() //qarv:allow nondeterminism fixture: wall-clock by design
}

// A reasoned allow on the line above suppresses too.
func allowedLineAbove() time.Time {
	//qarv:allow nondeterminism fixture: wall-clock by design
	return time.Now()
}

// No reason: the allowance is itself a finding and the underlying
// finding survives.
func missingReason() time.Time {
	//qarv:allow nondeterminism
	return time.Now()
}

// Unknown analyzer: a typo cannot silently disable nothing.
func unknownAnalyzer() time.Time {
	//qarv:allow nondetreminism fixture: typo in the analyzer name
	return time.Now()
}

// No analyzer at all.
func bareDirective() time.Time {
	//qarv:allow
	return time.Now()
}

// An allowance for one analyzer does not cover another's finding.
func wrongAnalyzer() time.Time {
	//qarv:allow ctxloop fixture: aimed at the wrong analyzer
	return time.Now()
}
