// Package lint is the repository's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus the custom
// analyzers that mechanically enforce the determinism, cancellation,
// and isolation contracts the bench/sweep methodology rests on. The
// cmd/qarvcheck multichecker drives every analyzer over the module;
// each analyzer also has an analysistest-style golden suite under
// testdata/.
//
// The framework mirrors go/analysis deliberately — Analyzer has Name,
// Doc, and Run(*Pass); Pass carries the type-checked package and a
// Report sink — so the suite can migrate to the real x/tools
// multichecker wholesale if the dependency ever lands. Until then the
// loader (load.go) type-checks the module with nothing outside the
// standard library.
//
// Findings are suppressed, one line at a time, by the directive
//
//	//qarv:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// driver enforces that every directive names a known analyzer and
// carries a non-empty reason; a malformed directive is itself a
// finding (see directive.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static-analysis pass: a name used in
// reports and //qarv:allow directives, a short contract statement, and
// the function that inspects a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is a one-paragraph statement of the contract the analyzer
	// enforces, shown by qarvcheck -list.
	Doc string
	// Run inspects one package through pass and reports findings via
	// pass.Reportf. A returned error aborts the whole check (reserved
	// for analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package to an analyzer's Run.
type Pass struct {
	// Analyzer is the pass's analyzer (for self-identification).
	Analyzer *Analyzer
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// Pkg is the type-checker's package object.
	Pkg *types.Package
	// Info holds the type-checking facts for Files.
	Info *types.Info
	// PkgPath is the package's import path within the module.
	PkgPath string

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a file position, the analyzer that
// produced it, and the human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the producing analyzer (matched by allow
	// directives).
	Analyzer string
	// Message describes the contract violation.
	Message string
}

// String renders the diagnostic in the canonical qarvcheck line format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full qarvcheck suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		CtxloopAnalyzer,
		ReseedCloneAnalyzer,
		ErrstyleAnalyzer,
		DoccheckAnalyzer,
	}
}

// Run executes the analyzers over the loaded packages, applies the
// //qarv:allow directives, and returns the surviving findings sorted
// by position. Malformed directives surface as findings from the
// pseudo-analyzer "qarvallow" and cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg, analyzers)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				report:   func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, filterAllowed(pkgDiags, dirs)...)
		diags = append(diags, dirs.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
