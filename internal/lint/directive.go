package lint

import (
	"go/token"
	"strings"
)

// AllowPrefix is the suppression-directive comment prefix. A directive
//
//	//qarv:allow <analyzer> <reason>
//
// on a line (or on the line directly above it) suppresses that
// analyzer's findings on the line. The reason is mandatory — an
// unexplained allowance is exactly the contract rot the suite exists
// to prevent — and the analyzer must be one qarvcheck knows, so typos
// cannot silently disable nothing.
const AllowPrefix = "//qarv:allow"

// allowAnalyzerName is the pseudo-analyzer that owns malformed-
// directive findings. It is not suppressible: a broken allow cannot
// allow itself.
const allowAnalyzerName = "qarvallow"

// directive is one parsed, well-formed allow directive.
type directive struct {
	file     string
	line     int
	analyzer string
}

// directiveSet is every directive in a package, plus the findings for
// the malformed ones.
type directiveSet struct {
	allows    []directive
	malformed []Diagnostic
}

// collectDirectives scans a package's comments for allow directives,
// validating each against the analyzer set.
func collectDirectives(pkg *Package, analyzers []*Analyzer) directiveSet {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var set directiveSet
	report := func(pos token.Position, msg string) {
		set.malformed = append(set.malformed, Diagnostic{Pos: pos, Analyzer: allowAnalyzerName, Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// //qarv:allowance or similar — not this directive.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "qarv:allow directive names no analyzer")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(pos, "qarv:allow directive names unknown analyzer "+quote(name))
					continue
				}
				if len(fields) < 2 {
					report(pos, "qarv:allow "+name+" carries no reason — every allowance must say why")
					continue
				}
				set.allows = append(set.allows, directive{file: pos.Filename, line: pos.Line, analyzer: name})
			}
		}
	}
	return set
}

// quote wraps a name in double quotes for a report message.
func quote(s string) string { return `"` + s + `"` }

// filterAllowed drops diagnostics covered by a directive on the same
// line or the line directly above.
func filterAllowed(diags []Diagnostic, dirs directiveSet) []Diagnostic {
	if len(dirs.allows) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool, 2*len(dirs.allows))
	for _, d := range dirs.allows {
		allowed[key{d.file, d.line, d.analyzer}] = true
		allowed[key{d.file, d.line + 1, d.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
