package lint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// doccheckFixtureDir is the fixture package shared by the byte-compat
// and analyzer-mode tests.
const doccheckFixtureDir = "testdata/doccheck/src/qarv/internal/render"

// doccheckLegacyOutput is the exact stdout the retired cmd/doccheck
// produced on the fixture (captured from the old binary before the
// merge). DoccheckDir must reproduce it byte for byte — that is the
// migration contract behind `qarvcheck -doccheck`.
const doccheckLegacyOutput = doccheckFixtureDir + "/render.go:9: exported type Undocumented is missing a doc comment\n" +
	doccheckFixtureDir + "/render.go:17: exported var V is missing a doc comment\n" +
	doccheckFixtureDir + "/render.go:22: exported function UndocumentedFunc is missing a doc comment\n" +
	doccheckFixtureDir + "/render.go:32: exported method N is missing a doc comment\n" +
	doccheckFixtureDir + "/render.go:38: exported var Y is missing a doc comment\n"

func TestDoccheckDirByteCompat(t *testing.T) {
	var out bytes.Buffer
	n, err := DoccheckDir(&out, doccheckFixtureDir)
	if err != nil {
		t.Fatalf("DoccheckDir: %v", err)
	}
	if n != 5 {
		t.Errorf("missing count = %d, want 5", n)
	}
	if out.String() != doccheckLegacyOutput {
		t.Errorf("output diverged from the retired cmd/doccheck:\ngot:\n%swant:\n%s", out.String(), doccheckLegacyOutput)
	}
}

// TestDoccheckAnalyzerMatchesLegacy pins the analyzer mode to the
// legacy dir mode: same files, same finding lines, same messages —
// only the framing (qarvcheck diagnostics vs. raw lines) differs.
func TestDoccheckAnalyzerMatchesLegacy(t *testing.T) {
	loader := NewLoaderAt("qarv", filepath.Join("testdata", "doccheck", "src", "qarv"))
	pkg, err := loader.Load("qarv/internal/render")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{DoccheckAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got bytes.Buffer
	for _, d := range diags {
		fmt.Fprintf(&got, "%s:%d: %s\n", filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Message)
	}
	if got.String() != doccheckLegacyOutput {
		t.Errorf("analyzer findings diverged from the legacy dir mode:\ngot:\n%swant:\n%s", got.String(), doccheckLegacyOutput)
	}
}

func TestDoccheckCleanDir(t *testing.T) {
	var out bytes.Buffer
	// The geom stub in the reseedclone fixture is fully documented.
	n, err := DoccheckDir(&out, "testdata/reseedclone/src/qarv/internal/geom")
	if err != nil {
		t.Fatalf("DoccheckDir: %v", err)
	}
	if n != 0 || out.Len() != 0 {
		t.Errorf("clean dir reported %d finding(s): %q", n, out.String())
	}
}
