package lint

import "testing"

func TestCtxloopGolden(t *testing.T) {
	runGolden(t, "ctxloop", []*Analyzer{CtxloopAnalyzer}, "qarv/internal/sim")
}
