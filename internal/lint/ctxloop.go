package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxloopAnalyzer enforces the cancellation contract on slot loops:
// every hot loop advancing simulated slots (the Lindley recursions in
// sim, the shard/seat loops in fleet, the offload slot loop) must
// thread cancellation — a queueing.CancelCheck poll, a direct
// ctx.Err()/ctx.Done() check, or a call that passes the context or the
// checker further down. A slot loop is recognized syntactically: a for
// statement whose condition bounds the induction variable by something
// named Slots (cfg.Slots, spec.Slots, ...) or whose induction variable
// is itself named slot. Loops that are genuinely uncancellable by
// design carry //qarv:allow ctxloop with the reason.
var CtxloopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc: "slot/shard loops (for ... < x.Slots, for slot < n) must thread queueing.CancelCheck " +
		"or a context check so million-slot runs stay cancellable",
	Run: runCtxloop,
}

// runCtxloop checks every slot loop in the package.
func runCtxloop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || !isSlotLoop(loop) {
				return true
			}
			if !threadsCancellation(pass, loop.Body) {
				pass.Reportf(loop.Pos(), "slot loop neither polls queueing.CancelCheck nor checks a context; thread cancellation through it")
			}
			return true
		})
	}
	return nil
}

// isSlotLoop reports whether loop looks like a slot/shard advance: its
// condition's bound mentions an identifier or field named Slots, or
// its induction variable is named slot.
func isSlotLoop(loop *ast.ForStmt) bool {
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if id, ok := cond.X.(*ast.Ident); ok && strings.EqualFold(id.Name, "slot") {
		return true
	}
	mentionsSlots := false
	ast.Inspect(cond.Y, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == "Slots" || x.Name == "slots" {
				mentionsSlots = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Slots" {
				mentionsSlots = true
			}
		}
		return !mentionsSlots
	})
	return mentionsSlots
}

// threadsCancellation reports whether body (searched recursively)
// polls a CancelCheck, checks a context, or hands either to a callee.
func threadsCancellation(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			recv := pass.Info.TypeOf(sel.X)
			switch sel.Sel.Name {
			case "Check":
				if isCancelCheck(recv) {
					found = true
				}
			case "Err", "Done", "Deadline", "Value":
				if isContext(recv) {
					found = true
				}
			}
		}
		for _, arg := range call.Args {
			t := pass.Info.TypeOf(arg)
			if isContext(t) || isCancelCheck(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelCheck reports whether t is queueing.CancelCheck (possibly
// behind a pointer).
func isCancelCheck(t types.Type) bool {
	return isNamedIn(t, "CancelCheck", "internal/queueing")
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isNamedIn reports whether t (possibly behind a pointer) is a named
// type with the given name whose package path ends in pkgSuffix.
func isNamedIn(t types.Type, name, pkgSuffix string) bool {
	if t == nil {
		return false
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
