package lint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module qarv\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := modulePath(gomod)
	if err != nil {
		t.Fatalf("modulePath: %v", err)
	}
	if got != "qarv" {
		t.Errorf("modulePath = %q, want %q", got, "qarv")
	}
	if err := os.WriteFile(gomod, []byte("// nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := modulePath(gomod); !errors.Is(err, ErrNoGoMod) {
		t.Errorf("modulePath on empty file: err = %v, want ErrNoGoMod", err)
	}
}

// TestLoadRealModule type-checks two real repository packages through
// the loader — one pure-stdlib (queueing), one with module-internal
// imports (alloc) — and runs the full suite over them expecting zero
// findings, the same contract `make check` enforces tree-wide.
func TestLoadRealModule(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModulePath != "qarv" {
		t.Fatalf("ModulePath = %q, want qarv", loader.ModulePath)
	}
	var pkgs []*Package
	for _, path := range []string{"qarv/internal/queueing", "qarv/internal/alloc"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		if len(pkg.Files) == 0 || pkg.Types == nil {
			t.Fatalf("load %s: empty package", path)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoadAllSkipsTestdata ensures the walker sees the same package
// universe as `go list ./...`: fixture trees under testdata must not
// load (they contain deliberate contract violations).
func TestLoadAllSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 30 {
		t.Errorf("LoadAll found only %d packages; the module has ~40", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("LoadAll loaded fixture package %s", pkg.Path)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	loader := NewLoaderAt("qarv", filepath.Join("testdata", "directive", "src", "qarv"))
	pkg, err := loader.Load("qarv/internal/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{NondeterminismAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from the directive fixture")
	}
	s := diags[0].String()
	if !strings.Contains(s, "directive.go:") || !strings.HasSuffix(s, "(qarvallow)") && !strings.HasSuffix(s, "(nondeterminism)") {
		t.Errorf("diagnostic format unexpected: %q", s)
	}
}
