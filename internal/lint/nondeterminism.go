package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgs are the module packages whose outputs must be
// byte-identical per seed — the determinism contract ARCHITECTURE.md
// states and the seed pin tests enforce after the fact. The analyzers
// apply their strictest rules here.
var deterministicPkgs = map[string]bool{
	"internal/sim":         true,
	"internal/fleet":       true,
	"internal/experiments": true,
	"internal/queueing":    true,
	"internal/netem":       true,
	"internal/policy":      true,
	"internal/alloc":       true,
	// The learning layer: learned trajectories are part of every sweep
	// report, so arm draws and weight updates must replay exactly from
	// the run seed — no clocks, no math/rand, no map-order leaks.
	"internal/learn": true,
	"internal/stats":       true,
	// The telemetry layer: metric snapshots are part of the determinism
	// contract (byte-identical per seed at any shard or worker count),
	// so the registry and recorder must never read clocks or leak map
	// order. The wall-clock side (Prometheus/pprof HTTP) lives in the
	// same package but reads no clocks itself.
	"internal/obs": true,
	// The content pipeline: measured byte/PSNR ladders feed controller
	// calibration, so one nondeterministic byte here breaks every seed
	// pin above it (same seed ⇒ identical profile ⇒ identical report).
	"internal/content":    true,
	"internal/octree":     true,
	"internal/synthetic":  true,
	"internal/render":     true,
	"internal/quality":    true,
	"internal/ply":        true,
	"internal/pointcloud": true,
}

// IsDeterministic reports whether the package at pkgPath (a full
// import path) is part of the byte-determinism contract: reports it
// produces must be identical for identical seeds, so wall-clock reads
// and unordered map iteration are forbidden rather than merely
// suspicious.
func IsDeterministic(pkgPath string) bool {
	i := strings.Index(pkgPath, "internal/")
	if i < 0 {
		return false
	}
	return deterministicPkgs[pkgPath[i:]]
}

// NondeterminismAnalyzer forbids the three classic determinism leaks.
// Wall-clock reads (time.Now, time.Since) and math/rand imports are
// forbidden module-wide: every stochastic component takes a *geom.RNG
// seeded from the experiment config, and genuinely wall-clock code
// (stream pacing, bench timing) must carry a reasoned //qarv:allow.
// Map iteration is additionally checked inside the deterministic
// packages: a range over a map whose body feeds ordered output
// (appends to an outer slice, writes, prints, or sends) is a finding
// unless the collected slice is sorted afterwards in the same
// function. Order-insensitive map loops (counters, map-to-map
// rewrites) are clean; note that floating-point accumulation across a
// map range is still order-sensitive in the last bits and stays the
// reviewer's job.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbid time.Now/time.Since and math/rand everywhere, and map iteration " +
		"feeding ordered output in the deterministic packages (sim, fleet, experiments, " +
		"queueing, netem, policy, alloc, stats, obs, and the content pipeline: content, octree, " +
		"synthetic, render, quality, ply, pointcloud); wall-clock sites carry //qarv:allow with a reason",
	Run: runNondeterminism,
}

// runNondeterminism applies the wall-clock, math/rand, and map-order
// checks to one package.
func runNondeterminism(pass *Pass) error {
	strict := IsDeterministic(pass.PkgPath)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of math/rand breaks seed reproducibility; use geom.RNG")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if isPkgFunc(pass, sel, "time", "Now") || isPkgFunc(pass, sel, "time", "Since") {
					pass.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic code; derive timing from slots or //qarv:allow with a reason", sel.Sel.Name)
				}
			}
			return true
		})
		if strict {
			checkMapOrder(pass, f)
		}
	}
	return nil
}

// isPkgFunc reports whether sel is a reference to pkgName.funcName
// where the selector base resolves to an imported package of that
// path.
func isPkgFunc(pass *Pass, sel *ast.SelectorExpr, pkgPath, funcName string) bool {
	if sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// checkMapOrder flags map-range loops that feed ordered output without
// a subsequent sort.
func checkMapOrder(pass *Pass, f *ast.File) {
	// Walk function by function so "sorted later" is scoped to the
	// enclosing function body.
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			reportMapRange(pass, fn, rng)
			return true
		})
	}
}

// reportMapRange decides whether one map-range loop feeds ordered
// output and reports it if no later sort redeems it.
func reportMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	var appendTargets []types.Object
	ordered := false
	orderedWhy := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			ordered, orderedWhy = true, "sends on a channel"
		case *ast.AssignStmt:
			// x = append(x, ...) into a slice declared outside the
			// loop collects in iteration order.
			if obj := appendTarget(pass, x); obj != nil && !declaredWithin(pass, obj, rng) {
				appendTargets = append(appendTargets, obj)
			}
			// s += ... string concatenation accumulates in iteration
			// order.
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if t := pass.Info.TypeOf(x.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						ordered, orderedWhy = true, "concatenates strings"
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						ordered, orderedWhy = true, "formats output with fmt."+sel.Sel.Name
					}
				}
				if strings.HasPrefix(sel.Sel.Name, "Write") {
					ordered, orderedWhy = true, "writes via "+sel.Sel.Name
				}
			}
		}
		return true
	})
	if ordered {
		pass.Reportf(rng.Pos(), "map iteration %s in iteration order; iterate sorted keys instead", orderedWhy)
		return
	}
	for _, obj := range appendTargets {
		if !sortedAfter(pass, fn, rng, obj) {
			pass.Reportf(rng.Pos(), "map iteration appends to %q without a subsequent sort; sort it or iterate sorted keys", obj.Name())
			return
		}
	}
}

// appendTarget returns the object assigned by a `v = append(v, ...)`
// statement, or nil.
func appendTarget(pass *Pass, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.Info.Uses[fid].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[lhs]
	if obj == nil {
		obj = pass.Info.Defs[lhs]
	}
	return obj
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range (a slice created inside the loop is per-iteration state,
// not cross-iteration ordered output).
func declaredWithin(pass *Pass, obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement within fn's body.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		p := pn.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		// Any argument (possibly inside a func literal, as in
		// sort.Slice(keys, func(i, j int) bool {...})) referencing the
		// collected slice counts.
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if aid, ok := m.(*ast.Ident); ok && pass.Info.Uses[aid] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
