package lint

import "testing"

func TestErrstyleGolden(t *testing.T) {
	runGolden(t, "errstyle", []*Analyzer{ErrstyleAnalyzer}, "qarv/internal/alloc")
}
