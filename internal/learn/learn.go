// Package learn is the online-learning layer on top of the static
// control plane: allocators that adapt the shared-edge budget split
// from observed outcomes, and a policy wrapper that predicts where the
// backlog is heading before the controller decides a depth.
//
// Two allocators implement alloc.Allocator plus the alloc.Learner
// feedback interface:
//
//   - Bandit runs EXP3 over a discrete set of share configurations
//     (backlog-tilt exponents spanning equal-split to max-weight-like
//     splits), with reward = mean observed per-device utility minus a
//     backlog penalty — after Chen et al., "Learn to Optimize Resource
//     Allocation under QoS Constraint of AR" (arXiv:2501.16186).
//   - Gradient steps a weight vector on the per-device utility
//     deficit and backlog pressure each slot, projected back onto the
//     simplex with a starvation floor.
//
// Predictive implements policy.Policy by maintaining an EWMA
// constant-velocity model over the observed backlog trajectory and
// extrapolating one control-loop delay (RTT) ahead before delegating
// to the wrapped controller — after the predictive-display
// telesurgery work (arXiv:1809.08627). Lagged is its evaluation
// counterpart: it delays the backlog observation by a fixed number of
// slots, modeling the stale state a remote controller actually sees.
//
// Everything here honors the repo's determinism contracts: the only
// randomness is a *geom.RNG behind Reseed/Clone (machine-checked by
// the reseedclone analyzer), and the package is in qarvcheck's
// deterministic set. The package registers its allocators with
// alloc.Register at init, so "bandit[:ARMS]" and "gradient[:STEP]"
// resolve through alloc.ByName wherever this package is linked in
// (the qarv facade, the experiments engine, and every CLI).
package learn

import (
	"fmt"
	"strconv"

	"qarv/internal/alloc"
)

// Defaults for the registered name grammar: "bandit" alone means
// DefaultArms arms, "gradient" alone means DefaultStep.
const (
	// DefaultArms is the bandit's arm count when "bandit" carries no
	// parameter.
	DefaultArms = 8
	// DefaultStep is the gradient allocator's base step size when
	// "gradient" carries no parameter.
	DefaultStep = 0.2
)

func init() {
	alloc.Register("bandit", alloc.Extension{
		Usage:     "bandit[:ARMS]",
		Canonical: fmt.Sprintf("bandit:%d", DefaultArms),
		New: func(param string) (alloc.Allocator, error) {
			arms := DefaultArms
			if param != "" {
				n, err := strconv.Atoi(param)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("bad arm count %q (want a positive integer)", param)
				}
				arms = n
			}
			return NewBandit(arms), nil
		},
	})
	alloc.Register("gradient", alloc.Extension{
		Usage:     "gradient[:STEP]",
		Canonical: "gradient:" + strconv.FormatFloat(DefaultStep, 'g', -1, 64),
		New: func(param string) (alloc.Allocator, error) {
			step := DefaultStep
			if param != "" {
				s, err := strconv.ParseFloat(param, 64)
				if err != nil || s <= 0 {
					return nil, fmt.Errorf("bad step size %q (want a positive float)", param)
				}
				step = s
			}
			return NewGradient(step), nil
		},
	})
}
