package learn

import "qarv/internal/obs"

// Metric names the learning layer registers. The simulator binds these
// into the run's registry/recorder when the allocator implements
// BindTelemetry (see internal/sim), so learned runs expose their
// adaptation trajectory next to the sim_* and alloc_* series.
const (
	// MetricRegret is the bandit's cumulative estimated regret: the
	// empirically-best arm's mean reward times plays, minus the reward
	// actually collected (normalized reward units).
	MetricRegret = "learn_regret"
	// MetricStepSize is the gradient allocator's effective step size
	// for the latest update (it decays over the run).
	MetricStepSize = "learn_step_size"
	// MetricExploration counts slots where the bandit chose its arm by
	// uniform exploration rather than by the learned weights.
	MetricExploration = "learn_exploration_total"
	// MetricUpdates counts Learn feedback calls applied.
	MetricUpdates = "learn_updates_total"
)

// telemetry holds pre-resolved learn_* instrument handles, following
// the sim layer's pattern: a nil *telemetry is the disabled path, and
// individual handles are nil-safe no-ops.
type telemetry struct {
	rec         *obs.FlightRecorder
	regret      *obs.Gauge
	step        *obs.Gauge
	exploration *obs.Counter
	updates     *obs.Counter
}

// newTelemetry resolves handles against reg; nil when both sinks are
// disabled.
func newTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) *telemetry {
	if reg == nil && rec == nil {
		return nil
	}
	return &telemetry{
		rec:         rec,
		regret:      reg.Gauge(MetricRegret),
		step:        reg.Gauge(MetricStepSize),
		exploration: reg.Counter(MetricExploration),
		updates:     reg.Counter(MetricUpdates),
	}
}
