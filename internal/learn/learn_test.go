package learn

import (
	"math"
	"testing"

	"qarv/internal/alloc"
	"qarv/internal/geom"
)

// probePolicy records every backlog observation it is handed.
type probePolicy struct{ seen []float64 }

func (p *probePolicy) Decide(_ int, q float64) int {
	p.seen = append(p.seen, q)
	return len(p.seen)
}

func (p *probePolicy) Name() string { return "probe" }

func TestByNameRegistration(t *testing.T) {
	a, err := alloc.ByName("bandit:4")
	if err != nil {
		t.Fatalf("bandit:4: %v", err)
	}
	b, ok := a.(*Bandit)
	if !ok {
		t.Fatalf("bandit:4 built %T, want *Bandit", a)
	}
	if b.Arms() != 4 {
		t.Fatalf("bandit:4 arms = %d, want 4", b.Arms())
	}
	if got := b.Name(); got != "bandit:4" {
		t.Fatalf("Name() = %q, want bandit:4", got)
	}

	a, err = alloc.ByName("gradient:0.5")
	if err != nil {
		t.Fatalf("gradient:0.5: %v", err)
	}
	g, ok := a.(*Gradient)
	if !ok {
		t.Fatalf("gradient:0.5 built %T, want *Gradient", a)
	}
	if g.Step() != 0.5 {
		t.Fatalf("gradient:0.5 step = %v, want 0.5", g.Step())
	}

	if a, err = alloc.ByName("bandit"); err != nil {
		t.Fatalf("bare bandit: %v", err)
	} else if a.(*Bandit).Arms() != DefaultArms {
		t.Fatalf("bare bandit arms = %d, want %d", a.(*Bandit).Arms(), DefaultArms)
	}

	for _, bad := range []string{"bandit:0", "bandit:x", "gradient:-1", "gradient:zz"} {
		if _, err := alloc.ByName(bad); err == nil {
			t.Errorf("ByName(%q) succeeded, want error", bad)
		}
	}

	_, err = alloc.ByName("nosuch")
	if err == nil {
		t.Fatal("ByName(nosuch) succeeded")
	}
	for _, want := range []string{"bandit[:ARMS]", "gradient[:STEP]", "equal"} {
		if !contains(err.Error(), want) {
			t.Errorf("unknown-name error %q does not enumerate %q", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBanditDeterminismAndConservation(t *testing.T) {
	run := func() [][]float64 {
		b := NewBandit(6)
		b.Reseed(geom.NewRNG(42))
		backlogs := []float64{3, 0, 7, 1}
		out := make([][]float64, 0, 50)
		for slot := 0; slot < 50; slot++ {
			shares := make([]float64, 4)
			b.Allocate(slot, 10, backlogs, shares)
			var sum float64
			for i, s := range shares {
				if s < 0 {
					t.Fatalf("slot %d device %d: negative share %v", slot, i, s)
				}
				sum += s
			}
			if math.Abs(sum-10) > 1e-9 {
				t.Fatalf("slot %d: shares sum %v, want 10", slot, sum)
			}
			b.Learn(slot, []float64{0.5, 0.6, 0.2, 0.9}, backlogs)
			out = append(out, shares)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("slot %d device %d: %v != %v (same seed diverged)", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestBanditCloneIsolation(t *testing.T) {
	// Two identically-seeded bandits with identical histories; advance
	// a clone of the first with junk feedback; the originals must
	// still emit identical continuations (the clone shared nothing).
	mk := func() *Bandit {
		b := NewBandit(4)
		b.Reseed(geom.NewRNG(7))
		backlogs := []float64{1, 2, 3}
		shares := make([]float64, 3)
		for slot := 0; slot < 10; slot++ {
			b.Allocate(slot, 6, backlogs, shares)
			b.Learn(slot, []float64{1, 1, 1}, backlogs)
		}
		return b
	}
	b1, b2 := mk(), mk()
	c := b1.Clone()
	backlogs := []float64{1, 2, 3}
	cs := make([]float64, 3)
	for slot := 10; slot < 20; slot++ {
		c.Allocate(slot, 6, backlogs, cs)
		c.Learn(slot, []float64{1, 0, 0}, []float64{9, 9, 9})
	}
	s1 := make([]float64, 3)
	s2 := make([]float64, 3)
	for slot := 10; slot < 20; slot++ {
		b1.Allocate(slot, 6, backlogs, s1)
		b2.Allocate(slot, 6, backlogs, s2)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("slot %d: advancing a clone perturbed the original: %v vs %v", slot, s1, s2)
			}
		}
		b1.Learn(slot, []float64{1, 1, 1}, backlogs)
		b2.Learn(slot, []float64{1, 1, 1}, backlogs)
	}
}

func TestBanditCloneMatchesOriginal(t *testing.T) {
	mk := func() *Bandit {
		b := NewBandit(5)
		b.Reseed(geom.NewRNG(99))
		return b
	}
	b := mk()
	backlogs := []float64{4, 0, 2}
	shares := make([]float64, 3)
	for slot := 0; slot < 25; slot++ {
		b.Allocate(slot, 9, backlogs, shares)
		b.Learn(slot, []float64{0.3, 0.8, 0.1}, backlogs)
	}
	c := b.Clone()
	s1 := make([]float64, 3)
	s2 := make([]float64, 3)
	for slot := 25; slot < 50; slot++ {
		b.Allocate(slot, 9, backlogs, s1)
		c.Allocate(slot, 9, backlogs, s2)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("slot %d: clone diverged from original: %v vs %v", slot, s1, s2)
			}
		}
		b.Learn(slot, []float64{0.3, 0.8, 0.1}, backlogs)
		c.Learn(slot, []float64{0.3, 0.8, 0.1}, backlogs)
	}
}

func TestBanditLearnsBestArm(t *testing.T) {
	// Reward the top-tilt arm only: its EXP3 weight must end up
	// dominating every other arm's.
	b := NewBandit(4)
	b.Reseed(geom.NewRNG(3))
	backlogs := []float64{5, 1}
	shares := make([]float64, 2)
	for slot := 0; slot < 3000; slot++ {
		b.Allocate(slot, 4, backlogs, shares)
		reward := 0.0
		if b.lastArm == b.arms-1 {
			reward = 1.0
		}
		// Feed the reward through the utility channel (penalty 0.01 on
		// tiny backlogs barely moves it).
		b.Learn(slot, []float64{reward, reward}, []float64{0, 0})
	}
	best := b.weights[b.arms-1]
	for k := 0; k < b.arms-1; k++ {
		if b.weights[k] >= best {
			t.Fatalf("arm %d weight %v >= best arm weight %v after training", k, b.weights[k], best)
		}
	}
	if b.Regret() < 0 {
		t.Fatalf("negative regret %v", b.Regret())
	}
}

func TestGradientShiftsWeightToBackloggedDevice(t *testing.T) {
	g := NewGradient(0.2)
	shares := make([]float64, 4)
	backlogs := []float64{0, 0, 0, 0}
	g.Allocate(0, 8, backlogs, shares)
	for _, s := range shares {
		if math.Abs(s-2) > 1e-12 {
			t.Fatalf("initial split not uniform: %v", shares)
		}
	}
	// Device 2 persistently backlogged and utility-starved.
	for slot := 0; slot < 200; slot++ {
		g.Allocate(slot, 8, backlogs, shares)
		g.Learn(slot, []float64{0.9, 0.9, 0.1, 0.9}, []float64{0, 0, 50, 0})
	}
	g.Allocate(200, 8, backlogs, shares)
	var sum float64
	for i, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %v for device %d", s, i)
		}
		sum += s
	}
	if math.Abs(sum-8) > 1e-9 {
		t.Fatalf("shares sum %v, want 8 (work conserving)", sum)
	}
	for i, s := range shares {
		if i != 2 && s >= shares[2] {
			t.Fatalf("device %d share %v >= backlogged device's %v", i, s, shares[2])
		}
	}
}

func TestPredictiveExtrapolates(t *testing.T) {
	probe := &probePolicy{}
	p := NewPredictive(probe, 10, 0.5)
	// Backlog rising by 2 per slot: after the EWMA warms up the
	// predicted backlog must exceed the observed one by ~horizon·2.
	for slot := 0; slot < 40; slot++ {
		p.Decide(slot, float64(2*slot))
	}
	last := probe.seen[len(probe.seen)-1]
	observed := float64(2 * 39)
	if last <= observed {
		t.Fatalf("predicted %v not ahead of observed %v on a rising ramp", last, observed)
	}
	if math.Abs(last-(observed+20)) > 2 {
		t.Fatalf("predicted %v, want ≈ %v (observed + horizon·velocity)", last, observed+20)
	}

	// Prediction clamps at zero on a collapsing queue.
	probe.seen = nil
	p2 := NewPredictive(probe, 10, 0.5)
	for slot := 0; slot < 20; slot++ {
		q := 100 - float64(10*slot)
		if q < 0 {
			q = 0
		}
		p2.Decide(slot, q)
	}
	for _, s := range probe.seen {
		if s < 0 {
			t.Fatalf("negative predicted backlog %v", s)
		}
	}
}

func TestLaggedDelaysObservations(t *testing.T) {
	probe := &probePolicy{}
	l := NewLagged(probe, 3)
	for slot := 0; slot < 10; slot++ {
		l.Decide(slot, float64(slot))
	}
	// First lag slots see the initial observation; afterwards slot t
	// sees the backlog from slot t-lag.
	want := []float64{0, 0, 0, 0, 1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if probe.seen[i] != w {
			t.Fatalf("slot %d observed %v, want %v (full: %v)", i, probe.seen[i], w, probe.seen)
		}
	}
}

func TestNames(t *testing.T) {
	g := NewGradient(0.25)
	if g.Name() != "gradient:0.25" {
		t.Fatalf("gradient name %q", g.Name())
	}
	p := NewPredictive(&probePolicy{}, 8, 0)
	if p.Name() != "predictive:8(probe)" {
		t.Fatalf("predictive name %q", p.Name())
	}
	l := NewLagged(&probePolicy{}, 6)
	if l.Name() != "delayed:6(probe)" {
		t.Fatalf("lagged name %q", l.Name())
	}
}
