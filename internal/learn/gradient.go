package learn

import (
	"math"
	"strconv"

	"qarv/internal/obs"
)

// Gradient default hyperparameters: the mix between backlog pressure
// and utility deficit in the ascent direction, the per-device share
// floor (as a fraction of the uniform share) that prevents starvation,
// and the step-decay horizon in slots.
const (
	gradientBacklogMix = 0.7
	gradientFloorFrac  = 0.1
	gradientDecaySlots = 256
)

// Gradient is a projected-gradient allocator: it keeps a weight vector
// on the device simplex and, each slot, steps it along the observed
// gradient of the run's drift-plus-penalty objective — the drift term
// contributes each device's share of total backlog (∂/∂share of the
// quadratic Lyapunov drift is −Q_i, so ascent pushes share toward long
// queues), and the penalty term contributes the device's utility
// deficit against the best utility it has achieved so far. The update
// is projected back onto the simplex with a small per-device floor so
// no device is ever starved, and the step size decays ~1/√t so the
// weights settle once the fleet's demand profile is learned.
//
// Gradient is fully deterministic (no RNG): the same backlog/utility
// trajectory always produces the same shares.
type Gradient struct {
	step      float64
	floorFrac float64

	weights []float64
	scores  []float64
	umax    []float64 // best utility observed per device
	slots   float64

	tel *telemetry
}

// NewGradient returns a projected-gradient allocator with the given
// base step size (non-positive values fall back to DefaultStep).
func NewGradient(step float64) *Gradient {
	if step <= 0 {
		step = DefaultStep
	}
	return &Gradient{step: step, floorFrac: gradientFloorFrac}
}

// Step returns the base step size.
func (g *Gradient) Step() float64 { return g.step }

// Name implements alloc.Allocator.
func (g *Gradient) Name() string {
	return "gradient:" + strconv.FormatFloat(g.step, 'g', -1, 64)
}

// BindTelemetry attaches the run's telemetry sinks (either may be
// nil); the simulator calls it once before the slot loop.
func (g *Gradient) BindTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) {
	g.tel = newTelemetry(reg, rec)
}

// Clone returns a run-isolated copy with the learned weights and
// statistics deep-copied.
func (g *Gradient) Clone() *Gradient {
	if g == nil {
		return nil
	}
	c := *g
	c.weights = append([]float64(nil), g.weights...)
	c.scores = append([]float64(nil), g.scores...)
	c.umax = append([]float64(nil), g.umax...)
	c.tel = nil // telemetry sinks are per-run; the clone binds its own
	return &c
}

// resize (re)initializes the learned state for a fleet of n devices;
// weights start uniform.
func (g *Gradient) resize(n int) {
	g.weights = make([]float64, n)
	g.scores = make([]float64, n)
	g.umax = make([]float64, n)
	for i := range g.weights {
		g.weights[i] = 1 / float64(n)
	}
}

// Allocate implements alloc.Allocator: shares follow the current
// simplex weights, so the split is work-conserving by construction.
func (g *Gradient) Allocate(_ int, budget float64, _, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	if len(g.weights) != n {
		g.resize(n)
	}
	for i := range shares {
		shares[i] = budget * g.weights[i]
	}
}

// Learn implements alloc.Learner: step the weights along the observed
// objective gradient and project back onto the floored simplex.
func (g *Gradient) Learn(t int, utilities, backlogs []float64) {
	n := len(utilities)
	if n == 0 {
		return
	}
	if len(g.weights) != n {
		g.resize(n)
	}
	var totalQ float64
	for _, q := range backlogs {
		if q > 0 {
			totalQ += q
		}
	}
	var mean float64
	for i := 0; i < n; i++ {
		q := backlogs[i]
		if q < 0 {
			q = 0
		}
		if utilities[i] > g.umax[i] {
			g.umax[i] = utilities[i]
		}
		deficit := 0.0
		if g.umax[i] > 0 {
			deficit = (g.umax[i] - utilities[i]) / g.umax[i]
		}
		backlogShare := 0.0
		if totalQ > 0 {
			backlogShare = q / totalQ
		}
		g.scores[i] = gradientBacklogMix*backlogShare + (1-gradientBacklogMix)*deficit
		mean += g.scores[i]
	}
	mean /= float64(n)

	step := g.step / math.Sqrt(1+g.slots/gradientDecaySlots)
	g.slots++
	floor := g.floorFrac / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		w := g.weights[i] + step*(g.scores[i]-mean)
		if w < floor {
			w = floor
		}
		g.weights[i] = w
		sum += w
	}
	for i := 0; i < n; i++ {
		g.weights[i] /= sum
	}
	if g.tel != nil {
		g.tel.updates.Inc()
		g.tel.step.Record(step)
		g.tel.rec.Event(int64(t), "learn", g.Name(), int64(t), step)
	}
}
