package learn

import (
	"fmt"
	"math"

	"qarv/internal/geom"
	"qarv/internal/obs"
)

// Bandit default hyperparameters. The exploration rate follows the
// usual EXP3 regime (a constant fraction of slots spent sampling
// uniformly); the backlog penalty converts queue pressure into the
// reward's units so a diverging arm scores poorly long before its
// utility collapses.
const (
	banditGamma       = 0.1
	banditPenalty     = 0.5
	banditDefaultSeed = 0x62616e646974 // "bandit"
	// banditMaxTilt is the largest backlog-tilt exponent in the arm
	// set: tilt 0 is equal-split, banditMaxTilt is strongly
	// longest-queue-biased.
	banditMaxTilt = 3.0
)

// Bandit is an EXP3 bandit over a discrete set of share
// configurations. Each arm is a backlog-tilt exponent θ: the arm maps
// the observed backlogs to the simplex point w_i ∝ (1+Q_i)^θ, so arm 0
// (θ=0) reproduces EqualSplit while the largest arm approaches a
// max-weight-like split. Every slot the bandit samples an arm from the
// EXP3 mixture, allocates budget·w, and — via the alloc.Learner
// feedback — scores the arm with reward = mean device utility minus a
// backlog penalty, normalized online to [0,1].
//
// The only randomness is the arm draw, held in a *geom.RNG behind the
// repo's Reseed/Clone contract; with the RNG pinned the whole
// trajectory is deterministic.
type Bandit struct {
	arms    int
	gamma   float64
	penalty float64
	rng     *geom.RNG

	tilts   []float64 // arm k's backlog-tilt exponent
	weights []float64 // EXP3 weights
	probs   []float64 // last sampling distribution

	lastArm   int
	lastValid bool
	explored  bool // lastArm was drawn by uniform exploration

	// Online reward normalization and regret accounting.
	uScale, qScale float64
	rewMin, rewMax float64
	haveRew        bool
	plays          []float64
	meanReward     []float64
	totalReward    float64
	rounds         float64

	tel *telemetry
}

// NewBandit returns an EXP3 bandit over arms share configurations
// (arms < 1 is clamped to 1). The zero-value RNG seed is a fixed
// package constant; engines reseed it per run via Reseed.
func NewBandit(arms int) *Bandit {
	if arms < 1 {
		arms = 1
	}
	b := &Bandit{
		arms:    arms,
		gamma:   banditGamma,
		penalty: banditPenalty,
		rng:     geom.NewRNG(banditDefaultSeed),
		tilts:   make([]float64, arms),
		weights: make([]float64, arms),
		probs:   make([]float64, arms),

		plays:      make([]float64, arms),
		meanReward: make([]float64, arms),
	}
	for k := range b.tilts {
		if arms > 1 {
			b.tilts[k] = banditMaxTilt * float64(k) / float64(arms-1)
		}
		b.weights[k] = 1
	}
	return b
}

// Arms returns the arm count.
func (b *Bandit) Arms() int { return b.arms }

// Name implements alloc.Allocator.
func (b *Bandit) Name() string { return fmt.Sprintf("bandit:%d", b.arms) }

// Reseed replaces the bandit's RNG — the hook engines use to drive the
// arm draws from one run seed.
func (b *Bandit) Reseed(rng *geom.RNG) { b.rng = rng }

// Clone returns a run-isolated copy: learned state (weights, reward
// statistics) is deep-copied and the RNG stream is forked, so a cloned
// run never advances or observes the original's state.
func (b *Bandit) Clone() *Bandit {
	if b == nil {
		return nil
	}
	c := *b
	c.rng = b.rng.Clone()
	c.tilts = append([]float64(nil), b.tilts...)
	c.weights = append([]float64(nil), b.weights...)
	c.probs = append([]float64(nil), b.probs...)
	c.plays = append([]float64(nil), b.plays...)
	c.meanReward = append([]float64(nil), b.meanReward...)
	c.tel = nil // telemetry sinks are per-run; the clone binds its own
	return &c
}

// BindTelemetry attaches the run's telemetry sinks (either may be
// nil); the simulator calls it once before the slot loop.
func (b *Bandit) BindTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) {
	b.tel = newTelemetry(reg, rec)
}

// Allocate implements alloc.Allocator: sample an arm from the EXP3
// mixture and split the budget along the arm's backlog tilt.
func (b *Bandit) Allocate(t int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	// p_k = (1-γ)·w_k/Σw + γ/K, realized as an explicit two-stage
	// draw so exploration slots are well-defined events.
	var sumW float64
	for _, w := range b.weights {
		sumW += w
	}
	for k, w := range b.weights {
		b.probs[k] = (1-b.gamma)*w/sumW + b.gamma/float64(b.arms)
	}
	arm := 0
	b.explored = b.rng.Float64() < b.gamma
	if b.explored {
		arm = b.rng.Intn(b.arms)
	} else {
		u := b.rng.Float64() * sumW
		var acc float64
		for k, w := range b.weights {
			acc += w
			if u < acc || k == b.arms-1 {
				arm = k
				break
			}
		}
	}
	b.lastArm = arm
	b.lastValid = true

	theta := b.tilts[arm]
	var total float64
	for i := 0; i < n; i++ {
		q := backlogs[i]
		if q < 0 {
			q = 0
		}
		shares[i] = math.Pow(1+q, theta)
		total += shares[i]
	}
	for i := 0; i < n; i++ {
		shares[i] = budget * shares[i] / total
	}
	if b.tel != nil {
		if b.explored {
			b.tel.exploration.Inc()
		}
		b.tel.rec.Event(int64(t), "learn", b.Name(), int64(arm), theta)
	}
}

// Learn implements alloc.Learner: score the last-pulled arm with the
// slot's realized outcome and apply the importance-weighted EXP3
// update.
func (b *Bandit) Learn(t int, utilities, backlogs []float64) {
	if !b.lastValid || len(utilities) == 0 {
		return
	}
	b.lastValid = false
	n := float64(len(utilities))
	var u, q float64
	for _, v := range utilities {
		u += v
	}
	for _, v := range backlogs {
		if v > 0 {
			q += v
		}
	}
	u /= n
	q /= n
	// Utility and backlog live in unrelated units (quality scores vs
	// queued work), so each term is normalized by its running scale
	// before mixing — otherwise whichever unit happens to be numerically
	// larger silently decides what the bandit optimizes.
	if a := math.Abs(u); a > b.uScale {
		b.uScale = a
	}
	if q > b.qScale {
		b.qScale = q
	}
	raw := 0.0
	if b.uScale > 0 {
		raw = u / b.uScale
	}
	if b.qScale > 0 {
		raw -= b.penalty * q / b.qScale
	}

	// Normalize online into [0,1]; before the range opens up, score
	// the neutral midpoint so early slots neither inflate nor sink an
	// arm.
	if !b.haveRew {
		b.rewMin, b.rewMax = raw, raw
		b.haveRew = true
	}
	if raw < b.rewMin {
		b.rewMin = raw
	}
	if raw > b.rewMax {
		b.rewMax = raw
	}
	r := 0.5
	if span := b.rewMax - b.rewMin; span > 0 {
		r = (raw - b.rewMin) / span
	}

	arm := b.lastArm
	// Importance-weighted update, then rescale so weights stay finite
	// over arbitrarily long runs.
	b.weights[arm] *= math.Exp(b.gamma * r / (float64(b.arms) * b.probs[arm]))
	var maxW float64
	for _, w := range b.weights {
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 1e12 {
		for k := range b.weights {
			b.weights[k] /= maxW
		}
	}

	b.plays[arm]++
	b.meanReward[arm] += (r - b.meanReward[arm]) / b.plays[arm]
	b.totalReward += r
	b.rounds++
	if b.tel != nil {
		b.tel.updates.Inc()
		b.tel.regret.Record(b.Regret())
		b.tel.rec.Event(int64(t), "learn", "reward", int64(arm), r)
	}
}

// Regret returns the cumulative estimated regret in normalized reward
// units: the empirically-best arm's mean reward over all rounds minus
// the reward actually collected, clamped at zero.
func (b *Bandit) Regret() float64 {
	var best float64
	for k, m := range b.meanReward {
		if b.plays[k] > 0 && m > best {
			best = m
		}
	}
	reg := best*b.rounds - b.totalReward
	if reg < 0 {
		return 0
	}
	return reg
}
