package learn

import (
	"fmt"

	"qarv/internal/policy"
)

// Default knobs for the predictive-display policy: the extrapolation
// horizon in slots (one control-loop RTT) and the EWMA gain on the
// backlog velocity estimate.
const (
	// DefaultHorizon is the slots-ahead extrapolation when
	// "predictive" carries no parameter — one default control RTT.
	DefaultHorizon = 8
	// DefaultLag is the observation delay when "delayed" carries no
	// parameter, matched to DefaultHorizon so the predictive policy
	// compensates exactly one RTT by default.
	DefaultLag = 8
	// predictiveAlpha is the EWMA gain on the velocity estimate.
	predictiveAlpha = 0.25
)

// Predictive is a predictive-display wrapper around any depth policy:
// it maintains a constant-velocity motion model over the observed
// backlog trajectory (EWMA-smoothed first difference) and hands the
// wrapped controller the backlog extrapolated Horizon slots ahead, so
// the controller reacts to where the queue *will* be when its decision
// takes effect rather than where it was when the observation was made.
// This is the queue-domain analogue of motion extrapolation in
// predictive-display telesurgery (arXiv:1809.08627): prediction hides
// the control-loop delay instead of merely adapting to it.
//
// Predictive is deterministic and carries only the motion-model state
// between slots.
type Predictive struct {
	inner   policy.Policy
	horizon float64
	alpha   float64

	prev    float64
	vel     float64
	started bool
}

var _ policy.Policy = (*Predictive)(nil)

// NewPredictive wraps inner with a motion model extrapolating horizon
// slots ahead (non-positive horizon falls back to DefaultHorizon;
// alpha outside (0,1] falls back to the package default).
func NewPredictive(inner policy.Policy, horizon float64, alpha float64) *Predictive {
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	if alpha <= 0 || alpha > 1 {
		alpha = predictiveAlpha
	}
	return &Predictive{inner: inner, horizon: horizon, alpha: alpha}
}

// Decide implements policy.Policy.
func (p *Predictive) Decide(slot int, backlog float64) int {
	if p.started {
		p.vel = p.alpha*(backlog-p.prev) + (1-p.alpha)*p.vel
	}
	p.prev = backlog
	p.started = true
	predicted := backlog + p.horizon*p.vel
	if predicted < 0 {
		predicted = 0
	}
	return p.inner.Decide(slot, predicted)
}

// Name implements policy.Policy.
func (p *Predictive) Name() string {
	return fmt.Sprintf("predictive:%g(%s)", p.horizon, p.inner.Name())
}

// Lagged delays the backlog observation a policy sees by a fixed
// number of slots — the evaluation-side model of a controller running
// across a control loop with delay (the depth decision is computed
// from state one RTT stale). Until the pipeline fills, the policy sees
// the initial observation. Wrapping the same controller with and
// without Predictive inside a Lagged loop isolates exactly what
// extrapolation buys back.
type Lagged struct {
	inner policy.Policy
	lag   int

	buf []float64
}

var _ policy.Policy = (*Lagged)(nil)

// NewLagged wraps inner behind a lag-slot observation delay
// (non-positive lag falls back to DefaultLag).
func NewLagged(inner policy.Policy, lag int) *Lagged {
	if lag <= 0 {
		lag = DefaultLag
	}
	return &Lagged{inner: inner, lag: lag}
}

// Decide implements policy.Policy. Slots are assumed consecutive from
// 0, as every run loop in this repo guarantees.
func (p *Lagged) Decide(slot int, backlog float64) int {
	if p.buf == nil {
		p.buf = make([]float64, p.lag)
		for i := range p.buf {
			p.buf[i] = backlog
		}
	}
	i := slot % p.lag
	observed := p.buf[i]
	p.buf[i] = backlog
	return p.inner.Decide(slot, observed)
}

// Name implements policy.Policy.
func (p *Lagged) Name() string {
	return fmt.Sprintf("delayed:%d(%s)", p.lag, p.inner.Name())
}
