package alloc

import (
	"errors"
	"math"
	"testing"

	"qarv/internal/geom"
)

const eps = 1e-9

// covered returns the backlogged work an allocation actually reaches:
// Σ min(share_i, backlog_i). A work-conserving allocator must cover
// min(budget, Σ backlog).
func covered(shares, backlogs []float64) float64 {
	var s float64
	for i := range shares {
		s += math.Min(shares[i], backlogs[i])
	}
	return s
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func allAllocators() []Allocator {
	return []Allocator{
		EqualSplit{},
		&ProportionalBacklog{},
		&ProportionalBacklog{ReserveFraction: 0.2},
		NewMaxWeight(),
		NewWeightedRoundRobin(),
		NewWeightedRoundRobin(3, 1, 1, 1),
	}
}

func TestAllocatorsRespectBudgetAndNonNegativity(t *testing.T) {
	rng := geom.NewRNG(11)
	for _, a := range allAllocators() {
		backlogs := make([]float64, 6)
		shares := make([]float64, 6)
		for slot := 0; slot < 500; slot++ {
			budget := rng.Range(0, 100)
			for i := range backlogs {
				backlogs[i] = rng.Range(0, 80)
			}
			a.Allocate(slot, budget, backlogs, shares)
			for i, s := range shares {
				if s < -eps {
					t.Fatalf("%s slot %d: negative share %v for device %d", a.Name(), slot, s, i)
				}
			}
			if got := sum(shares); got > budget+eps {
				t.Fatalf("%s slot %d: shares sum %v exceeds budget %v", a.Name(), slot, got, budget)
			}
		}
	}
}

func TestEqualSplitIsInformationFree(t *testing.T) {
	var a EqualSplit
	shares := make([]float64, 4)
	a.Allocate(0, 100, []float64{0, 1e9, 3, 7}, shares)
	for i, s := range shares {
		if s != 100.0/4 {
			t.Errorf("device %d share = %v, want 25", i, s)
		}
	}
	// The exact float expression of the pre-allocator loop.
	if shares[0] != 100.0/float64(4) {
		t.Error("equal split must be budget/N bit-for-bit")
	}
}

func TestProportionalBacklogProportions(t *testing.T) {
	a := &ProportionalBacklog{}
	backlogs := []float64{30, 10, 0, 60}
	shares := make([]float64, 4)
	a.Allocate(0, 50, backlogs, shares)
	want := []float64{15, 5, 0, 30}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > eps {
			t.Errorf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
	// All-empty falls back to an equal split.
	a.Allocate(1, 40, []float64{0, 0, 0, 0}, shares)
	for i, s := range shares {
		if math.Abs(s-10) > eps {
			t.Errorf("empty-system share[%d] = %v, want 10", i, s)
		}
	}
	// A reserve guarantees a floor for empty queues.
	r := &ProportionalBacklog{ReserveFraction: 0.4}
	r.Allocate(2, 100, []float64{100, 0}, shares[:2])
	if math.Abs(shares[1]-20) > eps {
		t.Errorf("reserved share = %v, want 20", shares[1])
	}
	if math.Abs(shares[0]-80) > eps {
		t.Errorf("loaded share = %v, want 80", shares[0])
	}
}

func TestMaxWeightServesLongestFirst(t *testing.T) {
	a := NewMaxWeight()
	shares := make([]float64, 3)
	// Budget 10 covers the longest queue (7) then the next (5) partially.
	a.Allocate(0, 10, []float64{5, 7, 1}, shares)
	if math.Abs(shares[1]-7) > eps {
		t.Errorf("longest queue share = %v, want 7", shares[1])
	}
	if math.Abs(shares[0]-3) > eps {
		t.Errorf("second queue share = %v, want 3", shares[0])
	}
	if shares[2] != 0 {
		t.Errorf("shortest queue share = %v, want 0", shares[2])
	}
	// Surplus beyond all backlogs splits equally (idle system ≈ equal).
	a.Allocate(1, 12, []float64{3, 0, 0}, shares)
	if math.Abs(shares[0]-(3+3)) > eps || math.Abs(shares[1]-3) > eps || math.Abs(shares[2]-3) > eps {
		t.Errorf("surplus split = %v", shares)
	}
}

func TestWorkConservation(t *testing.T) {
	// MaxWeight and WeightedRoundRobin must never idle capacity while
	// any observed queue is non-empty: covered work == min(budget, Σq).
	rng := geom.NewRNG(23)
	for _, a := range []Allocator{NewMaxWeight(), NewWeightedRoundRobin(), NewWeightedRoundRobin(5, 1, 1, 1, 1)} {
		backlogs := make([]float64, 5)
		shares := make([]float64, 5)
		for slot := 0; slot < 1000; slot++ {
			budget := rng.Range(0, 50)
			for i := range backlogs {
				backlogs[i] = rng.Range(0, 30)
				if rng.Float64() < 0.3 {
					backlogs[i] = 0
				}
			}
			a.Allocate(slot, budget, backlogs, shares)
			want := math.Min(budget, sum(backlogs))
			if got := covered(shares, backlogs); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s slot %d: covered %v, want %v (budget %v, backlogs %v, shares %v)",
					a.Name(), slot, got, want, budget, backlogs, shares)
			}
		}
	}
}

func TestWeightedRoundRobinHonorsWeights(t *testing.T) {
	// Two permanently backlogged devices at weights 3:1 must receive
	// long-run service near 3:1.
	a := NewWeightedRoundRobin(3, 1)
	backlogs := []float64{1e12, 1e12}
	shares := make([]float64, 2)
	var got [2]float64
	for slot := 0; slot < 1000; slot++ {
		a.Allocate(slot, 100, backlogs, shares)
		got[0] += shares[0]
		got[1] += shares[1]
	}
	if ratio := got[0] / got[1]; math.Abs(ratio-3) > 0.05 {
		t.Errorf("long-run service ratio = %v, want ~3", ratio)
	}
	if math.Abs(got[0]+got[1]-100_000) > 1e-3 {
		t.Errorf("total service %v, want 100000 (work conserving)", got[0]+got[1])
	}
}

func TestWeightedRoundRobinRotatesLeftover(t *testing.T) {
	// With equal weights and one saturated device, the rotation must not
	// starve anyone: every device with backlog gets served every slot.
	a := NewWeightedRoundRobin()
	shares := make([]float64, 3)
	for slot := 0; slot < 10; slot++ {
		a.Allocate(slot, 9, []float64{100, 100, 100}, shares)
		for i, s := range shares {
			if s <= 0 {
				t.Fatalf("slot %d: device %d starved (shares %v)", slot, i, shares)
			}
		}
	}
}

func TestByName(t *testing.T) {
	// Names() lists usage forms ("bandit[:ARMS]") for help text;
	// CanonicalNames() lists one instantiable spelling per strategy.
	for _, name := range CanonicalNames() {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("fifo"); !errors.Is(err, ErrUnknownAllocator) {
		t.Errorf("unknown name error = %v", err)
	}
	// Fresh instances each call: stateful allocators must not be shared.
	a1, _ := ByName("wrr")
	a2, _ := ByName("wrr")
	if a1 == a2 {
		t.Error("ByName must return fresh instances")
	}
}

func TestAllocatorsHandleDegenerateInputs(t *testing.T) {
	for _, a := range allAllocators() {
		// Zero devices must not panic.
		a.Allocate(0, 10, nil, nil)
		// Zero budget yields zero shares.
		shares := make([]float64, 2)
		a.Allocate(1, 0, []float64{5, 5}, shares)
		if sum(shares) > eps {
			t.Errorf("%s: zero budget allocated %v", a.Name(), shares)
		}
		// Negative backlogs (defensive) must not produce negative shares.
		a.Allocate(2, 10, []float64{-5, 5}, shares)
		for _, s := range shares {
			if s < -eps {
				t.Errorf("%s: negative share %v", a.Name(), s)
			}
		}
	}
}
