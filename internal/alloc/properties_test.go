package alloc_test

// Cross-cutting allocator contract: every strategy reachable through
// alloc.ByName — built-ins and registered extensions alike — must fill
// shares with non-negative values summing to at most the budget, and
// every current strategy is work-conserving, so the sum must in fact
// equal the budget (within float tolerance). The test drives each
// allocator through a deterministic pseudo-random workload, feeding
// Learn when the strategy is an online learner, so learned state
// evolves the way a real run would.

import (
	"math"
	"testing"

	"qarv/internal/alloc"
	"qarv/internal/geom"
	"qarv/internal/learn" // registers the learned allocators with ByName
)

// _ asserts the learn package stays linked in (its init registers the
// bandit/gradient extensions CanonicalNames must enumerate).
var _ = learn.DefaultArms

func TestEveryByNameAllocatorConservesBudget(t *testing.T) {
	canon := alloc.CanonicalNames()
	if len(canon) < 6 {
		t.Fatalf("CanonicalNames() = %v, expected builtins plus learned extensions", canon)
	}
	for _, name := range canon {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := alloc.ByName(name)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			if r, ok := a.(interface{ Reseed(*geom.RNG) }); ok {
				r.Reseed(geom.NewRNG(0xa110c))
			}
			learner, _ := a.(alloc.Learner)
			rng := geom.NewRNG(7)
			for _, n := range []int{1, 2, 8} {
				backlogs := make([]float64, n)
				utilities := make([]float64, n)
				shares := make([]float64, n)
				for slot := 0; slot < 200; slot++ {
					budget := 10 * rng.Float64()
					switch slot % 4 {
					case 0: // all queues empty
						for i := range backlogs {
							backlogs[i] = 0
						}
					case 1: // one heavy queue
						for i := range backlogs {
							backlogs[i] = 0
						}
						backlogs[rng.Intn(n)] = 1e6
					default: // mixed pseudo-random load
						for i := range backlogs {
							backlogs[i] = 100 * rng.Float64()
						}
					}
					a.Allocate(slot, budget, backlogs, shares)
					var sum float64
					for i, s := range shares {
						if s < 0 {
							t.Fatalf("slot %d device %d: negative share %v (backlogs %v, budget %v)",
								slot, i, s, backlogs, budget)
						}
						sum += s
					}
					if sum > budget+1e-9 {
						t.Fatalf("slot %d: shares sum %v exceeds budget %v", slot, sum, budget)
					}
					if math.Abs(sum-budget) > 1e-9*(1+budget) {
						t.Fatalf("slot %d: shares sum %v != budget %v (work conservation)", slot, sum, budget)
					}
					if learner != nil {
						for i := range utilities {
							utilities[i] = rng.Float64()
						}
						learner.Learn(slot, utilities, backlogs)
					}
				}
			}
		})
	}
}
