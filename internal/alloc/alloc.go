// Package alloc is the pluggable service-allocation subsystem of the
// shared-edge multi-device scenario: given the per-slot edge budget and
// the backlogs the devices observed at the start of the slot, an
// Allocator decides each device's share of the budget. The paper's
// multi-device claim (§II) is exercised with the information-free
// EqualSplit; the other strategies use exactly the backlog information
// the edge server can see (queue lengths, not device internals), so the
// devices themselves stay fully distributed — only the server-side split
// changes. Ren et al. ("An Edge-Computing Based Architecture for Mobile
// Augmented Reality") and Chen et al. ("Learn to Optimize Resource
// Allocation under QoS Constraint of AR") study this split as the main
// lever; this package makes it a first-class, swappable policy.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Allocator splits one slot's shared service budget across devices.
//
// Implementations fill shares (len(shares) == len(backlogs)) with
// non-negative values summing to at most budget; work-conserving
// strategies sum to exactly budget. backlogs[i] is device i's queue
// observed at the start of the slot — allocation happens before the
// slot's arrivals, so strategies that clamp shares to backlogs should
// redistribute the surplus rather than idle it if they want same-slot
// arrivals served. Allocators may keep per-run state (rotation pointers,
// deficit counters) and are not safe for concurrent use; build one per
// run, as sessions do.
type Allocator interface {
	Allocate(t int, budget float64, backlogs, shares []float64)
	// Name identifies the strategy in traces and ablation rows.
	Name() string
}

// Learner is the optional feedback half of an online-learning
// allocator. After every slot the simulator reports the outcome the
// allocator's last Allocate produced: utilities[i] is device i's
// realized utility for slot t and backlogs[i] its queue at the end of
// the slot. Static strategies ignore outcomes and simply don't
// implement Learner; the run loops type-assert and call Learn only
// when present.
type Learner interface {
	Learn(t int, utilities, backlogs []float64)
}

// EqualSplit is the paper's information-free baseline: every device gets
// budget/N regardless of backlogs, preserving full distribution (no
// queue state crosses the air interface). This reproduces the
// pre-allocator multi-device behavior bit-for-bit.
type EqualSplit struct{}

// Allocate implements Allocator.
func (EqualSplit) Allocate(_ int, budget float64, _, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	share := budget / float64(n)
	for i := range shares {
		shares[i] = share
	}
}

// Name implements Allocator.
func (EqualSplit) Name() string { return "equal-split" }

// ProportionalBacklog grants each device a share proportional to its
// observed backlog — the fluid analogue of proportional-fair scheduling.
// A ReserveFraction of the budget (clamped to [0,1]) is always split
// equally so empty queues can serve their same-slot arrivals; with all
// backlogs zero the whole budget splits equally.
type ProportionalBacklog struct {
	ReserveFraction float64
}

// Allocate implements Allocator.
func (a *ProportionalBacklog) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	var total float64
	for _, q := range backlogs {
		if q > 0 {
			total += q
		}
	}
	reserve := a.ReserveFraction
	if reserve < 0 {
		reserve = 0
	} else if reserve > 1 {
		reserve = 1
	}
	if total <= 0 {
		reserve = 1
	}
	per := reserve * budget / float64(n)
	rest := budget - reserve*budget
	for i := range shares {
		shares[i] = per
		if total > 0 && backlogs[i] > 0 {
			shares[i] += rest * backlogs[i] / total
		}
	}
}

// Name implements Allocator.
func (a *ProportionalBacklog) Name() string { return "proportional-backlog" }

// MaxWeight serves the longest queues first: devices are granted up to
// their observed backlog in descending backlog order, and whatever
// budget remains once every backlog is covered is split equally (so
// same-slot arrivals are still served and an idle system behaves like
// EqualSplit). It is work-conserving — capacity is never idled while any
// observed queue is non-empty — the classic throughput-optimal policy.
type MaxWeight struct {
	idx []int // scratch, reused across slots
}

// NewMaxWeight returns a longest-queue-first allocator.
func NewMaxWeight() *MaxWeight { return &MaxWeight{} }

// Allocate implements Allocator.
func (a *MaxWeight) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	if cap(a.idx) < n {
		a.idx = make([]int, n)
	}
	idx := a.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	// Descending backlog, ties broken by device index for determinism.
	sort.SliceStable(idx, func(x, y int) bool {
		return backlogs[idx[x]] > backlogs[idx[y]]
	})
	remaining := budget
	for i := range shares {
		shares[i] = 0
	}
	for _, i := range idx {
		if remaining <= 0 {
			break
		}
		g := backlogs[i]
		if g < 0 {
			g = 0
		}
		if g > remaining {
			g = remaining
		}
		shares[i] = g
		remaining -= g
	}
	if remaining > 0 {
		per := remaining / float64(n)
		for i := range shares {
			shares[i] += per
		}
	}
}

// Name implements Allocator.
func (a *MaxWeight) Name() string { return "max-weight" }

// wrrCreditSlots caps a device's accumulated deficit credit at this many
// slots' worth of its quantum, bounding how large a burst an idle device
// can later claim.
const wrrCreditSlots = 4

// WeightedRoundRobin is a fluid deficit-round-robin scheduler: each slot
// every device is credited a quantum proportional to its weight, and
// devices are granted min(credit, backlog) in rotating cyclic order. A
// second cyclic pass hands leftover budget to devices with uncovered
// backlog (work conservation), and anything still left splits equally so
// same-slot arrivals are served. Missing or non-positive weights default
// to 1.
type WeightedRoundRobin struct {
	weights []float64
	deficit []float64
	start   int
}

// NewWeightedRoundRobin returns a deficit-round-robin allocator; the
// i-th weight belongs to device i (missing entries weigh 1).
func NewWeightedRoundRobin(weights ...float64) *WeightedRoundRobin {
	return &WeightedRoundRobin{weights: weights}
}

func (a *WeightedRoundRobin) weight(i int) float64 {
	if i < len(a.weights) && a.weights[i] > 0 {
		return a.weights[i]
	}
	return 1
}

// Allocate implements Allocator.
func (a *WeightedRoundRobin) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	if len(a.deficit) < n {
		a.deficit = append(a.deficit, make([]float64, n-len(a.deficit))...)
	}
	var sumW float64
	for i := 0; i < n; i++ {
		sumW += a.weight(i)
	}
	for i := 0; i < n; i++ {
		quantum := budget * a.weight(i) / sumW
		a.deficit[i] += quantum
		if maxCredit := wrrCreditSlots * quantum; a.deficit[i] > maxCredit {
			a.deficit[i] = maxCredit
		}
	}
	remaining := budget
	for i := range shares {
		shares[i] = 0
	}
	// Pass 1: grant min(credit, backlog) in rotating cyclic order.
	for k := 0; k < n && remaining > 0; k++ {
		i := (a.start + k) % n
		g := a.deficit[i]
		if q := backlogs[i]; g > q {
			g = q
		}
		if g < 0 {
			g = 0
		}
		if g > remaining {
			g = remaining
		}
		shares[i] = g
		a.deficit[i] -= g
		remaining -= g
	}
	// Pass 2 (work conservation): leftover budget to uncovered backlog,
	// same cyclic order, beyond deficit credit.
	for k := 0; k < n && remaining > 0; k++ {
		i := (a.start + k) % n
		g := backlogs[i] - shares[i]
		if g <= 0 {
			continue
		}
		if g > remaining {
			g = remaining
		}
		shares[i] += g
		remaining -= g
	}
	if remaining > 0 {
		per := remaining / float64(n)
		for i := range shares {
			shares[i] += per
		}
	}
	a.start = (a.start + 1) % n
}

// Name implements Allocator.
func (a *WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// ErrUnknownAllocator reports a ByName lookup miss.
var ErrUnknownAllocator = errors.New("alloc: unknown allocator")

// Extension is a ByName strategy contributed by another package (the
// learned allocators in internal/learn register themselves this way,
// keeping alloc dependency-free). New receives the text after the
// first ':' in the parsed name — "" when absent — and builds a fresh
// allocator per call.
type Extension struct {
	// Usage is the grammar shown in Names and lookup errors, e.g.
	// "bandit[:ARMS]".
	Usage string
	// Canonical is a concrete instantiable spelling used by
	// cross-cutting tests to reach the strategy, e.g. "bandit:8".
	Canonical string
	// New builds the allocator from the optional parameter text.
	New func(param string) (Allocator, error)
}

// extensions maps a lowercase base name to its registered Extension.
var extensions = map[string]Extension{}

// Register installs an Extension under a base name (the part of a
// ByName spec before any ':'). It panics on an empty or duplicate name
// or a nil constructor — registration happens in package init, where
// a panic is a build-time bug, not a runtime condition.
func Register(name string, ext Extension) {
	name = strings.ToLower(name)
	if name == "" || strings.Contains(name, ":") {
		panic(fmt.Sprintf("alloc: invalid extension name %q", name))
	}
	if ext.New == nil {
		panic(fmt.Sprintf("alloc: extension %q has nil constructor", name))
	}
	if _, dup := extensions[name]; dup {
		panic(fmt.Sprintf("alloc: extension %q registered twice", name))
	}
	if _, err := ByName(name); err == nil {
		panic(fmt.Sprintf("alloc: extension %q shadows a built-in name", name))
	}
	extensions[name] = ext
}

// builtinNames lists the built-in strategy names in display order.
var builtinNames = []string{"equal", "proportional", "maxweight", "wrr"}

// Names lists every name ByName accepts: the built-in strategies plus
// each registered extension's usage grammar (sorted, so the list is
// deterministic regardless of registration order).
func Names() []string {
	out := append([]string(nil), builtinNames...)
	exts := make([]string, 0, len(extensions))
	for _, ext := range extensions {
		exts = append(exts, ext.Usage)
	}
	sort.Strings(exts)
	return append(out, exts...)
}

// CanonicalNames lists one concrete instantiable spelling per strategy
// reachable through ByName — built-ins verbatim, extensions via their
// Canonical example. Cross-cutting tests iterate this to cover every
// allocator the CLI surface can construct.
func CanonicalNames() []string {
	out := append([]string(nil), builtinNames...)
	exts := make([]string, 0, len(extensions))
	for _, ext := range extensions {
		exts = append(exts, ext.Canonical)
	}
	sort.Strings(exts)
	return append(out, exts...)
}

// ByName builds a fresh allocator from a CLI-friendly spec. Built-in
// names are bare ("equal", "proportional", "maxweight", "wrr");
// registered extensions may carry a parameter after a colon, e.g.
// "bandit:8" or "gradient:0.25". Lookup errors enumerate every valid
// name.
func ByName(name string) (Allocator, error) {
	base, param, hasParam := strings.Cut(name, ":")
	switch strings.ToLower(base) {
	case "equal", "equal-split":
		if !hasParam {
			return EqualSplit{}, nil
		}
	case "proportional", "prop", "proportional-backlog":
		if !hasParam {
			return &ProportionalBacklog{}, nil
		}
	case "maxweight", "max-weight":
		if !hasParam {
			return NewMaxWeight(), nil
		}
	case "wrr", "weighted-round-robin":
		if !hasParam {
			return NewWeightedRoundRobin(), nil
		}
	default:
		if ext, ok := extensions[strings.ToLower(base)]; ok {
			a, err := ext.New(param)
			if err != nil {
				return nil, fmt.Errorf("alloc: %s: %w", base, err)
			}
			return a, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (want one of %s)", ErrUnknownAllocator, name, strings.Join(Names(), ", "))
}
