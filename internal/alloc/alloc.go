// Package alloc is the pluggable service-allocation subsystem of the
// shared-edge multi-device scenario: given the per-slot edge budget and
// the backlogs the devices observed at the start of the slot, an
// Allocator decides each device's share of the budget. The paper's
// multi-device claim (§II) is exercised with the information-free
// EqualSplit; the other strategies use exactly the backlog information
// the edge server can see (queue lengths, not device internals), so the
// devices themselves stay fully distributed — only the server-side split
// changes. Ren et al. ("An Edge-Computing Based Architecture for Mobile
// Augmented Reality") and Chen et al. ("Learn to Optimize Resource
// Allocation under QoS Constraint of AR") study this split as the main
// lever; this package makes it a first-class, swappable policy.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Allocator splits one slot's shared service budget across devices.
//
// Implementations fill shares (len(shares) == len(backlogs)) with
// non-negative values summing to at most budget; work-conserving
// strategies sum to exactly budget. backlogs[i] is device i's queue
// observed at the start of the slot — allocation happens before the
// slot's arrivals, so strategies that clamp shares to backlogs should
// redistribute the surplus rather than idle it if they want same-slot
// arrivals served. Allocators may keep per-run state (rotation pointers,
// deficit counters) and are not safe for concurrent use; build one per
// run, as sessions do.
type Allocator interface {
	Allocate(t int, budget float64, backlogs, shares []float64)
	// Name identifies the strategy in traces and ablation rows.
	Name() string
}

// EqualSplit is the paper's information-free baseline: every device gets
// budget/N regardless of backlogs, preserving full distribution (no
// queue state crosses the air interface). This reproduces the
// pre-allocator multi-device behavior bit-for-bit.
type EqualSplit struct{}

// Allocate implements Allocator.
func (EqualSplit) Allocate(_ int, budget float64, _, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	share := budget / float64(n)
	for i := range shares {
		shares[i] = share
	}
}

// Name implements Allocator.
func (EqualSplit) Name() string { return "equal-split" }

// ProportionalBacklog grants each device a share proportional to its
// observed backlog — the fluid analogue of proportional-fair scheduling.
// A ReserveFraction of the budget (clamped to [0,1]) is always split
// equally so empty queues can serve their same-slot arrivals; with all
// backlogs zero the whole budget splits equally.
type ProportionalBacklog struct {
	ReserveFraction float64
}

// Allocate implements Allocator.
func (a *ProportionalBacklog) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	var total float64
	for _, q := range backlogs {
		if q > 0 {
			total += q
		}
	}
	reserve := a.ReserveFraction
	if reserve < 0 {
		reserve = 0
	} else if reserve > 1 {
		reserve = 1
	}
	if total <= 0 {
		reserve = 1
	}
	per := reserve * budget / float64(n)
	rest := budget - reserve*budget
	for i := range shares {
		shares[i] = per
		if total > 0 && backlogs[i] > 0 {
			shares[i] += rest * backlogs[i] / total
		}
	}
}

// Name implements Allocator.
func (a *ProportionalBacklog) Name() string { return "proportional-backlog" }

// MaxWeight serves the longest queues first: devices are granted up to
// their observed backlog in descending backlog order, and whatever
// budget remains once every backlog is covered is split equally (so
// same-slot arrivals are still served and an idle system behaves like
// EqualSplit). It is work-conserving — capacity is never idled while any
// observed queue is non-empty — the classic throughput-optimal policy.
type MaxWeight struct {
	idx []int // scratch, reused across slots
}

// NewMaxWeight returns a longest-queue-first allocator.
func NewMaxWeight() *MaxWeight { return &MaxWeight{} }

// Allocate implements Allocator.
func (a *MaxWeight) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	if cap(a.idx) < n {
		a.idx = make([]int, n)
	}
	idx := a.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	// Descending backlog, ties broken by device index for determinism.
	sort.SliceStable(idx, func(x, y int) bool {
		return backlogs[idx[x]] > backlogs[idx[y]]
	})
	remaining := budget
	for i := range shares {
		shares[i] = 0
	}
	for _, i := range idx {
		if remaining <= 0 {
			break
		}
		g := backlogs[i]
		if g < 0 {
			g = 0
		}
		if g > remaining {
			g = remaining
		}
		shares[i] = g
		remaining -= g
	}
	if remaining > 0 {
		per := remaining / float64(n)
		for i := range shares {
			shares[i] += per
		}
	}
}

// Name implements Allocator.
func (a *MaxWeight) Name() string { return "max-weight" }

// wrrCreditSlots caps a device's accumulated deficit credit at this many
// slots' worth of its quantum, bounding how large a burst an idle device
// can later claim.
const wrrCreditSlots = 4

// WeightedRoundRobin is a fluid deficit-round-robin scheduler: each slot
// every device is credited a quantum proportional to its weight, and
// devices are granted min(credit, backlog) in rotating cyclic order. A
// second cyclic pass hands leftover budget to devices with uncovered
// backlog (work conservation), and anything still left splits equally so
// same-slot arrivals are served. Missing or non-positive weights default
// to 1.
type WeightedRoundRobin struct {
	weights []float64
	deficit []float64
	start   int
}

// NewWeightedRoundRobin returns a deficit-round-robin allocator; the
// i-th weight belongs to device i (missing entries weigh 1).
func NewWeightedRoundRobin(weights ...float64) *WeightedRoundRobin {
	return &WeightedRoundRobin{weights: weights}
}

func (a *WeightedRoundRobin) weight(i int) float64 {
	if i < len(a.weights) && a.weights[i] > 0 {
		return a.weights[i]
	}
	return 1
}

// Allocate implements Allocator.
func (a *WeightedRoundRobin) Allocate(_ int, budget float64, backlogs, shares []float64) {
	n := len(shares)
	if n == 0 {
		return
	}
	if len(a.deficit) < n {
		a.deficit = append(a.deficit, make([]float64, n-len(a.deficit))...)
	}
	var sumW float64
	for i := 0; i < n; i++ {
		sumW += a.weight(i)
	}
	for i := 0; i < n; i++ {
		quantum := budget * a.weight(i) / sumW
		a.deficit[i] += quantum
		if maxCredit := wrrCreditSlots * quantum; a.deficit[i] > maxCredit {
			a.deficit[i] = maxCredit
		}
	}
	remaining := budget
	for i := range shares {
		shares[i] = 0
	}
	// Pass 1: grant min(credit, backlog) in rotating cyclic order.
	for k := 0; k < n && remaining > 0; k++ {
		i := (a.start + k) % n
		g := a.deficit[i]
		if q := backlogs[i]; g > q {
			g = q
		}
		if g < 0 {
			g = 0
		}
		if g > remaining {
			g = remaining
		}
		shares[i] = g
		a.deficit[i] -= g
		remaining -= g
	}
	// Pass 2 (work conservation): leftover budget to uncovered backlog,
	// same cyclic order, beyond deficit credit.
	for k := 0; k < n && remaining > 0; k++ {
		i := (a.start + k) % n
		g := backlogs[i] - shares[i]
		if g <= 0 {
			continue
		}
		if g > remaining {
			g = remaining
		}
		shares[i] += g
		remaining -= g
	}
	if remaining > 0 {
		per := remaining / float64(n)
		for i := range shares {
			shares[i] += per
		}
	}
	a.start = (a.start + 1) % n
}

// Name implements Allocator.
func (a *WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// ErrUnknownAllocator reports a ByName lookup miss.
var ErrUnknownAllocator = errors.New("alloc: unknown allocator")

// Names lists the strategy names ByName accepts.
func Names() []string { return []string{"equal", "proportional", "maxweight", "wrr"} }

// ByName builds a fresh allocator from a CLI-friendly name: "equal",
// "proportional", "maxweight", or "wrr".
func ByName(name string) (Allocator, error) {
	switch strings.ToLower(name) {
	case "equal", "equal-split":
		return EqualSplit{}, nil
	case "proportional", "prop", "proportional-backlog":
		return &ProportionalBacklog{}, nil
	case "maxweight", "max-weight":
		return NewMaxWeight(), nil
	case "wrr", "weighted-round-robin":
		return NewWeightedRoundRobin(), nil
	default:
		return nil, fmt.Errorf("%w: %q (want one of %s)", ErrUnknownAllocator, name, strings.Join(Names(), ", "))
	}
}
