package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

// Occupancy profile of a body-like cloud, indexed by depth 0..10.
var testProfile = []int{1, 8, 60, 420, 2500, 9000, 26000, 60000, 110000, 160000, 200000}

var testDepths = []int{5, 6, 7, 8, 9, 10}

func fixtures(t *testing.T) (quality.UtilityModel, *delay.PointCostModel) {
	t.Helper()
	u, err := quality.NewLogPointUtility(testProfile)
	if err != nil {
		t.Fatal(err)
	}
	c, err := delay.NewPointCostModel(testProfile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u, c
}

// service rate below a(10) so max depth is unstable but depth <=9 is stable.
const testService = 170_000.0

func baseConfig(t *testing.T, p policy.Policy, slots int) Config {
	t.Helper()
	u, c := fixtures(t)
	return Config{
		Policy:   p,
		Arrivals: &queueing.DeterministicArrivals{PerSlot: 1},
		Cost:     c,
		Utility:  u,
		Service:  &delay.ConstantService{Rate: testService},
		Slots:    slots,
	}
}

func controller(t *testing.T, v float64) *core.Controller {
	t.Helper()
	u, c := fixtures(t)
	ctrl, err := core.New(core.Config{V: v, Depths: testDepths, Utility: u, Cost: c})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestValidation(t *testing.T) {
	u, c := fixtures(t)
	max, _ := policy.NewMaxDepth(testDepths)
	valid := Config{
		Policy:   max,
		Arrivals: &queueing.DeterministicArrivals{PerSlot: 1},
		Cost:     c,
		Utility:  u,
		Service:  &delay.ConstantService{Rate: 1},
		Slots:    10,
	}
	cases := []struct {
		mutate func(*Config)
		want   error
	}{
		{func(c *Config) { c.Policy = nil }, ErrNilPolicy},
		{func(c *Config) { c.Arrivals = nil }, ErrNilArrivals},
		{func(c *Config) { c.Cost = nil }, ErrNilCost},
		{func(c *Config) { c.Utility = nil }, ErrNilUtility},
		{func(c *Config) { c.Service = nil }, ErrNilService},
		{func(c *Config) { c.Slots = 0 }, ErrBadSlots},
	}
	for i, tc := range cases {
		cfg := valid
		tc.mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, tc.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}
	if _, err := Run(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMaxDepthDiverges(t *testing.T) {
	max, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(baseConfig(t, max, 800))
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v != queueing.VerdictDiverging {
		t.Errorf("max-depth verdict = %v, want diverging", v)
	}
	// Drift = a(10) − b = 30k/slot ⇒ final ≈ 800·30000 = 2.4e7.
	wantFinal := 800 * (float64(testProfile[10]) - testService)
	if math.Abs(res.FinalBacklog-wantFinal) > wantFinal*0.01 {
		t.Errorf("final backlog = %v, want ~%v", res.FinalBacklog, wantFinal)
	}
	for _, d := range res.Depth {
		if d != 10 {
			t.Fatal("max-depth must pin depth 10")
		}
	}
}

func TestMinDepthConverges(t *testing.T) {
	min, err := policy.NewMinDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(baseConfig(t, min, 800))
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v != queueing.VerdictConverged {
		t.Errorf("min-depth verdict = %v, want converged", v)
	}
	if res.FinalBacklog != 0 {
		t.Errorf("final backlog = %v, want 0", res.FinalBacklog)
	}
}

func TestControllerStabilizes(t *testing.T) {
	ctrl := controller(t, 2e6)
	res, err := Run(baseConfig(t, ctrl, 2000))
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v != queueing.VerdictStabilized {
		t.Errorf("controller verdict = %v, want stabilized", v)
	}
	// Quality dominance: controller must beat min-depth's quality while
	// staying stable.
	min, _ := policy.NewMinDepth(testDepths)
	minRes, err := Run(baseConfig(t, min, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeAvgUtility <= minRes.TimeAvgUtility {
		t.Errorf("controller utility %v not above min-depth %v",
			res.TimeAvgUtility, minRes.TimeAvgUtility)
	}
	// Backlog bounded: far below the diverging max-depth trajectory.
	if res.MaxBacklog > 0.5*2000*(float64(testProfile[10])-testService) {
		t.Errorf("controller backlog %v looks divergent", res.MaxBacklog)
	}
}

func TestFlowConservation(t *testing.T) {
	ctrl := controller(t, 1e6)
	res, err := Run(baseConfig(t, ctrl, 500))
	if err != nil {
		t.Fatal(err)
	}
	var arrived, served float64
	for i := range res.Arrived {
		arrived += res.Arrived[i]
		served += res.Served[i]
	}
	if diff := math.Abs(arrived - served - res.FinalBacklog); diff > 1e-6 {
		t.Errorf("conservation violated by %v", diff)
	}
}

func TestBoundedBacklogOverflow(t *testing.T) {
	max, _ := policy.NewMaxDepth(testDepths)
	cfg := baseConfig(t, max, 400)
	cfg.MaxBacklog = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedWork == 0 {
		t.Error("overloaded bounded queue must drop work")
	}
	if res.MaxBacklog > cfg.MaxBacklog+1e-9 {
		t.Errorf("backlog %v exceeded bound %v", res.MaxBacklog, cfg.MaxBacklog)
	}
}

func TestUtilityAccounting(t *testing.T) {
	fixed := &policy.FixedDepth{Depth: 7}
	res, err := Run(baseConfig(t, fixed, 100))
	if err != nil {
		t.Fatal(err)
	}
	u, _ := fixtures(t)
	want := u.Utility(7)
	if math.Abs(res.TimeAvgUtility-want) > 1e-12 {
		t.Errorf("time-avg utility = %v, want %v", res.TimeAvgUtility, want)
	}
	hist := res.DepthHistogram()
	if hist[7] != 100 || len(hist) != 1 {
		t.Errorf("depth histogram = %v", hist)
	}
}

func TestFrameCompletionsUnderStableLoad(t *testing.T) {
	// Stable fixed depth: every frame eventually completes with small
	// sojourn; Little's law approximately holds.
	fixed := &policy.FixedDepth{Depth: 8} // a(8)=110k < 170k service
	res, err := Run(baseConfig(t, fixed, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) < 299 {
		t.Errorf("only %d/300 frames completed", len(res.Completed))
	}
	if res.MeanSojourn > 1 {
		t.Errorf("mean sojourn = %v slots for an underloaded queue", res.MeanSojourn)
	}
	if gap := res.Little.LawGap(); gap > 0.5 {
		t.Errorf("Little's law gap = %v", gap)
	}
}

func TestCompareRunsAllPolicies(t *testing.T) {
	max, _ := policy.NewMaxDepth(testDepths)
	min, _ := policy.NewMinDepth(testDepths)
	ctrl := controller(t, 2e6)
	results, err := Compare(baseConfig(t, nil, 300), []policy.Policy{ctrl, max, min})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	names := []string{"drift-plus-penalty", "only max-Depth", "only min-Depth"}
	for i, r := range results {
		if r.PolicyName != names[i] {
			t.Errorf("result %d name = %q, want %q", i, r.PolicyName, names[i])
		}
	}
}

func TestRunMultiDistributedStability(t *testing.T) {
	// Three devices share a service budget; each runs its own controller
	// with no knowledge of the others. All must stabilize.
	u, c := fixtures(t)
	n := 3
	perDevice := testService // total = 3×170k, each share 170k
	devices := make([]Device, n)
	for i := range devices {
		ctrl, err := core.New(core.Config{V: 2e6, Depths: testDepths, Utility: u, Cost: c})
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = Device{
			Policy:   ctrl,
			Cost:     c,
			Utility:  u,
			Arrivals: &queueing.DeterministicArrivals{PerSlot: 1},
		}
	}
	res, err := RunMulti(MultiConfig{
		Devices: devices,
		Service: &delay.ConstantService{Rate: perDevice * float64(n)},
		Slots:   2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.PerDevice {
		v, err := r.Verdict()
		if err != nil {
			t.Fatal(err)
		}
		if v == queueing.VerdictDiverging {
			t.Errorf("device %d diverged", i)
		}
	}
	if res.MeanTimeAvgUtility <= 0 {
		t.Error("mean utility not computed")
	}
}

func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(MultiConfig{}); !errors.Is(err, ErrNoDevices) {
		t.Errorf("no devices: %v", err)
	}
	u, c := fixtures(t)
	dev := Device{
		Policy:   &policy.FixedDepth{Depth: 5},
		Cost:     c,
		Utility:  u,
		Arrivals: &queueing.DeterministicArrivals{PerSlot: 1},
	}
	if _, err := RunMulti(MultiConfig{Devices: []Device{dev}, Slots: 10}); !errors.Is(err, ErrNilService) {
		t.Errorf("nil service: %v", err)
	}
	broken := dev
	broken.Cost = nil
	if _, err := RunMulti(MultiConfig{
		Devices: []Device{broken},
		Service: &delay.ConstantService{Rate: 1},
		Slots:   10,
	}); !errors.Is(err, ErrNilCost) {
		t.Errorf("nil cost: %v", err)
	}
}

func TestFailureInjectionThrottling(t *testing.T) {
	// Service collapses to 30% in a window; the controller must ride it
	// out (no divergence) by dropping depth, then recover quality.
	ctrl := controller(t, 2e6)
	cfg := baseConfig(t, ctrl, 3000)
	cfg.Service = &delay.ModulatedService{
		Inner: &delay.ConstantService{Rate: testService},
		Factor: func(t int) float64 {
			if t >= 1000 && t < 1500 {
				return 0.3
			}
			return 1
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v == queueing.VerdictDiverging {
		t.Error("controller diverged under throttling")
	}
	// During the throttle window the controller must shed depth.
	var inWindow, outWindow float64
	for t2 := 1100; t2 < 1500; t2++ {
		inWindow += float64(res.Depth[t2])
	}
	for t2 := 200; t2 < 600; t2++ {
		outWindow += float64(res.Depth[t2])
	}
	if inWindow/400 >= outWindow/400 {
		t.Errorf("mean depth in throttle window %v not below normal %v",
			inWindow/400, outWindow/400)
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := baseConfig(t, controller(t, 5e5), 1_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Observer = func(e SlotEvent) {
		if e.Slot == 100 {
			cancel()
		}
	}
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestObserverMatchesTrajectory(t *testing.T) {
	cfg := baseConfig(t, controller(t, 5e5), 600)
	var events []SlotEvent
	cfg.Observer = func(e SlotEvent) { events = append(events, e) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != cfg.Slots {
		t.Fatalf("observer saw %d slots, want %d", len(events), cfg.Slots)
	}
	for i, e := range events {
		if e.Slot != i || e.Device != -1 ||
			e.Backlog != res.Backlog[i] || e.Depth != res.Depth[i] ||
			e.Utility != res.Utility[i] || e.Arrived != res.Arrived[i] ||
			e.Served != res.Served[i] {
			t.Fatalf("event %d = %+v disagrees with result", i, e)
		}
	}
}

func TestRunMultiObserverTagsDevices(t *testing.T) {
	cfg := baseConfig(t, controller(t, 5e5), 50)
	dev := Device{Policy: cfg.Policy, Cost: cfg.Cost, Utility: cfg.Utility, Arrivals: cfg.Arrivals}
	seen := map[int]int{}
	_, err := RunMulti(MultiConfig{
		Devices:  []Device{dev, dev, dev},
		Service:  cfg.Service,
		Slots:    50,
		Observer: func(e SlotEvent) { seen[e.Device]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 50 || seen[1] != 50 || seen[2] != 50 {
		t.Errorf("per-device event counts = %v", seen)
	}
}

func TestConfigValidateExported(t *testing.T) {
	var c Config
	if err := c.Validate(); !errors.Is(err, ErrNilPolicy) {
		t.Errorf("empty config Validate = %v", err)
	}
	var m MultiConfig
	if err := m.Validate(); !errors.Is(err, ErrNoDevices) {
		t.Errorf("empty multi config Validate = %v", err)
	}
}
