// Package sim runs the slotted AR-visualization simulation that couples a
// depth-selection policy, a frame arrival process, the depth→workload cost
// model, and the device's service process — the experiment engine behind
// Fig. 2 and every ablation. One slot is the paper's "unit time": frames
// arrive, the policy picks an Octree depth from the observed backlog, the
// chosen depth's workload joins the queue, and the device serves what it
// can.
package sim

import (
	"context"
	"errors"
	"fmt"

	"qarv/internal/delay"
	"qarv/internal/obs"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

// SlotEvent is one slot's control decision and queue transition, emitted
// to observers as the loop runs so streaming/tracing consumers don't need
// to post-process full trajectories.
type SlotEvent struct {
	// Slot is the time step t.
	Slot int
	// Device indexes the device in multi-device runs; -1 in single runs.
	Device int
	// Backlog is Q(t) observed at the start of the slot.
	Backlog float64
	// Depth is the chosen d(t).
	Depth int
	// Utility is pa(d(t)).
	Utility float64
	// Arrived is the work enqueued this slot.
	Arrived float64
	// Served is the work served this slot.
	Served float64
	// Dropped is the work lost this slot: bounded-backlog overflow in
	// sim runs, lost frame bytes in offload runs (which still occupied
	// the uplink busy period even though they never delivered).
	Dropped float64
}

// Observer receives each slot's event synchronously from the loop
// goroutine; implementations must be fast or hand off to a channel.
type Observer func(SlotEvent)

// Config describes one simulation run.
type Config struct {
	// Policy picks the depth each slot.
	Policy policy.Policy
	// Arrivals yields frames per slot (the paper uses one frame per slot).
	Arrivals queueing.ArrivalProcess
	// Cost maps the chosen depth to per-frame workload a(d).
	Cost delay.CostModel
	// Utility scores the chosen depth pa(d) for the objective (1).
	Utility quality.UtilityModel
	// Service yields per-slot capacity b(t).
	Service delay.ServiceProcess
	// Slots is the horizon T.
	Slots int
	// MaxBacklog, when positive, bounds the queue (overflow drops work).
	MaxBacklog float64
	// Observer, when non-nil, receives every slot's event as it happens.
	Observer Observer
	// Metrics, when non-nil, accumulates run telemetry (slot counters,
	// backlog/utility/sojourn distributions) into the registry. Nil
	// disables metrics at the cost of one pointer check per slot.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives slot-timestamped flight-recorder
	// records: per-slot spans, depth changes, and drop events.
	Recorder *obs.FlightRecorder
}

// Config validation errors.
var (
	ErrNilPolicy   = errors.New("sim: nil policy")
	ErrNilArrivals = errors.New("sim: nil arrival process")
	ErrNilCost     = errors.New("sim: nil cost model")
	ErrNilUtility  = errors.New("sim: nil utility model")
	ErrNilService  = errors.New("sim: nil service process")
	ErrBadSlots    = errors.New("sim: slot count must be positive")
)

// Validate checks the configuration without running it (the Session API
// validates once at construction).
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	switch {
	case c.Policy == nil:
		return ErrNilPolicy
	case c.Arrivals == nil:
		return ErrNilArrivals
	case c.Cost == nil:
		return ErrNilCost
	case c.Utility == nil:
		return ErrNilUtility
	case c.Service == nil:
		return ErrNilService
	case c.Slots <= 0:
		return fmt.Errorf("%w: %d", ErrBadSlots, c.Slots)
	}
	return nil
}

// Result holds the full trajectory of one run plus summary statistics.
type Result struct {
	PolicyName string

	// Per-slot series, each of length Slots.
	Backlog []float64 // Q(t) observed at the start of slot t
	Depth   []int     // d(t) chosen in slot t
	Arrived []float64 // work enqueued in slot t
	Served  []float64 // work served in slot t
	Utility []float64 // pa(d(t))

	// Frame accounting.
	Completed []queueing.Completed
	// DroppedWork is the work rejected by the bounded backlog;
	// DroppedFrames counts the frames that overflow removed whole from
	// the frame queue (they never complete).
	DroppedWork   float64
	DroppedFrames int
	MeanSojourn   float64
	Little        queueing.LittleEstimator

	// Summaries of the objective and constraint.
	TimeAvgUtility float64 // (1/T)·Σ pa(d(τ)) — objective (1)
	TimeAvgBacklog float64 // (1/T)·Σ Q(τ)   — constraint (2)
	FinalBacklog   float64
	MaxBacklog     float64
}

// Verdict classifies the backlog trajectory per Fig. 2(a).
func (r *Result) Verdict() (queueing.Verdict, error) {
	return queueing.ClassifyTrajectory(r.Backlog, 0)
}

// DepthHistogram counts slots per chosen depth.
func (r *Result) DepthHistogram() map[int]int {
	h := make(map[int]int)
	for _, d := range r.Depth {
		h[d]++
	}
	return h
}

// deviceRunner is the per-device slot-loop state shared by single-device
// (RunContext) and multi-device (RunMultiContext) runs, so every device
// gets the same full per-frame accounting: the timestamped FrameQueue,
// Completed records, the Little estimator, and bounded-backlog drop
// propagation.
type deviceRunner struct {
	policy   policy.Policy
	cost     delay.CostModel
	utility  quality.UtilityModel
	arrivals queueing.ArrivalProcess

	backlog *queueing.Backlog
	frames  queueing.FrameQueue
	res     *Result

	utilSum    float64
	backlogSum float64

	// tel is nil unless telemetry is enabled (see setTelemetry);
	// lastDepth lets the recorder log only depth *changes*.
	tel       *telemetry
	lastDepth int
}

func newDeviceRunner(p policy.Policy, cost delay.CostModel, utility quality.UtilityModel,
	arrivals queueing.ArrivalProcess, maxBacklog float64, slots int) *deviceRunner {
	return &deviceRunner{
		policy:   p,
		cost:     cost,
		utility:  utility,
		arrivals: arrivals,
		backlog:  queueing.NewBoundedBacklog(maxBacklog),
		res: &Result{
			PolicyName: p.Name(),
			Backlog:    make([]float64, slots),
			Depth:      make([]int, slots),
			Arrived:    make([]float64, slots),
			Served:     make([]float64, slots),
			Utility:    make([]float64, slots),
		},
	}
}

// step advances the device one slot against the given service capacity.
// device tags the observer event (-1 for single-device runs).
func (r *deviceRunner) step(t int, capacity float64, device int, obs Observer) {
	res := r.res
	q := r.backlog.Level() // line 4 of Algorithm 1: observe Q(t)
	res.Backlog[t] = q
	r.backlogSum += q
	if q > res.MaxBacklog {
		res.MaxBacklog = q
	}

	d := r.policy.Decide(t, q) // lines 5–11: closed-form decision
	res.Depth[t] = d
	u := r.utility.Utility(d)
	res.Utility[t] = u
	r.utilSum += u

	// Arrivals at the chosen depth. Negative counts from custom
	// processes are clamped so they can't drive λ (and LawGap) negative.
	n := r.arrivals.Frames(t)
	if n < 0 {
		n = 0
	}
	var work float64
	for i := 0; i < n; i++ {
		w := r.cost.FrameCost(d)
		work += w
		r.frames.Push(w, d, t)
	}
	res.Arrived[t] = work

	// Service. When the bounded backlog rejects part of the slot's
	// arrivals, the same amount is dropped tail-first from the frame
	// queue so FrameQueue.WorkBacklog tracks Backlog.Level exactly and
	// sojourn statistics never count work that was never admitted.
	droppedBefore := r.backlog.TotalDropped()
	served := r.backlog.Step(work, capacity)
	res.Served[t] = served
	droppedNow := r.backlog.TotalDropped() - droppedBefore
	admitted := n
	droppedFrames := 0
	if droppedNow > 0 {
		droppedFrames, _ = r.frames.DropTail(droppedNow)
		res.DroppedFrames += droppedFrames
		if admitted -= droppedFrames; admitted < 0 {
			admitted = 0
		}
	}
	completed := r.frames.Serve(served, t)
	for _, c := range completed {
		res.Completed = append(res.Completed, c)
		res.Little.ObserveCompletion(c.Sojourn)
	}
	// Sample the queue at end of slot so L and W use the same clock
	// (a frame completing in its arrival slot contributes 0 to both).
	// λ counts only admitted frames: overflow-removed frames never
	// complete, so offering them to the estimator would fake a
	// Little's-law violation in exactly the drop regime.
	res.Little.ObserveSlot(float64(r.frames.Len()), admitted)
	if tel := r.tel; tel != nil {
		tel.slots.Inc()
		tel.framesArrived.Add(int64(n))
		tel.framesCompleted.Add(int64(len(completed)))
		tel.backlog.Observe(q)
		tel.served.Observe(served)
		tel.utility.Observe(u)
		for _, c := range completed {
			tel.sojourn.Observe(float64(c.Sojourn))
		}
		if droppedNow > 0 {
			tel.framesDropped.Add(int64(droppedFrames))
			tel.rec.Event(int64(t), "sim", "drop", int64(device), droppedNow)
		}
		if d != r.lastDepth {
			tel.rec.Event(int64(t), "sim", "depth", int64(device), float64(d))
			r.lastDepth = d
		}
		tel.rec.Span(int64(t), 1, "sim", "slot", int64(device), q)
	}
	if obs != nil {
		obs(SlotEvent{
			Slot: t, Device: device, Backlog: q, Depth: d,
			Utility: u, Arrived: work, Served: served, Dropped: droppedNow,
		})
	}
}

// finalize fills the run summaries after the last slot.
func (r *deviceRunner) finalize(slots int) *Result {
	res := r.res
	res.DroppedWork = r.backlog.TotalDropped()
	res.FinalBacklog = r.backlog.Level()
	res.TimeAvgUtility = r.utilSum / float64(slots)
	res.TimeAvgBacklog = r.backlogSum / float64(slots)
	if len(res.Completed) > 0 {
		var s float64
		for _, c := range res.Completed {
			s += float64(c.Sojourn)
		}
		res.MeanSojourn = s / float64(len(res.Completed))
	}
	return res
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes the simulation under a context: the slot loop polls
// ctx once per queueing.PollEvery slots and aborts with the context's
// error, so even million-slot runs cancel promptly.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dev := newDeviceRunner(cfg.Policy, cfg.Cost, cfg.Utility, cfg.Arrivals, cfg.MaxBacklog, cfg.Slots)
	dev.setTelemetry(cfg.Metrics, cfg.Recorder)
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		if err := cancel.Check(); err != nil {
			return nil, fmt.Errorf("sim: canceled at slot %d: %w", t, err)
		}
		dev.step(t, cfg.Service.Service(t), -1, cfg.Observer)
	}
	return dev.finalize(cfg.Slots), nil
}

// Compare runs the same scenario under several policies (fresh queues
// each) and returns results keyed by the order given.
func Compare(base Config, policies []policy.Policy) ([]*Result, error) {
	return CompareContext(context.Background(), base, policies)
}

// CompareContext is Compare under a cancelable context.
func CompareContext(ctx context.Context, base Config, policies []policy.Policy) ([]*Result, error) {
	out := make([]*Result, 0, len(policies))
	for _, p := range policies {
		cfg := base
		cfg.Policy = p
		r, err := RunContext(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("policy %q: %w", p.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}
