package sim

import (
	"reflect"
	"testing"

	"qarv/internal/delay"
	"qarv/internal/obs"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

func TestTelemetryCountsAndRecords(t *testing.T) {
	max, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, max, 100)
	cfg.MaxBacklog = 200_000 // max-depth at this service rate overflows
	cfg.Metrics = obs.NewRegistry()
	cfg.Recorder = obs.NewFlightRecorder(1024)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Metrics.Counter(MetricSlots).Value(); got != 100 {
		t.Fatalf("%s = %d, want 100", MetricSlots, got)
	}
	if got := cfg.Metrics.Counter(MetricFramesArrived).Value(); got != 100 {
		t.Fatalf("%s = %d, want 100", MetricFramesArrived, got)
	}
	if got := cfg.Metrics.Counter(MetricFramesDropped).Value(); got != int64(res.DroppedFrames) {
		t.Fatalf("%s = %d, want %d", MetricFramesDropped, got, res.DroppedFrames)
	}
	if got := cfg.Metrics.Counter(MetricFramesCompleted).Value(); got != int64(len(res.Completed)) {
		t.Fatalf("%s = %d, want %d", MetricFramesCompleted, got, len(res.Completed))
	}
	if got := cfg.Metrics.Histogram(MetricBacklog).Count(); got != 100 {
		t.Fatalf("%s count = %d, want 100", MetricBacklog, got)
	}
	if cfg.Recorder.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	// Exactly one depth-change event: max-depth picks d=10 every slot.
	var depthChanges int
	for _, rec := range cfg.Recorder.Records() {
		if rec.Cat == "sim" && rec.Name == "depth" {
			depthChanges++
		}
	}
	if depthChanges != 1 {
		t.Fatalf("depth-change events = %d, want 1 (constant policy)", depthChanges)
	}
}

// TestTelemetryDoesNotChangeResult pins the acceptance criterion that
// enabling telemetry leaves the report identical.
func TestTelemetryDoesNotChangeResult(t *testing.T) {
	max, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	plain := baseConfig(t, max, 200)
	plain.MaxBacklog = 200_000
	want, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	instrumented := baseConfig(t, max, 200)
	instrumented.MaxBacklog = 200_000
	instrumented.Metrics = obs.NewRegistry()
	instrumented.Recorder = obs.NewFlightRecorder(256)
	got, err := Run(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("telemetry changed the run result")
	}
}

// TestTelemetryDisabledZeroAllocPerSlot pins the nil-telemetry fast
// path: with no arrivals in flight the slot loop itself must not
// allocate at all when Metrics and Recorder are nil.
func TestTelemetryDisabledZeroAllocPerSlot(t *testing.T) {
	max, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	u, c := fixtures(t)
	const slots = 2000
	dev := newDeviceRunner(max, c, u, &queueing.DeterministicArrivals{PerSlot: 0}, 0, slots)
	dev.setTelemetry(nil, nil)
	next := 0
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 100; i++ {
			dev.step(next, testService, -1, nil)
			next++
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-telemetry slot loop allocates (%v allocs per 100 slots)", allocs)
	}
}

// benchSimConfig mirrors baseConfig for benchmarks.
func benchSimConfig(b *testing.B, slots int) Config {
	b.Helper()
	u, err := quality.NewLogPointUtility(testProfile)
	if err != nil {
		b.Fatal(err)
	}
	c, err := delay.NewPointCostModel(testProfile, 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	p, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Policy:     p,
		Arrivals:   &queueing.DeterministicArrivals{PerSlot: 1},
		Cost:       c,
		Utility:    u,
		Service:    &delay.ConstantService{Rate: testService},
		Slots:      slots,
		MaxBacklog: 400_000,
	}
}

// BenchmarkObserverOverhead measures the slot loop with telemetry off
// (the nil fast path every pre-telemetry caller stays on), with a
// metric registry attached, and with registry plus flight recorder.
// One op is one slot.
func BenchmarkObserverOverhead(b *testing.B) {
	modes := []struct {
		name     string
		metrics  bool
		recorder bool
	}{
		{name: "off"},
		{name: "metrics", metrics: true},
		{name: "metrics+recorder", metrics: true, recorder: true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := benchSimConfig(b, b.N)
			if m.metrics {
				cfg.Metrics = obs.NewRegistry()
			}
			if m.recorder {
				cfg.Recorder = obs.NewFlightRecorder(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		})
	}
}
