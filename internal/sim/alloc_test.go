package sim

import (
	"fmt"
	"math"
	"testing"

	"qarv/internal/alloc"
	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/policy"
	"qarv/internal/queueing"
)

// TestBoundedRunFrameAccountingAgrees is the drop-divergence property
// test: under an active MaxBacklog bound the frame queue's unserved work
// must equal the scalar backlog on every slot — overflow is propagated
// tail-first into the frame queue instead of silently inflating sojourn
// statistics.
func TestBoundedRunFrameAccountingAgrees(t *testing.T) {
	u, c := fixtures(t)
	max, err := policy.NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	// Two frames per slot against a bound below one frame's work: the
	// overflow spans whole frames (counted) plus partial trims.
	const slots = 600
	dev := newDeviceRunner(max, c, u, &queueing.DeterministicArrivals{PerSlot: 2}, 100_000, slots)
	for tt := 0; tt < slots; tt++ {
		dev.step(tt, testService, -1, nil)
		if diff := math.Abs(dev.frames.WorkBacklog() - dev.backlog.Level()); diff > 1e-9 {
			t.Fatalf("slot %d: frame work %v != scalar backlog %v (diff %v)",
				tt, dev.frames.WorkBacklog(), dev.backlog.Level(), diff)
		}
	}
	res := dev.finalize(slots)
	if res.DroppedWork == 0 {
		t.Fatal("test never exercised overflow")
	}
	if res.DroppedFrames == 0 {
		t.Error("overflow must surface a dropped-frame count")
	}
	// Sojourns must reflect only admitted work: the bounded queue holds
	// at most 100k work against 170k service, so no admitted frame waits
	// more than one slot.
	for _, fr := range res.Completed {
		if fr.Sojourn > 1 {
			t.Errorf("frame %d sojourn %d slots exceeds the bounded queue's drain time", fr.ID, fr.Sojourn)
		}
	}
	// λ counts admitted frames only: of the 2 offered per slot, one is
	// overflow-dropped whole every slot, so the admitted rate is 1.
	if lam := res.Little.Lambda(); math.Abs(lam-1) > 1e-12 {
		t.Errorf("lambda = %v, want 1 (admitted frames only)", lam)
	}
	if got := res.DroppedFrames + len(res.Completed) + dev.frames.Len(); got != 2*slots {
		t.Errorf("dropped %d + completed %d + queued %d != %d offered",
			res.DroppedFrames, len(res.Completed), dev.frames.Len(), 2*slots)
	}
}

// negativeArrivals returns a poisoned count on even slots — the
// regression shape for the λ-corruption fix.
type negativeArrivals struct{}

func (negativeArrivals) Frames(t int) int {
	if t%2 == 0 {
		return -3
	}
	return 1
}
func (negativeArrivals) Name() string { return "negative" }

func TestNegativeArrivalsClamped(t *testing.T) {
	fixed := &policy.FixedDepth{Depth: 5}
	cfg := baseConfig(t, fixed, 400)
	cfg.Arrivals = negativeArrivals{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Half the slots deliver one frame, the poisoned half none: λ must
	// be exactly 0.5, never dragged negative.
	if lam := res.Little.Lambda(); math.Abs(lam-0.5) > 1e-12 {
		t.Errorf("lambda = %v, want 0.5", lam)
	}
	if gap := res.Little.LawGap(); math.IsNaN(gap) || gap < 0 {
		t.Errorf("LawGap = %v", gap)
	}
	if len(res.Completed) != 200 {
		t.Errorf("completed %d frames, want 200", len(res.Completed))
	}
}

// legacyRunMulti reimplements the pre-allocator multi-device loop (equal
// split, scalar backlogs only) as the byte-for-byte reference.
func legacyRunMulti(cfg MultiConfig) []*Result {
	n := len(cfg.Devices)
	results := make([]*Result, n)
	backlogs := make([]*queueing.Backlog, n)
	for i, dev := range cfg.Devices {
		results[i] = &Result{
			PolicyName: dev.Policy.Name(),
			Backlog:    make([]float64, cfg.Slots),
			Depth:      make([]int, cfg.Slots),
			Arrived:    make([]float64, cfg.Slots),
			Served:     make([]float64, cfg.Slots),
			Utility:    make([]float64, cfg.Slots),
		}
		backlogs[i] = &queueing.Backlog{}
	}
	utilSums := make([]float64, n)
	backlogSums := make([]float64, n)
	for t := 0; t < cfg.Slots; t++ {
		share := cfg.Service.Service(t) / float64(n)
		for i, dev := range cfg.Devices {
			q := backlogs[i].Level()
			res := results[i]
			res.Backlog[t] = q
			backlogSums[i] += q
			if q > res.MaxBacklog {
				res.MaxBacklog = q
			}
			d := dev.Policy.Decide(t, q)
			res.Depth[t] = d
			u := dev.Utility.Utility(d)
			res.Utility[t] = u
			utilSums[i] += u
			var work float64
			for f := 0; f < dev.Arrivals.Frames(t); f++ {
				work += dev.Cost.FrameCost(d)
			}
			res.Arrived[t] = work
			res.Served[t] = backlogs[i].Step(work, share)
		}
	}
	for i, res := range results {
		res.FinalBacklog = backlogs[i].Level()
		res.TimeAvgUtility = utilSums[i] / float64(cfg.Slots)
		res.TimeAvgBacklog = backlogSums[i] / float64(cfg.Slots)
	}
	return results
}

func multiFixtureConfig(t *testing.T, slots int) MultiConfig {
	t.Helper()
	u, c := fixtures(t)
	devices := make([]Device, 3)
	for i := range devices {
		ctrl, err := core.New(core.Config{V: 2e6, Depths: testDepths, Utility: u, Cost: c})
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = Device{
			Policy:   ctrl,
			Cost:     c,
			Utility:  u,
			Arrivals: &queueing.DeterministicArrivals{PerSlot: 1},
		}
	}
	return MultiConfig{
		Devices: devices,
		Service: &delay.ConstantService{Rate: testService * 3},
		Slots:   slots,
	}
}

// TestEqualSplitMatchesLegacyTrajectories pins the refactor: the default
// allocator must reproduce the pre-allocator multi-device trajectories
// byte-for-byte (identical float arithmetic, identical call order).
func TestEqualSplitMatchesLegacyTrajectories(t *testing.T) {
	want := legacyRunMulti(multiFixtureConfig(t, 900))
	got, err := RunMulti(multiFixtureConfig(t, 900))
	if err != nil {
		t.Fatal(err)
	}
	if got.Allocator != "equal-split" {
		t.Fatalf("default allocator = %q", got.Allocator)
	}
	for i := range want {
		w, g := want[i], got.PerDevice[i]
		for s := 0; s < 900; s++ {
			if g.Backlog[s] != w.Backlog[s] || g.Depth[s] != w.Depth[s] ||
				g.Arrived[s] != w.Arrived[s] || g.Served[s] != w.Served[s] ||
				g.Utility[s] != w.Utility[s] {
				t.Fatalf("device %d slot %d diverges from legacy loop", i, s)
			}
		}
		if g.FinalBacklog != w.FinalBacklog || g.TimeAvgBacklog != w.TimeAvgBacklog ||
			g.TimeAvgUtility != w.TimeAvgUtility || g.MaxBacklog != w.MaxBacklog {
			t.Fatalf("device %d summaries diverge from legacy loop", i)
		}
	}
}

// TestMultiResultsCarryFrameAccounting: the unified loop gives every
// device the per-frame statistics that used to be single-run-only.
func TestMultiResultsCarryFrameAccounting(t *testing.T) {
	res, err := RunMulti(multiFixtureConfig(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.PerDevice {
		if len(r.Completed) == 0 {
			t.Fatalf("device %d completed no frames", i)
		}
		if r.MeanSojourn <= 0 {
			t.Errorf("device %d MeanSojourn = %v, want > 0 (stabilized queue waits)", i, r.MeanSojourn)
		}
		if r.Little.Lambda() <= 0 || r.Little.W() <= 0 || r.Little.L() <= 0 {
			t.Errorf("device %d Little stats empty: λ=%v W=%v L=%v",
				i, r.Little.Lambda(), r.Little.W(), r.Little.L())
		}
	}
}

// stubCost charges Scale×depth work units per frame — cheap heterogeneous
// cost models for the allocator fleet test.
type stubCost struct{ Scale float64 }

func (c stubCost) FrameCost(depth int) float64 { return c.Scale * float64(depth) }
func (c stubCost) Name() string                { return fmt.Sprintf("stub(%v)", c.Scale) }

// TestAllocatorStabilizesHeterogeneousFleet: one heavy device among
// seven light ones. Equal split starves the heavy device (its minimum
// demand exceeds budget/8) while backlog-aware allocators stabilize the
// whole fleet from the same budget — the allocation policy itself is the
// lever.
func TestAllocatorStabilizesHeterogeneousFleet(t *testing.T) {
	u, _ := fixtures(t)
	fleet := func() []Device {
		devs := make([]Device, 8)
		devs[0] = Device{
			Policy:   &policy.FixedDepth{Depth: 5},
			Cost:     stubCost{Scale: 2},
			Utility:  u,
			Arrivals: &queueing.DeterministicArrivals{PerSlot: 3}, // demand 30/slot
		}
		for i := 1; i < 8; i++ {
			devs[i] = Device{
				Policy:   &policy.FixedDepth{Depth: 5},
				Cost:     stubCost{Scale: 0.5},
				Utility:  u,
				Arrivals: &queueing.DeterministicArrivals{PerSlot: 1}, // demand 2.5/slot
			}
		}
		return devs
	}
	// Fleet demand 47.5/slot; budget 60 ⇒ feasible, but an equal share
	// (7.5) is far below the heavy device's 30.
	run := func(a alloc.Allocator) *MultiResult {
		t.Helper()
		res, err := RunMulti(MultiConfig{
			Devices:   fleet(),
			Service:   &delay.ConstantService{Rate: 60},
			Allocator: a,
			Slots:     800,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	diverging := func(res *MultiResult) []int {
		t.Helper()
		var out []int
		for i, r := range res.PerDevice {
			v, err := r.Verdict()
			if err != nil {
				t.Fatal(err)
			}
			if v == queueing.VerdictDiverging {
				out = append(out, i)
			}
		}
		return out
	}

	if div := diverging(run(alloc.EqualSplit{})); len(div) == 0 {
		t.Error("equal split must leave the heavy device diverging")
	}
	for _, a := range []alloc.Allocator{&alloc.ProportionalBacklog{}, alloc.NewMaxWeight(), alloc.NewWeightedRoundRobin()} {
		if div := diverging(run(a)); len(div) != 0 {
			t.Errorf("%s left devices %v diverging", a.Name(), div)
		}
	}
}

// TestMultiObserverReportsDrops: bounded per-device queues surface their
// overflow through SlotEvent.Dropped and Result.DroppedFrames.
func TestMultiObserverReportsDrops(t *testing.T) {
	u, c := fixtures(t)
	max, _ := policy.NewMaxDepth(testDepths)
	var droppedSeen float64
	res, err := RunMulti(MultiConfig{
		Devices: []Device{{
			Policy:     max,
			Cost:       c,
			Utility:    u,
			Arrivals:   &queueing.DeterministicArrivals{PerSlot: 2},
			MaxBacklog: 150_000,
		}},
		Service:  &delay.ConstantService{Rate: testService},
		Slots:    400,
		Observer: func(e SlotEvent) { droppedSeen += e.Dropped },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.PerDevice[0]
	if r.DroppedWork == 0 || r.DroppedFrames == 0 {
		t.Fatalf("bounded device dropped work=%v frames=%d", r.DroppedWork, r.DroppedFrames)
	}
	if math.Abs(droppedSeen-r.DroppedWork) > 1e-9 {
		t.Errorf("observer saw %v dropped, result says %v", droppedSeen, r.DroppedWork)
	}
	if r.MaxBacklog > 150_000+1e-9 {
		t.Errorf("backlog %v exceeded per-device bound", r.MaxBacklog)
	}
}
