package sim

import "qarv/internal/obs"

// Metric names the sim layer registers. Shared-uplink runs add the
// alloc_* series; the offload path (internal/experiments) registers
// its own offload_* series against the same registry.
const (
	// MetricSlots counts device-slots stepped.
	MetricSlots = "sim_slots_total"
	// MetricFramesArrived counts frames offered by the arrival process.
	MetricFramesArrived = "sim_frames_arrived_total"
	// MetricFramesCompleted counts frames served to completion.
	MetricFramesCompleted = "sim_frames_completed_total"
	// MetricFramesDropped counts frames removed by bounded-backlog
	// overflow.
	MetricFramesDropped = "sim_frames_dropped_total"
	// MetricBacklog is the per-slot backlog distribution Q(t).
	MetricBacklog = "sim_backlog"
	// MetricServed is the per-slot served-work distribution.
	MetricServed = "sim_served"
	// MetricUtility is the per-slot utility distribution pa(d(t)).
	MetricUtility = "sim_utility"
	// MetricSojourn is the per-frame sojourn distribution in slots.
	MetricSojourn = "sim_sojourn_slots"
	// MetricAllocSlots counts allocator invocations (shared runs).
	MetricAllocSlots = "alloc_slots_total"
	// MetricAllocShare is the per-device per-slot share distribution.
	MetricAllocShare = "alloc_share"
)

// telemetry holds pre-resolved instrument handles so the slot loop
// never does a map lookup. A nil *telemetry is the disabled path: one
// pointer check per slot, no allocations. Individual handles may be
// nil (recorder-only runs); obs instruments no-op on nil.
type telemetry struct {
	rec             *obs.FlightRecorder
	slots           *obs.Counter
	framesArrived   *obs.Counter
	framesCompleted *obs.Counter
	framesDropped   *obs.Counter
	backlog         *obs.Histogram
	served          *obs.Histogram
	utility         *obs.Histogram
	sojourn         *obs.Histogram
}

// newTelemetry resolves instrument handles against reg; nil when both
// telemetry sinks are disabled.
func newTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) *telemetry {
	if reg == nil && rec == nil {
		return nil
	}
	return &telemetry{
		rec:             rec,
		slots:           reg.Counter(MetricSlots),
		framesArrived:   reg.Counter(MetricFramesArrived),
		framesCompleted: reg.Counter(MetricFramesCompleted),
		framesDropped:   reg.Counter(MetricFramesDropped),
		backlog:         reg.Histogram(MetricBacklog),
		served:          reg.Histogram(MetricServed),
		utility:         reg.Histogram(MetricUtility),
		sojourn:         reg.Histogram(MetricSojourn),
	}
}

// setTelemetry attaches telemetry sinks to the runner; must be called
// before the first step.
func (r *deviceRunner) setTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) {
	r.tel = newTelemetry(reg, rec)
	r.lastDepth = -1
}
