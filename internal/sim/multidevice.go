package sim

import (
	"context"
	"errors"
	"fmt"

	"qarv/internal/alloc"
	"qarv/internal/delay"
	"qarv/internal/obs"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

// The multi-device simulation backs the paper's "fully distributed" claim
// (§II): N devices each run their own controller on purely local state
// (their own backlog), while sharing an edge server's service budget. No
// device sees another's queue — if the system still stabilizes, the
// distributed claim holds under contention. How the edge splits its
// budget is a pluggable alloc.Allocator; the default EqualSplit is the
// paper's information-free baseline, while backlog-aware strategies
// (ProportionalBacklog, MaxWeight, WeightedRoundRobin) model an edge
// that schedules on the queue lengths it can observe server-side.

// Device describes one AR client in a multi-device run.
type Device struct {
	// Policy is the device's local depth controller.
	Policy policy.Policy
	// Cost maps its depth choices to workload (devices may differ, e.g.
	// different capture resolutions).
	Cost delay.CostModel
	// Utility scores its depth choices.
	Utility quality.UtilityModel
	// Arrivals yields its frames per slot.
	Arrivals queueing.ArrivalProcess
	// MaxBacklog, when positive, bounds this device's queue; overflow
	// drops work (and the newest frames) exactly as in single runs.
	MaxBacklog float64
}

// MultiConfig describes a shared-service multi-device run.
type MultiConfig struct {
	Devices []Device
	// Service is the shared edge budget per slot, divided among devices
	// by Allocator.
	Service delay.ServiceProcess
	// Allocator splits the per-slot budget across devices from their
	// observed backlogs. Nil selects alloc.EqualSplit — the uncoordinated,
	// information-free split (each device gets budget/N regardless of
	// backlogs), preserving full distribution.
	Allocator alloc.Allocator
	Slots     int
	// Observer, when non-nil, receives every device's slot event (the
	// event's Device field indexes into Devices).
	Observer Observer
	// Metrics, when non-nil, accumulates run telemetry across all
	// devices plus the alloc_* allocator series into the registry.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives slot-timestamped records; each
	// device is its own track, and allocator decisions land on the
	// "alloc" category.
	Recorder *obs.FlightRecorder
}

// Multi-device validation errors.
var (
	ErrNoDevices = errors.New("sim: no devices")
)

// Validate checks the configuration without running it.
func (c *MultiConfig) Validate() error {
	if len(c.Devices) == 0 {
		return ErrNoDevices
	}
	if c.Service == nil {
		return ErrNilService
	}
	if c.Slots <= 0 {
		return fmt.Errorf("%w: %d", ErrBadSlots, c.Slots)
	}
	for i, dev := range c.Devices {
		if dev.Policy == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilPolicy)
		}
		if dev.Cost == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilCost)
		}
		if dev.Utility == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilUtility)
		}
		if dev.Arrivals == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilArrivals)
		}
	}
	return nil
}

// MultiResult aggregates per-device results of a shared run. Each
// per-device Result carries the full frame accounting (Completed,
// MeanSojourn, Little, DroppedWork/DroppedFrames), exactly as a
// single-device run would.
type MultiResult struct {
	PerDevice []*Result
	// Allocator names the budget-split strategy that drove the run.
	Allocator string
	// TotalTimeAvgBacklog sums devices' time-average backlogs.
	TotalTimeAvgBacklog float64
	// MeanTimeAvgUtility averages devices' time-average utilities.
	MeanTimeAvgUtility float64
}

// RunMulti executes N devices against a shared service budget.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	return RunMultiContext(context.Background(), cfg)
}

// RunMultiContext is RunMulti under a cancelable context: the slot loop
// polls ctx once per queueing.PollEvery slots and aborts with the
// context's error.
func RunMultiContext(ctx context.Context, cfg MultiConfig) (*MultiResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	allocator := cfg.Allocator
	if allocator == nil {
		allocator = alloc.EqualSplit{}
	}
	n := len(cfg.Devices)
	runners := make([]*deviceRunner, n)
	for i, dev := range cfg.Devices {
		runners[i] = newDeviceRunner(dev.Policy, dev.Cost, dev.Utility,
			dev.Arrivals, dev.MaxBacklog, cfg.Slots)
		runners[i].setTelemetry(cfg.Metrics, cfg.Recorder)
	}
	var allocSlots *obs.Counter
	var allocShare *obs.Histogram
	telemetryOn := cfg.Metrics != nil || cfg.Recorder != nil
	if telemetryOn {
		allocSlots = cfg.Metrics.Counter(MetricAllocSlots)
		allocShare = cfg.Metrics.Histogram(MetricAllocShare)
		if lt, ok := allocator.(interface {
			BindTelemetry(*obs.Registry, *obs.FlightRecorder)
		}); ok {
			lt.BindTelemetry(cfg.Metrics, cfg.Recorder)
		}
	}
	// Online-learning allocators close the loop through the optional
	// Learner interface: after each slot they observe the realized
	// per-device utilities and end-of-slot backlogs their split
	// produced.
	learner, _ := allocator.(alloc.Learner)
	var utilities []float64
	if learner != nil {
		utilities = make([]float64, n)
	}

	backlogs := make([]float64, n)
	shares := make([]float64, n)
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		if err := cancel.Check(); err != nil {
			return nil, fmt.Errorf("sim: canceled at slot %d: %w", t, err)
		}
		budget := cfg.Service.Service(t)
		for i, r := range runners {
			backlogs[i] = r.backlog.Level()
		}
		allocator.Allocate(t, budget, backlogs, shares)
		if telemetryOn {
			allocSlots.Inc()
			for i, s := range shares {
				allocShare.Observe(s)
				cfg.Recorder.Event(int64(t), "alloc", allocator.Name(), int64(i), s)
			}
		}
		for i, r := range runners {
			r.step(t, shares[i], i, cfg.Observer)
		}
		if learner != nil {
			for i, r := range runners {
				utilities[i] = r.res.Utility[t]
				backlogs[i] = r.backlog.Level()
			}
			learner.Learn(t, utilities, backlogs)
		}
	}

	out := &MultiResult{
		PerDevice: make([]*Result, n),
		Allocator: allocator.Name(),
	}
	for i, r := range runners {
		res := r.finalize(cfg.Slots)
		out.PerDevice[i] = res
		out.TotalTimeAvgBacklog += res.TimeAvgBacklog
		out.MeanTimeAvgUtility += res.TimeAvgUtility
	}
	out.MeanTimeAvgUtility /= float64(n)
	return out, nil
}
