package sim

import (
	"context"
	"errors"
	"fmt"

	"qarv/internal/delay"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

// The multi-device simulation backs the paper's "fully distributed" claim
// (§II): N devices each run their own controller on purely local state
// (their own backlog), while sharing an edge server's service budget. No
// device sees another's queue — if the system still stabilizes, the
// distributed claim holds under contention.

// Device describes one AR client in a multi-device run.
type Device struct {
	// Policy is the device's local depth controller.
	Policy policy.Policy
	// Cost maps its depth choices to workload (devices may differ, e.g.
	// different capture resolutions).
	Cost delay.CostModel
	// Utility scores its depth choices.
	Utility quality.UtilityModel
	// Arrivals yields its frames per slot.
	Arrivals queueing.ArrivalProcess
}

// MultiConfig describes a shared-service multi-device run.
type MultiConfig struct {
	Devices []Device
	// Service is the shared edge budget per slot, divided equally among
	// devices (an uncoordinated, information-free split: each device gets
	// budget/N regardless of backlogs, preserving full distribution).
	Service delay.ServiceProcess
	Slots   int
	// Observer, when non-nil, receives every device's slot event (the
	// event's Device field indexes into Devices).
	Observer Observer
}

// Multi-device validation errors.
var (
	ErrNoDevices = errors.New("sim: no devices")
)

// Validate checks the configuration without running it.
func (c *MultiConfig) Validate() error {
	if len(c.Devices) == 0 {
		return ErrNoDevices
	}
	if c.Service == nil {
		return ErrNilService
	}
	if c.Slots <= 0 {
		return fmt.Errorf("%w: %d", ErrBadSlots, c.Slots)
	}
	for i, dev := range c.Devices {
		if dev.Policy == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilPolicy)
		}
		if dev.Cost == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilCost)
		}
		if dev.Utility == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilUtility)
		}
		if dev.Arrivals == nil {
			return fmt.Errorf("device %d: %w", i, ErrNilArrivals)
		}
	}
	return nil
}

// MultiResult aggregates per-device results of a shared run.
type MultiResult struct {
	PerDevice []*Result
	// TotalTimeAvgBacklog sums devices' time-average backlogs.
	TotalTimeAvgBacklog float64
	// MeanTimeAvgUtility averages devices' time-average utilities.
	MeanTimeAvgUtility float64
}

// RunMulti executes N devices against an equally split shared service.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	return RunMultiContext(context.Background(), cfg)
}

// RunMultiContext is RunMulti under a cancelable context: the slot loop
// polls ctx once per queueing.PollEvery slots and aborts with the
// context's error.
func RunMultiContext(ctx context.Context, cfg MultiConfig) (*MultiResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Devices)
	results := make([]*Result, n)
	backlogs := make([]*queueing.Backlog, n)
	for i, dev := range cfg.Devices {
		results[i] = &Result{
			PolicyName: dev.Policy.Name(),
			Backlog:    make([]float64, cfg.Slots),
			Depth:      make([]int, cfg.Slots),
			Arrived:    make([]float64, cfg.Slots),
			Served:     make([]float64, cfg.Slots),
			Utility:    make([]float64, cfg.Slots),
		}
		backlogs[i] = &queueing.Backlog{}
	}

	utilSums := make([]float64, n)
	backlogSums := make([]float64, n)
	cancel := queueing.NewCancelCheck(ctx, 0)
	for t := 0; t < cfg.Slots; t++ {
		if err := cancel.Check(); err != nil {
			return nil, fmt.Errorf("sim: canceled at slot %d: %w", t, err)
		}
		share := cfg.Service.Service(t) / float64(n)
		for i, dev := range cfg.Devices {
			q := backlogs[i].Level()
			res := results[i]
			res.Backlog[t] = q
			backlogSums[i] += q
			if q > res.MaxBacklog {
				res.MaxBacklog = q
			}

			d := dev.Policy.Decide(t, q)
			res.Depth[t] = d
			u := dev.Utility.Utility(d)
			res.Utility[t] = u
			utilSums[i] += u

			var work float64
			for f := 0; f < dev.Arrivals.Frames(t); f++ {
				work += dev.Cost.FrameCost(d)
			}
			res.Arrived[t] = work
			served := backlogs[i].Step(work, share)
			res.Served[t] = served
			if cfg.Observer != nil {
				cfg.Observer(SlotEvent{
					Slot: t, Device: i, Backlog: q, Depth: d,
					Utility: u, Arrived: work, Served: served,
				})
			}
		}
	}

	out := &MultiResult{PerDevice: results}
	for i, res := range results {
		res.FinalBacklog = backlogs[i].Level()
		res.TimeAvgUtility = utilSums[i] / float64(cfg.Slots)
		res.TimeAvgBacklog = backlogSums[i] / float64(cfg.Slots)
		out.TotalTimeAvgBacklog += res.TimeAvgBacklog
		out.MeanTimeAvgUtility += res.TimeAvgUtility
	}
	out.MeanTimeAvgUtility /= float64(n)
	return out, nil
}
