package stats

import (
	"math"
	"sort"
	"testing"

	"qarv/internal/geom"
)

// exactNearestRank returns the nearest-rank q-quantile of xs — the
// definition QuantileSketch.Quantile targets.
func exactNearestRank(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted)-1)))
	return sorted[rank]
}

// TestQuantileSketchErrorBound checks the advertised relative error
// bound against exact quantiles across distributions spanning several
// orders of magnitude, at multiple accuracies.
func TestQuantileSketchErrorBound(t *testing.T) {
	rng := geom.NewRNG(7)
	distributions := map[string]func() float64{
		// Heavy-tailed, ~6 orders of magnitude: lognormal.
		"lognormal": func() float64 { return math.Exp(rng.NormMeanStd(3, 2)) },
		// Uniform over a backlog-like range.
		"uniform": func() float64 { return rng.Range(0, 250_000) },
		// Small integers with ties (sojourn-like).
		"geometric-ints": func() float64 { return float64(rng.Poisson(4)) },
	}
	for name, draw := range distributions {
		for _, alpha := range []float64{0.01, 0.05} {
			s := NewQuantileSketch(alpha)
			xs := make([]float64, 20_000)
			for i := range xs {
				xs[i] = draw()
				s.Add(xs[i])
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
				got := s.Quantile(q)
				want := exactNearestRank(xs, q)
				tol := alpha*want + sketchMinValue
				if math.Abs(got-want) > tol {
					t.Errorf("%s alpha=%v q=%v: got %v want %v (tol %v)",
						name, alpha, q, got, want, tol)
				}
			}
			if s.Count() != uint64(len(xs)) {
				t.Errorf("%s: count %d want %d", name, s.Count(), len(xs))
			}
		}
	}
}

// TestQuantileSketchExactStats checks that count/sum/mean/min/max are
// exact, not sketched.
func TestQuantileSketchExactStats(t *testing.T) {
	s := NewQuantileSketch(0.01)
	xs := []float64{3, 0, 12.5, 7, 0.25, 1e6}
	var sum float64
	for _, x := range xs {
		s.Add(x)
		sum += x
	}
	if s.Min() != 0 || s.Max() != 1e6 {
		t.Errorf("min/max = %v/%v, want 0/1e6", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-sum) > 1e-9 || math.Abs(s.Mean()-sum/6) > 1e-9 {
		t.Errorf("sum/mean = %v/%v, want %v/%v", s.Sum(), s.Mean(), sum, sum/6)
	}
	// Negatives clamp to zero; NaN is ignored.
	s.Add(-5)
	if s.Min() != 0 || s.Count() != 7 {
		t.Errorf("after Add(-5): min=%v count=%d", s.Min(), s.Count())
	}
	s.Add(math.NaN())
	if s.Count() != 7 {
		t.Errorf("NaN was counted: count=%d", s.Count())
	}
}

// TestQuantileSketchMergeLossless verifies the core fleet property:
// sharded sketches merged together answer every quantile exactly as the
// single sketch over the union would.
func TestQuantileSketchMergeLossless(t *testing.T) {
	rng := geom.NewRNG(11)
	whole := NewQuantileSketch(0.01)
	parts := make([]*QuantileSketch, 4)
	for i := range parts {
		parts[i] = NewQuantileSketch(0.01)
	}
	for i := 0; i < 10_000; i++ {
		x := math.Exp(rng.NormMeanStd(1, 1.5))
		whole.Add(x)
		parts[i%len(parts)].Add(x)
	}
	merged := NewQuantileSketch(0.01)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole %d", merged.Count(), whole.Count())
	}
	// Sums differ only by FP association order across shards.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %v != whole %v", merged.Sum(), whole.Sum())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v != whole %v", q, got, want)
		}
	}
}

func TestQuantileSketchMergeMismatch(t *testing.T) {
	a, b := NewQuantileSketch(0.01), NewQuantileSketch(0.05)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched accuracies should fail")
	}
	// Merging an empty or nil sketch is a no-op, whatever its accuracy.
	if err := a.Merge(NewQuantileSketch(0.5)); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

// TestQuantileSketchFixedMemory pins the O(log(max/min)/alpha) memory
// bound: a million observations spanning nine orders of magnitude must
// not grow the bucket table past the hard cap.
func TestQuantileSketchFixedMemory(t *testing.T) {
	rng := geom.NewRNG(3)
	s := NewQuantileSketch(0.01)
	for i := 0; i < 1_000_000; i++ {
		s.Add(math.Exp(rng.Range(0, math.Log(1e9))))
	}
	if n := s.BucketCount(); n > sketchMaxBuckets {
		t.Fatalf("bucket count %d exceeds cap %d", n, sketchMaxBuckets)
	}
	// Nine decades at 1% accuracy is ~1040 buckets; far below the cap.
	if n := s.BucketCount(); n > 1200 {
		t.Errorf("bucket count %d unexpectedly large for 9 decades", n)
	}
}

func TestQuantileSketchEmptyAndSingle(t *testing.T) {
	s := NewQuantileSketch(0.01)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch quantile = %v, want 0", got)
	}
	s.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		if math.Abs(got-42) > 0.01*42 {
			t.Errorf("single-value q=%v: got %v want ~42", q, got)
		}
	}
}

func TestDecimatorKeepsShape(t *testing.T) {
	d := NewDecimator(64)
	n := 100_000
	for i := 0; i < n; i++ {
		d.Add(float64(i)) // a pure ramp
	}
	samples := d.Samples()
	if len(samples) >= 64 {
		t.Fatalf("decimator overflowed its cap: %d samples", len(samples))
	}
	if len(samples) < 32 {
		t.Fatalf("decimator too sparse: %d samples", len(samples))
	}
	// Uniform stride over a ramp: samples are the ramp at stride spacing.
	stride := float64(d.Stride())
	for i, s := range samples {
		if s != float64(i)*stride {
			t.Fatalf("sample %d = %v, want %v (stride %v)", i, s, float64(i)*stride, stride)
		}
	}
	if d.Count() != n {
		t.Errorf("count %d want %d", d.Count(), n)
	}
}

// TestDecimatorExactBelowCap: short series are retained verbatim, so
// downstream classification sees the exact trajectory.
func TestDecimatorExactBelowCap(t *testing.T) {
	d := NewDecimator(64)
	for i := 0; i < 63; i++ {
		d.Add(float64(i * i))
	}
	samples := d.Samples()
	if len(samples) != 63 || d.Stride() != 1 {
		t.Fatalf("len=%d stride=%d, want 63/1", len(samples), d.Stride())
	}
	for i, s := range samples {
		if s != float64(i*i) {
			t.Fatalf("sample %d = %v, want %v", i, s, float64(i*i))
		}
	}
	d.Reset()
	if d.Count() != 0 || len(d.Samples()) != 0 || d.Stride() != 1 {
		t.Error("Reset did not clear state")
	}
}
