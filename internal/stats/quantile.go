package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// The fleet engine cannot retain per-frame trajectories — a million
// sessions times thousands of slots would be hundreds of gigabytes — so
// shards accumulate distributions in two fixed-memory structures defined
// here: QuantileSketch (a mergeable, relative-error-bounded quantile
// estimator over non-negative observations) and Decimator (a
// constant-size, uniform-stride downsampler that preserves a
// trajectory's shape for stability classification).

// sketch tuning constants.
const (
	// sketchMinValue is the smallest distinguishable observation; values
	// in [0, sketchMinValue) share the exact "zero" bucket. Together with
	// sketchMaxBuckets it bounds the sketch's memory regardless of how
	// many observations arrive.
	sketchMinValue = 1e-6
	// sketchMaxBuckets caps the logarithmic bucket count. At the default
	// 1% accuracy the indexable range spans ~18 orders of magnitude
	// before the cap engages, so in practice it never does; if it ever
	// would, the lowest buckets collapse into the zero bucket (degrading
	// accuracy at the low quantiles only).
	sketchMaxBuckets = 4096
	// DefaultSketchAccuracy is the relative error bound used when a
	// caller passes a non-positive accuracy.
	DefaultSketchAccuracy = 0.01
)

// QuantileSketch is a streaming quantile estimator over non-negative
// observations with a guaranteed relative error bound: Quantile(q)
// returns a value within Accuracy()·x of the true empirical q-quantile x
// (DDSketch-style logarithmic buckets; see Masson et al., "DDSketch: A
// Fast and Fully-Mergeable Quantile Sketch with Relative-Error
// Guarantees"). Memory is O(log(max/min)/α) — independent of the number
// of observations — and two sketches built with the same accuracy merge
// losslessly, so per-shard sketches combine into one fleet-wide
// distribution with no additional error. Negative observations are
// clamped to zero. The zero value is NOT ready to use; construct with
// NewQuantileSketch.
type QuantileSketch struct {
	alpha  float64 // guaranteed relative accuracy
	gamma  float64 // bucket base (1+alpha)/(1-alpha)
	lgamma float64 // ln(gamma), cached for indexing

	zero    uint64         // observations in [0, sketchMinValue)
	buckets map[int]uint64 // index i covers (gamma^(i-1), gamma^i]
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewQuantileSketch returns an empty sketch with the given relative
// accuracy α ∈ (0, 1); non-positive values take DefaultSketchAccuracy
// and values ≥ 1 are clamped to 0.5.
func NewQuantileSketch(accuracy float64) *QuantileSketch {
	if accuracy <= 0 {
		accuracy = DefaultSketchAccuracy
	}
	if accuracy >= 1 {
		accuracy = 0.5
	}
	gamma := (1 + accuracy) / (1 - accuracy)
	return &QuantileSketch{
		alpha:   accuracy,
		gamma:   gamma,
		lgamma:  math.Log(gamma),
		buckets: make(map[int]uint64),
	}
}

// Accuracy returns the sketch's guaranteed relative error bound.
func (s *QuantileSketch) Accuracy() float64 { return s.alpha }

// Add incorporates one observation (negatives are clamped to zero, NaN
// is ignored).
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	s.sum += x
	if x < sketchMinValue {
		s.zero++
		return
	}
	i := int(math.Ceil(math.Log(x) / s.lgamma))
	s.buckets[i]++
	if len(s.buckets) > sketchMaxBuckets {
		s.collapseLowest()
	}
}

// collapseLowest folds the smallest bucket into the zero bucket,
// sacrificing low-quantile accuracy to hold the memory cap.
func (s *QuantileSketch) collapseLowest() {
	lowest, first := 0, true
	for i := range s.buckets {
		if first || i < lowest {
			lowest, first = i, false
		}
	}
	s.zero += s.buckets[lowest]
	delete(s.buckets, lowest)
}

// Count returns the number of observations.
func (s *QuantileSketch) Count() uint64 { return s.count }

// Sum returns the exact sum of observations (after negative clamping).
func (s *QuantileSketch) Sum() float64 { return s.sum }

// Mean returns the exact sample mean (0 when empty).
func (s *QuantileSketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact smallest observation (0 when empty).
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the exact largest observation (0 when empty).
func (s *QuantileSketch) Max() float64 { return s.max }

// Quantile returns an estimate of the q-quantile (q ∈ [0,1], nearest
// rank) within the sketch's relative accuracy of the true value. It
// returns 0 on an empty sketch; q outside [0,1] is clamped.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank over 0-indexed order statistics.
	rank := uint64(math.Ceil(q * float64(s.count-1)))
	if rank < s.zero {
		return 0
	}
	keys := make([]int, 0, len(s.buckets))
	for i := range s.buckets {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	cum := s.zero
	for _, i := range keys {
		cum += s.buckets[i]
		if rank < cum {
			// Midpoint of (gamma^(i-1), gamma^i] in relative terms:
			// 2·gamma^i/(gamma+1) is within alpha of every value in the
			// bucket, clamped into the exact observed range.
			est := 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// ErrSketchMismatch reports an attempt to merge sketches built with
// different accuracies (their bucket geometries are incompatible).
var ErrSketchMismatch = errors.New("stats: cannot merge quantile sketches with different accuracies")

// Merge folds o into s losslessly. Both sketches must have been built
// with the same accuracy; o is left unchanged.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("%w: %v vs %v", ErrSketchMismatch, s.alpha, o.alpha)
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.count += o.count
	s.sum += o.sum
	s.zero += o.zero
	for i, n := range o.buckets {
		s.buckets[i] += n
	}
	for len(s.buckets) > sketchMaxBuckets {
		s.collapseLowest()
	}
	return nil
}

// BucketCount returns the number of live logarithmic buckets — the
// sketch's memory footprint in O(1)-sized cells (exposed for the
// flat-memory property tests).
func (s *QuantileSketch) BucketCount() int { return len(s.buckets) }

// Decimator retains a bounded, uniform-stride subsample of a series:
// every stride-th value is kept, and when the buffer fills the stride
// doubles and every other retained sample is discarded. The result
// preserves the trajectory's coarse shape (level, slope, knees) in at
// most Cap samples regardless of series length, which is exactly what
// queueing.ClassifyTrajectory needs from a backlog series whose full
// form the fleet engine cannot afford to keep.
type Decimator struct {
	cap     int
	stride  int
	n       int // total values observed
	samples []float64
}

// NewDecimator returns a decimator keeping at most capacity samples
// (minimum 16, which non-positive and smaller values are raised to).
func NewDecimator(capacity int) *Decimator {
	if capacity < 16 {
		capacity = 16
	}
	return &Decimator{cap: capacity, stride: 1}
}

// Add observes the next value of the series.
func (d *Decimator) Add(x float64) {
	if d.n%d.stride == 0 {
		d.samples = append(d.samples, x)
		if len(d.samples) >= d.cap {
			// Halve: keep samples at even positions, doubling the stride.
			half := (len(d.samples) + 1) / 2
			for i := 0; i < half; i++ {
				d.samples[i] = d.samples[2*i]
			}
			d.samples = d.samples[:half]
			d.stride *= 2
		}
	}
	d.n++
}

// Samples returns the retained subsample in series order. The slice
// aliases the decimator's buffer; callers must not retain it across
// further Adds.
func (d *Decimator) Samples() []float64 { return d.samples }

// Stride returns the current sampling stride (1 until the first halving).
func (d *Decimator) Stride() int { return d.stride }

// Count returns how many values have been observed in total.
func (d *Decimator) Count() int { return d.n }

// Reset clears the decimator for reuse without reallocating.
func (d *Decimator) Reset() {
	d.stride = 1
	d.n = 0
	d.samples = d.samples[:0]
}
