// Package stats provides the small statistical toolkit the benchmark
// harness and calibration code rely on: streaming moments (Welford),
// percentiles, exponentially weighted moving averages, ordinary
// least-squares regression, and normal-approximation confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Running accumulates streaming count/mean/variance/min/max using
// Welford's algorithm. The zero value is ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of observations.
func (r *Running) Count() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with <2 observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Std() / math.Sqrt(float64(r.n))
}

// Percentile returns the p-th percentile (p ∈ [0,100]) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha ∈ (0,1]; larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor, clamped
// into (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// LinearFit is an ordinary least-squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// OLS fits a line to (xs, ys). It requires at least two points and
// non-degenerate x variance.
func OLS(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: OLS input length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: OLS needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: OLS x values are constant")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // constant y perfectly fit by zero-slope line
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }
