package stats

import (
	"math"
	"testing"
	"testing/quick"

	"qarv/internal/geom"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", r.Mean())
	}
	// Population std of this classic sample is 2; unbiased variance is
	// 32/7.
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v", r.Var())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.CI95() != 0 {
		t.Error("empty Running must report zeros")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Var() != 0 {
		t.Errorf("single observation: mean %v var %v", r.Mean(), r.Var())
	}
}

func TestRunningMatchesBatchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := geom.NewRNG(seed)
		n := rng.Intn(100) + 2
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormMeanStd(10, 3)
			r.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Var()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {62.5, 3.5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty slice must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("p > 100 must error")
	}
	if v, err := Percentile([]float64{7}, 30); err != nil || v != 7 {
		t.Errorf("single element = %v, %v", v, err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Error("initial value must be 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first sample = %v, want 10 (no smoothing)", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("second = %v, want 15", e.Value())
	}
	// Clamping of bad alphas.
	if NewEWMA(-1) == nil || NewEWMA(5) == nil {
		t.Error("bad alphas must clamp, not fail")
	}
	e2 := NewEWMA(5)
	e2.Add(1)
	e2.Add(2)
	if e2.Value() != 2 {
		t.Errorf("alpha clamped to 1 must track last value, got %v", e2.Value())
	}
}

func TestOLSRecoversLine(t *testing.T) {
	rng := geom.NewRNG(13)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Range(0, 100)
		ys[i] = 3.5*xs[i] + 42 + rng.NormMeanStd(0, 0.5)
	}
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3.5) > 0.05 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if math.Abs(fit.Intercept-42) > 2 {
		t.Errorf("intercept = %v", fit.Intercept)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if got := fit.Predict(10); math.Abs(got-(fit.Slope*10+fit.Intercept)) > 1e-12 {
		t.Errorf("Predict = %v", got)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x must error")
	}
	fit, err := OLS([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant y: %+v", fit)
	}
}
