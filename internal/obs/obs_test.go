package obs

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"qarv/internal/geom"
	"qarv/internal/stats"
)

// observation is one synthetic telemetry action replayed into a
// registry by the property tests.
type observation struct {
	kind  int // 0 counter, 1 gauge, 2 histogram
	name  string
	value float64
}

// genObservations builds a deterministic stream of mixed instrument
// updates.
func genObservations(seed uint64, n int) []observation {
	rng := geom.NewRNG(seed)
	names := []string{"frames_total", "bytes_total", "backlog", "utility", "peak_depth", "stalls"}
	out := make([]observation, n)
	for i := range out {
		out[i] = observation{
			kind:  rng.Intn(3),
			name:  names[rng.Intn(len(names))],
			value: rng.Range(0, 1000),
		}
	}
	return out
}

// apply replays observations into a registry.
func apply(r *Registry, obs []observation) {
	for _, o := range obs {
		switch o.kind {
		case 0:
			r.Counter(o.name).Add(int64(o.value))
		case 1:
			r.Gauge(o.name).Record(o.value)
		default:
			r.Histogram(o.name).Observe(o.value)
		}
	}
}

// snapJSON renders a registry snapshot to bytes for comparison.
func snapJSON(t *testing.T, r *Registry) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.Snapshot().EncodeJSON(&b); err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	return b.Bytes()
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not get-or-create")
	}
	g := r.Gauge("g")
	g.Record(2)
	g.Record(7)
	g.Record(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want max 7", got)
	}
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("histogram count = %d, want 100", h.Count())
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 50*3*stats.DefaultSketchAccuracy+1 {
		t.Fatalf("p50 = %v, want ≈50", q)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Record(1)
	r.Histogram("x").Observe(1)
	if err := r.Merge(NewRegistry()); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if r.Accuracy() != 0 {
		t.Fatal("nil registry accuracy should be 0")
	}
	var rec *FlightRecorder
	rec.Event(1, "sim", "x", 0, 0)
	rec.Span(1, 2, "sim", "x", 0, 0)
	rec.Merge(nil)
	rec.Reset()
	if rec.Len() != 0 || rec.Cap() != 0 || rec.Dropped() != 0 || rec.Records() != nil {
		t.Fatal("nil recorder accessors should be zero")
	}
}

// TestMergeCommutative: A⊕B and B⊕A snapshot byte-identically.
func TestMergeCommutative(t *testing.T) {
	oa := genObservations(11, 500)
	ob := genObservations(22, 700)
	ab := NewRegistry()
	apply(ab, oa)
	other := NewRegistry()
	apply(other, ob)
	if err := ab.Merge(other); err != nil {
		t.Fatal(err)
	}
	ba := NewRegistry()
	apply(ba, ob)
	other2 := NewRegistry()
	apply(other2, oa)
	if err := ba.Merge(other2); err != nil {
		t.Fatal(err)
	}
	if got, want := snapJSON(t, ab), snapJSON(t, ba); !bytes.Equal(got, want) {
		t.Fatalf("merge not commutative:\nA+B: %s\nB+A: %s", got, want)
	}
}

// TestMergeAssociative: (A⊕B)⊕C and A⊕(B⊕C) snapshot byte-identically.
func TestMergeAssociative(t *testing.T) {
	streams := [][]observation{genObservations(1, 400), genObservations(2, 400), genObservations(3, 400)}
	build := func(i int) *Registry {
		r := NewRegistry()
		apply(r, streams[i])
		return r
	}
	left := build(0)
	lb := build(1)
	if err := left.Merge(lb); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(build(2)); err != nil {
		t.Fatal(err)
	}
	rightBC := build(1)
	if err := rightBC.Merge(build(2)); err != nil {
		t.Fatal(err)
	}
	right := build(0)
	if err := right.Merge(rightBC); err != nil {
		t.Fatal(err)
	}
	if got, want := snapJSON(t, left), snapJSON(t, right); !bytes.Equal(got, want) {
		t.Fatalf("merge not associative:\n(A+B)+C: %s\nA+(B+C): %s", got, want)
	}
}

// TestShardCountIndependence partitions one observation stream across
// 1, 4, and 16 shards and checks the merged snapshots are
// byte-identical — the property fleet sharding relies on.
func TestShardCountIndependence(t *testing.T) {
	stream := genObservations(42, 4000)
	var snaps [][]byte
	for _, shards := range []int{1, 4, 16} {
		regs := make([]*Registry, shards)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		for i, o := range stream {
			apply(regs[i%shards], []observation{o})
		}
		root := NewRegistry()
		for _, r := range regs {
			if err := root.Merge(r); err != nil {
				t.Fatal(err)
			}
		}
		snaps = append(snaps, snapJSON(t, root))
	}
	if !bytes.Equal(snaps[0], snaps[1]) || !bytes.Equal(snaps[0], snaps[2]) {
		t.Fatalf("snapshots differ across shard counts:\n1: %s\n4: %s\n16: %s", snaps[0], snaps[1], snaps[2])
	}
}

// TestHistogramQuantileErrorBounds checks histogram quantiles inherit
// the sketch's relative error bound against the exact empirical
// quantile.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	rng := geom.NewRNG(7)
	r := NewRegistryAccuracy(0.02)
	h := r.Histogram("lat")
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Exp(40)
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		idx := int(q * float64(len(vals)-1))
		exact := vals[idx]
		got := h.Quantile(q)
		// The sketch guarantees relative error alpha; allow 2x for the
		// empirical-index discretization.
		if math.Abs(got-exact) > 2*0.02*exact {
			t.Fatalf("q=%v: got %v, exact %v (rel err %v)", q, got, exact, math.Abs(got-exact)/exact)
		}
	}
}

// TestMergeAccuracyMismatch: merging registries with different sketch
// accuracies must fail loudly, not silently lose precision.
func TestMergeAccuracyMismatch(t *testing.T) {
	a := NewRegistryAccuracy(0.01)
	b := NewRegistryAccuracy(0.05)
	a.Histogram("h").Observe(1)
	b.Histogram("h").Observe(2)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected accuracy-mismatch error")
	}
}

func TestSnapshotSortedAndProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Record(3.5)
	r.Histogram("lat").Observe(10)
	s := r.Snapshot()
	if !sort.SliceIsSorted(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name }) {
		t.Fatal("counters not sorted")
	}
	var b bytes.Buffer
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE alpha counter\nalpha 2\n",
		"# TYPE mid gauge\nmid 3.5\n",
		"# TYPE lat summary\n",
		"lat{quantile=\"0.5\"}",
		"lat_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
