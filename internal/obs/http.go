package obs

import (
	"net/http"
	"net/http/pprof"
)

// This file is the wall-clock boundary of the telemetry layer: HTTP
// exposition for long-running servers (cmd/qarvedge). Serving requests
// is inherently wall-clock-side, but nothing here reads the clock
// itself — handlers only snapshot registries — so the package stays in
// qarvcheck's deterministic set with no exceptions needed here. The
// pprof profiles do their own timing inside the runtime.

// Handler returns an http.Handler serving the registry's current state
// in Prometheus text exposition format. Each request takes a fresh
// snapshot, so the output tracks the live registry.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WriteProm(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// NewDebugMux returns a mux serving the registry at /metrics
// (Prometheus text format) and the runtime profiles under
// /debug/pprof/ — an explicit mux rather than http.DefaultServeMux so
// importing obs never mutates global server state.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
