package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Record is one flight-recorder entry: an instant event (Dur 0) or a
// span (Dur > 0) on a logical track, timestamped in virtual slot time.
// Wall-clock-side recorders (the stream server) reuse Slot as
// microseconds since server start; everything simulation-side records
// real slot indices.
type Record struct {
	// Slot is the virtual timestamp: the slot index at which the event
	// occurred or the span began.
	Slot int64 `json:"slot"`
	// Dur is the span length in slots; zero marks an instant event.
	Dur int64 `json:"dur,omitempty"`
	// Cat groups records for timeline filtering ("sim", "alloc",
	// "netem", "content", "fleet", "stream").
	Cat string `json:"cat"`
	// Name identifies the event within its category.
	Name string `json:"name"`
	// Track is the logical timeline the record belongs to: a device
	// index, fleet seat, sweep cell, or stream connection id.
	Track int64 `json:"track"`
	// Value carries one numeric payload (backlog, share, rate, bytes —
	// whatever the event measures).
	Value float64 `json:"value"`
	// seq orders records that share a slot, in arrival order.
	seq uint64
}

// DefaultRecorderCapacity is the ring size NewFlightRecorder uses when
// given a non-positive capacity.
const DefaultRecorderCapacity = 8192

// FlightRecorder is a fixed-size ring of Records: always-on, bounded
// telemetry that keeps the most recent entries and silently drops the
// oldest, like an aircraft flight recorder. It is safe for concurrent
// use, and a nil *FlightRecorder no-ops on every method, so call sites
// guard hot paths with a single nil check.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Record
	next uint64 // total records ever added; ring index is next % len(ring)
}

// NewFlightRecorder returns a recorder keeping the last capacity
// records (DefaultRecorderCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &FlightRecorder{ring: make([]Record, 0, capacity)}
}

// Event records an instant event at the given slot. No-op on a nil
// receiver.
func (r *FlightRecorder) Event(slot int64, cat, name string, track int64, value float64) {
	r.add(Record{Slot: slot, Cat: cat, Name: name, Track: track, Value: value})
}

// Span records a span of dur slots beginning at slot. No-op on a nil
// receiver.
func (r *FlightRecorder) Span(slot, dur int64, cat, name string, track int64, value float64) {
	r.add(Record{Slot: slot, Dur: dur, Cat: cat, Name: name, Track: track, Value: value})
}

// add appends one record to the ring, evicting the oldest when full.
func (r *FlightRecorder) add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.seq = r.next
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = rec
	}
	r.next++
	r.mu.Unlock()
}

// Len returns the number of records currently held (at most Cap);
// zero on a nil receiver.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Cap returns the ring capacity; zero on a nil receiver.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.ring)
}

// Dropped returns how many records have been evicted by the ring so
// far; zero on a nil receiver.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - uint64(len(r.ring))
}

// Records returns the held records ordered by (Slot, Track, seq) —
// timeline order with arrival order breaking ties. The slice is a
// copy. Nil on a nil receiver.
func (r *FlightRecorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Record(nil), r.ring...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Reset empties the ring. No-op on a nil receiver.
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring = r.ring[:0]
	r.next = 0
	r.mu.Unlock()
}

// Merge copies every record currently held by o into r (subject to
// r's ring eviction). Records keep their slots and tracks, so merging
// per-shard recorders yields one combined timeline. No-op when either
// side is nil.
func (r *FlightRecorder) Merge(o *FlightRecorder) {
	if r == nil || o == nil {
		return
	}
	for _, rec := range o.Records() {
		r.add(rec)
	}
}

// WriteJSON writes the held records (in Records order) as an indented
// JSON array.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	recs := r.Records()
	if recs == nil {
		recs = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		return fmt.Errorf("obs: encode records: %w", err)
	}
	return nil
}

// traceEvent is one entry of the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace_event container object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceSlotMicros is the trace_event timebase: each virtual slot maps
// to this many microseconds on the Chrome trace timeline, so slot k
// renders at k milliseconds.
const TraceSlotMicros = 1000

// WriteTrace writes the held records as a Chrome trace_event JSON
// file loadable in chrome://tracing or Perfetto. Spans become complete
// ("X") events, instant records become thread-scoped instant ("i")
// events; slots map to milliseconds (TraceSlotMicros) and tracks map
// to thread ids under a single process.
func (r *FlightRecorder) WriteTrace(w io.Writer) error {
	recs := r.Records()
	tf := traceFile{TraceEvents: make([]traceEvent, 0, len(recs)), DisplayTimeUnit: "ms"}
	for _, rec := range recs {
		ev := traceEvent{
			Name: rec.Name,
			Cat:  rec.Cat,
			TS:   rec.Slot * TraceSlotMicros,
			PID:  0,
			TID:  rec.Track,
			Args: map[string]any{"value": rec.Value},
		}
		if rec.Dur > 0 {
			ev.Phase = "X"
			ev.Dur = rec.Dur * TraceSlotMicros
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}
