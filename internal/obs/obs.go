// Package obs is the telemetry layer: a mergeable metric Registry
// (counters, gauges, sketch-backed histograms) and a fixed-size flight
// recorder of slot-timestamped span/event records.
//
// Both halves respect the tree's determinism contract. Instruments are
// order-insensitive — counters add integers, gauges merge by max, and
// histograms accumulate into bucket counts of a stats.QuantileSketch —
// so a Registry reaches the same final state no matter how observations
// are interleaved or how work is split across fleet shards and sweep
// workers. Snapshot then emits everything in sorted name order, making
// the serialized snapshot byte-identical per seed at any shard or
// worker count. Histogram snapshots deliberately expose only
// count/min/max/quantiles — never sum or mean, whose floating-point
// accumulation would depend on grouping and break that guarantee.
//
// Everything is nil-safe: methods on a nil Registry, Counter, Gauge,
// Histogram, or FlightRecorder are no-ops, so instrumented hot paths
// pay only a nil check when telemetry is disabled.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qarv/internal/stats"
)

// Counter is a monotone integer metric. Adds are exact, so counters
// merge losslessly and independently of observation order.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric whose merged value is the maximum
// observed across all merged registries. Max is commutative and
// associative, so gauges — like every obs instrument — reach the same
// merged value regardless of shard count or merge order. Use gauges
// for high-water marks and configuration echoes, not running sums.
type Gauge struct {
	mu  sync.Mutex
	set bool
	v   float64
}

// Record folds v into the gauge, keeping the maximum. No-op on a nil
// receiver.
func (g *Gauge) Record(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.set, g.v = true, v
	}
	g.mu.Unlock()
}

// Value returns the current maximum (zero if never recorded or on a
// nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a distribution metric backed by a mergeable
// stats.QuantileSketch. Observations land in exponential buckets whose
// integer counts merge exactly, so quantiles, count, min, and max are
// identical however the observation stream was partitioned. Like the
// sketch, histograms cover non-negative values: negatives are clamped
// to zero and NaN is ignored.
type Histogram struct {
	mu sync.Mutex
	sk *stats.QuantileSketch
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sk.Add(v)
	h.mu.Unlock()
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sk.Count()
}

// Quantile returns the q-quantile estimate (see
// stats.QuantileSketch.Quantile); zero on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sk.Quantile(q)
}

// Registry holds a process- or shard-local set of named instruments.
// Instrument lookup is get-or-create; handles returned by Counter,
// Gauge, and Histogram may be cached and used from multiple
// goroutines. The zero registry is not usable — construct with
// NewRegistry — but a nil *Registry is: every method no-ops, which is
// the disabled-telemetry fast path.
type Registry struct {
	mu       sync.Mutex
	accuracy float64
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry whose histograms use
// stats.DefaultSketchAccuracy.
func NewRegistry() *Registry {
	return NewRegistryAccuracy(stats.DefaultSketchAccuracy)
}

// NewRegistryAccuracy returns an empty registry whose histograms use
// the given relative sketch accuracy (clamped by the sketch itself).
func NewRegistryAccuracy(accuracy float64) *Registry {
	return &Registry{
		accuracy: accuracy,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Accuracy returns the relative accuracy histograms are built with;
// zero on a nil receiver.
func (r *Registry) Accuracy() float64 {
	if r == nil {
		return 0
	}
	return r.accuracy
}

// Counter returns the counter registered under name, creating it on
// first use. Nil on a nil receiver (and the nil Counter is itself a
// no-op, so callers need not re-check).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. Nil on a nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{sk: stats.NewQuantileSketch(r.accuracy)}
		r.hists[name] = h
	}
	return h
}

// Merge folds every instrument of o into r, losslessly: counters add,
// gauges keep the max, histograms merge their sketches bucket by
// bucket. Merge is commutative and associative in the resulting
// snapshot, so shards and cells may be merged in any grouping.
// Instruments absent on one side are created on the other. Merging a
// nil o (or into a nil r) is a no-op. Histogram merges require both
// registries to use the same sketch accuracy; a mismatch returns an
// error wrapping stats.ErrSketchMismatch.
func (r *Registry) Merge(o *Registry) error {
	if r == nil || o == nil {
		return nil
	}
	// Snapshot o's instrument tables under its lock, then fold into r.
	// Names are walked in sorted order so any error is deterministic.
	o.mu.Lock()
	counters := make(map[string]*Counter, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(o.hists))
	for k, v := range o.hists {
		hists[k] = v
	}
	o.mu.Unlock()
	for _, name := range sortedKeys(counters) {
		r.Counter(name).Add(counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		g.mu.Lock()
		set, v := g.set, g.v
		g.mu.Unlock()
		if set {
			r.Gauge(name).Record(v)
		}
	}
	for _, name := range sortedKeys(hists) {
		src := hists[name]
		dst := r.Histogram(name)
		src.mu.Lock()
		dst.mu.Lock()
		err := dst.sk.Merge(src.sk)
		dst.mu.Unlock()
		src.mu.Unlock()
		if err != nil {
			return fmt.Errorf("obs: merge histogram %q: %w", name, err)
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
