package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the exact accumulated count.
	Value int64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the maximum recorded value.
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot. It carries only
// order-insensitive statistics: count, min, max, and sketch quantiles.
// Sum and mean are deliberately absent — float addition regroups when
// the observation stream is split across shards, so including them
// would break the byte-identical-across-shard-counts guarantee.
type HistogramValue struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Count is the exact number of observations.
	Count uint64 `json:"count"`
	// Min and Max bound the observed values (0 when Count is 0).
	Min float64 `json:"min"`
	// Max is the largest observed value.
	Max float64 `json:"max"`
	// P50, P90, P95, P99 are sketch quantile estimates within the
	// registry's configured relative accuracy.
	P50 float64 `json:"p50"`
	// P90 is the 0.90 quantile estimate.
	P90 float64 `json:"p90"`
	// P95 is the 0.95 quantile estimate.
	P95 float64 `json:"p95"`
	// P99 is the 0.99 quantile estimate.
	P99 float64 `json:"p99"`
}

// Snapshot is a point-in-time, name-sorted export of a Registry. For
// a given seed it is byte-identical (via EncodeJSON or WriteProm) no
// matter how many shards or workers produced the underlying registry.
type Snapshot struct {
	// Counters, sorted by name.
	Counters []CounterValue `json:"counters,omitempty"`
	// Gauges, sorted by name.
	Gauges []GaugeValue `json:"gauges,omitempty"`
	// Histograms, sorted by name.
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current state in sorted name order.
// Nil on a nil receiver.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	s := &Snapshot{}
	for _, name := range sortedKeys(counters) {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: counters[name].Value()})
	}
	for _, name := range sortedKeys(gauges) {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: gauges[name].Value()})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		h.mu.Lock()
		hv := HistogramValue{
			Name:  name,
			Count: h.sk.Count(),
		}
		if hv.Count > 0 {
			hv.Min = h.sk.Min()
			hv.Max = h.sk.Max()
			hv.P50 = h.sk.Quantile(0.50)
			hv.P90 = h.sk.Quantile(0.90)
			hv.P95 = h.sk.Quantile(0.95)
			hv.P99 = h.sk.Quantile(0.99)
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// EncodeJSON writes the snapshot as indented JSON. A nil snapshot
// encodes as "null".
func (s *Snapshot) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}

// WriteProm writes the snapshot in Prometheus text exposition format:
// counters as `# TYPE <name> counter`, gauges as gauges, histograms as
// summaries with quantile labels plus _count, _min, and _max series.
// Output order is the snapshot's sorted order, so it is deterministic.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %v\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "# TYPE %s summary\n", h.Name)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %v\n", h.Name, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %v\n", h.Name, h.P90)
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %v\n", h.Name, h.P95)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %v\n", h.Name, h.P99)
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
		fmt.Fprintf(&b, "%s_min %v\n", h.Name, h.Min)
		fmt.Fprintf(&b, "%s_max %v\n", h.Name, h.Max)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: write exposition: %w", err)
	}
	return nil
}
