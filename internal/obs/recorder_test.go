package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := int64(0); i < 10; i++ {
		r.Event(i, "sim", "tick", 0, float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	recs := r.Records()
	for i, rec := range recs {
		if want := int64(6 + i); rec.Slot != want {
			t.Fatalf("record %d slot = %d, want %d (oldest evicted first)", i, rec.Slot, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("reset did not empty the ring")
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultRecorderCapacity {
		t.Fatalf("default cap = %d, want %d", got, DefaultRecorderCapacity)
	}
}

func TestRecorderOrderAndMerge(t *testing.T) {
	a := NewFlightRecorder(16)
	a.Event(5, "sim", "drop", 1, 1)
	a.Span(2, 3, "sim", "slot", 0, 0.5)
	b := NewFlightRecorder(16)
	b.Event(2, "netem", "rate", 0, 8e6)
	b.Event(9, "alloc", "share", 2, 0.25)
	a.Merge(b)
	recs := a.Records()
	if len(recs) != 4 {
		t.Fatalf("len = %d, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Slot < recs[i-1].Slot {
			t.Fatalf("records out of slot order: %+v", recs)
		}
	}
	if recs[0].Slot != 2 || recs[len(recs)-1].Slot != 9 {
		t.Fatalf("unexpected order: %+v", recs)
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Event(1, "sim", "tick", 0, 1)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(b.Bytes(), &recs); err != nil {
		t.Fatalf("records JSON does not parse: %v", err)
	}
	if len(recs) != 1 || recs[0].Cat != "sim" || recs[0].Name != "tick" {
		t.Fatalf("round trip mismatch: %+v", recs)
	}
}

// TestRecorderWriteTrace checks the Chrome trace_event export parses
// and carries well-formed events: complete ("X") spans with durations
// and thread-scoped instants ("i").
func TestRecorderWriteTrace(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Span(2, 3, "sim", "slot", 4, 0.5)
	r.Event(7, "netem", "rate", 1, 4e6)
	var b bytes.Buffer
	if err := r.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    int64   `json:"ts"`
			Dur   int64   `json:"dur"`
			TID   int64   `json:"tid"`
			Scope string  `json:"s"`
			Args  struct {
				Value float64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &tf); err != nil {
		t.Fatalf("trace_event JSON does not parse: %v", err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(tf.TraceEvents))
	}
	span := tf.TraceEvents[0]
	if span.Phase != "X" || span.TS != 2*TraceSlotMicros || span.Dur != 3*TraceSlotMicros || span.TID != 4 {
		t.Fatalf("bad span event: %+v", span)
	}
	inst := tf.TraceEvents[1]
	if inst.Phase != "i" || inst.Scope != "t" || inst.Args.Value != 4e6 {
		t.Fatalf("bad instant event: %+v", inst)
	}
}

func TestHandlerServesProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("stream_bytes_total").Add(123)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "stream_bytes_total 123") {
		t.Fatalf("exposition missing counter:\n%s", b.String())
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	// The pprof index must be wired on the same mux.
	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp2.StatusCode)
	}
}
