package pointcloud

import (
	"math"

	"qarv/internal/geom"
)

// EstimateNormals computes per-point normals by PCA over the k nearest
// neighbours: the normal is the eigenvector of the local covariance with
// the smallest eigenvalue. Normals are oriented to face the given viewpoint
// (pass the camera or cloud exterior); this mirrors Open3D's
// estimate_normals + orient_normals_towards_camera_location.
func (c *Cloud) EstimateNormals(k int, viewpoint geom.Vec3) {
	n := c.Len()
	if n == 0 {
		return
	}
	if k < 3 {
		k = 3
	}
	idx := NewGridIndex(c, 0)
	normals := make([]geom.Vec3, n)
	for i, p := range c.Points {
		neigh := idx.KNearest(p, k)
		normal := planeNormal(c, neigh)
		// Orient toward the viewpoint.
		if normal.Dot(viewpoint.Sub(p)) < 0 {
			normal = normal.Scale(-1)
		}
		normals[i] = normal
	}
	c.Normals = normals
}

// planeNormal fits a plane to the neighbourhood and returns its unit normal.
func planeNormal(c *Cloud, neigh []Neighbor) geom.Vec3 {
	if len(neigh) < 3 {
		return geom.V(0, 0, 1)
	}
	var centroid geom.Vec3
	for _, nb := range neigh {
		centroid = centroid.Add(c.Points[nb.Index])
	}
	centroid = centroid.Scale(1 / float64(len(neigh)))
	var cov covariance3
	for _, nb := range neigh {
		d := c.Points[nb.Index].Sub(centroid)
		cov.xx += d.X * d.X
		cov.xy += d.X * d.Y
		cov.xz += d.X * d.Z
		cov.yy += d.Y * d.Y
		cov.yz += d.Y * d.Z
		cov.zz += d.Z * d.Z
	}
	return cov.smallestEigenvector()
}

// covariance3 is a symmetric 3×3 matrix (upper triangle stored).
type covariance3 struct {
	xx, xy, xz, yy, yz, zz float64
}

// smallestEigenvector returns the unit eigenvector of the smallest
// eigenvalue via Jacobi rotations; robust for the small symmetric matrices
// of normal estimation.
func (m covariance3) smallestEigenvector() geom.Vec3 {
	a := [3][3]float64{
		{m.xx, m.xy, m.xz},
		{m.xy, m.yy, m.yz},
		{m.xz, m.yz, m.zz},
	}
	v := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for sweep := 0; sweep < 32; sweep++ {
		// Largest off-diagonal element.
		p, q := 0, 1
		if math.Abs(a[0][2]) > math.Abs(a[p][q]) {
			p, q = 0, 2
		}
		if math.Abs(a[1][2]) > math.Abs(a[p][q]) {
			p, q = 1, 2
		}
		if math.Abs(a[p][q]) < 1e-15 {
			break
		}
		// Jacobi rotation annihilating a[p][q].
		theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
		t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
		cth := 1 / math.Sqrt(t*t+1)
		sth := t * cth
		rotate := func(mref *[3][3]float64) {
			mm := *mref
			for i := 0; i < 3; i++ {
				mp, mq := mm[i][p], mm[i][q]
				mm[i][p] = cth*mp - sth*mq
				mm[i][q] = sth*mp + cth*mq
			}
			*mref = mm
		}
		rotate(&a)
		// Rows of a.
		for i := 0; i < 3; i++ {
			ap, aq := a[p][i], a[q][i]
			a[p][i] = cth*ap - sth*aq
			a[q][i] = sth*ap + cth*aq
		}
		rotate(&v)
	}
	// Pick the column with the smallest eigenvalue (diagonal of a).
	best := 0
	for i := 1; i < 3; i++ {
		if a[i][i] < a[best][best] {
			best = i
		}
	}
	return geom.V(v[0][best], v[1][best], v[2][best]).Normalized()
}
