package pointcloud

import (
	"math"
	"sort"
	"testing"

	"qarv/internal/geom"
)

// bruteNearest is the reference implementation the index is checked against.
func bruteNearest(c *Cloud, q geom.Vec3, exclude int) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for i, p := range c.Points {
		if i == exclude {
			continue
		}
		if d2 := q.Dist2(p); d2 < bestD2 {
			bestD2 = d2
			best = i
		}
	}
	if best < 0 {
		return -1, -1
	}
	return best, bestD2
}

func bruteKNN(c *Cloud, q geom.Vec3, k int) []Neighbor {
	all := make([]Neighbor, 0, c.Len())
	for i, p := range c.Points {
		all = append(all, Neighbor{Index: i, Dist2: q.Dist2(p)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dist2 < all[j].Dist2 })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestGridIndexNearestMatchesBruteForce(t *testing.T) {
	c := cubeCloud(500, 21)
	idx := NewGridIndex(c, 0)
	rng := geom.NewRNG(22)
	for n := 0; n < 100; n++ {
		q := geom.V(rng.Range(-0.2, 1.2), rng.Range(-0.2, 1.2), rng.Range(-0.2, 1.2))
		gotI, gotD2 := idx.Nearest(q)
		wantI, wantD2 := bruteNearest(c, q, -1)
		if gotI != wantI || math.Abs(gotD2-wantD2) > 1e-12 {
			t.Fatalf("query %v: got (%d, %v), want (%d, %v)", q, gotI, gotD2, wantI, wantD2)
		}
	}
}

func TestGridIndexNearestExcluding(t *testing.T) {
	c := cubeCloud(200, 23)
	idx := NewGridIndex(c, 0)
	for i := 0; i < 50; i++ {
		gotI, gotD2 := idx.NearestExcluding(c.Points[i], i)
		wantI, wantD2 := bruteNearest(c, c.Points[i], i)
		if gotI != wantI || math.Abs(gotD2-wantD2) > 1e-12 {
			t.Fatalf("self-query %d: got (%d, %v), want (%d, %v)", i, gotI, gotD2, wantI, wantD2)
		}
		if gotI == i {
			t.Fatal("excluded point returned")
		}
	}
}

func TestGridIndexKNearestMatchesBruteForce(t *testing.T) {
	c := cubeCloud(300, 24)
	idx := NewGridIndex(c, 0)
	rng := geom.NewRNG(25)
	for n := 0; n < 50; n++ {
		q := geom.V(rng.Float64(), rng.Float64(), rng.Float64())
		for _, k := range []int{1, 4, 16} {
			got := idx.KNearest(q, k)
			want := bruteKNN(c, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				// Indices can differ under distance ties; distances must match.
				if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
					t.Fatalf("k=%d rank %d: dist %v, want %v", k, i, got[i].Dist2, want[i].Dist2)
				}
			}
		}
	}
}

func TestGridIndexKNearestSortedAscending(t *testing.T) {
	c := cubeCloud(200, 26)
	idx := NewGridIndex(c, 0)
	res := idx.KNearest(geom.V(0.5, 0.5, 0.5), 20)
	for i := 1; i < len(res); i++ {
		if res[i].Dist2 < res[i-1].Dist2 {
			t.Fatal("KNearest results not sorted")
		}
	}
}

func TestGridIndexKNearestDegenerate(t *testing.T) {
	c := cubeCloud(5, 27)
	idx := NewGridIndex(c, 0)
	if got := idx.KNearest(geom.V(0, 0, 0), 0); got != nil {
		t.Error("k=0 must return nil")
	}
	if got := idx.KNearest(geom.V(0, 0, 0), 10); len(got) != 5 {
		t.Errorf("k>n must return n results, got %d", len(got))
	}
	empty := NewGridIndex(&Cloud{}, 0)
	if i, d := empty.Nearest(geom.V(0, 0, 0)); i != -1 || d != -1 {
		t.Error("empty index nearest must be (-1,-1)")
	}
}

func TestGridIndexRadius(t *testing.T) {
	// Lattice cloud: a radius-1.01 ball around an interior point catches
	// itself plus its 6 axis neighbours.
	c := &Cloud{}
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 5; z++ {
				c.Append(geom.V(float64(x), float64(y), float64(z)), nil, nil)
			}
		}
	}
	idx := NewGridIndex(c, 0)
	got := idx.Radius(geom.V(2, 2, 2), 1.01)
	if len(got) != 7 {
		t.Fatalf("radius query found %d points, want 7", len(got))
	}
	if idx.Radius(geom.V(2, 2, 2), -1) != nil {
		t.Error("negative radius must return nil")
	}
}

func TestGridIndexExplicitCellSize(t *testing.T) {
	c := cubeCloud(100, 28)
	idx := NewGridIndex(c, 0.05)
	if idx.CellSize() != 0.05 {
		t.Errorf("cell size = %v", idx.CellSize())
	}
	// Queries must still be exact with a forced small cell size.
	q := geom.V(0.3, 0.3, 0.3)
	gotI, _ := idx.Nearest(q)
	wantI, _ := bruteNearest(c, q, -1)
	if gotI != wantI {
		t.Errorf("nearest with tiny cells = %d, want %d", gotI, wantI)
	}
}
