package pointcloud

import (
	"errors"
	"math"
	"sort"

	"qarv/internal/geom"
)

// ErrInvalidVoxelSize is returned when a non-positive voxel size is given.
var ErrInvalidVoxelSize = errors.New("pointcloud: voxel size must be positive")

// VoxelDownsample quantizes the cloud onto a grid of the given voxel size
// and returns one point per occupied voxel: the centroid of its points,
// with the average color. This matches Open3D's voxel_down_sample and is
// the "data format conversion" step that precedes octree construction.
func (c *Cloud) VoxelDownsample(voxelSize float64) (*Cloud, error) {
	if voxelSize <= 0 {
		return nil, ErrInvalidVoxelSize
	}
	if c.Len() == 0 {
		return &Cloud{}, nil
	}
	b := c.Bounds()
	type acc struct {
		sum      geom.Vec3
		r, g, bl float64
		n        int
	}
	cells := make(map[[3]int32]*acc, c.Len()/4+1)
	for i, p := range c.Points {
		key := [3]int32{
			int32(math.Floor((p.X - b.Min.X) / voxelSize)),
			int32(math.Floor((p.Y - b.Min.Y) / voxelSize)),
			int32(math.Floor((p.Z - b.Min.Z) / voxelSize)),
		}
		a, ok := cells[key]
		if !ok {
			a = &acc{}
			cells[key] = a
		}
		a.sum = a.sum.Add(p)
		if c.HasColors() {
			a.r += float64(c.Colors[i].R)
			a.g += float64(c.Colors[i].G)
			a.bl += float64(c.Colors[i].B)
		}
		a.n++
	}
	// Deterministic output order: sort cell keys.
	keys := make([][3]int32, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, bk := keys[i], keys[j]
		if a[0] != bk[0] {
			return a[0] < bk[0]
		}
		if a[1] != bk[1] {
			return a[1] < bk[1]
		}
		return a[2] < bk[2]
	})
	out := &Cloud{Points: make([]geom.Vec3, 0, len(cells))}
	if c.HasColors() {
		out.Colors = make([]Color, 0, len(cells))
	}
	for _, k := range keys {
		a := cells[k]
		inv := 1 / float64(a.n)
		out.Points = append(out.Points, a.sum.Scale(inv))
		if c.HasColors() {
			out.Colors = append(out.Colors, Color{
				R: uint8(a.r*inv + 0.5),
				G: uint8(a.g*inv + 0.5),
				B: uint8(a.bl*inv + 0.5),
			})
		}
	}
	return out, nil
}

// MeanNeighborDistance estimates the mean distance from each of up to
// sample points to its nearest neighbour, a standard density measure used
// to pick voxel sizes and outlier thresholds. A nil RNG samples the first
// points deterministically.
func (c *Cloud) MeanNeighborDistance(sample int, rng *geom.RNG) float64 {
	n := c.Len()
	if n < 2 {
		return 0
	}
	if sample <= 0 || sample > n {
		sample = n
	}
	idx := NewGridIndex(c, 0)
	sum := 0.0
	count := 0
	for s := 0; s < sample; s++ {
		i := s
		if rng != nil {
			i = rng.Intn(n)
		}
		_, d2 := idx.NearestExcluding(c.Points[i], i)
		if d2 >= 0 {
			sum += math.Sqrt(d2)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// RemoveStatisticalOutliers drops points whose mean distance to their k
// nearest neighbours exceeds mean + stdRatio·stddev over the whole cloud,
// mirroring Open3D's remove_statistical_outlier. It returns the filtered
// cloud and the indices kept.
func (c *Cloud) RemoveStatisticalOutliers(k int, stdRatio float64) (*Cloud, []int) {
	n := c.Len()
	if n == 0 || k <= 0 {
		return c.Clone(), identityIndices(n)
	}
	if k >= n {
		k = n - 1
	}
	if k == 0 {
		return c.Clone(), identityIndices(n)
	}
	idx := NewGridIndex(c, 0)
	meanDist := make([]float64, n)
	for i, p := range c.Points {
		neigh := idx.KNearest(p, k+1) // +1: the point itself
		sum := 0.0
		cnt := 0
		for _, nb := range neigh {
			if nb.Index == i {
				continue
			}
			sum += math.Sqrt(nb.Dist2)
			cnt++
		}
		if cnt > 0 {
			meanDist[i] = sum / float64(cnt)
		}
	}
	mean, std := meanStd(meanDist)
	threshold := mean + stdRatio*std
	kept := make([]int, 0, n)
	for i, d := range meanDist {
		if d <= threshold {
			kept = append(kept, i)
		}
	}
	return c.Select(kept), kept
}

// UniformSubsample keeps every k-th point (k ≥ 1), a cheap decimation used
// by the synthetic generator to hit target point budgets.
func (c *Cloud) UniformSubsample(k int) *Cloud {
	if k <= 1 {
		return c.Clone()
	}
	indices := make([]int, 0, c.Len()/k+1)
	for i := 0; i < c.Len(); i += k {
		indices = append(indices, i)
	}
	return c.Select(indices)
}

func identityIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
