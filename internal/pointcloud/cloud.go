// Package pointcloud provides the point-cloud container and the geometric
// operations the paper's pipeline needs: bounds, transforms, voxel
// downsampling, cropping, spatial indexing with nearest-neighbour queries,
// normal estimation, and outlier removal. It plays the role Open3D plays in
// the paper's experiment section (point cloud reading, data format
// conversion, preprocessing), implemented in pure Go.
package pointcloud

import (
	"errors"
	"fmt"

	"qarv/internal/geom"
)

// Color is an 8-bit-per-channel RGB color, matching the color attributes of
// the 8i Voxelized Full Bodies PLY files.
type Color struct {
	R, G, B uint8
}

// Gray returns the luma of the color in [0,255] using Rec. 601 weights.
func (c Color) Gray() float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// Cloud is a point cloud with optional per-point colors and normals.
// Attribute slices are either nil or exactly len(Points) long; Validate
// enforces this invariant.
type Cloud struct {
	Points  []geom.Vec3
	Colors  []Color
	Normals []geom.Vec3
}

// ErrAttributeLength is returned by Validate when an attribute slice is
// present but does not match the number of points.
var ErrAttributeLength = errors.New("pointcloud: attribute length does not match point count")

// New returns an empty cloud with capacity for n points.
func New(n int) *Cloud {
	return &Cloud{Points: make([]geom.Vec3, 0, n)}
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Points) }

// HasColors reports whether the cloud carries per-point colors.
func (c *Cloud) HasColors() bool { return len(c.Colors) > 0 }

// HasNormals reports whether the cloud carries per-point normals.
func (c *Cloud) HasNormals() bool { return len(c.Normals) > 0 }

// Validate checks the attribute-length invariant.
func (c *Cloud) Validate() error {
	if c.Colors != nil && len(c.Colors) != len(c.Points) {
		return fmt.Errorf("%w: %d colors for %d points", ErrAttributeLength, len(c.Colors), len(c.Points))
	}
	if c.Normals != nil && len(c.Normals) != len(c.Points) {
		return fmt.Errorf("%w: %d normals for %d points", ErrAttributeLength, len(c.Normals), len(c.Points))
	}
	return nil
}

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, len(c.Points))}
	copy(out.Points, c.Points)
	if c.HasColors() {
		out.Colors = make([]Color, len(c.Colors))
		copy(out.Colors, c.Colors)
	}
	if c.HasNormals() {
		out.Normals = make([]geom.Vec3, len(c.Normals))
		copy(out.Normals, c.Normals)
	}
	return out
}

// Append adds a point with optional attributes. Passing attributes to a
// cloud that previously had none backfills defaults so the invariant holds.
func (c *Cloud) Append(p geom.Vec3, color *Color, normal *geom.Vec3) {
	c.Points = append(c.Points, p)
	if color != nil {
		for len(c.Colors) < len(c.Points)-1 {
			c.Colors = append(c.Colors, Color{})
		}
		c.Colors = append(c.Colors, *color)
	} else if c.Colors != nil {
		c.Colors = append(c.Colors, Color{})
	}
	if normal != nil {
		for len(c.Normals) < len(c.Points)-1 {
			c.Normals = append(c.Normals, geom.Vec3{})
		}
		c.Normals = append(c.Normals, *normal)
	} else if c.Normals != nil {
		c.Normals = append(c.Normals, geom.Vec3{})
	}
}

// Merge appends all points (and attributes) of o into c.
func (c *Cloud) Merge(o *Cloud) {
	base := len(c.Points)
	c.Points = append(c.Points, o.Points...)
	if c.Colors != nil || o.Colors != nil {
		for len(c.Colors) < base {
			c.Colors = append(c.Colors, Color{})
		}
		if o.Colors != nil {
			c.Colors = append(c.Colors, o.Colors...)
		} else {
			for len(c.Colors) < len(c.Points) {
				c.Colors = append(c.Colors, Color{})
			}
		}
	}
	if c.Normals != nil || o.Normals != nil {
		for len(c.Normals) < base {
			c.Normals = append(c.Normals, geom.Vec3{})
		}
		if o.Normals != nil {
			c.Normals = append(c.Normals, o.Normals...)
		} else {
			for len(c.Normals) < len(c.Points) {
				c.Normals = append(c.Normals, geom.Vec3{})
			}
		}
	}
}

// Bounds returns the tight axis-aligned bounding box of the points.
func (c *Cloud) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, p := range c.Points {
		b = b.Extend(p)
	}
	return b
}

// Centroid returns the arithmetic mean of the points; the zero vector for
// an empty cloud.
func (c *Cloud) Centroid() geom.Vec3 {
	if len(c.Points) == 0 {
		return geom.Vec3{}
	}
	var sum geom.Vec3
	for _, p := range c.Points {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(c.Points)))
}

// Translate shifts every point by t in place.
func (c *Cloud) Translate(t geom.Vec3) {
	for i := range c.Points {
		c.Points[i] = c.Points[i].Add(t)
	}
}

// Scale multiplies every point by s about the origin, in place.
func (c *Cloud) Scale(s float64) {
	for i := range c.Points {
		c.Points[i] = c.Points[i].Scale(s)
	}
}

// RotateY rotates every point (and normal) by angle radians around +Y about
// the origin, in place.
func (c *Cloud) RotateY(angle float64) {
	for i := range c.Points {
		c.Points[i] = c.Points[i].RotateY(angle)
	}
	for i := range c.Normals {
		c.Normals[i] = c.Normals[i].RotateY(angle)
	}
}

// Crop returns a new cloud holding only the points inside box (half-open),
// with attributes carried along.
func (c *Cloud) Crop(box geom.AABB) *Cloud {
	out := &Cloud{}
	if c.HasColors() {
		out.Colors = make([]Color, 0)
	}
	if c.HasNormals() {
		out.Normals = make([]geom.Vec3, 0)
	}
	for i, p := range c.Points {
		if !box.Contains(p) {
			continue
		}
		out.Points = append(out.Points, p)
		if c.HasColors() {
			out.Colors = append(out.Colors, c.Colors[i])
		}
		if c.HasNormals() {
			out.Normals = append(out.Normals, c.Normals[i])
		}
	}
	return out
}

// Select returns a new cloud with the points at the given indices, in order.
func (c *Cloud) Select(indices []int) *Cloud {
	out := &Cloud{Points: make([]geom.Vec3, 0, len(indices))}
	if c.HasColors() {
		out.Colors = make([]Color, 0, len(indices))
	}
	if c.HasNormals() {
		out.Normals = make([]geom.Vec3, 0, len(indices))
	}
	for _, i := range indices {
		out.Points = append(out.Points, c.Points[i])
		if c.HasColors() {
			out.Colors = append(out.Colors, c.Colors[i])
		}
		if c.HasNormals() {
			out.Normals = append(out.Normals, c.Normals[i])
		}
	}
	return out
}
