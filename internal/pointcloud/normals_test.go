package pointcloud

import (
	"math"
	"testing"

	"qarv/internal/geom"
)

func TestEstimateNormalsPlane(t *testing.T) {
	// Points on the z=0 plane must get normals ±z, oriented toward the
	// viewpoint above the plane.
	c := &Cloud{}
	rng := geom.NewRNG(31)
	for i := 0; i < 400; i++ {
		c.Append(geom.V(rng.Float64(), rng.Float64(), 0), nil, nil)
	}
	c.EstimateNormals(12, geom.V(0.5, 0.5, 10))
	if !c.HasNormals() {
		t.Fatal("no normals computed")
	}
	for i, n := range c.Normals {
		if math.Abs(n.Norm()-1) > 1e-9 {
			t.Fatalf("normal %d not unit: %v", i, n)
		}
		if n.Z < 0.99 {
			t.Fatalf("normal %d = %v, want ~+z", i, n)
		}
	}
}

func TestEstimateNormalsSphereOrientation(t *testing.T) {
	// Points on a sphere with the viewpoint at the center: normals must
	// point inward (toward the center), i.e. opposite the radial direction.
	c := &Cloud{}
	rng := geom.NewRNG(32)
	for i := 0; i < 500; i++ {
		c.Append(rng.UnitSphere().Scale(2), nil, nil)
	}
	c.EstimateNormals(10, geom.Vec3{})
	inward := 0
	for i, p := range c.Points {
		if c.Normals[i].Dot(p) < 0 {
			inward++
		}
	}
	if inward < 490 {
		t.Errorf("only %d/500 normals oriented toward viewpoint", inward)
	}
}

func TestEstimateNormalsEmptyAndTiny(t *testing.T) {
	empty := &Cloud{}
	empty.EstimateNormals(10, geom.Vec3{})
	if empty.HasNormals() {
		t.Error("empty cloud must not grow normals")
	}
	tiny := cubeCloud(2, 33)
	tiny.EstimateNormals(10, geom.Vec3{})
	if len(tiny.Normals) != 2 {
		t.Error("tiny cloud must still get placeholder normals")
	}
}

func TestSmallestEigenvectorKnownMatrix(t *testing.T) {
	// Diagonal covariance diag(4, 9, 1): smallest eigenvalue 1 -> z axis.
	m := covariance3{xx: 4, yy: 9, zz: 1}
	v := m.smallestEigenvector()
	if math.Abs(math.Abs(v.Z)-1) > 1e-9 {
		t.Errorf("smallest eigenvector = %v, want ±z", v)
	}
	// Rotated case: covariance of points spread in x+y has smallest
	// eigenvector perpendicular to the spread plane.
	m2 := covariance3{xx: 5, xy: 3, yy: 5, zz: 0.1}
	v2 := m2.smallestEigenvector()
	if math.Abs(math.Abs(v2.Z)-1) > 1e-6 {
		t.Errorf("eigenvector = %v, want ±z", v2)
	}
}
