package pointcloud

import (
	"errors"
	"math"
	"testing"

	"qarv/internal/geom"
)

func cubeCloud(n int, seed uint64) *Cloud {
	rng := geom.NewRNG(seed)
	c := New(n)
	for i := 0; i < n; i++ {
		c.Append(geom.V(rng.Float64(), rng.Float64(), rng.Float64()), nil, nil)
	}
	return c
}

func coloredCloud(n int, seed uint64) *Cloud {
	rng := geom.NewRNG(seed)
	c := &Cloud{Colors: []Color{}}
	for i := 0; i < n; i++ {
		col := Color{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))}
		c.Append(geom.V(rng.Float64(), rng.Float64(), rng.Float64()), &col, nil)
	}
	return c
}

func TestCloudValidate(t *testing.T) {
	c := cubeCloud(10, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cloud rejected: %v", err)
	}
	c.Colors = make([]Color, 3)
	err := c.Validate()
	if !errors.Is(err, ErrAttributeLength) {
		t.Fatalf("mismatched colors not detected: %v", err)
	}
	c.Colors = nil
	c.Normals = make([]geom.Vec3, 2)
	if !errors.Is(c.Validate(), ErrAttributeLength) {
		t.Fatal("mismatched normals not detected")
	}
}

func TestCloudCloneIsDeep(t *testing.T) {
	c := coloredCloud(5, 2)
	c.EstimateNormals(3, geom.V(0, 0, 10))
	d := c.Clone()
	d.Points[0] = geom.V(99, 99, 99)
	d.Colors[0] = Color{R: 1}
	d.Normals[0] = geom.V(9, 9, 9)
	if c.Points[0] == d.Points[0] || c.Colors[0] == d.Colors[0] || c.Normals[0] == d.Normals[0] {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloudAppendBackfillsAttributes(t *testing.T) {
	c := &Cloud{}
	c.Append(geom.V(0, 0, 0), nil, nil)
	col := Color{R: 10}
	c.Append(geom.V(1, 1, 1), &col, nil)
	if err := c.Validate(); err != nil {
		t.Fatalf("backfill broke invariant: %v", err)
	}
	if c.Colors[0] != (Color{}) || c.Colors[1] != col {
		t.Errorf("colors = %v", c.Colors)
	}
}

func TestCloudMergeAttributes(t *testing.T) {
	a := cubeCloud(3, 3)
	b := coloredCloud(4, 4)
	a.Merge(b)
	if a.Len() != 7 {
		t.Fatalf("merged len = %d", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("merge broke invariant: %v", err)
	}
	if a.Colors[0] != (Color{}) {
		t.Error("uncolored prefix must backfill zero colors")
	}
	if a.Colors[3] != b.Colors[0] {
		t.Error("merged colors not carried over")
	}
}

func TestCloudBoundsAndCentroid(t *testing.T) {
	c := &Cloud{}
	c.Append(geom.V(0, 0, 0), nil, nil)
	c.Append(geom.V(2, 4, 6), nil, nil)
	b := c.Bounds()
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(2, 4, 6) {
		t.Errorf("bounds = %v", b)
	}
	if got := c.Centroid(); got != geom.V(1, 2, 3) {
		t.Errorf("centroid = %v", got)
	}
	if (&Cloud{}).Centroid() != (geom.Vec3{}) {
		t.Error("empty centroid must be zero")
	}
}

func TestCloudTransforms(t *testing.T) {
	c := &Cloud{}
	c.Append(geom.V(1, 0, 0), nil, nil)
	c.Translate(geom.V(0, 1, 0))
	if c.Points[0] != geom.V(1, 1, 0) {
		t.Errorf("translate = %v", c.Points[0])
	}
	c.Scale(2)
	if c.Points[0] != geom.V(2, 2, 0) {
		t.Errorf("scale = %v", c.Points[0])
	}
	c.Normals = []geom.Vec3{geom.V(1, 0, 0)}
	c.RotateY(math.Pi)
	if c.Points[0].Dist(geom.V(-2, 2, 0)) > 1e-12 {
		t.Errorf("rotate = %v", c.Points[0])
	}
	if c.Normals[0].Dist(geom.V(-1, 0, 0)) > 1e-12 {
		t.Errorf("normal not rotated: %v", c.Normals[0])
	}
}

func TestCloudCrop(t *testing.T) {
	c := coloredCloud(200, 5)
	box := geom.NewAABB(geom.V(0, 0, 0), geom.V(0.5, 0.5, 0.5))
	cropped := c.Crop(box)
	if cropped.Len() == 0 || cropped.Len() == c.Len() {
		t.Fatalf("crop kept %d of %d", cropped.Len(), c.Len())
	}
	for _, p := range cropped.Points {
		if !box.Contains(p) {
			t.Fatalf("cropped point %v outside box", p)
		}
	}
	if len(cropped.Colors) != cropped.Len() {
		t.Error("crop lost colors")
	}
}

func TestCloudSelect(t *testing.T) {
	c := coloredCloud(10, 6)
	s := c.Select([]int{3, 1, 7})
	if s.Len() != 3 {
		t.Fatalf("select len = %d", s.Len())
	}
	if s.Points[0] != c.Points[3] || s.Points[1] != c.Points[1] || s.Points[2] != c.Points[7] {
		t.Error("select order wrong")
	}
	if s.Colors[0] != c.Colors[3] {
		t.Error("select lost attributes")
	}
}

func TestColorGray(t *testing.T) {
	if g := (Color{R: 255, G: 255, B: 255}).Gray(); math.Abs(g-255) > 0.01 {
		t.Errorf("white gray = %v", g)
	}
	if g := (Color{}).Gray(); g != 0 {
		t.Errorf("black gray = %v", g)
	}
}
