package pointcloud

import (
	"container/heap"
	"math"

	"qarv/internal/geom"
)

// GridIndex is a uniform hash-grid spatial index over a cloud, supporting
// nearest-neighbour, k-nearest and radius queries. A hash grid beats a k-d
// tree for the near-uniform surface densities of voxelized body scans and
// keeps the implementation dependency-free.
type GridIndex struct {
	cloud    *Cloud
	cellSize float64
	origin   geom.Vec3
	cells    map[[3]int32][]int32
}

// Neighbor is one k-nearest-neighbour result.
type Neighbor struct {
	Index int     // index into the cloud
	Dist2 float64 // squared distance to the query point
}

// NewGridIndex builds an index over cloud. cellSize ≤ 0 picks a heuristic
// size targeting a handful of points per cell.
func NewGridIndex(cloud *Cloud, cellSize float64) *GridIndex {
	g := &GridIndex{cloud: cloud}
	n := cloud.Len()
	b := cloud.Bounds()
	if cellSize <= 0 {
		if n == 0 || b.IsEmpty() {
			cellSize = 1
		} else {
			// Aim for ~2 points per cell for surface-like data:
			// cells ≈ n/2 over the bounding volume.
			vol := math.Max(b.Volume(), 1e-12)
			cellSize = math.Cbrt(vol / math.Max(float64(n)/2, 1))
			if cellSize <= 0 {
				cellSize = 1
			}
		}
	}
	g.cellSize = cellSize
	if !b.IsEmpty() {
		g.origin = b.Min
	}
	g.cells = make(map[[3]int32][]int32, n/2+1)
	for i, p := range cloud.Points {
		key := g.cellOf(p)
		g.cells[key] = append(g.cells[key], int32(i))
	}
	return g
}

// CellSize returns the edge length of the index's cells.
func (g *GridIndex) CellSize() float64 { return g.cellSize }

func (g *GridIndex) cellOf(p geom.Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor((p.X - g.origin.X) / g.cellSize)),
		int32(math.Floor((p.Y - g.origin.Y) / g.cellSize)),
		int32(math.Floor((p.Z - g.origin.Z) / g.cellSize)),
	}
}

// Nearest returns the index of the point closest to q and its squared
// distance. It returns (-1, -1) for an empty cloud.
func (g *GridIndex) Nearest(q geom.Vec3) (int, float64) {
	return g.NearestExcluding(q, -1)
}

// NearestExcluding is Nearest but skips the point at index exclude,
// which makes self-queries ("nearest other point") possible.
func (g *GridIndex) NearestExcluding(q geom.Vec3, exclude int) (int, float64) {
	if g.cloud.Len() == 0 || (g.cloud.Len() == 1 && exclude == 0) {
		return -1, -1
	}
	center := g.cellOf(q)
	best := -1
	bestD2 := math.Inf(1)
	// Expand rings of cells until the best candidate cannot be beaten by
	// any cell in the next ring.
	for ring := 0; ; ring++ {
		found := g.scanRing(q, center, ring, exclude, &best, &bestD2)
		if best >= 0 {
			// Points in ring r are at least (r−1)·cellSize away; once that
			// lower bound exceeds the best distance we can stop.
			lower := float64(ring) * g.cellSize
			if lower*lower > bestD2 {
				break
			}
		}
		if !found && ring > g.maxRing() {
			break
		}
	}
	return best, bestD2
}

// maxRing bounds ring expansion by the grid's occupied extent.
func (g *GridIndex) maxRing() int {
	// A generous bound: enough rings to cross the whole bounding box.
	b := g.cloud.Bounds()
	if b.IsEmpty() {
		return 1
	}
	return int(b.LongestAxisLength()/g.cellSize) + 2
}

// scanRing visits all cells at Chebyshev distance ring from center and
// updates best/bestD2; it reports whether any occupied cell was seen.
func (g *GridIndex) scanRing(q geom.Vec3, center [3]int32, ring int, exclude int, best *int, bestD2 *float64) bool {
	foundCell := false
	visit := func(key [3]int32) {
		pts, ok := g.cells[key]
		if !ok {
			return
		}
		foundCell = true
		for _, i := range pts {
			if int(i) == exclude {
				continue
			}
			d2 := q.Dist2(g.cloud.Points[i])
			if d2 < *bestD2 {
				*bestD2 = d2
				*best = int(i)
			}
		}
	}
	if ring == 0 {
		visit(center)
		return foundCell
	}
	r := int32(ring)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				if maxAbs3(dx, dy, dz) != r {
					continue // interior cells were visited in earlier rings
				}
				visit([3]int32{center[0] + dx, center[1] + dy, center[2] + dz})
			}
		}
	}
	return foundCell
}

func maxAbs3(a, b, c int32) int32 {
	m := a
	if m < 0 {
		m = -m
	}
	if b < 0 {
		b = -b
	}
	if b > m {
		m = b
	}
	if c < 0 {
		c = -c
	}
	if c > m {
		m = c
	}
	return m
}

// neighborHeap is a max-heap on Dist2 so the worst of the current k best
// sits at the root and can be evicted cheaply.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].Dist2 > h[j].Dist2 }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// KNearest returns up to k nearest neighbours of q, sorted by increasing
// distance. The query point itself is included if it is in the cloud.
func (g *GridIndex) KNearest(q geom.Vec3, k int) []Neighbor {
	if k <= 0 || g.cloud.Len() == 0 {
		return nil
	}
	if k > g.cloud.Len() {
		k = g.cloud.Len()
	}
	h := make(neighborHeap, 0, k+1)
	center := g.cellOf(q)
	maxRing := g.maxRing()
	for ring := 0; ring <= maxRing; ring++ {
		g.scanRingKNN(q, center, ring, k, &h)
		if len(h) == k {
			lower := float64(ring) * g.cellSize
			if lower*lower > h[0].Dist2 {
				break
			}
		}
	}
	// Extract in increasing order.
	out := make([]Neighbor, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Neighbor)
	}
	return out
}

func (g *GridIndex) scanRingKNN(q geom.Vec3, center [3]int32, ring, k int, h *neighborHeap) {
	visit := func(key [3]int32) {
		for _, i := range g.cells[key] {
			d2 := q.Dist2(g.cloud.Points[i])
			if len(*h) < k {
				heap.Push(h, Neighbor{Index: int(i), Dist2: d2})
			} else if d2 < (*h)[0].Dist2 {
				heap.Pop(h)
				heap.Push(h, Neighbor{Index: int(i), Dist2: d2})
			}
		}
	}
	if ring == 0 {
		visit(center)
		return
	}
	r := int32(ring)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				if maxAbs3(dx, dy, dz) != r {
					continue
				}
				visit([3]int32{center[0] + dx, center[1] + dy, center[2] + dz})
			}
		}
	}
}

// Radius returns the indices of all points within radius of q (inclusive).
func (g *GridIndex) Radius(q geom.Vec3, radius float64) []int {
	if radius < 0 || g.cloud.Len() == 0 {
		return nil
	}
	r2 := radius * radius
	ringMax := int(radius/g.cellSize) + 1
	center := g.cellOf(q)
	var out []int
	for dx := -int32(ringMax); dx <= int32(ringMax); dx++ {
		for dy := -int32(ringMax); dy <= int32(ringMax); dy++ {
			for dz := -int32(ringMax); dz <= int32(ringMax); dz++ {
				key := [3]int32{center[0] + dx, center[1] + dy, center[2] + dz}
				for _, i := range g.cells[key] {
					if q.Dist2(g.cloud.Points[i]) <= r2 {
						out = append(out, int(i))
					}
				}
			}
		}
	}
	return out
}
