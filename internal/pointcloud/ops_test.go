package pointcloud

import (
	"math"
	"testing"
	"testing/quick"

	"qarv/internal/geom"
)

func TestVoxelDownsampleReducesAndCovers(t *testing.T) {
	c := cubeCloud(2000, 7)
	down, err := c.VoxelDownsample(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if down.Len() >= c.Len() {
		t.Fatalf("downsample did not reduce: %d -> %d", c.Len(), down.Len())
	}
	// A unit cube at voxel 0.25 has at most 4^3 = 64 occupied cells ... but
	// centroids may straddle; occupied cells are bounded by 5^3 due to
	// bounding-box anchoring.
	if down.Len() > 125 {
		t.Errorf("downsample kept %d cells, want <= 125", down.Len())
	}
	// Every output point must lie inside the original bounds.
	b := c.Bounds()
	for _, p := range down.Points {
		if !b.ContainsClosed(p) {
			t.Fatalf("downsampled point %v escaped bounds %v", p, b)
		}
	}
}

func TestVoxelDownsampleDeterministic(t *testing.T) {
	c := coloredCloud(500, 8)
	a, err := c.VoxelDownsample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.VoxelDownsample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.Colors[i] != b.Colors[i] {
			t.Fatal("nondeterministic output order")
		}
	}
}

func TestVoxelDownsampleErrors(t *testing.T) {
	c := cubeCloud(10, 9)
	if _, err := c.VoxelDownsample(0); err == nil {
		t.Error("zero voxel size must error")
	}
	if _, err := c.VoxelDownsample(-1); err == nil {
		t.Error("negative voxel size must error")
	}
	empty := &Cloud{}
	out, err := empty.VoxelDownsample(0.5)
	if err != nil || out.Len() != 0 {
		t.Errorf("empty cloud: %v, %v", out, err)
	}
}

func TestVoxelDownsampleAveragesColors(t *testing.T) {
	c := &Cloud{Colors: []Color{}}
	c.Append(geom.V(0.1, 0.1, 0.1), &Color{R: 100}, nil)
	c.Append(geom.V(0.2, 0.2, 0.2), &Color{R: 200}, nil)
	down, err := c.VoxelDownsample(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if down.Len() != 1 {
		t.Fatalf("want single voxel, got %d", down.Len())
	}
	if down.Colors[0].R != 150 {
		t.Errorf("averaged R = %d, want 150", down.Colors[0].R)
	}
	if down.Points[0].Dist(geom.V(0.15, 0.15, 0.15)) > 1e-12 {
		t.Errorf("centroid = %v", down.Points[0])
	}
}

func TestVoxelDownsampleFinerKeepsMore(t *testing.T) {
	// Property: shrinking the voxel size never decreases the cell count.
	c := cubeCloud(1000, 10)
	prev := 0
	for _, size := range []float64{0.5, 0.25, 0.125, 0.0625} {
		down, err := c.VoxelDownsample(size)
		if err != nil {
			t.Fatal(err)
		}
		if down.Len() < prev {
			t.Fatalf("voxel %v kept %d < previous %d", size, down.Len(), prev)
		}
		prev = down.Len()
	}
}

func TestUniformSubsample(t *testing.T) {
	c := cubeCloud(100, 11)
	s := c.UniformSubsample(10)
	if s.Len() != 10 {
		t.Errorf("subsample len = %d", s.Len())
	}
	if s.Points[1] != c.Points[10] {
		t.Error("subsample stride wrong")
	}
	if c.UniformSubsample(1).Len() != c.Len() {
		t.Error("k=1 must keep everything")
	}
}

func TestRemoveStatisticalOutliers(t *testing.T) {
	// A tight cluster plus one far-away point: the outlier must be removed.
	c := cubeCloud(300, 12)
	c.Scale(0.1) // tight cluster in [0, 0.1]^3
	c.Append(geom.V(50, 50, 50), nil, nil)
	filtered, kept := c.RemoveStatisticalOutliers(8, 2.0)
	if filtered.Len() != c.Len()-1 {
		t.Fatalf("kept %d of %d, want %d", filtered.Len(), c.Len(), c.Len()-1)
	}
	for _, i := range kept {
		if i == c.Len()-1 {
			t.Fatal("outlier survived filtering")
		}
	}
}

func TestRemoveStatisticalOutliersDegenerate(t *testing.T) {
	empty := &Cloud{}
	f, kept := empty.RemoveStatisticalOutliers(5, 1)
	if f.Len() != 0 || len(kept) != 0 {
		t.Error("empty cloud must pass through")
	}
	single := cubeCloud(1, 13)
	f, kept = single.RemoveStatisticalOutliers(5, 1)
	if f.Len() != 1 || len(kept) != 1 {
		t.Error("single point must pass through")
	}
}

func TestMeanNeighborDistanceLattice(t *testing.T) {
	// Points on a unit lattice: every nearest neighbour is at distance 1.
	c := &Cloud{}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				c.Append(geom.V(float64(x), float64(y), float64(z)), nil, nil)
			}
		}
	}
	d := c.MeanNeighborDistance(0, nil)
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("lattice mean neighbour distance = %v, want 1", d)
	}
}

func TestMeanNeighborDistanceDegenerate(t *testing.T) {
	if (&Cloud{}).MeanNeighborDistance(10, nil) != 0 {
		t.Error("empty cloud distance must be 0")
	}
	single := cubeCloud(1, 14)
	if single.MeanNeighborDistance(10, nil) != 0 {
		t.Error("single point distance must be 0")
	}
}

func TestVoxelDownsamplePropertyPointCount(t *testing.T) {
	// Property: output size is between 1 and input size for any positive
	// voxel size and non-empty cloud.
	f := func(seed uint64, sizeRaw float64) bool {
		size := math.Abs(math.Mod(sizeRaw, 2)) + 0.01
		c := cubeCloud(50, seed%1000+1)
		out, err := c.VoxelDownsample(size)
		if err != nil {
			return false
		}
		return out.Len() >= 1 && out.Len() <= c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
