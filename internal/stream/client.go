package stream

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is the device side: it ships frames and tracks the number of
// unacknowledged bytes in flight — the live uplink backlog Q(t) the
// depth controller observes. All state is local to the device, matching
// the paper's distributed-operation claim.
type Client struct {
	conn net.Conn

	mu           sync.Mutex
	sentBytes    uint64
	ackedBytes   uint64
	sentFrames   int
	ackedFrames  int
	allocatedBps float64
	regressions  int
	latencies    []time.Duration
	sendTimes    map[uint32]time.Time
	readErr      error

	done chan struct{}
}

// Dial connects to an edge server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	c := &Client{
		conn:      conn,
		sendTimes: make(map[uint32]time.Time),
		done:      make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop consumes acknowledgements until the connection closes.
func (c *Client) readLoop() {
	defer close(c.done)
	for {
		_, ack, err := ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		if ack == nil {
			continue
		}
		c.mu.Lock()
		c.ackedFrames++
		if ack.ServedBytes < c.ackedBytes {
			// The served counter is cumulative, so a regression is a
			// server-side accounting bug; count it for the soak tests
			// rather than silently rewinding the backlog estimate.
			c.regressions++
		} else {
			c.ackedBytes = ack.ServedBytes
		}
		c.allocatedBps = float64(ack.AllocatedBps)
		if sent, ok := c.sendTimes[ack.FrameID]; ok {
			//qarv:allow nondeterminism RTT measurement over a real socket is wall-clock by definition
			c.latencies = append(c.latencies, time.Since(sent))
			delete(c.sendTimes, ack.FrameID)
		}
		c.mu.Unlock()
	}
}

// SendFrame ships one frame. It returns immediately after the write; the
// acknowledgement arrives asynchronously.
func (c *Client) SendFrame(f Frame) error {
	c.mu.Lock()
	if err := c.readErr; err != nil && !errors.Is(err, net.ErrClosed) {
		c.mu.Unlock()
		return fmt.Errorf("stream: session broken: %w", err)
	}
	//qarv:allow nondeterminism RTT measurement over a real socket is wall-clock by definition
	c.sendTimes[f.ID] = time.Now()
	c.sentFrames++
	c.sentBytes += uint64(len(f.Payload))
	c.mu.Unlock()
	return WriteFrame(c.conn, f)
}

// BacklogBytes returns the bytes sent but not yet acknowledged — the
// device's local view of the uplink/service queue.
func (c *Client) BacklogBytes() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sentBytes < c.ackedBytes {
		return 0
	}
	return float64(c.sentBytes - c.ackedBytes)
}

// AllocatedBps returns the edge's most recently acknowledged allocation
// for this connection in bytes/second — the ack-carried backpressure
// signal (zero before the first ack, against an unpaced server, or from
// a protocol-v1 peer).
func (c *Client) AllocatedBps() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocatedBps
}

// Stats summarizes the session so far.
type ClientStats struct {
	SentFrames  int
	AckedFrames int
	SentBytes   uint64
	AckedBytes  uint64
	// AllocatedBps is the edge's most recently acked share for this
	// connection (see Client.AllocatedBps).
	AllocatedBps float64
	// AckRegressions counts acks whose cumulative ServedBytes went
	// backwards — always zero against a correct server.
	AckRegressions int
	// MeanLatency is the average send→ack round trip.
	MeanLatency time.Duration
	// MaxLatency is the worst round trip.
	MaxLatency time.Duration
}

// Stats returns a snapshot of the session counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClientStats{
		SentFrames:     c.sentFrames,
		AckedFrames:    c.ackedFrames,
		SentBytes:      c.sentBytes,
		AckedBytes:     c.ackedBytes,
		AllocatedBps:   c.allocatedBps,
		AckRegressions: c.regressions,
	}
	var sum time.Duration
	for _, l := range c.latencies {
		sum += l
		if l > st.MaxLatency {
			st.MaxLatency = l
		}
	}
	if len(c.latencies) > 0 {
		st.MeanLatency = sum / time.Duration(len(c.latencies))
	}
	return st
}

// Latencies returns a copy of every send→ack round trip recorded so
// far, for callers that need the full distribution (bench percentiles)
// rather than the mean/max summary in Stats.
func (c *Client) Latencies() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.latencies))
	copy(out, c.latencies)
	return out
}

// WaitForAcks blocks until all sent frames are acknowledged or the
// timeout expires; it reports whether the session fully drained.
func (c *Client) WaitForAcks(timeout time.Duration) bool {
	//qarv:allow nondeterminism drain timeout over a real socket is wall-clock by definition
	deadline := time.Now().Add(timeout)
	//qarv:allow nondeterminism drain timeout over a real socket is wall-clock by definition
	for time.Now().Before(deadline) {
		c.mu.Lock()
		drained := c.ackedFrames >= c.sentFrames
		c.mu.Unlock()
		if drained {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// Close shuts the connection down and waits for the reader to exit.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}
