// Package stream is the wire layer of a distributed qarv deployment: a
// device ships depth-controlled octree streams to an edge renderer over
// TCP and learns its uplink backlog from acknowledgements. The controller
// runs on the device against that backlog — the live, networked version
// of the paper's queue Q(t), demonstrating the "fully distributed, no
// side information" claim on a real socket rather than in the simulator.
//
// Wire format (all little-endian):
//
//	magic "QSTR" | version u8 | type u8 | length u32 | payload
//
//	type 1 (frame): frameID u32 | depth u8 | stream bytes
//	type 2 (ack):   frameID u32 | servedBytes u64 | allocatedBps u64
//
// Version 2 extended the ack with allocatedBps, the sender's current
// share of the edge's uplink budget in bytes/second — the ack-carried
// backpressure signal a device-side controller can calibrate against.
// Readers still accept version-1 messages, whose acks simply lack the
// field (AllocatedBps reads as zero); writers always emit version 2.
package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types.
const (
	msgFrame byte = 1
	msgAck   byte = 2
)

// Protocol versions. Writers emit ProtocolVersion; readers accept both.
const (
	protoV1         byte = 1
	ProtocolVersion byte = 2
)

// protocol limits: a frame payload is bounded to keep a hostile peer from
// forcing unbounded allocation, and reads above initialPayloadAlloc grow
// incrementally so a forged length field cannot pre-allocate 64 MiB from
// a ten-byte message.
const (
	maxPayload          = 64 << 20 // 64 MiB
	initialPayloadAlloc = 64 << 10 // grow-from-here cap for large reads
	headerLen           = 4 + 1 + 1 + 4
	frameMetaLen        = 4 + 1
	ackPayloadLenV1     = 4 + 8
	ackPayloadLen       = 4 + 8 + 8
)

var wireMagic = [4]byte{'Q', 'S', 'T', 'R'}

// Protocol errors; matchable with errors.Is.
var (
	ErrBadWireMagic   = errors.New("stream: bad wire magic")
	ErrBadVersion     = errors.New("stream: unsupported protocol version")
	ErrBadMessageType = errors.New("stream: unknown message type")
	ErrOversized      = errors.New("stream: payload exceeds protocol limit")
	ErrShortMessage   = errors.New("stream: truncated message")
)

// Frame is one AR frame on the wire.
type Frame struct {
	ID      uint32
	Depth   uint8
	Payload []byte // serialized octree stream (geometry + colors)
}

// Ack acknowledges a processed frame.
type Ack struct {
	FrameID     uint32
	ServedBytes uint64 // cumulative bytes the server has fully processed
	// AllocatedBps is the sender's current share of the edge's shared
	// uplink budget in bytes/second — zero on an unpaced server or in a
	// version-1 ack. Devices use it as the ack-carried backpressure
	// signal alongside the unacked-byte backlog.
	AllocatedBps uint64
}

// writeMessage frames and writes one message.
func writeMessage(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d bytes", ErrOversized, len(payload))
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, wireMagic[:]...)
	hdr = append(hdr, ProtocolVersion, msgType)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMessage reads one message and returns its version, type, and
// payload.
func readMessage(r io.Reader) (byte, byte, []byte, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err // io.EOF passes through for clean shutdown
	}
	if [4]byte(hdr[:4]) != wireMagic {
		return 0, 0, nil, ErrBadWireMagic
	}
	version := hdr[4]
	if version != protoV1 && version != ProtocolVersion {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	msgType := hdr[5]
	if msgType != msgFrame && msgType != msgAck {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrBadMessageType, msgType)
	}
	n := binary.LittleEndian.Uint32(hdr[6:])
	if n > maxPayload {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrShortMessage, err)
	}
	return version, msgType, payload, nil
}

// readPayload reads exactly n payload bytes. Small payloads are read
// into one allocation; larger claims grow as bytes actually arrive, so a
// peer that forges a huge length field but sends nothing costs at most
// initialPayloadAlloc, not maxPayload.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= initialPayloadAlloc {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	var buf bytes.Buffer
	buf.Grow(initialPayloadAlloc)
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFrame sends a frame message.
func WriteFrame(w io.Writer, f Frame) error {
	payload := make([]byte, 0, frameMetaLen+len(f.Payload))
	payload = binary.LittleEndian.AppendUint32(payload, f.ID)
	payload = append(payload, f.Depth)
	payload = append(payload, f.Payload...)
	return writeMessage(w, msgFrame, payload)
}

// WriteAck sends an acknowledgement.
func WriteAck(w io.Writer, a Ack) error {
	payload := make([]byte, 0, ackPayloadLen)
	payload = binary.LittleEndian.AppendUint32(payload, a.FrameID)
	payload = binary.LittleEndian.AppendUint64(payload, a.ServedBytes)
	payload = binary.LittleEndian.AppendUint64(payload, a.AllocatedBps)
	return writeMessage(w, msgAck, payload)
}

// ReadMessage reads the next frame or ack; exactly one of the returns is
// non-nil on success.
func ReadMessage(r io.Reader) (*Frame, *Ack, error) {
	version, msgType, payload, err := readMessage(r)
	if err != nil {
		return nil, nil, err
	}
	switch msgType {
	case msgFrame:
		if len(payload) < frameMetaLen {
			return nil, nil, ErrShortMessage
		}
		return &Frame{
			ID:      binary.LittleEndian.Uint32(payload),
			Depth:   payload[4],
			Payload: payload[frameMetaLen:],
		}, nil, nil
	case msgAck:
		a := &Ack{}
		switch {
		case version == protoV1 && len(payload) == ackPayloadLenV1:
			// Version 1 acks predate the allocated-rate field.
		case version == ProtocolVersion && len(payload) == ackPayloadLen:
			a.AllocatedBps = binary.LittleEndian.Uint64(payload[12:])
		default:
			return nil, nil, ErrShortMessage
		}
		a.FrameID = binary.LittleEndian.Uint32(payload)
		a.ServedBytes = binary.LittleEndian.Uint64(payload[4:])
		return nil, a, nil
	default:
		return nil, nil, ErrBadMessageType
	}
}
