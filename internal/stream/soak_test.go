package stream

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"qarv/internal/alloc"
	"qarv/internal/obs"
)

// waitGoroutines polls until the goroutine count falls back to at most
// base+slack, failing the test otherwise — the leak check every
// shutdown test runs.
func waitGoroutines(t *testing.T, base int, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}

// TestSoakFleetConservation is the N-devices × M-frames soak: many
// concurrent sessions against one budget-multiplexed server, asserting
// per-connection ack monotonicity (cumulative ServedBytes never goes
// backwards), byte conservation at drain (bytes sent == bytes acked on
// every session, and the server's served == acked == the fleet total),
// and a clean goroutine teardown. Run under -race in CI.
func TestSoakFleetConservation(t *testing.T) {
	const (
		devices      = 12
		framesPerDev = 40
	)
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    32e6,
		Allocator: &alloc.ProportionalBacklog{ReserveFraction: 0.2},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, devices)
	var totalBytes, totalFrames int64
	var mu sync.Mutex
	for dev := 0; dev < devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			var sent int64
			for i := 0; i < framesPerDev; i++ {
				// Vary payload sizes so backlogs differ across devices
				// and the proportional allocator has real work to do.
				payload := make([]byte, 512*(1+(dev+i)%7))
				if err := client.SendFrame(Frame{ID: uint32(i), Depth: 8, Payload: payload}); err != nil {
					errCh <- fmt.Errorf("device %d frame %d: %w", dev, i, err)
					return
				}
				sent += int64(len(payload))
			}
			if !client.WaitForAcks(30 * time.Second) {
				errCh <- fmt.Errorf("device %d did not drain", dev)
				return
			}
			st := client.Stats()
			if st.AckRegressions != 0 {
				errCh <- fmt.Errorf("device %d saw %d ack regressions", dev, st.AckRegressions)
				return
			}
			if st.AckedBytes != uint64(sent) || st.SentBytes != uint64(sent) {
				errCh <- fmt.Errorf("device %d conservation broken: sent %d, acked %d", dev, st.SentBytes, st.AckedBytes)
				return
			}
			if q := client.BacklogBytes(); q != 0 {
				errCh <- fmt.Errorf("device %d drained with backlog %v", dev, q)
				return
			}
			if st.AllocatedBps <= 0 {
				errCh <- fmt.Errorf("device %d never observed an allocated share", dev)
				return
			}
			mu.Lock()
			totalBytes += sent
			totalFrames += framesPerDev
			mu.Unlock()
		}(dev)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	ss := srv.Stats()
	if ss.BytesServed != uint64(totalBytes) || ss.BytesAcked != uint64(totalBytes) {
		t.Errorf("server conservation: served %d, acked %d, fleet sent %d", ss.BytesServed, ss.BytesAcked, totalBytes)
	}
	if ss.FramesServed != int(totalFrames) || ss.AckFailures != 0 {
		t.Errorf("server frames: %+v, fleet sent %d", ss, totalFrames)
	}
	if got := reg.Counter(MetricBytesAcked).Value(); got != totalBytes {
		t.Errorf("%s = %d, want %d", MetricBytesAcked, got, totalBytes)
	}
	if reg.Histogram(MetricAllocShare).Count() == 0 {
		t.Errorf("allocator-share series empty despite a paced fleet")
	}
	if peak := reg.Gauge(MetricSessionsPeak).Value(); peak < 1 || peak > devices {
		t.Errorf("sessions peak %v out of range [1,%d]", peak, devices)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, baseline, 3)
}

// TestCloseDuringActiveTrafficNoLeak floods a paced server from many
// devices and closes it mid-traffic: Close must return promptly (no
// handler deadlock even with frames mid-pace) and every server
// goroutine must exit.
func TestCloseDuringActiveTrafficNoLeak(t *testing.T) {
	const devices = 8
	baseline := runtime.NumGoroutine()
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    100_000, // tight: frames queue up and pace slowly
		Allocator: alloc.EqualSplit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for dev := 0; dev < devices; dev++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				return
			}
			defer client.Close()
			payload := make([]byte, 4096)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := client.SendFrame(Frame{ID: uint32(i), Payload: payload}); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let traffic build against the tight budget
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked during active traffic")
	}
	close(stop)
	wg.Wait()
	if err := srv.Wait(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Wait = %v", err)
	}
	waitGoroutines(t, baseline, 3)
}

// TestDrainServesQueuedFrames: Drain must stop accepting immediately
// but let already-shipped frames finish serving within the deadline.
func TestDrainServesQueuedFrames(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    2e6,
		Allocator: alloc.EqualSplit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const frames = 10
	payload := make([]byte, 20_000) // 200 KB total ≈ 100 ms of service
	for i := 0; i < frames; i++ {
		if err := client.SendFrame(Frame{ID: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(10 * time.Second) }()
	// The listener must be gone promptly even while serving continues.
	dialDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err != nil {
			break
		}
		if time.Now().After(dialDeadline) {
			t.Fatal("drain never stopped accepting connections")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !client.WaitForAcks(10 * time.Second) {
		t.Fatal("queued frames were not served during drain")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ss := srv.Stats()
	if ss.FramesAcked != frames || ss.BytesAcked != uint64(frames*len(payload)) {
		t.Errorf("drain lost frames: %+v", ss)
	}
	if err := srv.Wait(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Wait after drain = %v, want ErrServerClosed", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Close after drain = %v, want ErrServerClosed", err)
	}
}

// TestDrainDeadlineCutsSlowSessions: a backlog that cannot be served
// within the drain deadline is cut, and Drain still returns promptly.
func TestDrainDeadlineCutsSlowSessions(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    20_000, // 100 KB of backlog ≈ 5 s of service
		Allocator: alloc.EqualSplit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 10_000)
	for i := 0; i < 10; i++ {
		if err := client.SendFrame(Frame{ID: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := srv.Drain(300 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("drain with a 300ms deadline took %v", took)
	}
	ss := srv.Stats()
	if ss.FramesServed >= 10 {
		t.Errorf("deadline did not cut the slow session: %+v", ss)
	}
}

// TestMaxConnsSheds: connections beyond the cap are closed immediately
// and counted; admitted sessions keep working.
func TestMaxConnsSheds(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", ServerConfig{MaxConns: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conns := make([]net.Conn, 0, 4)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ss := srv.Stats()
		if ss.Shed == 2 && ss.Live == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ss := srv.Stats()
	if ss.Shed != 2 || ss.Live != 2 {
		t.Fatalf("after 4 dials with MaxConns=2: %+v", ss)
	}
	if got := reg.Counter(MetricShed).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricShed, got)
	}
	// Shed connections are dead: a read hits EOF promptly.
	sawDead := 0
	for _, c := range conns {
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, _, err := ReadMessage(c); err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				sawDead++
			}
		}
	}
	if sawDead < 2 {
		t.Errorf("only %d of the shed connections read as closed", sawDead)
	}
}

// TestIdleTimeoutDropsSilentConnections: a device that stops sending is
// dropped after IdleTimeout, freeing its session slot.
func TestIdleTimeoutDropsSilentConnections(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadMessage(conn); err == nil {
		t.Fatal("idle connection was never dropped")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Live == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("idle session still registered: %+v", srv.Stats())
}

// TestAckFailureDistinguishesServedFromAcked is the regression test for
// the ack-path accounting gap: when a device disappears mid-service
// (half-closed connection), the frame's service cost is still counted
// as served, but the acked counters must not advance and the failure
// must be visible in its own series.
func TestAckFailureDistinguishesServedFromAcked(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    50_000, // a 20 KB frame takes ~400 ms to serve
		Allocator: alloc.EqualSplit{},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 20_000)
	if err := WriteFrame(conn, Frame{ID: 1, Depth: 8, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	// Give the server time to read the frame into its queue, then
	// vanish with an RST so the eventual ack write fails outright.
	time.Sleep(50 * time.Millisecond)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ss := srv.Stats()
		if ss.FramesServed == 1 && ss.AckFailures == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ss := srv.Stats()
	if ss.FramesServed != 1 || ss.BytesServed != uint64(len(payload)) {
		t.Fatalf("frame was not served: %+v", ss)
	}
	if ss.FramesAcked != 0 || ss.BytesAcked != 0 {
		t.Errorf("acked counters advanced past a failed ack: %+v", ss)
	}
	if ss.AckFailures != 1 {
		t.Errorf("ack failure not counted: %+v", ss)
	}
	if got := reg.Counter(MetricAckFailures).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricAckFailures, got)
	}
	if got, want := reg.Counter(MetricBytes).Value(), int64(len(payload)); got != want {
		t.Errorf("%s = %d, want %d", MetricBytes, got, want)
	}
	if got := reg.Counter(MetricBytesAcked).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricBytesAcked, got)
	}
}

// TestBudgetSplitsAcrossConnections: with a shared budget and equal
// split, K concurrent identical sessions each observe roughly budget/K
// in their acks — the ack-carried backpressure signal.
func TestBudgetSplitsAcrossConnections(t *testing.T) {
	const budget = 4e6
	const devices = 4
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Budget:    budget,
		Allocator: alloc.EqualSplit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	shares := make([]float64, devices)
	errCh := make(chan error, devices)
	for dev := 0; dev < devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			payload := make([]byte, 8192)
			for i := 0; i < 20; i++ {
				if err := client.SendFrame(Frame{ID: uint32(i), Payload: payload}); err != nil {
					errCh <- err
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !client.WaitForAcks(30 * time.Second) {
				errCh <- fmt.Errorf("device %d did not drain", dev)
				return
			}
			shares[dev] = client.AllocatedBps()
		}(dev)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for dev, share := range shares {
		if share < budget/devices*0.5 || share > budget {
			t.Errorf("device %d share %v implausible for budget %v / %d devices", dev, share, budget, devices)
		}
	}
}
