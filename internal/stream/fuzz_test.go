package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// seedMessages returns representative wire messages for the fuzz corpus:
// valid v2 frames and acks, a legacy v1 ack, and the classic malformed
// shapes (bad magic, bad version, bad type, oversized length, truncated
// payload, huge claimed length with no body).
func seedMessages() [][]byte {
	var frame bytes.Buffer
	if err := WriteFrame(&frame, Frame{ID: 7, Depth: 9, Payload: []byte("octree bits")}); err != nil {
		panic(err)
	}
	var ack bytes.Buffer
	if err := WriteAck(&ack, Ack{FrameID: 7, ServedBytes: 4096, AllocatedBps: 250_000}); err != nil {
		panic(err)
	}
	// A protocol-v1 ack: 12-byte payload, no allocated rate.
	v1ack := []byte("QSTR\x01\x02\x0c\x00\x00\x00")
	v1ack = binary.LittleEndian.AppendUint32(v1ack, 7)
	v1ack = binary.LittleEndian.AppendUint64(v1ack, 4096)
	var empty bytes.Buffer
	if err := WriteFrame(&empty, Frame{ID: 0, Depth: 0, Payload: nil}); err != nil {
		panic(err)
	}
	return [][]byte{
		frame.Bytes(),
		ack.Bytes(),
		v1ack,
		empty.Bytes(),
		[]byte("XXXX\x02\x01\x00\x00\x00\x00"),             // bad magic
		[]byte("QSTR\x07\x01\x00\x00\x00\x00"),             // bad version
		[]byte("QSTR\x02\x09\x00\x00\x00\x00"),             // bad type
		[]byte("QSTR\x02\x01\xff\xff\xff\xff"),             // oversized length
		[]byte("QSTR\x02\x01\xff\xff\xff\x03"),             // huge claimed length, no body
		frame.Bytes()[:len(frame.Bytes())-3],               // truncated payload
		[]byte("QSTR\x02\x02\x05\x00\x00\x00\x01\x02\x03"), // short ack
	}
}

// FuzzReadMessage drives the wire decoder with arbitrary bytes. The
// invariants: never panic, never allocate beyond the bytes actually
// present, exactly one of (frame, ack) on success, and every decoded
// message re-encodes byte-identically when the input was version-2 wire
// (v1 acks re-encode as v2, which must itself round-trip).
func FuzzReadMessage(f *testing.F) {
	for _, seed := range seedMessages() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, ack, err := ReadMessage(r)
		if err != nil {
			if frame != nil || ack != nil {
				t.Fatalf("non-nil message alongside error %v", err)
			}
			return
		}
		if (frame == nil) == (ack == nil) {
			t.Fatalf("want exactly one of frame/ack, got %v %v", frame, ack)
		}
		consumed := len(data) - r.Len()
		if frame != nil && len(frame.Payload) > consumed {
			t.Fatalf("frame payload %d bytes from %d consumed input", len(frame.Payload), consumed)
		}

		// Re-encode and require byte-identity with the consumed prefix
		// for version-2 input.
		var buf bytes.Buffer
		if frame != nil {
			if err := WriteFrame(&buf, *frame); err != nil {
				t.Fatalf("re-encode frame: %v", err)
			}
		} else {
			if err := WriteAck(&buf, *ack); err != nil {
				t.Fatalf("re-encode ack: %v", err)
			}
		}
		if data[4] == ProtocolVersion && !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("v2 round trip not byte-identical:\nin  %x\nout %x", data[:consumed], buf.Bytes())
		}

		// The re-encoding must itself decode to an equal message.
		frame2, ack2, err := ReadMessage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		switch {
		case frame != nil:
			if frame2 == nil || frame2.ID != frame.ID || frame2.Depth != frame.Depth || !bytes.Equal(frame2.Payload, frame.Payload) {
				t.Fatalf("frame round trip mismatch: %+v vs %+v", frame, frame2)
			}
		default:
			if ack2 == nil || *ack2 != *ack {
				t.Fatalf("ack round trip mismatch: %+v vs %+v", ack, ack2)
			}
		}
	})
}
