package stream

import (
	"bytes"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/octree"
	"qarv/internal/quality"
	"qarv/internal/synthetic"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{ID: 42, Depth: 9, Payload: []byte("octree bits")}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteAck(&buf, Ack{FrameID: 42, ServedBytes: 1234}); err != nil {
		t.Fatal(err)
	}
	f, a, err := ReadMessage(&buf)
	if err != nil || a != nil || f == nil {
		t.Fatalf("first message: %v %v %v", f, a, err)
	}
	if f.ID != 42 || f.Depth != 9 || string(f.Payload) != "octree bits" {
		t.Errorf("frame = %+v", f)
	}
	f, a, err = ReadMessage(&buf)
	if err != nil || f != nil || a == nil {
		t.Fatalf("second message: %v %v %v", f, a, err)
	}
	if a.FrameID != 42 || a.ServedBytes != 1234 {
		t.Errorf("ack = %+v", a)
	}
}

func TestWireErrors(t *testing.T) {
	if _, _, err := ReadMessage(bytes.NewReader([]byte("XXXX\x01\x01\x00\x00\x00\x00"))); !errors.Is(err, ErrBadWireMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, _, err := ReadMessage(bytes.NewReader([]byte("QSTR\x07\x01\x00\x00\x00\x00"))); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	if _, _, err := ReadMessage(bytes.NewReader([]byte("QSTR\x01\x09\x00\x00\x00\x00"))); !errors.Is(err, ErrBadMessageType) {
		t.Errorf("bad type: %v", err)
	}
	// Oversized length field.
	big := []byte("QSTR\x01\x01\xff\xff\xff\xff")
	if _, _, err := ReadMessage(bytes.NewReader(big)); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized: %v", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{ID: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := ReadMessage(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrShortMessage) {
		t.Errorf("truncated: %v", err)
	}
	// Oversized write is refused client-side.
	if err := writeMessage(&bytes.Buffer{}, msgFrame, make([]byte, maxPayload+1)); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized write: %v", err)
	}
}

// testOctree builds a small real octree whose streams the session ships.
func testOctree(t *testing.T) *octree.Octree {
	t.Helper()
	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: 8000, CaptureDepth: 8, Seed: 12,
	}, synthetic.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := octree.Build(cloud, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSessionDeliversAndAcks(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tree := testOctree(t)
	payload, err := tree.SerializeWithColorsBytes(6)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 20
	for i := 0; i < frames; i++ {
		if err := client.SendFrame(Frame{ID: uint32(i), Depth: 6, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if !client.WaitForAcks(5 * time.Second) {
		t.Fatal("session did not drain")
	}
	st := client.Stats()
	if st.AckedFrames != frames || st.SentFrames != frames {
		t.Errorf("stats = %+v", st)
	}
	if st.AckedBytes != uint64(frames*len(payload)) {
		t.Errorf("acked bytes = %d, want %d", st.AckedBytes, frames*len(payload))
	}
	if client.BacklogBytes() != 0 {
		t.Errorf("drained backlog = %v", client.BacklogBytes())
	}
	ss := srv.Stats()
	if ss.FramesServed != frames || ss.BytesServed != uint64(frames*len(payload)) || ss.Corrupt != 0 {
		t.Errorf("server stats: %+v", ss)
	}
	if ss.FramesAcked != frames || ss.BytesAcked != ss.BytesServed || ss.AckFailures != 0 {
		t.Errorf("served/acked diverged on a healthy session: %+v", ss)
	}
	if st.MeanLatency <= 0 || st.MaxLatency < st.MeanLatency {
		t.Errorf("latencies: %+v", st)
	}
}

func TestServerDropsCorruptFrames(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tree := testOctree(t)
	good, err := tree.SerializeWithColorsBytes(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendFrame(Frame{ID: 0, Depth: 5, Payload: good}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendFrame(Frame{ID: 1, Depth: 5, Payload: []byte("garbage stream")}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendFrame(Frame{ID: 2, Depth: 5, Payload: good}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ss := srv.Stats(); ss.FramesServed == 2 && ss.Corrupt == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	ss := srv.Stats()
	t.Fatalf("server stats after corrupt frame: frames=%d corrupt=%d", ss.FramesServed, ss.Corrupt)
}

func TestControllerAdaptsToSlowServer(t *testing.T) {
	// The live loop: a paced server (limited bytes/sec) and a device
	// sending frames as fast as acks allow its backlog estimate to be
	// meaningful. The controller must shed depth as unacked bytes pile
	// up, and the session must stay bounded.
	tree := testOctree(t)
	bytesProfile, err := tree.StreamSizeProfile(true)
	if err != nil {
		t.Fatal(err)
	}
	occupancy := tree.Profile()
	util, err := quality.NewLogPointUtility(occupancy)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := delay.NewPointCostModel(bytesProfile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	depths := []int{4, 5, 6, 7, 8}
	// Server throughput: between bytes(7) and bytes(8) per frame period.
	framePeriod := 5 * time.Millisecond
	perFrameBudget := float64(bytesProfile[7]) + 0.5*float64(bytesProfile[8]-bytesProfile[7])
	bytesPerSecond := perFrameBudget * float64(time.Second/framePeriod)

	cfg := core.Config{Depths: depths, Utility: util, Cost: cost}
	v, err := core.CalibrateV(10, perFrameBudget, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.V = v
	ctrl, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := Serve("127.0.0.1:0", ServerConfig{Budget: bytesPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payloads := make(map[int][]byte, len(depths))
	for _, d := range depths {
		p, err := tree.SerializeWithColorsBytes(d)
		if err != nil {
			t.Fatal(err)
		}
		payloads[d] = p
	}

	const frames = 120
	chosen := make([]int, 0, frames)
	for i := 0; i < frames; i++ {
		q := client.BacklogBytes()
		d := ctrl.Decide(i, q)
		chosen = append(chosen, d)
		if err := client.SendFrame(Frame{ID: uint32(i), Depth: uint8(d), Payload: payloads[d]}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(framePeriod)
	}
	if !client.WaitForAcks(15 * time.Second) {
		t.Fatal("live session did not drain")
	}
	// The controller must have started at max depth and backed off at
	// least once as the real backlog built.
	if chosen[0] != 8 {
		t.Errorf("first decision = %d, want 8", chosen[0])
	}
	backedOff := false
	for _, d := range chosen {
		if d < 8 {
			backedOff = true
			break
		}
	}
	if !backedOff {
		t.Errorf("controller never backed off against the paced server: %v", histogram(chosen))
	}
	// Backlog at the end of sending must be bounded well below the
	// everything-at-max total.
	maxTotal := float64(frames * bytesProfile[8])
	if q := client.BacklogBytes(); q > maxTotal/4 {
		t.Errorf("final backlog %v suspiciously close to unbounded growth", q)
	}
}

func histogram(xs []int) string {
	h := map[int]int{}
	for _, x := range xs {
		h[x]++
	}
	out := ""
	for d := 0; d <= 10; d++ {
		if h[d] > 0 {
			out += strconv.Itoa(d) + ":" + strconv.Itoa(h[d]) + " "
		}
	}
	return out
}

func TestServerCloseUnblocksHandlers(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Handler is blocked reading; Close must return promptly anyway.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server close hung on a blocked handler")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to a dead port must error")
	}
}

func TestServerCloseReportsErrServerClosed(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// Wait distinguishes a clean caller-initiated shutdown.
	if err := srv.Wait(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Wait after clean close = %v, want ErrServerClosed", err)
	}
	// Repeat closes are idempotent and identify the closed state.
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("second close = %v, want ErrServerClosed", err)
	}
}

func TestServerCloseRacesNewConnections(t *testing.T) {
	// Connections keep arriving while Close runs: the restructured
	// handler registration must never trip the WaitGroup (all Adds
	// happen on goroutines whose own entries are still held), and Close
	// must still return promptly. Run with -race to check the old
	// Add-vs-Wait hazard.
	srv, err := Serve("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	stop := make(chan struct{})
	var dialers sync.WaitGroup
	for i := 0; i < 8; i++ {
		dialers.Add(1)
		go func() {
			defer dialers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := Dial(addr)
				if err != nil {
					return // listener gone: server closing
				}
				_ = c.SendFrame(Frame{ID: 1, Payload: []byte("x")})
				c.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close hung while connections raced in")
	}
	close(stop)
	dialers.Wait()
	if err := srv.Wait(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Wait = %v", err)
	}
}
