package stream

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qarv/internal/alloc"
	"qarv/internal/obs"
	"qarv/internal/octree"
)

// ServerConfig controls the edge service.
type ServerConfig struct {
	// Budget is the shared uplink service budget in bytes/second,
	// multiplexed across all live connections by Allocator. 0 = unpaced
	// (every frame is served and acked immediately).
	//
	// This replaces the PR 1–8 BytesPerSecond field, which paced every
	// connection independently at the full rate; see MIGRATION.md.
	Budget float64
	// Allocator splits Budget across the live connections, re-run every
	// allocEvery tick and on every connect/disconnect with each
	// connection's received-but-unserved bytes as its backlog. Nil
	// defaults to alloc.EqualSplit. The server serializes all Allocate
	// calls, so the single-goroutine allocator contract holds.
	Allocator alloc.Allocator
	// MaxConns caps concurrently admitted connections; arrivals beyond
	// the cap are shed (closed immediately after accept, counted in
	// Stats().Shed and stream_shed_total). 0 = unlimited.
	MaxConns int
	// IdleTimeout drops a connection whose next frame does not arrive in
	// time — per-connection read deadlines so dead devices cannot pin
	// session slots. 0 = no idle limit.
	IdleTimeout time.Duration
	// Validate decodes every received stream and rejects corrupt frames.
	Validate bool
	// Metrics receives the stream_* counters (connections, frames,
	// bytes, corrupt frames, acks, ack failures, sheds, backpressure
	// stalls, allocator shares). Nil disables metric collection. Serve
	// it with obs.Handler or obs.NewDebugMux.
	Metrics *obs.Registry
	// Recorder receives connection-lifecycle and stall records. This is
	// the live wire, so records are stamped with wall-clock microseconds
	// since server start rather than virtual slots.
	Recorder *obs.FlightRecorder
}

// Edge-service tuning constants.
const (
	// allocEvery is the reallocation period: how often the allocator
	// re-splits Budget across live connections between membership
	// changes (which reallocate immediately).
	allocEvery = 10 * time.Millisecond
	// recvQueueDepth bounds each connection's received-but-unserved
	// frame queue. A full queue stops that connection's read loop, so
	// backpressure propagates into the kernel socket buffer and from
	// there to the device's writes — the live analogue of a bounded
	// uplink queue.
	recvQueueDepth = 64
	// paceSlice caps one pacing sleep, so share changes from the
	// allocator and drain deadlines take effect promptly mid-frame.
	paceSlice = 50 * time.Millisecond
)

// ErrServerClosed reports a clean, caller-initiated shutdown: Wait
// returns it after Close or Drain, and Close itself returns it when
// called again on an already-closed server — mirroring net/http's
// convention so callers can distinguish orderly teardown from accept
// failures.
var ErrServerClosed = errors.New("stream: server closed")

// ServerStats is a snapshot of the server's cumulative counters. Served
// and acked diverge when an acknowledgement write fails: the frame's
// service cost was paid (FramesServed/BytesServed) but the device never
// learned it (FramesAcked/BytesAcked stay behind, AckFailures counts
// the loss).
type ServerStats struct {
	FramesServed int
	BytesServed  uint64
	FramesAcked  int
	BytesAcked   uint64
	AckFailures  int
	Corrupt      int
	Shed         int
	// Live is the number of currently admitted connections.
	Live int
}

// session is the per-connection state the edge service keeps: identity,
// the received-but-unserved byte backlog the allocator observes, and the
// connection's current share of the uplink budget.
type session struct {
	id      int64
	pending atomic.Int64  // bytes read off the socket but not yet served
	share   atomic.Uint64 // math.Float64bits of allocated bytes/second
}

// shareBps returns the session's current allocated rate in bytes/second.
func (ss *session) shareBps() float64 { return math.Float64frombits(ss.share.Load()) }

// setShare stores a new allocated rate.
func (ss *session) setShare(v float64) { ss.share.Store(math.Float64bits(v)) }

// Server is the edge-side service: it accepts device connections,
// multiplexes the shared uplink budget across them through the
// configured allocator, paces each connection at its allocated share,
// and acknowledges every served frame with the cumulative served byte
// count and the connection's current share.
type Server struct {
	cfg       ServerConfig
	allocator alloc.Allocator
	ln        net.Listener
	stop      chan struct{} // closed on Close (and at the end of Drain)
	stopOnce  sync.Once
	drainCh   chan struct{} // closed when Drain begins
	drainOnce sync.Once
	drainKill chan struct{} // closed when the drain deadline passes
	wg        sync.WaitGroup
	tickWg    sync.WaitGroup
	done      chan struct{} // closed when the accept loop exits
	tel       *serverTelemetry
	start     time.Time    // server start, base for flight-record stamps
	connSeq   atomic.Int64 // connection ids for flight-record tracks
	drainAt   atomic.Int64 // drain deadline, unix nanos; 0 = not draining

	mu           sync.Mutex
	closed       bool
	loopErr      error // why the accept loop exited
	framesServed int
	bytesServed  uint64
	framesAcked  int
	bytesAcked   uint64
	ackFailSeen  int
	corruptSeen  int
	shedSeen     int

	sessMu     sync.Mutex
	sessions   []*session // live connections in admission order
	allocEpoch int        // the t passed to Allocate
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	al := cfg.Allocator
	if al == nil {
		al = alloc.EqualSplit{}
	}
	s := &Server{
		cfg:       cfg,
		allocator: al,
		ln:        ln,
		stop:      make(chan struct{}),
		drainCh:   make(chan struct{}),
		drainKill: make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.tel = newServerTelemetry(cfg.Metrics, cfg.Recorder)
	//qarv:allow nondeterminism live-server trace timestamps are wall-clock by design
	s.start = time.Now()
	if cfg.Budget > 0 {
		s.tickWg.Add(1)
		go s.allocLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Allocator returns the allocator multiplexing the uplink budget.
func (s *Server) Allocator() alloc.Allocator { return s.allocator }

// Stats reports a snapshot of the cumulative counters.
func (s *Server) Stats() ServerStats {
	s.sessMu.Lock()
	live := len(s.sessions)
	s.sessMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		FramesServed: s.framesServed,
		BytesServed:  s.bytesServed,
		FramesAcked:  s.framesAcked,
		BytesAcked:   s.bytesAcked,
		AckFailures:  s.ackFailSeen,
		Corrupt:      s.corruptSeen,
		Shed:         s.shedSeen,
		Live:         live,
	}
}

// Close stops accepting, closes the listener, unblocks every handler
// immediately (in-service frames are abandoned), and waits for all
// connection handlers to exit. The first call returns the listener's
// close error (nil on a clean shutdown); subsequent calls return
// ErrServerClosed. For a shutdown that lets queued frames finish, use
// Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.ln.Close()
	s.wg.Wait()
	s.tickWg.Wait()
	return err
}

// Drain shuts the server down gracefully: it stops accepting new
// connections at once, lets every admitted connection finish the frames
// it has already shipped (reads and pacing continue), and bounds the
// whole wind-down by timeout — when the deadline passes, remaining
// connections are cut exactly as Close would. Drain returns the
// listener's close error after all handlers have exited; a subsequent
// Close returns ErrServerClosed and Wait reports ErrServerClosed.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	s.mu.Unlock()
	//qarv:allow nondeterminism drain deadlines on a live server are wall-clock by design
	deadline := time.Now().Add(timeout)
	s.drainAt.Store(deadline.UnixNano())
	s.drainOnce.Do(func() { close(s.drainCh) })
	kill := time.AfterFunc(timeout, func() { close(s.drainKill) })
	err := s.ln.Close()
	s.wg.Wait()
	kill.Stop()
	s.stopOnce.Do(func() { close(s.stop) })
	s.tickWg.Wait()
	if tel := s.tel; tel != nil {
		tel.rec.Event(s.sinceMicros(), "stream", "drained", 0, 0)
	}
	return err
}

// Wait blocks until the accept loop has exited and reports why:
// ErrServerClosed after a clean Close or Drain, or the fatal accept
// error that tore the loop down.
func (s *Server) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loopErr
}

// closing reports whether Close or Drain has been initiated.
func (s *Server) closing() bool {
	select {
	case <-s.stop:
		return true
	default:
	}
	select {
	case <-s.drainCh:
		return true
	default:
	}
	return false
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing() {
				// Caller-initiated shutdown (Close or Drain).
				s.mu.Lock()
				s.loopErr = ErrServerClosed
				s.mu.Unlock()
				return
			}
			if errors.Is(err, net.ErrClosed) {
				// Listener died without Close: a real failure.
				s.mu.Lock()
				s.loopErr = err
				s.mu.Unlock()
				return
			}
			// Transient accept error: keep serving.
			continue
		}
		// Add happens on the accept-loop goroutine, whose own wg entry
		// (taken in Serve) is still held — so the counter can never be
		// observed at zero by a concurrent Close/Wait while handlers
		// are still being registered.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// allocLoop periodically re-runs the allocator over the live sessions so
// shares track each connection's observed backlog between membership
// changes.
func (s *Server) allocLoop() {
	defer s.tickWg.Done()
	ticker := time.NewTicker(allocEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.sessMu.Lock()
			s.reallocateLocked()
			s.sessMu.Unlock()
		}
	}
}

// reallocateLocked re-splits the budget across the current sessions;
// the caller holds sessMu. Sessions are walked in admission order, so
// order-sensitive allocators (weighted round-robin rotation) see a
// stable indexing between membership changes.
func (s *Server) reallocateLocked() {
	n := len(s.sessions)
	if n == 0 || s.cfg.Budget <= 0 {
		return
	}
	backlogs := make([]float64, n)
	shares := make([]float64, n)
	for i, ss := range s.sessions {
		backlogs[i] = float64(ss.pending.Load())
	}
	s.allocator.Allocate(s.allocEpoch, s.cfg.Budget, backlogs, shares)
	s.allocEpoch++
	for i, ss := range s.sessions {
		ss.setShare(shares[i])
		if tel := s.tel; tel != nil {
			tel.allocShare.Observe(shares[i])
		}
	}
}

// register admits a new connection into the session set, or reports a
// shed when the connection limit is reached.
func (s *Server) register(id int64) *session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns {
		return nil
	}
	ss := &session{id: id}
	s.sessions = append(s.sessions, ss)
	s.reallocateLocked()
	if tel := s.tel; tel != nil {
		tel.sessionsPeak.Record(float64(len(s.sessions)))
	}
	return ss
}

// unregister removes a departed connection and re-splits the budget
// across the survivors.
func (s *Server) unregister(ss *session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for i, x := range s.sessions {
		if x == ss {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	s.reallocateLocked()
}

// sinceMicros returns wall-clock microseconds since server start — the
// Slot stamp for this package's flight records. The simulator records
// virtual slots; a live server has no slot clock, so traces use real
// time and are diagnostics only, never part of a deterministic report.
func (s *Server) sinceMicros() int64 {
	//qarv:allow nondeterminism live-server trace timestamps are wall-clock by design
	return time.Since(s.start).Microseconds()
}

// handle processes one device connection until EOF, idle timeout, or
// shutdown.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	connID := s.connSeq.Add(1)
	ss := s.register(connID)
	if ss == nil {
		// Accept-queue shedding: over the connection limit, the cheapest
		// honest signal is an immediate close — the device's next read
		// or write fails and its controller backs off or re-dials.
		s.mu.Lock()
		s.shedSeen++
		s.mu.Unlock()
		if tel := s.tel; tel != nil {
			tel.shed.Inc()
			tel.rec.Event(s.sinceMicros(), "stream", "shed", connID, 0)
		}
		return
	}
	defer s.unregister(ss)
	var served uint64
	if tel := s.tel; tel != nil {
		tel.connections.Inc()
		tel.rec.Event(s.sinceMicros(), "stream", "accept", connID, 0)
		defer func() {
			tel.rec.Event(s.sinceMicros(), "stream", "close", connID, float64(served))
		}()
	}
	// A watcher unblocks the read loop on shutdown by expiring the
	// connection deadline — immediately on Close, at the drain deadline
	// on Drain. Its lifetime is strictly inside handle's (we join it
	// before returning), so it needs no WaitGroup entry of its own — the
	// handler's entry covers it, and no Add can race Wait.
	done := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-s.stop:
			//qarv:allow nondeterminism immediate deadline is the idiomatic way to unblock a live socket read
			conn.SetDeadline(time.Now())
		case <-s.drainCh:
			conn.SetDeadline(time.Unix(0, s.drainAt.Load()))
			select {
			case <-s.stop:
				//qarv:allow nondeterminism immediate deadline is the idiomatic way to unblock a live socket read
				conn.SetDeadline(time.Now())
			case <-done:
			}
		case <-done:
		}
	}()
	defer func() {
		close(done)
		<-watcherDone
	}()

	// The read and serve halves are decoupled by a bounded frame queue:
	// the reader pulls frames off the socket as fast as the queue
	// accepts them (building the backlog signal the allocator observes),
	// while the serve loop paces each frame at the session's allocated
	// share and acks it.
	queue := make(chan *Frame, recvQueueDepth)
	quit := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(queue)
		s.readLoop(conn, ss, queue, quit, connID)
	}()
	served = s.serveLoop(conn, ss, queue, connID)
	close(quit)
	_ = conn.Close() // unblock a reader still mid-Read; already-closed is fine
	<-readerDone
}

// readLoop pulls frames off the socket into the session queue until the
// connection errors (EOF, deadline, protocol violation) or quit closes.
func (s *Server) readLoop(conn net.Conn, ss *session, queue chan<- *Frame, quit <-chan struct{}, connID int64) {
	for {
		if s.cfg.IdleTimeout > 0 {
			//qarv:allow nondeterminism idle timeouts on a live socket are wall-clock by definition
			deadline := time.Now().Add(s.cfg.IdleTimeout)
			if at := s.drainAt.Load(); at != 0 {
				if dd := time.Unix(0, at); dd.Before(deadline) {
					deadline = dd
				}
			}
			_ = conn.SetReadDeadline(deadline) // a dead conn fails the next Read anyway
			// Close the race against the shutdown watcher: if stop fired
			// between its SetDeadline and ours, ours must not revive the
			// read.
			select {
			case <-s.stop:
				//qarv:allow nondeterminism immediate deadline is the idiomatic way to unblock a live socket read
				_ = conn.SetDeadline(time.Now()) // a dead conn fails the next Read anyway
			default:
			}
		}
		frame, _, err := ReadMessage(conn)
		if err != nil {
			return // EOF, deadline, or protocol error: drop the session
		}
		if frame == nil {
			continue // acks from a confused peer are ignored
		}
		if s.cfg.Validate {
			if _, err := octree.DeserializeWithColorsBytes(frame.Payload); err != nil {
				s.mu.Lock()
				s.corruptSeen++
				s.mu.Unlock()
				if tel := s.tel; tel != nil {
					tel.corrupt.Inc()
					tel.rec.Event(s.sinceMicros(), "stream", "corrupt", connID, float64(len(frame.Payload)))
				}
				continue // corrupt frames are dropped, not acked
			}
		}
		ss.pending.Add(int64(len(frame.Payload)))
		select {
		case queue <- frame:
		case <-quit:
			ss.pending.Add(-int64(len(frame.Payload)))
			return
		}
	}
}

// serveLoop paces and acknowledges queued frames until the queue closes
// (reader gone), the server stops, or the drain deadline passes. It
// returns the cumulative bytes served on this connection.
func (s *Server) serveLoop(conn net.Conn, ss *session, queue <-chan *Frame, connID int64) (served uint64) {
	for {
		var frame *Frame
		select {
		case f, ok := <-queue:
			if !ok {
				return served
			}
			frame = f
		case <-s.stop:
			return served
		case <-s.drainKill:
			return served
		}
		n := len(frame.Payload)
		if !s.pace(n, ss, connID) {
			return served // interrupted by Close or the drain deadline
		}
		served += uint64(n)
		ss.pending.Add(-int64(n))
		s.mu.Lock()
		s.framesServed++
		s.bytesServed += uint64(n)
		s.mu.Unlock()
		if tel := s.tel; tel != nil {
			tel.frames.Inc()
			tel.bytes.Add(int64(n))
		}
		ack := Ack{
			FrameID:      frame.ID,
			ServedBytes:  served,
			AllocatedBps: uint64(ss.shareBps()),
		}
		if err := WriteAck(conn, ack); err != nil {
			// The service cost was paid but the device never learned it:
			// served and acked counters diverge here, and the failure is
			// its own series so operators can see half-closed sessions.
			s.mu.Lock()
			s.ackFailSeen++
			s.mu.Unlock()
			if tel := s.tel; tel != nil {
				tel.ackFailures.Inc()
				tel.rec.Event(s.sinceMicros(), "stream", "ack-fail", connID, float64(n))
			}
			return served
		}
		s.mu.Lock()
		s.framesAcked++
		s.bytesAcked += uint64(n)
		s.mu.Unlock()
		if tel := s.tel; tel != nil {
			tel.acks.Inc()
			tel.bytesAcked.Add(int64(n))
		}
	}
}

// pace charges one frame of n payload bytes against the session's
// allocated share, sleeping in bounded slices so reallocation, Close,
// and the drain deadline all take effect mid-frame. It reports false
// when interrupted by Close or the drain deadline.
func (s *Server) pace(n int, ss *session, connID int64) bool {
	if s.cfg.Budget <= 0 {
		return true
	}
	//qarv:allow nondeterminism service pacing on a live connection is wall-clock by design
	last := time.Now()
	var credit float64 // bytes of service accumulated at the allocated rate
	var stalled time.Duration
	for {
		//qarv:allow nondeterminism service pacing on a live connection is wall-clock by design
		now := time.Now()
		rate := ss.shareBps()
		credit += rate * now.Sub(last).Seconds()
		last = now
		if credit >= float64(n) {
			break
		}
		var wait time.Duration
		if rate <= 0 {
			// No allocated capacity right now: wait out a reallocation
			// period and re-check.
			wait = allocEvery
		} else {
			wait = time.Duration((float64(n) - credit) / rate * float64(time.Second))
			if wait > paceSlice {
				wait = paceSlice
			}
		}
		if !s.sleepInterruptible(wait) {
			return false
		}
		stalled += wait
	}
	if stalled > 0 {
		if tel := s.tel; tel != nil {
			tel.stalls.Inc()
			tel.stallMicros.Observe(float64(stalled.Microseconds()))
			tel.rec.Span(s.sinceMicros()-stalled.Microseconds(), stalled.Microseconds(), "stream", "stall", connID, float64(n))
		}
	}
	return true
}

// sleepInterruptible sleeps for d unless Close fires or the drain
// deadline passes first; it reports whether the sleep completed.
func (s *Server) sleepInterruptible(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	case <-s.drainKill:
		return false
	}
}
