package stream

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qarv/internal/obs"
	"qarv/internal/octree"
)

// ServerConfig controls the edge renderer.
type ServerConfig struct {
	// BytesPerSecond caps the server's processing throughput; the server
	// paces acknowledgements so a device sending faster than this builds
	// an uplink backlog. 0 = unpaced (acks immediately).
	BytesPerSecond float64
	// Validate decodes every received stream and rejects corrupt frames.
	Validate bool
	// Metrics receives the stream_* counters (connections, frames,
	// bytes, corrupt frames, acks, backpressure stalls). Nil disables
	// metric collection. Serve it with obs.Handler or obs.NewDebugMux.
	Metrics *obs.Registry
	// Recorder receives connection-lifecycle and stall records. This is
	// the live wire, so records are stamped with wall-clock microseconds
	// since server start rather than virtual slots.
	Recorder *obs.FlightRecorder
}

// ErrServerClosed reports a clean, caller-initiated shutdown: Wait
// returns it after Close, and Close itself returns it when called again
// on an already-closed server — mirroring net/http's convention so
// callers can distinguish orderly teardown from accept failures.
var ErrServerClosed = errors.New("stream: server closed")

// Server is the edge-side receiver: it accepts device connections, paces
// frame processing at the configured throughput, and acknowledges each
// frame with the cumulative processed byte count.
type Server struct {
	cfg     ServerConfig
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup
	done    chan struct{} // closed when the accept loop exits
	tel     *serverTelemetry
	start   time.Time    // server start, base for flight-record stamps
	connSeq atomic.Int64 // connection ids for flight-record tracks

	mu          sync.Mutex
	closed      bool
	loopErr     error // why the accept loop exited
	framesSeen  int
	bytesSeen   uint64
	corruptSeen int
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, stop: make(chan struct{}), done: make(chan struct{})}
	s.tel = newServerTelemetry(cfg.Metrics, cfg.Recorder)
	//qarv:allow nondeterminism live-server trace timestamps are wall-clock by design
	s.start = time.Now()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats reports cumulative counters.
func (s *Server) Stats() (frames int, bytes uint64, corrupt int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.framesSeen, s.bytesSeen, s.corruptSeen
}

// Close stops accepting, closes the listener, and waits for all
// connection handlers to drain. The first call returns the listener's
// close error (nil on a clean shutdown); subsequent calls return
// ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Wait blocks until the accept loop has exited and reports why:
// ErrServerClosed after a clean Close, or the fatal accept error that
// tore the loop down.
func (s *Server) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loopErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				// Caller-initiated shutdown.
				s.mu.Lock()
				s.loopErr = ErrServerClosed
				s.mu.Unlock()
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				// Listener died without Close: a real failure.
				s.mu.Lock()
				s.loopErr = err
				s.mu.Unlock()
				return
			}
			// Transient accept error: keep serving.
			continue
		}
		// Add happens on the accept-loop goroutine, whose own wg entry
		// (taken in Serve) is still held — so the counter can never be
		// observed at zero by a concurrent Close/Wait while handlers
		// are still being registered.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// sinceMicros returns wall-clock microseconds since server start — the
// Slot stamp for this package's flight records. The simulator records
// virtual slots; a live server has no slot clock, so traces use real
// time and are diagnostics only, never part of a deterministic report.
func (s *Server) sinceMicros() int64 {
	//qarv:allow nondeterminism live-server trace timestamps are wall-clock by design
	return time.Since(s.start).Microseconds()
}

// handle processes one device connection until EOF or shutdown.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	connID := s.connSeq.Add(1)
	var served uint64
	if tel := s.tel; tel != nil {
		tel.connections.Inc()
		tel.rec.Event(s.sinceMicros(), "stream", "accept", connID, 0)
		defer func() {
			tel.rec.Event(s.sinceMicros(), "stream", "close", connID, float64(served))
		}()
	}
	// A watcher unblocks the read loop on shutdown by expiring the
	// connection deadline. Its lifetime is strictly inside handle's (we
	// join it before returning), so it needs no WaitGroup entry of its
	// own — the handler's entry covers it, and no Add can race Wait.
	done := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-s.stop:
			//qarv:allow nondeterminism immediate deadline is the idiomatic way to unblock a live socket read
			conn.SetDeadline(time.Now())
		case <-done:
		}
	}()
	defer func() {
		close(done)
		<-watcherDone
	}()

	var debt time.Duration // processing time owed by pacing
	//qarv:allow nondeterminism service pacing on a live connection is wall-clock by design
	lastPace := time.Now()
	for {
		frame, _, err := ReadMessage(conn)
		if err != nil {
			return // EOF, deadline, or protocol error: drop the session
		}
		if frame == nil {
			continue // acks from a confused peer are ignored
		}
		if s.cfg.Validate {
			if _, err := octree.DeserializeWithColorsBytes(frame.Payload); err != nil {
				s.mu.Lock()
				s.corruptSeen++
				s.mu.Unlock()
				if tel := s.tel; tel != nil {
					tel.corrupt.Inc()
					tel.rec.Event(s.sinceMicros(), "stream", "corrupt", connID, float64(len(frame.Payload)))
				}
				continue // corrupt frames are dropped, not acked
			}
		}
		// Pace processing at BytesPerSecond: accumulate owed time and
		// sleep it off, so acknowledgements reflect real service capacity.
		if s.cfg.BytesPerSecond > 0 {
			debt += time.Duration(float64(len(frame.Payload)) / s.cfg.BytesPerSecond * float64(time.Second))
			//qarv:allow nondeterminism service pacing on a live connection is wall-clock by design
			elapsed := time.Since(lastPace)
			if debt > elapsed {
				if tel := s.tel; tel != nil {
					stall := debt - elapsed
					tel.stalls.Inc()
					tel.stallMicros.Observe(float64(stall.Microseconds()))
					tel.rec.Span(s.sinceMicros(), stall.Microseconds(), "stream", "stall", connID, float64(len(frame.Payload)))
				}
				time.Sleep(debt - elapsed)
			}
			//qarv:allow nondeterminism service pacing on a live connection is wall-clock by design
			now := time.Now()
			debt -= now.Sub(lastPace)
			if debt < 0 {
				debt = 0
			}
			lastPace = now
		}
		served += uint64(len(frame.Payload))
		s.mu.Lock()
		s.framesSeen++
		s.bytesSeen += uint64(len(frame.Payload))
		s.mu.Unlock()
		if tel := s.tel; tel != nil {
			tel.frames.Inc()
			tel.bytes.Add(int64(len(frame.Payload)))
		}
		if err := WriteAck(conn, Ack{FrameID: frame.ID, ServedBytes: served}); err != nil {
			return
		}
		if tel := s.tel; tel != nil {
			tel.acks.Inc()
		}
	}
}
