package stream

import "qarv/internal/obs"

// Metric names the edge server registers. Unlike the simulator's
// slot-indexed series, these count live wire traffic; flight records
// from this package carry wall-clock microseconds since server start in
// the Slot field (see Server.sinceMicros).
const (
	// MetricConnections counts accepted device connections.
	MetricConnections = "stream_connections_total"
	// MetricFrames counts frames received and served.
	MetricFrames = "stream_frames_total"
	// MetricBytes counts payload bytes received and served.
	MetricBytes = "stream_bytes_total"
	// MetricCorrupt counts frames rejected by validation.
	MetricCorrupt = "stream_corrupt_total"
	// MetricAcks counts acknowledgements written back to devices.
	MetricAcks = "stream_acks_total"
	// MetricStalls counts backpressure stalls: pacing sleeps taken
	// because a device sent faster than BytesPerSecond.
	MetricStalls = "stream_backpressure_stalls_total"
	// MetricStallMicros is the distribution of stall durations in
	// microseconds.
	MetricStallMicros = "stream_stall_micros"
)

// serverTelemetry holds pre-resolved instrument handles for the edge
// server's hot paths; nil when telemetry is disabled.
type serverTelemetry struct {
	rec         *obs.FlightRecorder
	connections *obs.Counter
	frames      *obs.Counter
	bytes       *obs.Counter
	corrupt     *obs.Counter
	acks        *obs.Counter
	stalls      *obs.Counter
	stallMicros *obs.Histogram
}

// newServerTelemetry resolves handles against reg; nil when both sinks
// are off.
func newServerTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) *serverTelemetry {
	if reg == nil && rec == nil {
		return nil
	}
	return &serverTelemetry{
		rec:         rec,
		connections: reg.Counter(MetricConnections),
		frames:      reg.Counter(MetricFrames),
		bytes:       reg.Counter(MetricBytes),
		corrupt:     reg.Counter(MetricCorrupt),
		acks:        reg.Counter(MetricAcks),
		stalls:      reg.Counter(MetricStalls),
		stallMicros: reg.Histogram(MetricStallMicros),
	}
}
