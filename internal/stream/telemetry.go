package stream

import "qarv/internal/obs"

// Metric names the edge server registers. Unlike the simulator's
// slot-indexed series, these count live wire traffic; flight records
// from this package carry wall-clock microseconds since server start in
// the Slot field (see Server.sinceMicros).
const (
	// MetricConnections counts admitted device connections (shed
	// arrivals are counted separately under MetricShed).
	MetricConnections = "stream_connections_total"
	// MetricFrames counts frames received and served.
	MetricFrames = "stream_frames_total"
	// MetricBytes counts payload bytes received and served.
	MetricBytes = "stream_bytes_total"
	// MetricCorrupt counts frames rejected by validation.
	MetricCorrupt = "stream_corrupt_total"
	// MetricAcks counts acknowledgements written back to devices.
	MetricAcks = "stream_acks_total"
	// MetricBytesAcked counts payload bytes whose acknowledgement
	// reached the wire. It trails MetricBytes by exactly the bytes whose
	// ack write failed — the served-vs-acked gap.
	MetricBytesAcked = "stream_bytes_acked_total"
	// MetricAckFailures counts frames that were fully served but whose
	// acknowledgement could not be written (half-closed or dead
	// connections): the device paid the latency but never learned its
	// ServedBytes advanced.
	MetricAckFailures = "stream_ack_failures_total"
	// MetricShed counts connections closed immediately at accept
	// because the MaxConns limit was reached.
	MetricShed = "stream_shed_total"
	// MetricSessionsPeak is the high-water mark of concurrently
	// admitted connections.
	MetricSessionsPeak = "stream_sessions_peak"
	// MetricStalls counts backpressure stalls: pacing sleeps taken
	// because a connection's queued bytes exceeded its allocated share.
	MetricStalls = "stream_backpressure_stalls_total"
	// MetricStallMicros is the distribution of stall durations in
	// microseconds.
	MetricStallMicros = "stream_stall_micros"
	// MetricAllocShare is the distribution of per-connection allocated
	// shares in bytes/second, observed at every allocator run — the
	// series that shows how the shared uplink budget was actually split
	// across the fleet.
	MetricAllocShare = "stream_alloc_share_bps"
)

// serverTelemetry holds pre-resolved instrument handles for the edge
// server's hot paths; nil when telemetry is disabled.
type serverTelemetry struct {
	rec          *obs.FlightRecorder
	connections  *obs.Counter
	frames       *obs.Counter
	bytes        *obs.Counter
	corrupt      *obs.Counter
	acks         *obs.Counter
	bytesAcked   *obs.Counter
	ackFailures  *obs.Counter
	shed         *obs.Counter
	sessionsPeak *obs.Gauge
	stalls       *obs.Counter
	stallMicros  *obs.Histogram
	allocShare   *obs.Histogram
}

// newServerTelemetry resolves handles against reg; nil when both sinks
// are off.
func newServerTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) *serverTelemetry {
	if reg == nil && rec == nil {
		return nil
	}
	return &serverTelemetry{
		rec:          rec,
		connections:  reg.Counter(MetricConnections),
		frames:       reg.Counter(MetricFrames),
		bytes:        reg.Counter(MetricBytes),
		corrupt:      reg.Counter(MetricCorrupt),
		acks:         reg.Counter(MetricAcks),
		bytesAcked:   reg.Counter(MetricBytesAcked),
		ackFailures:  reg.Counter(MetricAckFailures),
		shed:         reg.Counter(MetricShed),
		sessionsPeak: reg.Gauge(MetricSessionsPeak),
		stalls:       reg.Counter(MetricStalls),
		stallMicros:  reg.Histogram(MetricStallMicros),
		allocShare:   reg.Histogram(MetricAllocShare),
	}
}
