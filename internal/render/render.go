// Package render is a small software point-splat renderer: it projects a
// point cloud through a pinhole camera into a z-buffered framebuffer.
// It closes the loop the paper's Fig. 1 gestures at — "AR visualization
// resolution depending on Octree depth" — by measuring quality where it
// is actually perceived: in the rendered image. The image-domain PSNR
// between a depth-d LOD render and the full-resolution render feeds
// quality.NewPSNRUtility (see experiments.RenderLadder), giving the
// controller a perceptual pa(d).
package render

import (
	"errors"
	"fmt"
	"io"
	"math"

	"qarv/internal/geom"
	"qarv/internal/octree"
	"qarv/internal/pointcloud"
)

// Camera is a pinhole camera at Eye looking at Target with the given
// vertical field of view.
type Camera struct {
	Eye    geom.Vec3
	Target geom.Vec3
	Up     geom.Vec3
	FOVDeg float64 // vertical field of view in degrees
	Near   float64 // near-plane distance; points closer are culled
}

// DefaultCamera frames a human-height subject from 3 m away.
func DefaultCamera(subject geom.AABB) Camera {
	c := subject.Center()
	return Camera{
		Eye:    c.Add(geom.V(0, 0.1, 3)),
		Target: c,
		Up:     geom.V(0, 1, 0),
		FOVDeg: 45,
		Near:   0.05,
	}
}

// Image is a rendered RGB framebuffer with its depth buffer.
type Image struct {
	W, H  int
	Pix   []pointcloud.Color // row-major, length W*H
	Depth []float64          // camera-space depth per pixel; +Inf = empty
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) pointcloud.Color { return im.Pix[y*im.W+x] }

// Coverage returns the fraction of pixels hit by at least one splat.
func (im *Image) Coverage() float64 {
	hit := 0
	for _, d := range im.Depth {
		if !math.IsInf(d, 1) {
			hit++
		}
	}
	return float64(hit) / float64(len(im.Depth))
}

// Config controls a render pass.
type Config struct {
	Width, Height int
	Camera        Camera
	// SplatRadius is the screen-space splat half-size in pixels scaled by
	// inverse depth; 0 picks a radius that closes holes at the cloud's
	// mean spacing (heuristic).
	SplatRadius float64
	// Background fills uncovered pixels.
	Background pointcloud.Color
}

// Render errors.
var (
	ErrBadViewport = errors.New("render: viewport must be positive")
	ErrEmptyCloud  = errors.New("render: empty cloud")
	ErrBadCamera   = errors.New("render: camera eye and target coincide")
)

// Render splats the cloud into a fresh framebuffer. Points without colors
// render white.
func Render(cloud *pointcloud.Cloud, cfg Config) (*Image, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadViewport, cfg.Width, cfg.Height)
	}
	if cloud.Len() == 0 {
		return nil, ErrEmptyCloud
	}
	cam := cfg.Camera
	forward := cam.Target.Sub(cam.Eye)
	if forward.Norm() == 0 {
		return nil, ErrBadCamera
	}
	forward = forward.Normalized()
	up := cam.Up
	if up.Norm() == 0 {
		up = geom.V(0, 1, 0)
	}
	right := forward.Cross(up).Normalized()
	trueUp := right.Cross(forward)
	if cam.FOVDeg <= 0 {
		cam.FOVDeg = 45
	}
	if cam.Near <= 0 {
		cam.Near = 0.05
	}
	fovRad := cam.FOVDeg * math.Pi / 180
	focal := float64(cfg.Height) / (2 * math.Tan(fovRad/2))

	im := &Image{
		W:     cfg.Width,
		H:     cfg.Height,
		Pix:   make([]pointcloud.Color, cfg.Width*cfg.Height),
		Depth: make([]float64, cfg.Width*cfg.Height),
	}
	for i := range im.Depth {
		im.Depth[i] = math.Inf(1)
		im.Pix[i] = cfg.Background
	}

	radius := cfg.SplatRadius
	if radius <= 0 {
		// Hole-closing heuristic: splat radius from cloud density so a
		// surface at the camera distance fills its pixels.
		spacing := cloud.MeanNeighborDistance(512, nil)
		dist := cam.Eye.Dist(cam.Target)
		if dist <= 0 {
			dist = 1
		}
		radius = math.Max(0.75, spacing*focal/dist)
	}

	cx := float64(cfg.Width) / 2
	cy := float64(cfg.Height) / 2
	for i, p := range cloud.Points {
		rel := p.Sub(cam.Eye)
		z := rel.Dot(forward)
		if z < cam.Near {
			continue // behind or too close
		}
		sx := cx + rel.Dot(right)*focal/z
		sy := cy - rel.Dot(trueUp)*focal/z
		col := pointcloud.Color{R: 255, G: 255, B: 255}
		if cloud.HasColors() {
			col = cloud.Colors[i]
		}
		splat(im, sx, sy, z, radius, col)
	}
	return im, nil
}

// splat writes a square splat with z-test.
func splat(im *Image, sx, sy, z, radius float64, col pointcloud.Color) {
	x0 := int(math.Floor(sx - radius))
	x1 := int(math.Ceil(sx + radius))
	y0 := int(math.Floor(sy - radius))
	y1 := int(math.Ceil(sy + radius))
	if x1 < 0 || y1 < 0 || x0 >= im.W || y0 >= im.H {
		return
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= im.W {
		x1 = im.W - 1
	}
	if y1 >= im.H {
		y1 = im.H - 1
	}
	for y := y0; y <= y1; y++ {
		row := y * im.W
		for x := x0; x <= x1; x++ {
			idx := row + x
			if z < im.Depth[idx] {
				im.Depth[idx] = z
				im.Pix[idx] = col
			}
		}
	}
}

// PSNR computes the luma peak signal-to-noise ratio between two images of
// identical dimensions; +Inf for identical images.
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("render: image sizes differ: %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := a.Pix[i].Gray() - b.Pix[i].Gray()
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// WritePGM serializes the image's luma channel as a binary PGM — the
// dependency-free way to eyeball a render (any image viewer opens PGM).
func (im *Image) WritePGM(w io.Writer) error {
	header := fmt.Sprintf("P5\n%d %d\n255\n", im.W, im.H)
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	buf := make([]byte, len(im.Pix))
	for i, c := range im.Pix {
		buf[i] = byte(c.Gray())
	}
	_, err := w.Write(buf)
	return err
}

// DepthLadderPSNR renders the octree's LOD at each depth and returns the
// image-domain PSNR against the full-resolution render — the measured
// per-depth quality profile for quality.NewPSNRUtility, i.e. pa(d) in the
// domain the user actually sees. The reference depth is the octree's max.
func DepthLadderPSNR(tree *octree.Octree, cfg Config, depths []int) ([]float64, error) {
	refLOD, err := tree.LOD(tree.MaxDepth(), octree.LODCentroid)
	if err != nil {
		return nil, err
	}
	ref, err := Render(refLOD, cfg)
	if err != nil {
		return nil, fmt.Errorf("render reference: %w", err)
	}
	out := make([]float64, 0, len(depths))
	for _, d := range depths {
		lod, err := tree.LOD(d, octree.LODCentroid)
		if err != nil {
			return nil, err
		}
		im, err := Render(lod, cfg)
		if err != nil {
			return nil, fmt.Errorf("render depth %d: %w", d, err)
		}
		psnr, err := PSNR(ref, im)
		if err != nil {
			return nil, err
		}
		out = append(out, psnr)
	}
	return out, nil
}
