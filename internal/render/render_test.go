package render

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"qarv/internal/geom"
	"qarv/internal/octree"
	"qarv/internal/pointcloud"
	"qarv/internal/synthetic"
)

func bodyCloud(t *testing.T) *pointcloud.Cloud {
	t.Helper()
	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: 30_000, CaptureDepth: 9, Seed: 8,
	}, synthetic.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	return cloud
}

func bodyConfig(cloud *pointcloud.Cloud) Config {
	return Config{
		Width:  160,
		Height: 160,
		Camera: DefaultCamera(cloud.Bounds()),
	}
}

func TestRenderValidation(t *testing.T) {
	cloud := bodyCloud(t)
	if _, err := Render(cloud, Config{Width: 0, Height: 10}); !errors.Is(err, ErrBadViewport) {
		t.Errorf("bad viewport: %v", err)
	}
	if _, err := Render(&pointcloud.Cloud{}, bodyConfig(cloud)); !errors.Is(err, ErrEmptyCloud) {
		t.Errorf("empty cloud: %v", err)
	}
	bad := bodyConfig(cloud)
	bad.Camera.Eye = bad.Camera.Target
	if _, err := Render(cloud, bad); !errors.Is(err, ErrBadCamera) {
		t.Errorf("degenerate camera: %v", err)
	}
}

func TestRenderCoversSubject(t *testing.T) {
	cloud := bodyCloud(t)
	im, err := Render(cloud, bodyConfig(cloud))
	if err != nil {
		t.Fatal(err)
	}
	cov := im.Coverage()
	// A framed human should cover a meaningful but partial image area.
	if cov < 0.05 || cov > 0.9 {
		t.Errorf("coverage = %v", cov)
	}
	// Center pixel column should hit the body (torso) with finite depth.
	if math.IsInf(im.Depth[(im.H/2)*im.W+im.W/2], 1) {
		t.Error("subject center not covered")
	}
}

func TestRenderZBufferOcclusion(t *testing.T) {
	// Two overlapping splats: the nearer one must win.
	c := &pointcloud.Cloud{}
	red := pointcloud.Color{R: 255}
	blue := pointcloud.Color{B: 255}
	c.Append(geom.V(0, 0, 1), &blue, nil) // farther (camera looks from +z)
	c.Append(geom.V(0, 0, 2), &red, nil)  // nearer to a camera at z=3
	im, err := Render(c, Config{
		Width: 32, Height: 32,
		Camera:      Camera{Eye: geom.V(0, 0, 3), Target: geom.V(0, 0, 0), Up: geom.V(0, 1, 0), FOVDeg: 45},
		SplatRadius: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	center := im.At(16, 16)
	if center.R != 255 || center.B != 0 {
		t.Errorf("center pixel = %+v, want the nearer red splat", center)
	}
}

func TestRenderBehindCameraCulled(t *testing.T) {
	c := &pointcloud.Cloud{}
	c.Append(geom.V(0, 0, 10), nil, nil) // behind a camera at z=3 looking at -z... actually in front
	c.Append(geom.V(0, 0, 4), nil, nil)  // behind the eye
	im, err := Render(c, Config{
		Width: 16, Height: 16,
		Camera:      Camera{Eye: geom.V(0, 0, 3), Target: geom.V(0, 0, 0), Up: geom.V(0, 1, 0), FOVDeg: 45},
		SplatRadius: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both points are behind the view direction (camera looks toward -z);
	// nothing may be drawn.
	if im.Coverage() != 0 {
		t.Errorf("behind-camera points drawn: coverage %v", im.Coverage())
	}
}

func TestImagePSNR(t *testing.T) {
	cloud := bodyCloud(t)
	im, err := Render(cloud, bodyConfig(cloud))
	if err != nil {
		t.Fatal(err)
	}
	same, err := PSNR(im, im)
	if err != nil || !math.IsInf(same, 1) {
		t.Errorf("self PSNR = %v, %v", same, err)
	}
	other := &Image{W: 1, H: 1, Pix: make([]pointcloud.Color, 1), Depth: make([]float64, 1)}
	if _, err := PSNR(im, other); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestDepthLadderPSNRMonotone(t *testing.T) {
	// The render-domain Fig. 1: deeper LOD renders closer to the
	// reference image.
	cloud := bodyCloud(t)
	tree, err := octree.Build(cloud, 9)
	if err != nil {
		t.Fatal(err)
	}
	psnrs, err := DepthLadderPSNR(tree, bodyConfig(cloud), []int{4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(psnrs); i++ {
		if psnrs[i] <= psnrs[i-1] {
			t.Errorf("view PSNR not increasing: %v", psnrs)
		}
	}
	// Shallow renders must be visibly degraded, deep ones decent.
	if psnrs[0] > 40 {
		t.Errorf("depth-4 render suspiciously good: %v dB", psnrs[0])
	}
	if psnrs[len(psnrs)-1] < 20 {
		t.Errorf("depth-8 render suspiciously bad: %v dB", psnrs[len(psnrs)-1])
	}
}

func TestWritePGM(t *testing.T) {
	cloud := bodyCloud(t)
	im, err := Render(cloud, bodyConfig(cloud))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n160 160\n255\n") {
		t.Errorf("PGM header wrong: %q", buf.String()[:20])
	}
	if buf.Len() != len("P5\n160 160\n255\n")+160*160 {
		t.Errorf("PGM size = %d", buf.Len())
	}
}

func TestRenderDeterministic(t *testing.T) {
	cloud := bodyCloud(t)
	a, err := Render(cloud, bodyConfig(cloud))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(cloud, bodyConfig(cloud))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render nondeterministic")
		}
	}
}
