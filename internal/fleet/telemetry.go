package fleet

import "qarv/internal/obs"

// Metric names the fleet engine registers. Everything is an exact
// integer count or an integer-valued histogram, so the merged registry
// — and its snapshot — is byte-identical across shard counts, unlike
// the float-sum-backed Mean/DroppedWork report fields.
const (
	// MetricSessions counts sessions simulated (seats plus churn
	// backfills).
	MetricSessions = "fleet_sessions_total"
	// MetricDepartures counts sessions that departed early via churn.
	MetricDepartures = "fleet_departures_total"
	// MetricDeviceSlots counts simulated device-time in slots.
	MetricDeviceSlots = "fleet_device_slots_total"
	// MetricFramesCompleted counts frames served to completion.
	MetricFramesCompleted = "fleet_frames_completed_total"
	// MetricFramesDropped counts frames lost to bounded-backlog
	// overflow.
	MetricFramesDropped = "fleet_frames_dropped_total"
	// MetricSessionLifetime is the session-lifetime distribution in
	// slots.
	MetricSessionLifetime = "fleet_session_lifetime_slots"
)

// fleetTelemetry holds a shard's pre-resolved instrument handles plus
// the (shared, concurrency-safe) flight recorder. Nil when telemetry
// is disabled.
type fleetTelemetry struct {
	rec             *obs.FlightRecorder
	sessions        *obs.Counter
	departures      *obs.Counter
	deviceSlots     *obs.Counter
	framesCompleted *obs.Counter
	framesDropped   *obs.Counter
	lifetime        *obs.Histogram
}

// newFleetTelemetry resolves handles against a shard-local registry;
// nil when both sinks are off.
func newFleetTelemetry(reg *obs.Registry, rec *obs.FlightRecorder) *fleetTelemetry {
	if reg == nil && rec == nil {
		return nil
	}
	return &fleetTelemetry{
		rec:             rec,
		sessions:        reg.Counter(MetricSessions),
		departures:      reg.Counter(MetricDepartures),
		deviceSlots:     reg.Counter(MetricDeviceSlots),
		framesCompleted: reg.Counter(MetricFramesCompleted),
		framesDropped:   reg.Counter(MetricFramesDropped),
		lifetime:        reg.Histogram(MetricSessionLifetime),
	}
}
