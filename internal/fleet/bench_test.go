package fleet

import (
	"fmt"
	"testing"

	"qarv/internal/delay"
	"qarv/internal/geom"
	"qarv/internal/policy"
	"qarv/internal/queueing"
)

// benchProfile is a representative stable class: threshold policy (the
// cheap stateful controller), deterministic arrivals, constant service.
func benchProfile() Profile {
	depths := []int{3, 4, 5, 6, 7, 8}
	return Profile{
		Name:   "threshold",
		Weight: 1,
		NewPolicy: func(*geom.RNG) (policy.Policy, error) {
			return policy.NewThreshold(depths, 200, 600)
		},
		Cost:    testCost{Scale: 16},
		Utility: testUtility{},
		NewService: func(*geom.RNG) delay.ServiceProcess {
			return &delay.ConstantService{Rate: 110}
		},
	}
}

// BenchmarkFleet measures engine throughput in device-slots/sec — the
// headline capacity number the bench history (BENCH_fleet.json) tracks —
// across fleet sizes. b.N multiplies whole fleet runs; the custom metric
// normalizes to simulated device-time per wall second.
func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			spec := Spec{
				Sessions: n,
				Slots:    100,
				Churn:    0.005,
				Seed:     1,
				Profiles: []Profile{benchProfile()},
			}
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				rate = rep.DeviceSlotsPerSec
			}
			b.ReportMetric(rate, "device-slots/sec")
		})
	}
}

// BenchmarkFleetStochastic prices the heavier per-slot path: Poisson
// arrivals and noisy service draw from the RNG every slot.
func BenchmarkFleetStochastic(b *testing.B) {
	prof := benchProfile()
	prof.NewArrivals = func(rng *geom.RNG) queueing.ArrivalProcess {
		return &queueing.PoissonArrivals{Mean: 1.0, RNG: rng}
	}
	prof.NewService = func(rng *geom.RNG) delay.ServiceProcess {
		return &delay.NoisyService{Mean: 110, Std: 15, RNG: rng}
	}
	spec := Spec{Sessions: 10_000, Slots: 100, Seed: 1, Profiles: []Profile{prof}}
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.DeviceSlotsPerSec
	}
	b.ReportMetric(rate, "device-slots/sec")
}
