// Package fleet simulates fleets of independent AR device sessions at
// 10k–1M scale — the engine behind the ROADMAP's "millions of users"
// north star. The paper's drift-plus-penalty controller is explicitly
// distributed (each device decides from its own backlog only), so a
// fleet is N independent slot loops; what makes scale hard is
// accounting, not coupling. The engine therefore:
//
//   - stripes N device "seats" across GOMAXPROCS-bounded shards, each
//     shard running its seats' sessions sequentially (one live session
//     per shard at any instant, so resident memory is O(shards ×
//     frames-in-flight), not O(sessions) and never O(sessions × slots);
//     note frames in flight track the live session's backlog — bound
//     overloaded classes with Profile.MaxBacklog to keep a diverging
//     queue from accumulating unserved frames over a long horizon);
//   - models device churn as a per-slot departure hazard: a departing
//     session is replaced by a fresh arrival (new profile draw, new RNG
//     stream) occupying the seat for the rest of the horizon;
//   - draws each session's class from a weighted Profile mix
//     (policy, cost/utility models, arrival process, service process —
//     heterogeneous fleets in one run);
//   - accumulates sojourn/backlog/utility distributions in mergeable
//     fixed-memory quantile sketches (stats.QuantileSketch) and
//     classifies each session's stability from a fixed-memory
//     downsampled trajectory (stats.Decimator), then merges shard
//     accumulators into one Report;
//   - is deterministic for a given Spec and Seed: every seat derives
//     its RNG stream from (Seed, seat) alone, and merge order is fixed,
//     so repeated runs are byte-identical apart from the wall-clock
//     fields (Elapsed, DeviceSlotsPerSec). Across *different* shard
//     counts, every simulated value, counter, quantile-sketch bucket,
//     and verdict is identical too; only the floating-point sums backing
//     Mean and DroppedWork can differ in the last bits, because shard
//     boundaries regroup non-associative float additions.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"qarv/internal/delay"
	"qarv/internal/geom"
	"qarv/internal/obs"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
	"qarv/internal/stats"
)

// Profile describes one device class of the fleet mix. Policies and
// stochastic processes are built per session through factories — a
// policy or a seeded process shared across concurrent sessions would
// race and correlate streams — while the cost and utility models are
// immutable lookup tables safely shared by every shard.
type Profile struct {
	// Name labels the class in the per-profile report breakdown.
	Name string
	// Weight is the class's share of the mix (relative, must be > 0).
	Weight float64
	// NewPolicy builds a fresh depth policy for one session. Policies may
	// be stateful (Threshold, Random, AutoTuner), hence the factory.
	NewPolicy func(rng *geom.RNG) (policy.Policy, error)
	// Cost maps the chosen depth to per-frame workload a(d).
	Cost delay.CostModel
	// Utility scores the chosen depth pa(d).
	Utility quality.UtilityModel
	// NewArrivals builds the session's frame arrival process; nil takes
	// the paper's one-frame-per-slot process.
	NewArrivals func(rng *geom.RNG) queueing.ArrivalProcess
	// NewService builds the session's per-slot capacity process.
	NewService func(rng *geom.RNG) delay.ServiceProcess
	// MaxBacklog, when positive, bounds each session's queue (overflow
	// drops work, exactly as in sim runs).
	MaxBacklog float64
}

// Spec describes one fleet run.
type Spec struct {
	// Sessions is the concurrent fleet population (the number of device
	// seats). With churn, the number of sessions simulated exceeds this:
	// every departure backfills its seat with a fresh arrival.
	Sessions int
	// Slots is the horizon each seat is simulated for; total work is
	// exactly Sessions × Slots device-slots regardless of churn.
	Slots int
	// Shards bounds the worker parallelism; <= 0 takes GOMAXPROCS.
	// The report is identical for every shard count.
	Shards int
	// Churn is the per-slot probability that a live session departs
	// (geometric lifetimes with mean 1/Churn slots); 0 disables churn.
	// Must lie in [0, 1).
	Churn float64
	// Profiles is the weighted device-class mix (at least one).
	Profiles []Profile
	// Seed drives every stochastic choice — profile draws, lifetimes,
	// and the RNG streams handed to the per-session factories.
	Seed uint64
	// Accuracy is the quantile sketches' relative error bound; <= 0
	// takes stats.DefaultSketchAccuracy (1%).
	Accuracy float64
	// Metrics, when non-nil, enables telemetry: each shard accumulates
	// the fleet_* series into a private registry; the shard registries
	// are merged in seat order into this one after the run, and the
	// merged snapshot lands on Report.Metrics. Because every fleet
	// instrument is an exact integer count or integer-valued histogram,
	// the merged state is byte-identical across shard counts.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives session lifecycle records (cat
	// "fleet": "session" on arrival, "depart" on churn departure), one
	// track per seat. Shards share the recorder; it is
	// concurrency-safe, but ring eviction order under contention is
	// scheduling-dependent, so traces are diagnostics, not reports.
	Recorder *obs.FlightRecorder
}

// Spec validation errors.
var (
	ErrNoSessions = errors.New("fleet: session count must be positive")
	ErrBadSlots   = errors.New("fleet: slot count must be positive")
	ErrBadChurn   = errors.New("fleet: churn must lie in [0, 1)")
	ErrNoProfiles = errors.New("fleet: at least one profile required")
	ErrBadWeight  = errors.New("fleet: profile weight must be positive")
	ErrNilPolicy  = errors.New("fleet: profile needs a NewPolicy factory")
	ErrNilService = errors.New("fleet: profile needs a NewService factory")
	ErrNilCost    = errors.New("fleet: profile needs a cost model")
	ErrNilUtility = errors.New("fleet: profile needs a utility model")
)

// Validate checks the spec without running it.
func (s *Spec) Validate() error {
	switch {
	case s.Sessions <= 0:
		return fmt.Errorf("%w: %d", ErrNoSessions, s.Sessions)
	case s.Slots <= 0:
		return fmt.Errorf("%w: %d", ErrBadSlots, s.Slots)
	case s.Churn < 0 || s.Churn >= 1 || math.IsNaN(s.Churn):
		return fmt.Errorf("%w: %v", ErrBadChurn, s.Churn)
	case len(s.Profiles) == 0:
		return ErrNoProfiles
	}
	for i, p := range s.Profiles {
		switch {
		case p.Weight <= 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0):
			return fmt.Errorf("profile %d (%s): %w: %v", i, p.Name, ErrBadWeight, p.Weight)
		case p.NewPolicy == nil:
			return fmt.Errorf("profile %d (%s): %w", i, p.Name, ErrNilPolicy)
		case p.NewService == nil:
			return fmt.Errorf("profile %d (%s): %w", i, p.Name, ErrNilService)
		case p.Cost == nil:
			return fmt.Errorf("profile %d (%s): %w", i, p.Name, ErrNilCost)
		case p.Utility == nil:
			return fmt.Errorf("profile %d (%s): %w", i, p.Name, ErrNilUtility)
		}
	}
	return nil
}

// shards resolves the worker count.
func (s *Spec) shards() int {
	n := s.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > s.Sessions {
		n = s.Sessions
	}
	return n
}

// SeatSeed derives the RNG seed of one device seat from the fleet seed —
// a SplitMix64 finalizer over (seed, seat), so every seat's stream is
// independent of how seats are partitioned into shards. Exported so
// tests can reproduce a seat's exact session composition out-of-band.
func SeatSeed(seed uint64, seat int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(seat+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// trajCap bounds the per-session downsampled-trajectory buffer used for
// stability classification. 256 samples resolve the Fig. 2(a) shapes
// (knee, divergence slope) while keeping per-session state constant.
const trajCap = 256

// Run executes the fleet.
func Run(spec Spec) (*Report, error) { return RunContext(context.Background(), spec) }

// RunContext executes the fleet under a context: every shard polls ctx
// once per queueing.PollEvery device-slots and the first cancellation or
// profile-factory error aborts the whole run.
func RunContext(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nShards := spec.shards()

	// Cumulative weights for the per-session profile draw.
	cum := make([]float64, len(spec.Profiles))
	total := 0.0
	for i, p := range spec.Profiles {
		total += p.Weight
		cum[i] = total
	}

	//qarv:allow nondeterminism Elapsed is reporting-only bench metadata; no simulated state derives from it
	start := time.Now()
	accums := make([]*fleetAccum, nShards)
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < nShards; w++ {
		// Contiguous seat ranges: seat axis split as evenly as possible.
		lo := w * spec.Sessions / nShards
		hi := (w + 1) * spec.Sessions / nShards
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc, err := runShard(ctx, &spec, cum, lo, hi)
			accums[w], errs[w] = acc, err
			if err != nil {
				cancel()
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Prefer a root-cause error over the cancellations it fanned out: a
	// shard that hits a profile-factory error cancels the shared context,
	// so sibling shards abort with derived context.Canceled errors that
	// would otherwise mask the real failure.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged := newFleetAccum(&spec)
	for _, acc := range accums {
		if err := merged.merge(acc); err != nil {
			return nil, err
		}
	}
	//qarv:allow nondeterminism Elapsed is reporting-only bench metadata; no simulated state derives from it
	elapsed := time.Since(start)
	rep := merged.report(&spec, nShards, elapsed)
	if spec.Metrics != nil {
		rep.Metrics = merged.metrics.Snapshot()
		if err := spec.Metrics.Merge(merged.metrics); err != nil {
			return nil, fmt.Errorf("fleet: merging telemetry: %w", err)
		}
	}
	return rep, nil
}

// runShard simulates seats [lo, hi) sequentially, accumulating into one
// shard-local fleetAccum (no locks: shards share only immutable state).
func runShard(ctx context.Context, spec *Spec, cum []float64, lo, hi int) (*fleetAccum, error) {
	acc := newFleetAccum(spec)
	cancel := queueing.NewCancelCheck(ctx, 0)
	sess := newSessionRunner() // reused across sessions (buffers recycled)
	tel := newFleetTelemetry(acc.metrics, spec.Recorder)
	for seat := lo; seat < hi; seat++ {
		rng := geom.NewRNG(SeatSeed(spec.Seed, seat))
		slot := 0
		for slot < spec.Slots {
			// Per-session draws, in fixed order so the stream layout is
			// identical whatever the profile does with its RNGs: profile
			// pick, then arrivals/service/policy child streams, then (with
			// churn enabled) the lifetime.
			pi := pickProfile(rng, cum)
			prof := &spec.Profiles[pi]
			arrRNG, svcRNG, polRNG := rng.Split(), rng.Split(), rng.Split()

			life := spec.Slots - slot
			departs := false
			if spec.Churn > 0 {
				if l := geometricLifetime(rng, spec.Churn); l < life {
					life, departs = l, true
				}
			}

			if err := sess.reset(prof, arrRNG, svcRNG, polRNG); err != nil {
				return nil, fmt.Errorf("fleet: seat %d profile %q: %w", seat, prof.Name, err)
			}
			pa := acc.profile(prof.Name)
			completed0, dropped0 := pa.framesCompleted, pa.framesDropped
			if tel != nil {
				tel.rec.Event(int64(slot), "fleet", "session", int64(seat), float64(pi))
			}
			for t := 0; t < life; t++ {
				if err := cancel.Check(); err != nil {
					return nil, fmt.Errorf("fleet: canceled at seat %d slot %d: %w", seat, slot+t, err)
				}
				sess.step(t, pa)
			}
			sess.finish(pa, departs)
			if tel != nil {
				tel.sessions.Inc()
				tel.deviceSlots.Add(int64(life))
				tel.framesCompleted.Add(pa.framesCompleted - completed0)
				tel.framesDropped.Add(pa.framesDropped - dropped0)
				tel.lifetime.Observe(float64(life))
				if departs {
					tel.departures.Inc()
					tel.rec.Event(int64(slot+life), "fleet", "depart", int64(seat), float64(life))
				}
			}
			slot += life
		}
	}
	return acc, nil
}

// pickProfile draws a profile index from the cumulative weight table.
func pickProfile(rng *geom.RNG, cum []float64) int {
	if len(cum) == 1 {
		rng.Float64() // keep the stream layout uniform across mixes
		return 0
	}
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// geometricLifetime draws a session lifetime (in slots, ≥ 1) under a
// per-slot departure hazard c ∈ (0, 1).
func geometricLifetime(rng *geom.RNG, c float64) int {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	l := 1 + int(math.Floor(math.Log(u)/math.Log(1-c)))
	if l < 1 {
		l = 1
	}
	return l
}

// sessionRunner is the fleet's compact mirror of sim's per-device slot
// loop: identical queue dynamics (observe, decide, arrive, bound, serve,
// drop-tail propagation) but streaming — per-slot values go straight
// into the shard's sketches instead of per-slot slices, and the
// trajectory survives only as a fixed-size decimated subsample.
type sessionRunner struct {
	pol      policy.Policy
	cost     delay.CostModel
	utility  quality.UtilityModel
	arrivals queueing.ArrivalProcess
	service  delay.ServiceProcess

	backlog *queueing.Backlog
	frames  queueing.FrameQueue
	traj    *stats.Decimator
}

func newSessionRunner() *sessionRunner {
	return &sessionRunner{traj: stats.NewDecimator(trajCap)}
}

// reset arms the runner for a fresh session of the given profile.
func (r *sessionRunner) reset(p *Profile, arrRNG, svcRNG, polRNG *geom.RNG) error {
	if p.NewArrivals != nil {
		r.arrivals = p.NewArrivals(arrRNG)
	} else {
		r.arrivals = &queueing.DeterministicArrivals{PerSlot: 1}
	}
	r.service = p.NewService(svcRNG)
	pol, err := p.NewPolicy(polRNG)
	if err != nil {
		return err
	}
	r.pol = pol
	r.cost = p.Cost
	r.utility = p.Utility
	r.backlog = queueing.NewBoundedBacklog(p.MaxBacklog)
	r.frames = queueing.FrameQueue{}
	r.traj.Reset()
	return nil
}

// step advances the session one (session-local) slot, streaming the
// slot's observations into the profile accumulator. The update order
// mirrors sim.deviceRunner.step exactly so a fleet of one session
// reproduces a Session.Run report's aggregates bit-for-bit.
func (r *sessionRunner) step(t int, pa *profileAccum) {
	q := r.backlog.Level()
	r.traj.Add(q)
	pa.backlog.Add(q)

	d := r.pol.Decide(t, q)
	u := r.utility.Utility(d)
	pa.utility.Add(u)

	n := r.arrivals.Frames(t)
	if n < 0 {
		n = 0
	}
	var work float64
	for i := 0; i < n; i++ {
		w := r.cost.FrameCost(d)
		work += w
		r.frames.Push(w, d, t)
	}

	droppedBefore := r.backlog.TotalDropped()
	served := r.backlog.Step(work, r.service.Service(t))
	if droppedNow := r.backlog.TotalDropped() - droppedBefore; droppedNow > 0 {
		dropped, _ := r.frames.DropTail(droppedNow)
		pa.framesDropped += int64(dropped)
	}
	for _, c := range r.frames.Serve(served, t) {
		pa.framesCompleted++
		pa.sojourn.Add(float64(c.Sojourn))
	}
	pa.deviceSlots++
}

// finish closes the session: classify its (decimated) backlog trajectory
// and fold the session-level counters into the profile accumulator.
func (r *sessionRunner) finish(pa *profileAccum, departed bool) {
	pa.sessions++
	if departed {
		pa.departures++
	}
	pa.droppedWork += r.backlog.TotalDropped()
	v, err := queueing.ClassifyTrajectory(r.traj.Samples(), 0)
	if err != nil {
		pa.verdicts.Unclassified++
		return
	}
	switch v {
	case queueing.VerdictDiverging:
		pa.verdicts.Diverging++
	case queueing.VerdictConverged:
		pa.verdicts.Converged++
	case queueing.VerdictStabilized:
		pa.verdicts.Stabilized++
	}
}
