package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"qarv/internal/delay"
	"qarv/internal/geom"
	"qarv/internal/policy"
	"qarv/internal/quality"
	"qarv/internal/queueing"
)

// testUtility is a tiny deterministic utility model for fleet tests.
type testUtility struct{}

func (testUtility) Utility(d int) float64 { return float64(d) }
func (testUtility) Name() string          { return "linear" }

var _ quality.UtilityModel = testUtility{}

// testCost charges Scale work units per depth unit.
type testCost struct{ Scale float64 }

func (c testCost) FrameCost(d int) float64 { return c.Scale * float64(d) }
func (c testCost) Name() string            { return "linear" }

var _ delay.CostModel = testCost{}

// fixedProfile builds a single-class profile: FixedDepth(depth) against a
// constant service rate — stable when depth·scale < rate.
func fixedProfile(name string, weight, scale, rate float64, depth int) Profile {
	return Profile{
		Name:   name,
		Weight: weight,
		NewPolicy: func(*geom.RNG) (policy.Policy, error) {
			return &policy.FixedDepth{Depth: depth}, nil
		},
		Cost:    testCost{Scale: scale},
		Utility: testUtility{},
		NewService: func(*geom.RNG) delay.ServiceProcess {
			return &delay.ConstantService{Rate: rate}
		},
	}
}

func TestSpecValidation(t *testing.T) {
	ok := fixedProfile("a", 1, 1, 12, 10)
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"no sessions", Spec{Slots: 10, Profiles: []Profile{ok}}, ErrNoSessions},
		{"no slots", Spec{Sessions: 1, Profiles: []Profile{ok}}, ErrBadSlots},
		{"bad churn", Spec{Sessions: 1, Slots: 10, Churn: 1, Profiles: []Profile{ok}}, ErrBadChurn},
		{"no profiles", Spec{Sessions: 1, Slots: 10}, ErrNoProfiles},
	}
	for _, c := range cases {
		if _, err := Run(c.spec); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}

	bad := ok
	bad.Weight = 0
	if _, err := Run(Spec{Sessions: 1, Slots: 10, Profiles: []Profile{bad}}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight: got %v", err)
	}
	bad = ok
	bad.NewPolicy = nil
	if _, err := Run(Spec{Sessions: 1, Slots: 10, Profiles: []Profile{bad}}); !errors.Is(err, ErrNilPolicy) {
		t.Errorf("nil policy factory: got %v", err)
	}
	bad = ok
	bad.NewService = nil
	if _, err := Run(Spec{Sessions: 1, Slots: 10, Profiles: []Profile{bad}}); !errors.Is(err, ErrNilService) {
		t.Errorf("nil service factory: got %v", err)
	}
	bad = ok
	bad.Cost = nil
	if _, err := Run(Spec{Sessions: 1, Slots: 10, Profiles: []Profile{bad}}); !errors.Is(err, ErrNilCost) {
		t.Errorf("nil cost: got %v", err)
	}
	bad = ok
	bad.Utility = nil
	if _, err := Run(Spec{Sessions: 1, Slots: 10, Profiles: []Profile{bad}}); !errors.Is(err, ErrNilUtility) {
		t.Errorf("nil utility: got %v", err)
	}
}

// normalize clears the wall-clock fields (and the shard count, which is
// an execution detail) so reports can be compared byte-for-byte.
func normalize(r *Report) *Report {
	r.Elapsed = 0
	r.DeviceSlotsPerSec = 0
	r.Shards = 0
	return r
}

// TestDeterminismAcrossShardCounts pins the engine's core contract: the
// same Spec and Seed produce a byte-identical report whether the fleet
// runs on 1 shard or many, and across repeated runs. The workloads here
// are integer-valued on purpose — float64 sums over integers are exact,
// so even the Mean/DroppedWork fields must match byte-for-byte; with
// fractional workloads those two fields are only identical up to FP
// association order across shard counts (see the package comment).
func TestDeterminismAcrossShardCounts(t *testing.T) {
	mix := []Profile{
		fixedProfile("stable", 3, 1, 12, 10),
		fixedProfile("diverging", 1, 1, 8, 10),
	}
	// Make one class stochastic so the RNG plumbing is exercised.
	mix[0].NewArrivals = func(rng *geom.RNG) queueing.ArrivalProcess {
		return &queueing.PoissonArrivals{Mean: 1.1, RNG: rng}
	}
	base := Spec{Sessions: 40, Slots: 120, Churn: 0.01, Seed: 5, Profiles: mix}

	var want []byte
	for _, shards := range []int{1, 3, 8} {
		spec := base
		spec.Shards = shards
		rep, err := Run(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := json.Marshal(normalize(rep))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("shards=%d: report differs from shards=1 run", shards)
		}
	}

	// And a different seed must actually change the outcome.
	spec := base
	spec.Seed = 6
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(normalize(rep))
	if string(got) == string(want) {
		t.Error("different seed produced an identical report")
	}
}

// TestChurnAccounting verifies the seat/session bookkeeping: total
// device-time is exactly seats × slots however many sessions churn
// through, every departure backfills, and lifetimes shorten as the
// hazard grows.
func TestChurnAccounting(t *testing.T) {
	prof := fixedProfile("a", 1, 1, 12, 10)
	const seats, slots = 50, 200

	noChurn, err := Run(Spec{Sessions: seats, Slots: slots, Profiles: []Profile{prof}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if noChurn.Total.Sessions != seats || noChurn.Total.Departures != 0 {
		t.Errorf("churn=0: sessions=%d departures=%d, want %d/0",
			noChurn.Total.Sessions, noChurn.Total.Departures, seats)
	}

	churned, err := Run(Spec{Sessions: seats, Slots: slots, Churn: 0.05, Profiles: []Profile{prof}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tot := churned.Total
	if tot.DeviceSlots != seats*slots {
		t.Errorf("device-slots %d, want %d (must be invariant under churn)", tot.DeviceSlots, seats*slots)
	}
	if tot.Sessions <= seats {
		t.Errorf("sessions %d under 5%% churn, want > %d seats", tot.Sessions, seats)
	}
	// Each seat runs a chain: every session except possibly the last per
	// seat departed, and a departure at the exact horizon end leaves no
	// replacement — so live sessions at the end ≤ seats.
	if live := tot.Sessions - tot.Departures; live < 0 || live > seats {
		t.Errorf("sessions-departures = %d, want within [0, %d]", live, seats)
	}
	// Mean lifetime 1/0.05 = 20 slots → roughly slots/20 sessions per
	// seat; sanity-bound it loosely.
	if tot.Sessions < 5*seats {
		t.Errorf("sessions %d, expected roughly %d at 5%% churn", tot.Sessions, 10*seats)
	}
}

// TestVerdictCounts: a mixed fleet of known-stable and known-diverging
// classes must classify every session accordingly.
func TestVerdictCounts(t *testing.T) {
	rep, err := Run(Spec{
		Sessions: 24, Slots: 400, Seed: 2,
		Profiles: []Profile{
			fixedProfile("drain", 1, 1, 12, 10),    // service > work: converges
			fixedProfile("overload", 1, 1, 8, 10),  // work > service: diverges
			fixedProfile("critical", 1, 1, 10, 10), // work = service: bounded at 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerProfile) != 3 {
		t.Fatalf("got %d profile rows, want 3", len(rep.PerProfile))
	}
	for _, p := range rep.PerProfile {
		switch p.Name {
		case "drain", "critical":
			if p.Verdicts.Diverging != 0 || p.Verdicts.Converged != p.Sessions {
				t.Errorf("%s: verdicts %+v, want all %d converged", p.Name, p.Verdicts, p.Sessions)
			}
			if p.Backlog.Max != 0 {
				t.Errorf("%s: max backlog %v, want 0", p.Name, p.Backlog.Max)
			}
		case "overload":
			if p.Verdicts.Diverging != p.Sessions {
				t.Errorf("overload: verdicts %+v, want all %d diverging", p.Verdicts, p.Sessions)
			}
			// Deterministic overload: backlog grows by exactly 2/slot.
			if want := float64(2 * (400 - 1)); p.Backlog.Max != want {
				t.Errorf("overload: max backlog %v, want %v", p.Backlog.Max, want)
			}
		}
	}
	// Profile rows are sorted by name and sum to the fleet total.
	if rep.PerProfile[0].Name != "critical" || rep.PerProfile[1].Name != "drain" || rep.PerProfile[2].Name != "overload" {
		t.Errorf("profile rows not sorted: %s/%s/%s",
			rep.PerProfile[0].Name, rep.PerProfile[1].Name, rep.PerProfile[2].Name)
	}
	var sessions, deviceSlots int64
	for _, p := range rep.PerProfile {
		sessions += p.Sessions
		deviceSlots += p.DeviceSlots
	}
	if sessions != rep.Total.Sessions || deviceSlots != rep.Total.DeviceSlots {
		t.Errorf("per-profile sums (%d, %d) != total (%d, %d)",
			sessions, deviceSlots, rep.Total.Sessions, rep.Total.DeviceSlots)
	}
}

// TestFlatMemoryPerSession pins the no-per-frame-retention claim at the
// runner level: after a very long stable session, every piece of
// per-session state is bounded — the frame queue holds only frames in
// flight, the trajectory buffer is capped, and the sketches' bucket
// tables sit far below their hard cap.
func TestFlatMemoryPerSession(t *testing.T) {
	prof := fixedProfile("stable", 1, 1, 12, 10)
	pa := newProfileAccum(0.01)
	sess := newSessionRunner()
	rng := geom.NewRNG(1)
	if err := sess.reset(&prof, rng.Split(), rng.Split(), rng.Split()); err != nil {
		t.Fatal(err)
	}
	const slots = 200_000
	for t := 0; t < slots; t++ {
		sess.step(t, pa)
	}
	if n := sess.frames.Len(); n > 4 {
		t.Errorf("frame queue holds %d frames after %d slots, want O(frames in flight)", n, slots)
	}
	if n := len(sess.traj.Samples()); n > trajCap {
		t.Errorf("trajectory buffer %d exceeds cap %d", n, trajCap)
	}
	for name, sk := range map[string]interface{ BucketCount() int }{
		"sojourn": pa.sojourn, "backlog": pa.backlog, "utility": pa.utility,
	} {
		if n := sk.BucketCount(); n > 2048 {
			t.Errorf("%s sketch grew to %d buckets over %d slots", name, n, slots)
		}
	}
	if pa.deviceSlots != slots {
		t.Errorf("deviceSlots %d, want %d", pa.deviceSlots, slots)
	}
}

// TestBoundedBacklogDrops: a profile with MaxBacklog must propagate
// overflow into dropped frames/work, exactly as sim runs do.
func TestBoundedBacklogDrops(t *testing.T) {
	prof := fixedProfile("bounded", 1, 1, 8, 10) // overloaded by 2/slot
	prof.MaxBacklog = 20
	// Five 10-unit frames per slot against a 20-unit bound: overflow
	// removes whole frames from the tail, not just partial trims.
	prof.NewArrivals = func(*geom.RNG) queueing.ArrivalProcess {
		return &queueing.DeterministicArrivals{PerSlot: 5}
	}
	rep, err := Run(Spec{Sessions: 4, Slots: 300, Profiles: []Profile{prof}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Total
	if tot.DroppedWork == 0 || tot.FramesDropped == 0 {
		t.Errorf("bounded overload dropped nothing: work=%v frames=%d", tot.DroppedWork, tot.FramesDropped)
	}
	if tot.Backlog.Max > 20 {
		t.Errorf("max backlog %v exceeds bound 20", tot.Backlog.Max)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Spec{
		Sessions: 100, Slots: 10_000, Seed: 1,
		Profiles: []Profile{fixedProfile("a", 1, 1, 12, 10)},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestPolicyFactoryError: a failing factory aborts the run with a seat-
// and profile-annotated error.
func TestPolicyFactoryError(t *testing.T) {
	prof := fixedProfile("broken", 1, 1, 12, 10)
	boom := errors.New("boom")
	prof.NewPolicy = func(*geom.RNG) (policy.Policy, error) { return nil, boom }
	_, err := Run(Spec{Sessions: 4, Slots: 10, Profiles: []Profile{prof}, Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

// TestPolicyFactoryErrorNotMaskedByShards: when one shard's factory
// fails, the cancellations it fans out to sibling shards must not mask
// the root cause (regression: the first shard by index used to win).
func TestPolicyFactoryErrorNotMaskedByShards(t *testing.T) {
	boom := errors.New("boom")
	good := fixedProfile("good", 1, 1, 12, 10)
	// Rare failing class: weight keeps it off most seats, so the shard
	// that draws it errors while others run (long horizon) until the
	// cancel fan-out reaches them.
	bad := fixedProfile("bad", 0.02, 1, 12, 10)
	bad.NewPolicy = func(*geom.RNG) (policy.Policy, error) { return nil, boom }
	_, err := Run(Spec{
		Sessions: 64, Slots: 500_000, Shards: 8, Seed: 1,
		Profiles: []Profile{good, bad},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the factory error, not a derived cancellation", err)
	}
}

// TestThroughputFields: the wall-clock fields are populated and the
// device-slot count matches the spec.
func TestThroughputFields(t *testing.T) {
	rep, err := Run(Spec{
		Sessions: 32, Slots: 100, Seed: 1,
		Profiles: []Profile{fixedProfile("a", 1, 1, 12, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.DeviceSlots != 3200 {
		t.Errorf("device-slots %d, want 3200", rep.Total.DeviceSlots)
	}
	if rep.Elapsed <= 0 || rep.DeviceSlotsPerSec <= 0 {
		t.Errorf("throughput fields unset: elapsed=%v rate=%v", rep.Elapsed, rep.DeviceSlotsPerSec)
	}
	if rep.Seats != 32 || rep.Slots != 100 || rep.Seed != 1 {
		t.Errorf("spec echo wrong: %+v", rep)
	}
}
