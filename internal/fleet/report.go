package fleet

import (
	"fmt"
	"sort"
	"time"

	"qarv/internal/obs"
	"qarv/internal/stats"
)

// QuantileSummary condenses one metric's fleet-wide distribution out of
// a quantile sketch: exact count/mean/min/max plus the P50/P95/P99
// estimates (each within the spec's Accuracy of the true quantile).
type QuantileSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func summarize(s *stats.QuantileSketch) QuantileSummary {
	return QuantileSummary{
		Count: s.Count(),
		Mean:  s.Mean(),
		Min:   s.Min(),
		Max:   s.Max(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// VerdictCounts tallies per-session stability classifications
// (queueing.ClassifyTrajectory over each session's decimated backlog
// trajectory). Unclassified counts sessions too short to judge.
type VerdictCounts struct {
	Diverging    int64 `json:"diverging"`
	Converged    int64 `json:"converged"`
	Stabilized   int64 `json:"stabilized"`
	Unclassified int64 `json:"unclassified"`
}

// add folds o into v.
func (v *VerdictCounts) add(o VerdictCounts) {
	v.Diverging += o.Diverging
	v.Converged += o.Converged
	v.Stabilized += o.Stabilized
	v.Unclassified += o.Unclassified
}

// ProfileReport is the merged accounting of every session of one device
// class (or of the whole fleet, for Report.Total).
type ProfileReport struct {
	Name string `json:"name"`
	// Sessions simulated (> seat count when churn replaced departures)
	// and how many of them departed early.
	Sessions   int64 `json:"sessions"`
	Departures int64 `json:"departures"`
	// DeviceSlots is the total simulated device-time in slots.
	DeviceSlots int64 `json:"device_slots"`
	// Frame accounting across all sessions.
	FramesCompleted int64   `json:"frames_completed"`
	FramesDropped   int64   `json:"frames_dropped"`
	DroppedWork     float64 `json:"dropped_work"`
	// Sojourn is the distribution of completed frames' queueing+service
	// delay (slots); Backlog and Utility are the distributions of the
	// per-slot backlog Q(t) and chosen quality pa(d(t)).
	Sojourn QuantileSummary `json:"sojourn"`
	Backlog QuantileSummary `json:"backlog"`
	Utility QuantileSummary `json:"utility"`
	// Verdicts tallies session stability classifications.
	Verdicts VerdictCounts `json:"verdicts"`
}

// Report is the merged result of one fleet run. Every field except
// Elapsed and DeviceSlotsPerSec is deterministic for a given Spec and
// Seed and independent of scheduling. Across different shard counts,
// counters, quantiles, min/max, and verdicts are identical as well;
// the float-sum-backed Mean and DroppedWork fields can differ in the
// last bits because shard boundaries regroup float additions (see the
// package comment).
type Report struct {
	// Echo of the run shape.
	Seats  int     `json:"seats"`
	Slots  int     `json:"slots"`
	Shards int     `json:"shards"`
	Churn  float64 `json:"churn"`
	Seed   uint64  `json:"seed"`
	// Total aggregates the whole fleet; PerProfile breaks it down by
	// device class (sorted by profile name).
	Total      ProfileReport   `json:"total"`
	PerProfile []ProfileReport `json:"per_profile"`
	// Throughput of the engine itself (wall clock; not deterministic).
	Elapsed           time.Duration `json:"elapsed_ns"`
	DeviceSlotsPerSec float64       `json:"device_slots_per_sec"`
	// Metrics is the merged telemetry snapshot when Spec.Metrics was
	// set; nil otherwise. Deliberately excluded from the report's JSON
	// so telemetry-on and telemetry-off reports marshal byte-identically
	// — export it separately with Snapshot.EncodeJSON or WriteProm.
	Metrics *obs.Snapshot `json:"-"`
}

// profileAccum is one device class's streaming accumulator within a
// shard: counters plus the three mergeable sketches. All O(1) memory.
type profileAccum struct {
	sessions        int64
	departures      int64
	deviceSlots     int64
	framesCompleted int64
	framesDropped   int64
	droppedWork     float64
	sojourn         *stats.QuantileSketch
	backlog         *stats.QuantileSketch
	utility         *stats.QuantileSketch
	verdicts        VerdictCounts
}

func newProfileAccum(accuracy float64) *profileAccum {
	return &profileAccum{
		sojourn: stats.NewQuantileSketch(accuracy),
		backlog: stats.NewQuantileSketch(accuracy),
		utility: stats.NewQuantileSketch(accuracy),
	}
}

// merge folds o into p (lossless sketch merges).
func (p *profileAccum) merge(o *profileAccum) error {
	p.sessions += o.sessions
	p.departures += o.departures
	p.deviceSlots += o.deviceSlots
	p.framesCompleted += o.framesCompleted
	p.framesDropped += o.framesDropped
	p.droppedWork += o.droppedWork
	p.verdicts.add(o.verdicts)
	if err := p.sojourn.Merge(o.sojourn); err != nil {
		return err
	}
	if err := p.backlog.Merge(o.backlog); err != nil {
		return err
	}
	return p.utility.Merge(o.utility)
}

func (p *profileAccum) report(name string) ProfileReport {
	return ProfileReport{
		Name:            name,
		Sessions:        p.sessions,
		Departures:      p.departures,
		DeviceSlots:     p.deviceSlots,
		FramesCompleted: p.framesCompleted,
		FramesDropped:   p.framesDropped,
		DroppedWork:     p.droppedWork,
		Sojourn:         summarize(p.sojourn),
		Backlog:         summarize(p.backlog),
		Utility:         summarize(p.utility),
		Verdicts:        p.verdicts,
	}
}

// fleetAccum is one shard's full accumulator: a profileAccum per device
// class, created lazily as the shard's seats first draw each class.
type fleetAccum struct {
	accuracy float64
	profiles map[string]*profileAccum
	// metrics is the shard's telemetry registry; nil when Spec.Metrics
	// is nil. Created with the target registry's accuracy so the final
	// merge can never mismatch.
	metrics *obs.Registry
}

func newFleetAccum(spec *Spec) *fleetAccum {
	a := &fleetAccum{
		accuracy: spec.Accuracy,
		profiles: make(map[string]*profileAccum, len(spec.Profiles)),
	}
	if spec.Metrics != nil {
		a.metrics = obs.NewRegistryAccuracy(spec.Metrics.Accuracy())
	}
	return a
}

func (a *fleetAccum) profile(name string) *profileAccum {
	p, ok := a.profiles[name]
	if !ok {
		p = newProfileAccum(a.accuracy)
		a.profiles[name] = p
	}
	return p
}

// merge folds another shard's accumulator into a, profile by profile
// in name order — sketch merges are commutative, but a fixed order
// keeps the first error (and any future order-sensitive accumulator)
// deterministic across runs.
func (a *fleetAccum) merge(o *fleetAccum) error {
	names := make([]string, 0, len(o.profiles))
	for name := range o.profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := a.profile(name).merge(o.profiles[name]); err != nil {
			return fmt.Errorf("fleet: merging profile %q: %w", name, err)
		}
	}
	if err := a.metrics.Merge(o.metrics); err != nil {
		return fmt.Errorf("fleet: merging shard telemetry: %w", err)
	}
	return nil
}

// report assembles the final Report: per-profile rows sorted by name,
// then merged once more into the fleet-wide Total.
func (a *fleetAccum) report(spec *Spec, shards int, elapsed time.Duration) *Report {
	names := make([]string, 0, len(a.profiles))
	for name := range a.profiles {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := &Report{
		Seats:   spec.Sessions,
		Slots:   spec.Slots,
		Shards:  shards,
		Churn:   spec.Churn,
		Seed:    spec.Seed,
		Elapsed: elapsed,
	}
	total := newProfileAccum(spec.Accuracy)
	for _, name := range names {
		p := a.profiles[name]
		rep.PerProfile = append(rep.PerProfile, p.report(name))
		// Lossless: same-accuracy sketches merge without extra error.
		if err := total.merge(p); err != nil {
			// Unreachable: every accumulator shares spec.Accuracy.
			panic(err)
		}
	}
	rep.Total = total.report("fleet")
	if secs := elapsed.Seconds(); secs > 0 {
		rep.DeviceSlotsPerSec = float64(rep.Total.DeviceSlots) / secs
	}
	return rep
}
