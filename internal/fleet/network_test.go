package fleet

import (
	"encoding/json"
	"testing"

	"qarv/internal/delay"
	"qarv/internal/geom"
	"qarv/internal/netem"
)

// networkMix is a fleet whose device classes differ only in their
// *network*: the same fixed policy and cost everywhere, but four
// capacity regimes — static, Markov-modulated, trace replay, and
// mobility handoffs. The netem bandwidth processes implement
// delay.ServiceProcess directly, so they drop into Profile.NewService
// with no adapter.
func networkMix() []Profile {
	static := fixedProfile("static", 1, 1, 12, 10)

	markov := fixedProfile("markov", 1, 1, 12, 10)
	markov.NewService = func(rng *geom.RNG) delay.ServiceProcess {
		return &netem.MarkovBandwidth{
			GoodRate: 14, BadRate: 6,
			PGoodBad: 0.1, PBadGood: 0.2,
			RNG: rng,
		}
	}

	traced := fixedProfile("trace", 1, 1, 12, 10)
	traced.NewService = func(*geom.RNG) delay.ServiceProcess {
		return &netem.TraceBandwidth{
			Points: []netem.TracePoint{
				{Slot: 0, BytesPerSlot: 14},
				{Slot: 30, BytesPerSlot: 8},
				{Slot: 60, BytesPerSlot: 12},
			},
			Period: 90,
		}
	}

	// The cell scale stays pinned (ScaleLo=ScaleHi=0 ⇒ 1) so every
	// service amount is integer-valued and even the float-sum-backed
	// Mean fields are exact across shard regroupings; the outage gap is
	// what distinguishes the class here.
	handoff := fixedProfile("handoff", 1, 1, 12, 10)
	handoff.NewService = func(rng *geom.RNG) delay.ServiceProcess {
		return &netem.HandoffBandwidth{
			BaseRate:          12,
			MeanIntervalSlots: 40,
			OutageSlots:       2,
			RNG:               rng,
		}
	}

	return []Profile{static, markov, traced, handoff}
}

// TestNetworkMixDeterministicAcrossShardCounts pins the dynamic-network
// acceptance criterion: a fleet mixing four network classes (static,
// Markov, trace-driven, handoff) is byte-deterministic per seed
// independent of the shard count. Integer rates keep even the
// float-sum-backed fields exact, as in TestDeterminismAcrossShardCounts.
func TestNetworkMixDeterministicAcrossShardCounts(t *testing.T) {
	base := Spec{Sessions: 48, Slots: 150, Churn: 0.005, Seed: 11, Profiles: networkMix()}

	var want []byte
	for _, shards := range []int{1, 3, 8} {
		spec := base
		spec.Shards = shards
		rep, err := Run(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// Every class must have been drawn, or the mix isn't exercised.
		if len(rep.PerProfile) != 4 {
			t.Fatalf("shards=%d: %d profiles in report, want 4", shards, len(rep.PerProfile))
		}
		for _, p := range rep.PerProfile {
			if p.Sessions == 0 {
				t.Fatalf("shards=%d: class %q drew no sessions", shards, p.Name)
			}
		}
		got, err := json.Marshal(normalize(rep))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("shards=%d: network-mix report differs from shards=1 run", shards)
		}
	}

	// The network actually differentiates the classes: the handoff
	// class (outages) must not match the static class on backlog.
	rep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProfileReport{}
	for _, p := range rep.PerProfile {
		byName[p.Name] = p
	}
	if byName["handoff"].Backlog.Max <= byName["static"].Backlog.Max {
		t.Errorf("handoff outages left no backlog trace: handoff max %v vs static max %v",
			byName["handoff"].Backlog.Max, byName["static"].Backlog.Max)
	}
}
