package fleet_test

import (
	"context"
	"math"
	"sort"
	"testing"

	"qarv"
	"qarv/internal/delay"
	"qarv/internal/fleet"
	"qarv/internal/geom"
	"qarv/internal/policy"
	"qarv/internal/queueing"
)

// The fleet engine re-implements sim's per-device slot loop in streaming
// form, so its aggregates must not merely resemble Session.Run's — they
// must match it exactly. This property test runs a tiny stochastic fleet
// (Poisson arrivals, noisy service, drift-plus-penalty controller), then
// replays every seat as an individual qarv Session built from the same
// RNG streams (fleet.SeatSeed documents the seat→stream derivation) and
// checks that the merged fleet report equals the per-session reports on
// every exact aggregate — and that the sketched quantiles sit within the
// sketch's error bound of the exact per-frame quantiles.

const (
	consistSeed    = 99
	consistSeats   = 6
	consistSlots   = 120
	consistAcc     = 0.005
	consistArrMean = 1.2
	consistSvcMean = 200.0
	consistSvcStd  = 25.0
	consistV       = 800.0
)

// consistModels builds the shared depth→cost/utility tables: an
// exponential occupancy profile over depths 3..8 (cost 2^d).
func consistModels(t *testing.T) (qarv.UtilityModel, qarv.CostModel, []int) {
	t.Helper()
	occupancy := make([]int, 9)
	for i := range occupancy {
		occupancy[i] = 1 << uint(i)
	}
	util, err := qarv.NewLogPointUtility(occupancy)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := qarv.NewPointCostModel(occupancy, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return util, cost, []int{3, 4, 5, 6, 7, 8}
}

func consistController(t *testing.T, util qarv.UtilityModel, cost qarv.CostModel, depths []int) *qarv.Controller {
	t.Helper()
	ctrl, err := qarv.NewController(qarv.ControllerConfig{
		V: consistV, Depths: depths, Utility: util, Cost: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestFleetMatchesSessionRuns(t *testing.T) {
	util, cost, depths := consistModels(t)

	spec := fleet.Spec{
		Sessions: consistSeats,
		Slots:    consistSlots,
		Shards:   3,
		Seed:     consistSeed,
		Accuracy: consistAcc,
		Profiles: []fleet.Profile{{
			Name:   "proposed",
			Weight: 1,
			NewPolicy: func(*geom.RNG) (policy.Policy, error) {
				return consistController(t, util, cost, depths), nil
			},
			Cost:    cost,
			Utility: util,
			NewArrivals: func(rng *geom.RNG) queueing.ArrivalProcess {
				return &qarv.PoissonArrivals{Mean: consistArrMean, RNG: rng}
			},
			NewService: func(rng *geom.RNG) delay.ServiceProcess {
				return &qarv.NoisyService{Mean: consistSvcMean, Std: consistSvcStd, RNG: rng}
			},
		}},
	}

	rep, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Replay each seat as a standalone Session built from the same RNG
	// stream layout: one profile draw, then arrivals/service/policy
	// child streams, in that order.
	var (
		framesCompleted int64
		backlogSum      float64
		utilitySum      float64
		sojourns        []float64
		maxSojourn      float64
		verdicts        = map[qarv.Verdict]int64{}
	)
	for seat := 0; seat < consistSeats; seat++ {
		rng := geom.NewRNG(fleet.SeatSeed(consistSeed, seat))
		rng.Float64() // the profile draw
		arrRNG, svcRNG, _ := rng.Split(), rng.Split(), rng.Split()
		sess, err := qarv.NewSession(
			qarv.WithPolicy(consistController(t, util, cost, depths)),
			qarv.WithArrivals(&qarv.PoissonArrivals{Mean: consistArrMean, RNG: arrRNG}),
			qarv.WithService(&qarv.NoisyService{Mean: consistSvcMean, Std: consistSvcStd, RNG: svcRNG}),
			qarv.WithCost(cost), qarv.WithUtility(util),
			qarv.WithSlots(consistSlots),
		)
		if err != nil {
			t.Fatalf("seat %d: %v", seat, err)
		}
		srep, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("seat %d: %v", seat, err)
		}
		res := srep.Sim
		framesCompleted += int64(len(res.Completed))
		for _, c := range res.Completed {
			s := float64(c.Sojourn)
			sojourns = append(sojourns, s)
			if s > maxSojourn {
				maxSojourn = s
			}
		}
		for _, q := range res.Backlog {
			backlogSum += q
		}
		for _, u := range res.Utility {
			utilitySum += u
		}
		verdicts[srep.Verdict]++
	}

	tot := rep.Total
	if tot.Sessions != consistSeats || tot.DeviceSlots != consistSeats*consistSlots {
		t.Fatalf("sessions/device-slots %d/%d, want %d/%d",
			tot.Sessions, tot.DeviceSlots, consistSeats, consistSeats*consistSlots)
	}
	if tot.FramesCompleted != framesCompleted {
		t.Errorf("frames completed %d, want %d", tot.FramesCompleted, framesCompleted)
	}
	if tot.Sojourn.Count != uint64(framesCompleted) {
		t.Errorf("sojourn samples %d, want %d", tot.Sojourn.Count, framesCompleted)
	}
	if tot.Sojourn.Max != maxSojourn {
		t.Errorf("max sojourn %v, want %v (exact)", tot.Sojourn.Max, maxSojourn)
	}
	slots := float64(consistSeats * consistSlots)
	if got, want := tot.Backlog.Mean, backlogSum/slots; !closeRel(got, want, 1e-12) {
		t.Errorf("mean backlog %v, want %v (exact)", got, want)
	}
	if got, want := tot.Utility.Mean, utilitySum/slots; !closeRel(got, want, 1e-12) {
		t.Errorf("mean utility %v, want %v (exact)", got, want)
	}
	if got := tot.Verdicts; got.Diverging != verdicts[qarv.VerdictDiverging] ||
		got.Converged != verdicts[qarv.VerdictConverged] ||
		got.Stabilized != verdicts[qarv.VerdictStabilized] {
		t.Errorf("verdicts %+v, want session verdicts %v", got, verdicts)
	}

	// Sketched quantiles vs exact per-frame quantiles, within the bound.
	sort.Float64s(sojourns)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		rank := int(math.Ceil(q * float64(len(sojourns)-1)))
		exact := sojourns[rank]
		var got float64
		switch q {
		case 0.5:
			got = tot.Sojourn.P50
		case 0.95:
			got = tot.Sojourn.P95
		default:
			got = tot.Sojourn.P99
		}
		if math.Abs(got-exact) > consistAcc*exact+1e-6 {
			t.Errorf("sojourn P%g: sketch %v vs exact %v exceeds %v relative error",
				q*100, got, exact, consistAcc)
		}
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
