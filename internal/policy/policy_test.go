package policy

import (
	"errors"
	"testing"

	"qarv/internal/delay"
	"qarv/internal/geom"
)

var testDepths = []int{7, 5, 10, 6, 9, 8} // deliberately unsorted

func TestMaxMinDepth(t *testing.T) {
	max, err := NewMaxDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	min, err := NewMinDepth(testDepths)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 1e3, 1e9} {
		if max.Decide(0, q) != 10 {
			t.Errorf("max at Q=%v: %d", q, max.Decide(0, q))
		}
		if min.Decide(0, q) != 5 {
			t.Errorf("min at Q=%v: %d", q, min.Decide(0, q))
		}
	}
	if max.Name() != "only max-Depth" || min.Name() != "only min-Depth" {
		t.Error("baseline names must match the paper's labels")
	}
	if _, err := NewMaxDepth(nil); !errors.Is(err, ErrNoDepths) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := NewMinDepth(nil); !errors.Is(err, ErrNoDepths) {
		t.Errorf("empty set: %v", err)
	}
}

func TestFixedDepth(t *testing.T) {
	p := &FixedDepth{Depth: 8}
	if p.Decide(5, 1e6) != 8 {
		t.Error("fixed depth must ignore inputs")
	}
	if p.Name() != "fixed-depth(8)" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestRandomStaysInSet(t *testing.T) {
	p, err := NewRandom(testDepths, geom.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	valid := map[int]bool{5: true, 6: true, 7: true, 8: true, 9: true, 10: true}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		d := p.Decide(i, 0)
		if !valid[d] {
			t.Fatalf("random produced %d outside the set", d)
		}
		seen[d] = true
	}
	if len(seen) < 4 {
		t.Errorf("random hit only %d depths in 1000 draws", len(seen))
	}
	nilRNG, err := NewRandom(testDepths, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nilRNG.Decide(0, 0) != 5 {
		t.Error("nil-RNG random must degrade to the first depth")
	}
}

func TestThresholdHysteresis(t *testing.T) {
	p, err := NewThreshold(testDepths, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Starts deep; low backlog holds (already at top).
	if d := p.Decide(0, 50); d != 10 {
		t.Errorf("initial = %d", d)
	}
	// High backlog steps down one per slot.
	if d := p.Decide(1, 5000); d != 9 {
		t.Errorf("step down = %d", d)
	}
	if d := p.Decide(2, 5000); d != 8 {
		t.Errorf("step down 2 = %d", d)
	}
	// Mid-band holds.
	if d := p.Decide(3, 500); d != 8 {
		t.Errorf("hold = %d", d)
	}
	// Low backlog steps back up.
	if d := p.Decide(4, 10); d != 9 {
		t.Errorf("step up = %d", d)
	}
	// Bounded at the extremes.
	for i := 0; i < 20; i++ {
		p.Decide(5+i, 1e9)
	}
	if d := p.Decide(100, 1e9); d != 5 {
		t.Errorf("floor = %d", d)
	}
	if _, err := NewThreshold(testDepths, 10, 10); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("bad watermarks: %v", err)
	}
}

func TestBestFixed(t *testing.T) {
	profile := []int{1, 10, 100, 1000, 10000, 20000, 40000, 80000, 160000, 320000, 640000}
	cost, err := delay.NewPointCostModel(profile, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Service 50k: depths up to 6 (40k) are stable, 7 (80k) is not.
	p, err := BestFixed(testDepths, cost, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth != 6 {
		t.Errorf("best fixed = %d, want 6", p.Depth)
	}
	// Service below the cheapest candidate: nothing stabilizable.
	if _, err := BestFixed(testDepths, cost, 1); !errors.Is(err, ErrNoStable) {
		t.Errorf("no stable depth: %v", err)
	}
	if _, err := BestFixed(nil, cost, 50000); !errors.Is(err, ErrNoDepths) {
		t.Errorf("empty set: %v", err)
	}
}
