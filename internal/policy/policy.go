// Package policy defines the depth-selection policy interface shared by
// the simulator and implements the baselines the paper compares against
// (only max-Depth, only min-Depth) plus the extra reference policies used
// by the ablation experiments (fixed, random, hysteresis threshold, and
// the offline best-fixed oracle).
package policy

import (
	"errors"
	"fmt"
	"sort"

	"qarv/internal/core"
	"qarv/internal/delay"
	"qarv/internal/geom"
)

// Policy chooses an Octree depth each slot from the backlog observation.
// Implementations must be side-effect free with respect to the queue.
type Policy interface {
	// Decide returns the depth d(t) for slot t given backlog Q(t).
	Decide(slot int, backlog float64) int
	// Name identifies the policy in traces and figures.
	Name() string
}

// The drift-plus-penalty controller is itself a Policy.
var _ Policy = (*core.Controller)(nil)

// Policy construction errors.
var (
	ErrNoDepths     = errors.New("policy: empty depth set")
	ErrBadThreshold = errors.New("policy: high watermark must exceed low watermark")
	ErrNoStable     = errors.New("policy: no candidate depth is stabilizable at the given service rate")
)

func checkDepths(depths []int) ([]int, error) {
	if len(depths) == 0 {
		return nil, ErrNoDepths
	}
	out := make([]int, len(depths))
	copy(out, depths)
	sort.Ints(out)
	return out, nil
}

// MaxDepth always renders at the deepest candidate — the paper's
// "only max-Depth" control, which maximizes instantaneous quality and
// diverges when a(d_max) exceeds the service rate.
type MaxDepth struct {
	depth int
}

var _ Policy = (*MaxDepth)(nil)

// NewMaxDepth builds the baseline over the candidate set.
func NewMaxDepth(depths []int) (*MaxDepth, error) {
	ds, err := checkDepths(depths)
	if err != nil {
		return nil, err
	}
	return &MaxDepth{depth: ds[len(ds)-1]}, nil
}

// Decide implements Policy.
func (p *MaxDepth) Decide(int, float64) int { return p.depth }

// Name implements Policy.
func (p *MaxDepth) Name() string { return "only max-Depth" }

// MinDepth always renders at the shallowest candidate — the paper's
// "only min-Depth" control, which drains the queue but wastes quality.
type MinDepth struct {
	depth int
}

var _ Policy = (*MinDepth)(nil)

// NewMinDepth builds the baseline over the candidate set.
func NewMinDepth(depths []int) (*MinDepth, error) {
	ds, err := checkDepths(depths)
	if err != nil {
		return nil, err
	}
	return &MinDepth{depth: ds[0]}, nil
}

// Decide implements Policy.
func (p *MinDepth) Decide(int, float64) int { return p.depth }

// Name implements Policy.
func (p *MinDepth) Name() string { return "only min-Depth" }

// FixedDepth always picks one configured depth.
type FixedDepth struct {
	Depth int
}

var _ Policy = (*FixedDepth)(nil)

// Decide implements Policy.
func (p *FixedDepth) Decide(int, float64) int { return p.Depth }

// Name implements Policy.
func (p *FixedDepth) Name() string { return fmt.Sprintf("fixed-depth(%d)", p.Depth) }

// Random picks a uniform random candidate each slot — the naive reference
// showing that adaptation must be backlog-aware, not merely varied.
type Random struct {
	depths []int
	rng    *geom.RNG
}

var _ Policy = (*Random)(nil)

// NewRandom builds the baseline; rng must not be nil for variation (a nil
// rng degenerates to the first depth).
func NewRandom(depths []int, rng *geom.RNG) (*Random, error) {
	ds, err := checkDepths(depths)
	if err != nil {
		return nil, err
	}
	return &Random{depths: ds, rng: rng}, nil
}

// Decide implements Policy.
func (p *Random) Decide(int, float64) int {
	if p.rng == nil {
		return p.depths[0]
	}
	return p.depths[p.rng.Intn(len(p.depths))]
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Reseed replaces the policy's RNG — the hook qarv.WithSeed uses to
// drive every stochastic session component from one session seed.
func (p *Random) Reseed(rng *geom.RNG) { p.rng = rng }

// Clone returns a run-isolated copy: the candidate set stays shared
// (it is immutable after construction) but the RNG state is
// deep-copied, so a cloned run never advances the original's stream.
func (p *Random) Clone() *Random {
	if p == nil {
		return nil
	}
	c := *p
	c.rng = p.rng.Clone()
	return &c
}

// Threshold is a two-watermark hysteresis controller: while the backlog is
// below Low it steps the depth up one candidate; above High it steps down;
// in between it holds. This is the natural hand-tuned heuristic an engineer
// would write without the Lyapunov machinery; the ablations compare it to
// the drift-plus-penalty controller.
type Threshold struct {
	depths    []int
	low, high float64
	pos       int // current index into depths
}

var _ Policy = (*Threshold)(nil)

// NewThreshold builds the hysteresis baseline starting at the deepest
// candidate.
func NewThreshold(depths []int, low, high float64) (*Threshold, error) {
	ds, err := checkDepths(depths)
	if err != nil {
		return nil, err
	}
	if high <= low {
		return nil, fmt.Errorf("%w: low=%v high=%v", ErrBadThreshold, low, high)
	}
	return &Threshold{depths: ds, low: low, high: high, pos: len(ds) - 1}, nil
}

// Decide implements Policy. Unlike the stateless controller, Threshold
// carries the current depth position between slots.
func (p *Threshold) Decide(_ int, backlog float64) int {
	switch {
	case backlog > p.high && p.pos > 0:
		p.pos--
	case backlog < p.low && p.pos < len(p.depths)-1:
		p.pos++
	}
	return p.depths[p.pos]
}

// Name implements Policy.
func (p *Threshold) Name() string { return "threshold" }

// BestFixed returns the offline-optimal *fixed* depth for a known constant
// service rate: the deepest candidate whose per-slot workload stays within
// the service rate (so the queue is stable). It is the static oracle the
// adaptive controller should approach from above in quality.
func BestFixed(depths []int, cost delay.CostModel, serviceRate float64) (*FixedDepth, error) {
	ds, err := checkDepths(depths)
	if err != nil {
		return nil, err
	}
	best := -1
	for _, d := range ds {
		if cost.FrameCost(d) <= serviceRate {
			best = d
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("%w: rate %v", ErrNoStable, serviceRate)
	}
	return &FixedDepth{Depth: best}, nil
}
