package quality

import (
	"errors"
	"math"
	"testing"

	"qarv/internal/geom"
	"qarv/internal/octree"
	"qarv/internal/pointcloud"
)

func grid(n int, jitter float64, seed uint64) *pointcloud.Cloud {
	rng := geom.NewRNG(seed)
	c := &pointcloud.Cloud{Colors: []pointcloud.Color{}}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col := pointcloud.Color{R: uint8(40 + x*3), G: uint8(40 + y*3), B: 128}
			p := geom.V(float64(x)/float64(n), float64(y)/float64(n), 0)
			if jitter > 0 {
				p = p.Add(geom.V(rng.NormMeanStd(0, jitter), rng.NormMeanStd(0, jitter), 0))
			}
			c.Append(p, &col, nil)
		}
	}
	return c
}

func TestCompareGeometryIdentical(t *testing.T) {
	c := grid(20, 0, 1)
	rep, err := CompareGeometry(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE != 0 || rep.Hausdorff != 0 || rep.MeanDist != 0 {
		t.Errorf("identical clouds: %+v", rep)
	}
	if !math.IsInf(rep.PSNR, 1) {
		t.Errorf("identical PSNR = %v, want +Inf", rep.PSNR)
	}
}

func TestCompareGeometryDegradesWithDistortion(t *testing.T) {
	ref := grid(25, 0, 2)
	small := grid(25, 0.002, 3)
	large := grid(25, 0.02, 4)
	repSmall, err := CompareGeometry(ref, small)
	if err != nil {
		t.Fatal(err)
	}
	repLarge, err := CompareGeometry(ref, large)
	if err != nil {
		t.Fatal(err)
	}
	if repSmall.MSE >= repLarge.MSE {
		t.Errorf("MSE not monotone in distortion: %v vs %v", repSmall.MSE, repLarge.MSE)
	}
	if repSmall.PSNR <= repLarge.PSNR {
		t.Errorf("PSNR not monotone: %v vs %v", repSmall.PSNR, repLarge.PSNR)
	}
	if repSmall.Hausdorff >= repLarge.Hausdorff {
		t.Errorf("Hausdorff not monotone: %v vs %v", repSmall.Hausdorff, repLarge.Hausdorff)
	}
}

func TestCompareGeometrySymmetricCatchesSubsets(t *testing.T) {
	// A proper subset has zero test->ref error; the symmetric metric must
	// still flag the missing coverage via the ref->test direction.
	ref := grid(20, 0, 5)
	subset := ref.Select([]int{0, 1, 2, 3, 4})
	rep, err := CompareGeometry(ref, subset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE == 0 || rep.Hausdorff == 0 {
		t.Errorf("subset reported as perfect: %+v", rep)
	}
}

func TestCompareGeometryEmpty(t *testing.T) {
	c := grid(3, 0, 6)
	if _, err := CompareGeometry(c, &pointcloud.Cloud{}); !errors.Is(err, ErrEmptyCloud) {
		t.Errorf("empty test: %v", err)
	}
	if _, err := CompareGeometry(&pointcloud.Cloud{}, c); !errors.Is(err, ErrEmptyCloud) {
		t.Errorf("empty ref: %v", err)
	}
}

func TestColorPSNR(t *testing.T) {
	ref := grid(15, 0, 7)
	if v, err := ColorPSNR(ref, ref); err != nil || !math.IsInf(v, 1) {
		t.Errorf("identical colors: %v, %v", v, err)
	}
	// Wash out colors: PSNR must drop to a finite value.
	noisy := ref.Clone()
	for i := range noisy.Colors {
		noisy.Colors[i].R += 40
	}
	v, err := ColorPSNR(ref, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(v, 1) || v > 40 || v < 5 {
		t.Errorf("shifted colors PSNR = %v", v)
	}
	bare := &pointcloud.Cloud{Points: ref.Points}
	if _, err := ColorPSNR(ref, bare); !errors.Is(err, ErrNoColors) {
		t.Errorf("colorless test: %v", err)
	}
}

func TestPointRatio(t *testing.T) {
	ref := grid(10, 0, 8)
	half := ref.UniformSubsample(2)
	r, err := PointRatio(ref, half)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0.4 || r > 0.6 {
		t.Errorf("ratio = %v, want ~0.5", r)
	}
	if _, err := PointRatio(&pointcloud.Cloud{}, ref); !errors.Is(err, ErrEmptyCloud) {
		t.Errorf("empty ref: %v", err)
	}
}

func TestPSNRIncreasesWithOctreeDepth(t *testing.T) {
	// The substantive Fig. 1 property: deeper LOD ⇒ higher geometry PSNR.
	rng := geom.NewRNG(9)
	cloud := &pointcloud.Cloud{}
	for i := 0; i < 4000; i++ {
		v := rng.UnitSphere()
		cloud.Append(v.Scale(1+0.02*rng.Norm()), nil, nil)
	}
	o, err := octree.Build(cloud, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := -math.MaxFloat64
	for _, d := range []int{3, 5, 7, 9} {
		lod, err := o.LOD(d, octree.LODCentroid)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := CompareGeometry(cloud, lod)
		if err != nil {
			t.Fatal(err)
		}
		if rep.PSNR <= prev {
			t.Errorf("PSNR not increasing at depth %d: %v <= %v", d, rep.PSNR, prev)
		}
		prev = rep.PSNR
	}
}

func TestUtilityModelsMonotone(t *testing.T) {
	profile := []int{1, 8, 60, 420, 2500, 9000, 20000, 31000, 36000}
	logU, err := NewLogPointUtility(profile)
	if err != nil {
		t.Fatal(err)
	}
	normU, err := NewNormalizedPointUtility(profile)
	if err != nil {
		t.Fatal(err)
	}
	psnrU, err := NewPSNRUtility([]float64{10, 14, 19, 25, 31, 38, 46, 55, 65}, 100)
	if err != nil {
		t.Fatal(err)
	}
	linU := &LinearDepthUtility{MaxDepth: 8}
	for _, m := range []UtilityModel{logU, normU, psnrU, linU} {
		prev := -math.MaxFloat64
		for d := 0; d <= 8; d++ {
			u := m.Utility(d)
			if u < prev {
				t.Errorf("%s not monotone at depth %d: %v < %v", m.Name(), d, u, prev)
			}
			prev = u
		}
		// Clamping: out-of-range depths must not panic and must clamp.
		if m.Utility(-5) > m.Utility(0) {
			t.Errorf("%s: negative depth exceeds depth 0", m.Name())
		}
		if m.Utility(100) < m.Utility(8) {
			t.Errorf("%s: overflow depth below max", m.Name())
		}
	}
}

func TestUtilityModelValidation(t *testing.T) {
	if _, err := NewLogPointUtility(nil); err == nil {
		t.Error("empty profile must error")
	}
	if _, err := NewLogPointUtility([]int{5, 3}); err == nil {
		t.Error("non-monotone profile must error")
	}
	if _, err := NewLogPointUtility([]int{-1}); err == nil {
		t.Error("negative occupancy must error")
	}
	if _, err := NewNormalizedPointUtility([]int{0, 0}); err == nil {
		t.Error("zero peak must error")
	}
	if _, err := NewPSNRUtility(nil, 0); err == nil {
		t.Error("empty PSNR profile must error")
	}
	if _, err := NewPSNRUtility([]float64{-2}, 0); err == nil {
		t.Error("negative PSNR must error")
	}
	// Inf entries are capped, not rejected.
	u, err := NewPSNRUtility([]float64{10, math.Inf(1)}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if u.Utility(1) != 80 {
		t.Errorf("capped Inf = %v, want 80", u.Utility(1))
	}
}

func TestLogUtilityDiminishingReturns(t *testing.T) {
	profile := []int{1, 10, 100, 1000, 10000}
	u, err := NewLogPointUtility(profile)
	if err != nil {
		t.Fatal(err)
	}
	// Equal point-count multiplications yield (approximately) equal utility
	// increments — the log law.
	d1 := u.Utility(2) - u.Utility(1)
	d2 := u.Utility(4) - u.Utility(3)
	// The +1 offset perturbs small counts slightly; allow a loose band.
	if math.Abs(d1-d2) > 0.2 {
		t.Errorf("log increments differ: %v vs %v", d1, d2)
	}
}
