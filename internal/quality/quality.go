// Package quality quantifies AR visualization quality. It provides (a) the
// geometric/color fidelity metrics used to report Fig. 1 (point counts,
// point-to-point PSNR, Hausdorff distance, color PSNR) and (b) the utility
// models pa(d) the Lyapunov controller maximizes — the paper's "quality of
// AR visualization with the Octree depth at d(τ)".
package quality

import (
	"errors"
	"fmt"
	"math"

	"qarv/internal/pointcloud"
)

// Metric errors; matchable with errors.Is.
var (
	ErrEmptyCloud = errors.New("quality: empty cloud")
	ErrNoColors   = errors.New("quality: cloud has no colors")
)

// GeometryReport summarizes geometric fidelity of a degraded cloud against
// a reference cloud.
type GeometryReport struct {
	// MSE is the symmetric mean squared point-to-point (D1) distance.
	MSE float64
	// PSNR is the geometry PSNR in dB with the reference bounding-box
	// diagonal as peak, the convention of MPEG point-cloud quality
	// evaluation. +Inf for identical clouds.
	PSNR float64
	// Hausdorff is the symmetric Hausdorff distance.
	Hausdorff float64
	// MeanDist is the symmetric mean point-to-point distance.
	MeanDist float64
}

// CompareGeometry computes a GeometryReport of test against ref using
// nearest-neighbour correspondences in both directions.
func CompareGeometry(ref, test *pointcloud.Cloud) (GeometryReport, error) {
	if ref.Len() == 0 || test.Len() == 0 {
		return GeometryReport{}, ErrEmptyCloud
	}
	refIdx := pointcloud.NewGridIndex(ref, 0)
	testIdx := pointcloud.NewGridIndex(test, 0)

	mseA, meanA, hausA := directedStats(test, refIdx) // test -> ref
	mseB, meanB, hausB := directedStats(ref, testIdx) // ref -> test

	mse := math.Max(mseA, mseB)
	peak := ref.Bounds().Size().Norm()
	psnr := math.Inf(1)
	if mse > 0 {
		psnr = 10 * math.Log10(peak*peak/mse)
	}
	return GeometryReport{
		MSE:       mse,
		PSNR:      psnr,
		Hausdorff: math.Max(hausA, hausB),
		MeanDist:  math.Max(meanA, meanB),
	}, nil
}

func directedStats(from *pointcloud.Cloud, toIdx *pointcloud.GridIndex) (mse, mean, haus float64) {
	for _, p := range from.Points {
		_, d2 := toIdx.Nearest(p)
		mse += d2
		d := math.Sqrt(d2)
		mean += d
		if d > haus {
			haus = d
		}
	}
	n := float64(from.Len())
	return mse / n, mean / n, haus
}

// ColorPSNR computes the luma PSNR of test against ref through
// nearest-neighbour correspondence (test -> ref). Returns +Inf when the
// corresponding lumas match exactly.
func ColorPSNR(ref, test *pointcloud.Cloud) (float64, error) {
	if ref.Len() == 0 || test.Len() == 0 {
		return 0, ErrEmptyCloud
	}
	if !ref.HasColors() || !test.HasColors() {
		return 0, ErrNoColors
	}
	refIdx := pointcloud.NewGridIndex(ref, 0)
	var mse float64
	for i, p := range test.Points {
		j, _ := refIdx.Nearest(p)
		d := test.Colors[i].Gray() - ref.Colors[j].Gray()
		mse += d * d
	}
	mse /= float64(test.Len())
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// PointRatio returns |test| / |ref|, the crude density-based quality proxy
// the paper's Fig. 1 caption appeals to ("the bigger the number of PCs
// introduces better visualization quality").
func PointRatio(ref, test *pointcloud.Cloud) (float64, error) {
	if ref.Len() == 0 {
		return 0, ErrEmptyCloud
	}
	return float64(test.Len()) / float64(ref.Len()), nil
}

// UtilityModel maps an Octree depth to the per-slot quality pa(d) that the
// drift-plus-penalty controller trades against backlog. Implementations
// must be strictly increasing in depth over their configured range.
type UtilityModel interface {
	// Utility returns pa(d). Depths outside the configured range clamp.
	Utility(depth int) float64
	// Name identifies the model in traces and experiment output.
	Name() string
}

// LogPointUtility is the default model: pa(d) = log2(1 + points(d)),
// the diminishing-returns quality law standard in rate–quality control
// (each doubling of rendered points adds one quality unit). points(d) is
// the cloud's occupancy profile.
type LogPointUtility struct {
	profile []float64
}

var _ UtilityModel = (*LogPointUtility)(nil)

// NewLogPointUtility builds the model from an occupancy profile indexed by
// depth (profile[d] = rendered points at depth d).
func NewLogPointUtility(profile []int) (*LogPointUtility, error) {
	p, err := toFloatProfile(profile)
	if err != nil {
		return nil, err
	}
	return &LogPointUtility{profile: p}, nil
}

// Utility implements UtilityModel.
func (u *LogPointUtility) Utility(depth int) float64 {
	return math.Log2(1 + u.profile[clampDepth(depth, len(u.profile))])
}

// Name implements UtilityModel.
func (u *LogPointUtility) Name() string { return "log-points" }

// LinearDepthUtility is the simplest model: pa(d) = d. It reproduces the
// paper's qualitative setup where quality is identified with depth itself.
type LinearDepthUtility struct {
	// MaxDepth clamps the input range.
	MaxDepth int
}

var _ UtilityModel = (*LinearDepthUtility)(nil)

// Utility implements UtilityModel.
func (u *LinearDepthUtility) Utility(depth int) float64 {
	if depth < 0 {
		return 0
	}
	if u.MaxDepth > 0 && depth > u.MaxDepth {
		return float64(u.MaxDepth)
	}
	return float64(depth)
}

// Name implements UtilityModel.
func (u *LinearDepthUtility) Name() string { return "linear-depth" }

// PSNRUtility uses measured geometry PSNR per depth: pa(d) = PSNR(LOD(d))
// against the full-resolution cloud, in dB (capped for identical clouds).
type PSNRUtility struct {
	psnr []float64
}

var _ UtilityModel = (*PSNRUtility)(nil)

// NewPSNRUtility builds the model from per-depth PSNR measurements.
// +Inf entries (identical clouds) are capped at cap dB.
func NewPSNRUtility(psnrByDepth []float64, capDB float64) (*PSNRUtility, error) {
	if len(psnrByDepth) == 0 {
		return nil, errors.New("quality: empty PSNR profile")
	}
	if capDB <= 0 {
		capDB = 100
	}
	p := make([]float64, len(psnrByDepth))
	for i, v := range psnrByDepth {
		if math.IsInf(v, 1) || v > capDB {
			v = capDB
		}
		if v < 0 {
			return nil, fmt.Errorf("quality: negative PSNR %v at depth %d", v, i)
		}
		p[i] = v
	}
	return &PSNRUtility{psnr: p}, nil
}

// Utility implements UtilityModel.
func (u *PSNRUtility) Utility(depth int) float64 {
	return u.psnr[clampDepth(depth, len(u.psnr))]
}

// Name implements UtilityModel.
func (u *PSNRUtility) Name() string { return "psnr" }

// NormalizedPointUtility is pa(d) = points(d)/points(maxDepth) ∈ (0,1]:
// quality proportional to rendered density.
type NormalizedPointUtility struct {
	profile []float64
	peak    float64
}

var _ UtilityModel = (*NormalizedPointUtility)(nil)

// NewNormalizedPointUtility builds the model from an occupancy profile.
func NewNormalizedPointUtility(profile []int) (*NormalizedPointUtility, error) {
	p, err := toFloatProfile(profile)
	if err != nil {
		return nil, err
	}
	peak := p[len(p)-1]
	if peak <= 0 {
		return nil, errors.New("quality: profile peak is zero")
	}
	return &NormalizedPointUtility{profile: p, peak: peak}, nil
}

// Utility implements UtilityModel.
func (u *NormalizedPointUtility) Utility(depth int) float64 {
	return u.profile[clampDepth(depth, len(u.profile))] / u.peak
}

// Name implements UtilityModel.
func (u *NormalizedPointUtility) Name() string { return "normalized-points" }

func toFloatProfile(profile []int) ([]float64, error) {
	if len(profile) == 0 {
		return nil, errors.New("quality: empty occupancy profile")
	}
	out := make([]float64, len(profile))
	for i, v := range profile {
		if v < 0 {
			return nil, fmt.Errorf("quality: negative occupancy %d at depth %d", v, i)
		}
		if i > 0 && v < profile[i-1] {
			return nil, fmt.Errorf("quality: occupancy profile not monotone at depth %d", i)
		}
		out[i] = float64(v)
	}
	return out, nil
}

func clampDepth(d, n int) int {
	if d < 0 {
		return 0
	}
	if d >= n {
		return n - 1
	}
	return d
}
