package delay

import (
	"math"
	"testing"
	"time"

	"qarv/internal/geom"
)

var testProfile = []int{1, 8, 60, 420, 2500, 9000, 20000, 31000, 36000}

func TestPointCostModelMonotone(t *testing.T) {
	m, err := NewPointCostModel(testProfile, 1.0, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for d := 0; d <= m.MaxDepth(); d++ {
		c := m.FrameCost(d)
		if c <= prev {
			t.Errorf("cost not increasing at depth %d: %v <= %v", d, c, prev)
		}
		prev = c
	}
	// Clamping beyond range.
	if m.FrameCost(100) != m.FrameCost(m.MaxDepth()) {
		t.Error("overflow depth must clamp")
	}
	if m.FrameCost(-4) != m.FrameCost(0) {
		t.Error("negative depth must clamp")
	}
}

func TestPointCostModelComposition(t *testing.T) {
	m, err := NewPointCostModel([]int{10, 100}, 2, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FrameCost(0); got != 2*10+0+50 {
		t.Errorf("cost(0) = %v", got)
	}
	if got := m.FrameCost(1); got != 2*100+7+50 {
		t.Errorf("cost(1) = %v", got)
	}
}

func TestPointCostModelValidation(t *testing.T) {
	if _, err := NewPointCostModel(nil, 1, 0, 0); err == nil {
		t.Error("empty profile must error")
	}
	if _, err := NewPointCostModel([]int{1, 2}, 0, 0, 0); err == nil {
		t.Error("zero perPoint must error")
	}
	if _, err := NewPointCostModel([]int{1, 2}, 1, -1, 0); err == nil {
		t.Error("negative perLevel must error")
	}
	if _, err := NewPointCostModel([]int{5, 3}, 1, 0, 0); err == nil {
		t.Error("non-monotone profile must error")
	}
	if _, err := NewPointCostModel([]int{-1, 3}, 1, 0, 0); err == nil {
		t.Error("negative occupancy must error")
	}
}

func TestCalibrationRecoversKnownCost(t *testing.T) {
	// Synthesize measurements from a known 3 ns/point + 2 µs fixed law.
	points := []float64{1000, 5000, 20000, 100000, 400000}
	durations := make([]time.Duration, len(points))
	for i, p := range points {
		durations[i] = time.Duration(3*p+2000) * time.Nanosecond
	}
	cal, err := CalibrateFromMeasurements(points, durations)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.NanosPerPoint-3) > 0.01 {
		t.Errorf("ns/point = %v, want 3", cal.NanosPerPoint)
	}
	if math.Abs(cal.FixedNanos-2000) > 50 {
		t.Errorf("fixed = %v, want 2000", cal.FixedNanos)
	}
	if cal.R2 < 0.999 {
		t.Errorf("R2 = %v", cal.R2)
	}
}

func TestCalibrationErrors(t *testing.T) {
	if _, err := CalibrateFromMeasurements([]float64{1}, []time.Duration{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := CalibrateFromMeasurements([]float64{1, 2}, []time.Duration{1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := CalibrateFromMeasurements([]float64{1, 2}, []time.Duration{-1, 5}); err == nil {
		t.Error("negative duration must error")
	}
	// Decreasing time with increasing points => nonsense slope.
	if _, err := CalibrateFromMeasurements(
		[]float64{1000, 2000}, []time.Duration{2000, 1000}); err == nil {
		t.Error("negative slope must error")
	}
}

func TestServiceBudget(t *testing.T) {
	cal := Calibration{NanosPerPoint: 10, FixedNanos: 1000}
	// 33 ms slot: (33e6 - 1000) / 10 points.
	got := cal.ServiceBudget(33 * time.Millisecond)
	want := (33e6 - 1000) / 10
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("budget = %v, want %v", got, want)
	}
	if (Calibration{}).ServiceBudget(time.Second) != 0 {
		t.Error("zero calibration must budget 0")
	}
	tight := Calibration{NanosPerPoint: 1, FixedNanos: 1e9}
	if tight.ServiceBudget(time.Millisecond) != 0 {
		t.Error("overhead beyond slot must budget 0")
	}
}

func TestConstantService(t *testing.T) {
	s := &ConstantService{Rate: 123}
	for _, slot := range []int{0, 5, 999} {
		if s.Service(slot) != 123 {
			t.Fatal("constant service must not vary")
		}
	}
}

func TestNoisyService(t *testing.T) {
	s := &NoisyService{Mean: 100, Std: 10, RNG: geom.NewRNG(5)}
	sum := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		v := s.Service(i)
		if v < 0 {
			t.Fatal("service went negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-100) > 1 {
		t.Errorf("noisy mean = %v", mean)
	}
	// Without an RNG it degrades to the mean.
	det := &NoisyService{Mean: 55, Std: 10}
	if det.Service(0) != 55 {
		t.Error("nil RNG must return mean")
	}
}

func TestModulatedService(t *testing.T) {
	inner := &ConstantService{Rate: 100}
	s := &ModulatedService{
		Inner: inner,
		Factor: func(t int) float64 {
			if t >= 10 && t < 20 {
				return 0.25 // degradation window
			}
			return 1
		},
	}
	if s.Service(5) != 100 {
		t.Errorf("pre-window = %v", s.Service(5))
	}
	if s.Service(15) != 25 {
		t.Errorf("in-window = %v", s.Service(15))
	}
	if s.Service(25) != 100 {
		t.Errorf("post-window = %v", s.Service(25))
	}
	// Negative factors clamp to zero; nil factor is identity.
	neg := &ModulatedService{Inner: inner, Factor: func(int) float64 { return -1 }}
	if neg.Service(0) != 0 {
		t.Error("negative factor must clamp to 0")
	}
	id := &ModulatedService{Inner: inner}
	if id.Service(0) != 100 {
		t.Error("nil factor must be identity")
	}
}

func TestTraceService(t *testing.T) {
	s := &TraceService{Trace: []float64{1, 2, 3}}
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if s.Service(i) != w {
			t.Fatalf("slot %d = %v, want %v", i, s.Service(i), w)
		}
	}
	empty := &TraceService{}
	if empty.Service(0) != 0 {
		t.Error("empty trace must serve 0")
	}
}
