package delay

import (
	"testing"
	"time"

	"qarv/internal/geom"
	"qarv/internal/octree"
	"qarv/internal/pointcloud"
)

// TestCalibrateAgainstRealLODTimings exercises the real calibration path
// end to end: time actual octree LOD extractions on this machine, fit the
// points→time law, and derive a frame-budget service rate. This is the
// measured substitute for the paper's unstated mobile render timings.
// Assertions are deliberately loose — wall-clock noise on
// shared CI machines is expected — but the fitted law must be physically
// sensible.
func TestCalibrateAgainstRealLODTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock calibration skipped in -short mode")
	}
	rng := geom.NewRNG(71)
	cloud := &pointcloud.Cloud{}
	for i := 0; i < 60_000; i++ {
		v := rng.UnitSphere().Scale(1 + 0.05*rng.Norm())
		cloud.Append(v, nil, nil)
	}
	tree, err := octree.Build(cloud, 10)
	if err != nil {
		t.Fatal(err)
	}
	depths := []int{4, 5, 6, 7, 8, 9, 10}
	points := make([]float64, 0, len(depths))
	durations := make([]time.Duration, 0, len(depths))
	for _, d := range depths {
		// Median of 5 runs to suppress scheduler noise.
		var best time.Duration
		var lodLen int
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			lod, err := tree.LOD(d, octree.LODCentroid)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			lodLen = lod.Len()
			if rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		points = append(points, float64(lodLen))
		durations = append(durations, best)
	}
	cal, err := CalibrateFromMeasurements(points, durations)
	if err != nil {
		t.Fatalf("calibration failed on real timings: %v", err)
	}
	// Physical sanity: positive marginal cost, a real machine processes
	// points at somewhere between 0.1ns and 100µs each.
	if cal.NanosPerPoint < 0.1 || cal.NanosPerPoint > 1e5 {
		t.Errorf("ns/point = %v implausible", cal.NanosPerPoint)
	}
	if cal.R2 < 0.5 {
		t.Errorf("fit R2 = %v; points→time law not visible", cal.R2)
	}
	// A 33ms frame budget must admit a positive, finite point budget.
	budget := cal.ServiceBudget(33 * time.Millisecond)
	if budget <= 0 {
		t.Errorf("service budget = %v", budget)
	}
	t.Logf("calibrated: %.2f ns/point, fixed %.0f ns, R2=%.3f, 33ms budget=%.0f points",
		cal.NanosPerPoint, cal.FixedNanos, cal.R2, budget)
}
