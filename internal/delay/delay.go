// Package delay models the rendering/visualization computation cost that
// turns an Octree-depth decision into queue workload — the paper's a(d(t)),
// "the arrivals by the determined Octree depth" — and the device's service
// capacity per time slot. The cost model can be calibrated against real
// measured LOD-extraction timings so the simulated device tracks this
// machine's actual point-processing throughput.
package delay

import (
	"errors"
	"fmt"
	"time"

	"qarv/internal/geom"
	"qarv/internal/stats"
)

// CostModel maps an Octree depth decision to the work (in work units; the
// canonical unit is "points to process") that choosing that depth enqueues
// for one frame.
type CostModel interface {
	// FrameCost returns a(d): the per-frame workload at depth d.
	FrameCost(depth int) float64
	// Name identifies the model in traces.
	Name() string
}

// Model validation errors.
var (
	ErrEmptyProfile = errors.New("delay: empty occupancy profile")
	ErrBadProfile   = errors.New("delay: occupancy profile must be non-negative and monotone")
)

// PointCostModel charges work proportional to the number of rendered
// points at depth d, plus a per-level traversal term and a fixed per-frame
// overhead: a(d) = PerPoint·points(d) + PerLevel·d + Fixed.
type PointCostModel struct {
	profile  []float64
	perPoint float64
	perLevel float64
	fixed    float64
}

var _ CostModel = (*PointCostModel)(nil)

// NewPointCostModel builds the model over an occupancy profile
// (profile[d] = rendered points at depth d). perPoint must be positive;
// perLevel and fixed are optional non-negative refinements.
func NewPointCostModel(profile []int, perPoint, perLevel, fixed float64) (*PointCostModel, error) {
	if len(profile) == 0 {
		return nil, ErrEmptyProfile
	}
	if perPoint <= 0 {
		return nil, errors.New("delay: perPoint must be positive")
	}
	if perLevel < 0 || fixed < 0 {
		return nil, errors.New("delay: perLevel and fixed must be non-negative")
	}
	p := make([]float64, len(profile))
	for i, v := range profile {
		if v < 0 || (i > 0 && v < profile[i-1]) {
			return nil, fmt.Errorf("%w: index %d", ErrBadProfile, i)
		}
		p[i] = float64(v)
	}
	return &PointCostModel{profile: p, perPoint: perPoint, perLevel: perLevel, fixed: fixed}, nil
}

// FrameCost implements CostModel.
func (m *PointCostModel) FrameCost(depth int) float64 {
	d := depth
	if d < 0 {
		d = 0
	}
	if d >= len(m.profile) {
		d = len(m.profile) - 1
	}
	return m.perPoint*m.profile[d] + m.perLevel*float64(d) + m.fixed
}

// Name implements CostModel.
func (m *PointCostModel) Name() string { return "point-cost" }

// MaxDepth returns the deepest depth the model covers.
func (m *PointCostModel) MaxDepth() int { return len(m.profile) - 1 }

// Calibration is a fitted relationship between rendered points and wall
// time, measured on the host machine.
type Calibration struct {
	// NanosPerPoint is the marginal per-point processing time.
	NanosPerPoint float64
	// FixedNanos is the per-frame fixed overhead.
	FixedNanos float64
	// R2 reports fit quality.
	R2 float64
}

// CalibrateFromMeasurements fits time ≈ NanosPerPoint·points + FixedNanos
// by OLS over measured (points, duration) pairs, as produced by timing
// real LOD extractions per depth.
func CalibrateFromMeasurements(points []float64, durations []time.Duration) (Calibration, error) {
	if len(points) != len(durations) {
		return Calibration{}, errors.New("delay: calibration input length mismatch")
	}
	nanos := make([]float64, len(durations))
	for i, d := range durations {
		if d < 0 {
			return Calibration{}, errors.New("delay: negative duration")
		}
		nanos[i] = float64(d.Nanoseconds())
	}
	fit, err := stats.OLS(points, nanos)
	if err != nil {
		return Calibration{}, fmt.Errorf("delay: calibration fit: %w", err)
	}
	if fit.Slope <= 0 {
		return Calibration{}, errors.New("delay: calibration slope non-positive; measurements too noisy")
	}
	c := Calibration{NanosPerPoint: fit.Slope, FixedNanos: fit.Intercept, R2: fit.R2}
	if c.FixedNanos < 0 {
		c.FixedNanos = 0
	}
	return c, nil
}

// ServiceBudget converts a frame-period budget (e.g. 33 ms for 30 fps)
// into a per-slot work budget in points, under this calibration.
func (c Calibration) ServiceBudget(slotDuration time.Duration) float64 {
	if c.NanosPerPoint <= 0 {
		return 0
	}
	usable := float64(slotDuration.Nanoseconds()) - c.FixedNanos
	if usable <= 0 {
		return 0
	}
	return usable / c.NanosPerPoint
}

// ServiceProcess yields the device's per-slot processing capacity b(t) in
// work units. Implementations must be deterministic given their RNG.
type ServiceProcess interface {
	// Service returns the capacity of slot t.
	Service(t int) float64
	// Name identifies the process in traces.
	Name() string
}

// ConstantService provides a fixed capacity per slot.
type ConstantService struct {
	Rate float64
}

var _ ServiceProcess = (*ConstantService)(nil)

// Service implements ServiceProcess.
func (s *ConstantService) Service(int) float64 { return s.Rate }

// Name implements ServiceProcess.
func (s *ConstantService) Name() string { return "constant" }

// NoisyService draws capacity from a truncated Gaussian (never negative),
// modeling OS jitter and thermal variation on a mobile device.
type NoisyService struct {
	Mean, Std float64
	RNG       *geom.RNG
}

var _ ServiceProcess = (*NoisyService)(nil)

// Service implements ServiceProcess.
func (s *NoisyService) Service(int) float64 {
	v := s.Mean
	if s.RNG != nil && s.Std > 0 {
		v = s.RNG.NormMeanStd(s.Mean, s.Std)
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Name implements ServiceProcess.
func (s *NoisyService) Name() string { return "noisy" }

// Reseed replaces the process's RNG — the hook qarv.WithSeed uses to
// drive every stochastic session component from one session seed.
func (s *NoisyService) Reseed(rng *geom.RNG) { s.RNG = rng }

// Clone returns a run-isolated copy: the RNG state is deep-copied, so
// a cloned run never advances (or races) the original's stream.
func (s *NoisyService) Clone() *NoisyService {
	if s == nil {
		return nil
	}
	c := *s
	c.RNG = s.RNG.Clone()
	return &c
}

// ModulatedService multiplies an inner process's capacity by a
// time-varying factor — the failure-injection hook (thermal throttling,
// background contention) used by the robustness experiments and the
// CLIs' -net network classes. It has no Reseed: a stochastic Factor
// (e.g. a netem.MarkovBandwidth method value) must be seeded
// explicitly by the caller — qarv.WithSeed cannot see through the
// closure, and an unseeded stochastic factor stays pinned to its start
// state.
type ModulatedService struct {
	Inner  ServiceProcess
	Factor func(t int) float64
}

var _ ServiceProcess = (*ModulatedService)(nil)

// Service implements ServiceProcess.
func (s *ModulatedService) Service(t int) float64 {
	f := 1.0
	if s.Factor != nil {
		f = s.Factor(t)
	}
	if f < 0 {
		f = 0
	}
	return s.Inner.Service(t) * f
}

// Name implements ServiceProcess.
func (s *ModulatedService) Name() string { return "modulated(" + s.Inner.Name() + ")" }

// TraceService replays a recorded capacity trace, cycling at the end.
type TraceService struct {
	Trace []float64
}

var _ ServiceProcess = (*TraceService)(nil)

// Service implements ServiceProcess.
func (s *TraceService) Service(t int) float64 {
	if len(s.Trace) == 0 {
		return 0
	}
	return s.Trace[t%len(s.Trace)]
}

// Name implements ServiceProcess.
func (s *TraceService) Name() string { return "trace" }
