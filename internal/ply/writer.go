package ply

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ErrMissingColumn is returned by Write when an element's property has no
// corresponding data column in the File.
var ErrMissingColumn = errors.New("ply: data column missing for declared property")

// Write encodes f to w using the format recorded in f.Header.Format.
// Columns must exist for every declared property and have exactly
// Element.Count rows.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, &f.Header); err != nil {
		return err
	}
	for _, elem := range f.Header.Elements {
		if err := validateColumns(f, elem); err != nil {
			return err
		}
		var err error
		switch f.Header.Format {
		case ASCII:
			err = writeASCIIElement(bw, f, elem)
		case BinaryLittleEndian:
			err = writeBinaryElement(bw, f, elem, binary.LittleEndian)
		case BinaryBigEndian:
			err = writeBinaryElement(bw, f, elem, binary.BigEndian)
		default:
			err = ErrBadFormat
		}
		if err != nil {
			return fmt.Errorf("element %q: %w", elem.Name, err)
		}
	}
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, h *Header) error {
	version := h.Version
	if version == "" {
		version = "1.0"
	}
	if _, err := fmt.Fprintf(bw, "ply\nformat %s %s\n", h.Format, version); err != nil {
		return err
	}
	for _, c := range h.Comments {
		if _, err := fmt.Fprintf(bw, "comment %s\n", c); err != nil {
			return err
		}
	}
	for _, e := range h.Elements {
		if _, err := fmt.Fprintf(bw, "element %s %d\n", e.Name, e.Count); err != nil {
			return err
		}
		for _, p := range e.Properties {
			var err error
			if p.IsList {
				_, err = fmt.Fprintf(bw, "property list %s %s %s\n", p.CountType, p.Type, p.Name)
			} else {
				_, err = fmt.Fprintf(bw, "property %s %s\n", p.Type, p.Name)
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := bw.WriteString("end_header\n")
	return err
}

func validateColumns(f *File, elem Element) error {
	for _, p := range elem.Properties {
		if p.IsList {
			col := f.Lists[elem.Name][p.Name]
			if col == nil {
				return fmt.Errorf("%w: %s.%s", ErrMissingColumn, elem.Name, p.Name)
			}
			if len(col) != elem.Count {
				return fmt.Errorf("ply: %s.%s has %d rows, element declares %d",
					elem.Name, p.Name, len(col), elem.Count)
			}
			continue
		}
		col := f.Scalars[elem.Name][p.Name]
		if col == nil {
			return fmt.Errorf("%w: %s.%s", ErrMissingColumn, elem.Name, p.Name)
		}
		if len(col) != elem.Count {
			return fmt.Errorf("ply: %s.%s has %d rows, element declares %d",
				elem.Name, p.Name, len(col), elem.Count)
		}
	}
	return nil
}

func writeASCIIElement(bw *bufio.Writer, f *File, elem Element) error {
	for row := 0; row < elem.Count; row++ {
		first := true
		for _, p := range elem.Properties {
			if p.IsList {
				vals := f.Lists[elem.Name][p.Name][row]
				if !first {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
				}
				first = false
				if _, err := bw.WriteString(strconv.Itoa(len(vals))); err != nil {
					return err
				}
				for _, v := range vals {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
					if _, err := bw.WriteString(formatScalar(v, p.Type)); err != nil {
						return err
					}
				}
				continue
			}
			if !first {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			first = false
			v := f.Scalars[elem.Name][p.Name][row]
			if _, err := bw.WriteString(formatScalar(v, p.Type)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

func formatScalar(v float64, t ScalarType) string {
	switch t {
	case Float32:
		return strconv.FormatFloat(v, 'g', -1, 32)
	case Float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return strconv.FormatInt(int64(v), 10)
	}
}

func writeBinaryElement(bw *bufio.Writer, f *File, elem Element, order binary.ByteOrder) error {
	buf := make([]byte, 8)
	for row := 0; row < elem.Count; row++ {
		for _, p := range elem.Properties {
			if p.IsList {
				vals := f.Lists[elem.Name][p.Name][row]
				if err := writeScalar(bw, float64(len(vals)), p.CountType, order, buf); err != nil {
					return err
				}
				for _, v := range vals {
					if err := writeScalar(bw, v, p.Type, order, buf); err != nil {
						return err
					}
				}
				continue
			}
			v := f.Scalars[elem.Name][p.Name][row]
			if err := writeScalar(bw, v, p.Type, order, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeScalar(bw *bufio.Writer, v float64, t ScalarType, order binary.ByteOrder, buf []byte) error {
	b := buf[:t.Size()]
	switch t {
	case Int8:
		b[0] = byte(int8(v))
	case UInt8:
		b[0] = byte(uint8(v))
	case Int16:
		order.PutUint16(b, uint16(int16(v)))
	case UInt16:
		order.PutUint16(b, uint16(v))
	case Int32:
		order.PutUint32(b, uint32(int32(v)))
	case UInt32:
		order.PutUint32(b, uint32(v))
	case Float32:
		order.PutUint32(b, math.Float32bits(float32(v)))
	case Float64:
		order.PutUint64(b, math.Float64bits(v))
	default:
		return ErrBadScalarType
	}
	_, err := bw.Write(b)
	return err
}
