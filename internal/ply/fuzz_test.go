package ply

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPLYDecode throws arbitrary bytes at Read. The decoder must never
// panic and never allocate unboundedly from hostile headers (declared
// element counts and binary list counts are attacker-controlled); on a
// successful decode the file must satisfy its own header — every
// declared column present with exactly Count rows — and survive a
// Write round trip.
func FuzzPLYDecode(f *testing.F) {
	f.Add([]byte("ply\nformat ascii 1.0\nelement vertex 2\nproperty float x\nproperty float y\nend_header\n0 0\n1 0.5\n"))
	f.Add([]byte("ply\nformat ascii 1.0\ncomment tiny face mesh\nelement vertex 3\nproperty float x\nelement face 1\nproperty list uchar int vertex_indices\nend_header\n0\n1\n2\n3 0 1 2\n"))
	f.Add([]byte("ply\r\nformat binary_little_endian 1.0\r\nelement vertex 1\r\nproperty float x\r\nend_header\r\n\x00\x00\x80?"))
	f.Add([]byte("ply\nformat binary_big_endian 1.0\nelement v 1\nproperty list uint float vals\nend_header\n\x00\x00\x00\x02?\x80\x00\x00@\x00\x00\x00"))
	// Hostile declarations: billions of rows, a 2^32-entry binary list.
	f.Add([]byte("ply\nformat ascii 1.0\nelement vertex 2000000000\nproperty float x\nend_header\n1\n"))
	f.Add([]byte("ply\nformat binary_little_endian 1.0\nelement v 1\nproperty list uint float vals\nend_header\n\xff\xff\xff\xff"))
	f.Add([]byte("ply\nformat ascii 1.0\nend_header\n"))
	f.Add([]byte("not a ply file"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := Read(bytes.NewReader(data))
		if err != nil {
			if pf != nil {
				t.Fatalf("Read returned non-nil file alongside error %v", err)
			}
			return
		}
		for _, elem := range pf.Header.Elements {
			for _, p := range elem.Properties {
				if p.IsList {
					if got := len(pf.Lists[elem.Name][p.Name]); got != elem.Count {
						t.Fatalf("element %q list %q: %d rows, header declares %d", elem.Name, p.Name, got, elem.Count)
					}
				} else if got := len(pf.Scalars[elem.Name][p.Name]); got != elem.Count {
					t.Fatalf("element %q property %q: %d rows, header declares %d", elem.Name, p.Name, got, elem.Count)
				}
			}
		}
		// A decoded file is complete by construction, so it must encode.
		if err := Write(&bytes.Buffer{}, pf); err != nil {
			t.Fatalf("Write of decoded file failed: %v", err)
		}
	})
}

// FuzzHeaderParse narrows the mutator onto the header grammar, where
// most of the parsing branches live.
func FuzzHeaderParse(f *testing.F) {
	f.Add("ply\nformat ascii 1.0\nelement vertex 0\nproperty float x\nend_header\n")
	f.Add("ply\nformat binary_little_endian 1.0\ncomment c\nobj_info o\nelement e 1\nproperty list uchar float l\nend_header\n")
	f.Add("ply\nformat ascii 1.0\nproperty float orphan\nend_header\n")
	f.Add("ply\nelement vertex 1\nend_header\n")
	f.Fuzz(func(t *testing.T, header string) {
		_, err := Read(strings.NewReader(header))
		_ = err
	})
}
