package ply

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"qarv/internal/geom"
	"qarv/internal/pointcloud"
)

func sampleCloud(n int, withColors, withNormals bool) *pointcloud.Cloud {
	rng := geom.NewRNG(77)
	c := &pointcloud.Cloud{}
	for i := 0; i < n; i++ {
		p := geom.V(rng.Range(-1, 1), rng.Range(0, 2), rng.Range(-1, 1))
		var col *pointcloud.Color
		if withColors {
			col = &pointcloud.Color{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))}
		}
		var nm *geom.Vec3
		if withNormals {
			v := rng.UnitSphere()
			nm = &v
		}
		c.Append(p, col, nm)
	}
	return c
}

func TestCloudRoundTripAllFormats(t *testing.T) {
	for _, format := range []Format{ASCII, BinaryLittleEndian, BinaryBigEndian} {
		for _, withColors := range []bool{false, true} {
			for _, withNormals := range []bool{false, true} {
				c := sampleCloud(200, withColors, withNormals)
				var buf bytes.Buffer
				if err := WriteCloud(&buf, c, format, "test roundtrip"); err != nil {
					t.Fatalf("%v colors=%v normals=%v: write: %v", format, withColors, withNormals, err)
				}
				got, err := ReadCloud(&buf)
				if err != nil {
					t.Fatalf("%v: read: %v", format, err)
				}
				if got.Len() != c.Len() {
					t.Fatalf("%v: len %d != %d", format, got.Len(), c.Len())
				}
				for i := range c.Points {
					// Positions pass through float32.
					if c.Points[i].Dist(got.Points[i]) > 1e-6 {
						t.Fatalf("%v point %d: %v != %v", format, i, got.Points[i], c.Points[i])
					}
				}
				if withColors {
					for i := range c.Colors {
						if c.Colors[i] != got.Colors[i] {
							t.Fatalf("%v color %d mismatch", format, i)
						}
					}
				} else if got.HasColors() {
					t.Fatalf("%v: colors appeared from nowhere", format)
				}
				if withNormals {
					for i := range c.Normals {
						if c.Normals[i].Dist(got.Normals[i]) > 1e-6 {
							t.Fatalf("%v normal %d mismatch", format, i)
						}
					}
				}
			}
		}
	}
}

func TestHeaderParse8iStyle(t *testing.T) {
	// Header layout of the actual 8i Voxelized Full Bodies files.
	header := strings.Join([]string{
		"ply",
		"format binary_little_endian 1.0",
		"comment Version 2, Copyright 2017, 8i Labs, Inc.",
		"comment frame_to_world_scale 0.181731",
		"element vertex 3",
		"property float x",
		"property float y",
		"property float z",
		"property uchar red",
		"property uchar green",
		"property uchar blue",
		"end_header",
	}, "\n") + "\n"
	body := make([]byte, 3*(3*4+3))
	f, err := Read(bytes.NewReader(append([]byte(header), body...)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Header.Format != BinaryLittleEndian {
		t.Errorf("format = %v", f.Header.Format)
	}
	if len(f.Header.Comments) != 2 {
		t.Errorf("comments = %v", f.Header.Comments)
	}
	v := f.Header.Element("vertex")
	if v == nil || v.Count != 3 || len(v.Properties) != 6 {
		t.Fatalf("vertex element = %+v", v)
	}
	if v.PropertyIndex("red") != 3 {
		t.Errorf("red index = %d", v.PropertyIndex("red"))
	}
	if v.PropertyIndex("nope") != -1 {
		t.Error("missing property must be -1")
	}
}

func TestListPropertiesRoundTrip(t *testing.T) {
	// A mesh-style file with faces: exercises list encode/decode.
	f := &File{
		Header: Header{
			Format:  ASCII,
			Version: "1.0",
			Elements: []Element{
				{
					Name:  "vertex",
					Count: 3,
					Properties: []Property{
						{Name: "x", Type: Float32},
						{Name: "y", Type: Float32},
						{Name: "z", Type: Float32},
					},
				},
				{
					Name:  "face",
					Count: 1,
					Properties: []Property{
						{Name: "vertex_indices", Type: Int32, IsList: true, CountType: UInt8},
					},
				},
			},
		},
		Scalars: map[string]map[string][]float64{
			"vertex": {"x": {0, 1, 0}, "y": {0, 0, 1}, "z": {0, 0, 0}},
			"face":   {},
		},
		Lists: map[string]map[string][][]float64{
			"face": {"vertex_indices": {{0, 1, 2}}},
		},
	}
	for _, format := range []Format{ASCII, BinaryLittleEndian, BinaryBigEndian} {
		f.Header.Format = format
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		face := got.Lists["face"]["vertex_indices"]
		if len(face) != 1 || len(face[0]) != 3 {
			t.Fatalf("%v: faces = %v", format, face)
		}
		for i, want := range []float64{0, 1, 2} {
			if face[0][i] != want {
				t.Fatalf("%v: face[0][%d] = %v", format, i, face[0][i])
			}
		}
	}
}

func TestScalarTypeWidths(t *testing.T) {
	widths := map[ScalarType]int{
		Int8: 1, UInt8: 1, Int16: 2, UInt16: 2,
		Int32: 4, UInt32: 4, Float32: 4, Float64: 8,
	}
	for typ, want := range widths {
		if typ.Size() != want {
			t.Errorf("%v size = %d, want %d", typ, typ.Size(), want)
		}
	}
	if ScalarType(0).Size() != 0 {
		t.Error("invalid type must have size 0")
	}
}

func TestScalarValueRangesSurviveBinary(t *testing.T) {
	// Extremes of each type must round-trip through binary encodings.
	f := &File{
		Header: Header{
			Format: BinaryBigEndian,
			Elements: []Element{{
				Name:  "v",
				Count: 2,
				Properties: []Property{
					{Name: "a", Type: Int8},
					{Name: "b", Type: UInt16},
					{Name: "c", Type: Int32},
					{Name: "d", Type: Float64},
				},
			}},
		},
		Scalars: map[string]map[string][]float64{
			"v": {
				"a": {-128, 127},
				"b": {0, 65535},
				"c": {-2147483648, 2147483647},
				"d": {math.Pi, -1e300},
			},
		},
		Lists: map[string]map[string][][]float64{},
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range f.Scalars["v"] {
		gotCol := got.Scalars["v"][name]
		for i := range want {
			if gotCol[i] != want[i] {
				t.Errorf("%s[%d] = %v, want %v", name, i, gotCol[i], want[i])
			}
		}
	}
}

func TestHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"no magic", "png\nend_header\n", ErrNotPLY},
		{"bad format", "ply\nformat binary_pdp11 1.0\nend_header\n", ErrBadFormat},
		{"missing format", "ply\nelement vertex 0\nend_header\n", ErrBadHeader},
		{"bad type", "ply\nformat ascii 1.0\nelement vertex 1\nproperty quaternion x\nend_header\n", ErrBadScalarType},
		{"orphan property", "ply\nformat ascii 1.0\nproperty float x\nend_header\n", ErrBadHeader},
		{"bad count", "ply\nformat ascii 1.0\nelement vertex minus\nend_header\n", ErrBadHeader},
		{"unknown keyword", "ply\nformat ascii 1.0\nshenanigans\nend_header\n", ErrBadHeader},
		{"unterminated", "ply\nformat ascii 1.0\n", ErrBadHeader},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestTruncatedBodies(t *testing.T) {
	ascii := "ply\nformat ascii 1.0\nelement vertex 2\nproperty float x\nend_header\n1.0\n"
	if _, err := Read(strings.NewReader(ascii)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated ascii: %v", err)
	}
	bin := "ply\nformat binary_little_endian 1.0\nelement vertex 2\nproperty float x\nend_header\n\x00\x00\x80"
	if _, err := Read(strings.NewReader(bin)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated binary: %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	f := &File{
		Header: Header{
			Format: ASCII,
			Elements: []Element{{
				Name:       "vertex",
				Count:      2,
				Properties: []Property{{Name: "x", Type: Float32}},
			}},
		},
		Scalars: map[string]map[string][]float64{"vertex": {}},
		Lists:   map[string]map[string][][]float64{},
	}
	if err := Write(&bytes.Buffer{}, f); !errors.Is(err, ErrMissingColumn) {
		t.Errorf("missing column: %v", err)
	}
	f.Scalars["vertex"]["x"] = []float64{1} // wrong row count
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Error("row count mismatch must error")
	}
}

func TestToCloudRequiresVertex(t *testing.T) {
	f := &File{Header: Header{Format: ASCII}}
	if _, err := ToCloud(f); !errors.Is(err, ErrNoVertexElement) {
		t.Errorf("err = %v", err)
	}
}

func TestASCIIToleratesBlankLinesAndCRLF(t *testing.T) {
	in := "ply\r\nformat ascii 1.0\r\nelement vertex 2\r\nproperty float x\r\nproperty float y\r\nproperty float z\r\nend_header\r\n1 2 3\r\n\r\n4 5 6\r\n"
	c, err := ReadCloud(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Points[1] != geom.V(4, 5, 6) {
		t.Fatalf("cloud = %+v", c.Points)
	}
}
