package ply

import (
	"bytes"
	"strings"
	"testing"

	"qarv/internal/geom"
)

// Robustness: the reader must reject — never panic on — arbitrary garbage
// and adversarial mutations of valid files. These are fuzz-shaped
// deterministic tests (seeded random corpora) runnable without the fuzz
// engine.

func TestReaderSurvivesRandomGarbage(t *testing.T) {
	rng := geom.NewRNG(101)
	for i := 0; i < 500; i++ {
		n := rng.Intn(2048)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		// Must error (or in freak cases succeed), never panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage input %d: %v", i, r)
				}
			}()
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}

func TestReaderSurvivesGarbageWithValidMagic(t *testing.T) {
	rng := geom.NewRNG(102)
	for i := 0; i < 500; i++ {
		n := rng.Intn(1024)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		in := append([]byte("ply\n"), data...)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on magic+garbage %d: %v", i, r)
				}
			}()
			_, _ = Read(bytes.NewReader(in))
		}()
	}
}

func TestReaderSurvivesMutatedValidFile(t *testing.T) {
	// Build a valid binary file, then flip bytes everywhere and re-read.
	cloud := sampleCloud(100, true, false)
	var buf bytes.Buffer
	if err := WriteCloud(&buf, cloud, BinaryLittleEndian); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := geom.NewRNG(103)
	for i := 0; i < 300; i++ {
		mutated := bytes.Clone(valid)
		// Mutate 1-8 random bytes.
		for m := 0; m <= rng.Intn(8); m++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v", i, r)
				}
			}()
			_, _ = Read(bytes.NewReader(mutated))
		}()
	}
}

func TestReaderRejectsAbsurdCounts(t *testing.T) {
	// A header claiming 2^31 vertices with a tiny body must fail with
	// ErrTruncated-ish errors quickly, not attempt huge allocations that
	// crash the process. (The reader allocates per-column with the
	// declared capacity; Go caps the practical risk, but decode must stop
	// at the truncated body.)
	in := "ply\nformat binary_little_endian 1.0\nelement vertex 9999999\nproperty float x\nend_header\n\x00\x00\x00\x00"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("absurd count with tiny body must error")
	}
}
