package ply

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// File is a fully decoded PLY file: the header plus, for every element,
// its property values. Scalar values are widened to float64; list values
// are stored per row.
type File struct {
	Header Header
	// Data[elementIndex][propertyIndex] is a column of values.
	// For scalar properties the column is []float64 of length Element.Count.
	// For list properties it is [][]float64 with one row per element.
	Scalars map[string]map[string][]float64
	Lists   map[string]map[string][][]float64
}

// Read decodes a complete PLY file from r.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, err := parseHeader(br)
	if err != nil {
		return nil, err
	}
	f := &File{
		Header:  *h,
		Scalars: make(map[string]map[string][]float64, len(h.Elements)),
		Lists:   make(map[string]map[string][][]float64),
	}
	for _, elem := range h.Elements {
		// Cap the capacity hint: a hostile header can declare billions of
		// rows across many properties, and the pre-allocation must not
		// outrun the actual body (decode fails fast on truncation either
		// way). The budget is per element, shared across its columns;
		// genuine large clouds grow past it by amortized append.
		capHint := elem.Count
		if max := (1 << 20) / (len(elem.Properties) + 1); capHint > max {
			capHint = max
		}
		f.Scalars[elem.Name] = make(map[string][]float64, len(elem.Properties))
		for _, p := range elem.Properties {
			if p.IsList {
				if f.Lists[elem.Name] == nil {
					f.Lists[elem.Name] = make(map[string][][]float64)
				}
				f.Lists[elem.Name][p.Name] = make([][]float64, 0, capHint)
			} else {
				f.Scalars[elem.Name][p.Name] = make([]float64, 0, capHint)
			}
		}
		var readErr error
		switch h.Format {
		case ASCII:
			readErr = readASCIIElement(br, f, elem)
		case BinaryLittleEndian:
			readErr = readBinaryElement(br, f, elem, binary.LittleEndian)
		case BinaryBigEndian:
			readErr = readBinaryElement(br, f, elem, binary.BigEndian)
		default:
			readErr = ErrBadFormat
		}
		if readErr != nil {
			return nil, fmt.Errorf("element %q: %w", elem.Name, readErr)
		}
	}
	return f, nil
}

func readASCIIElement(br *bufio.Reader, f *File, elem Element) error {
	for row := 0; row < elem.Count; row++ {
		line, err := readNonEmptyLine(br)
		if err != nil {
			return fmt.Errorf("row %d: %w", row, ErrTruncated)
		}
		fields := strings.Fields(line)
		pos := 0
		for _, p := range elem.Properties {
			if p.IsList {
				if pos >= len(fields) {
					return fmt.Errorf("row %d: %w", row, ErrTruncated)
				}
				n, err := strconv.Atoi(fields[pos])
				if err != nil || n < 0 {
					return fmt.Errorf("row %d: bad list count %q: %w", row, fields[pos], ErrBadHeader)
				}
				pos++
				if pos+n > len(fields) {
					return fmt.Errorf("row %d: %w", row, ErrTruncated)
				}
				vals := make([]float64, n)
				for i := 0; i < n; i++ {
					v, err := strconv.ParseFloat(fields[pos], 64)
					if err != nil {
						return fmt.Errorf("row %d: bad value %q", row, fields[pos])
					}
					vals[i] = v
					pos++
				}
				f.Lists[elem.Name][p.Name] = append(f.Lists[elem.Name][p.Name], vals)
				continue
			}
			if pos >= len(fields) {
				return fmt.Errorf("row %d: %w", row, ErrTruncated)
			}
			v, err := strconv.ParseFloat(fields[pos], 64)
			if err != nil {
				return fmt.Errorf("row %d: bad value %q", row, fields[pos])
			}
			f.Scalars[elem.Name][p.Name] = append(f.Scalars[elem.Name][p.Name], v)
			pos++
		}
	}
	return nil
}

func readNonEmptyLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" {
			return trimmed, nil
		}
		if err != nil {
			return "", err
		}
	}
}

func readBinaryElement(br *bufio.Reader, f *File, elem Element, order binary.ByteOrder) error {
	buf := make([]byte, 8)
	for row := 0; row < elem.Count; row++ {
		for _, p := range elem.Properties {
			if p.IsList {
				count, err := readScalar(br, p.CountType, order, buf)
				if err != nil {
					return fmt.Errorf("row %d list count: %w", row, ErrTruncated)
				}
				n := int(count)
				if n < 0 {
					return fmt.Errorf("row %d: negative list count", row)
				}
				// Grow by append under a capped initial capacity: the
				// count is attacker-controlled (a 4-byte uint32 can claim
				// 2^32 entries), but every appended value consumes at
				// least one input byte, so memory stays bounded by the
				// actual input and truncation fails fast.
				capN := n
				if capN > 1<<12 {
					capN = 1 << 12
				}
				vals := make([]float64, 0, capN)
				for i := 0; i < n; i++ {
					v, err := readScalar(br, p.Type, order, buf)
					if err != nil {
						return fmt.Errorf("row %d list value: %w", row, ErrTruncated)
					}
					vals = append(vals, v)
				}
				f.Lists[elem.Name][p.Name] = append(f.Lists[elem.Name][p.Name], vals)
				continue
			}
			v, err := readScalar(br, p.Type, order, buf)
			if err != nil {
				return fmt.Errorf("row %d: %w", row, ErrTruncated)
			}
			f.Scalars[elem.Name][p.Name] = append(f.Scalars[elem.Name][p.Name], v)
		}
	}
	return nil
}

func readScalar(br *bufio.Reader, t ScalarType, order binary.ByteOrder, buf []byte) (float64, error) {
	b := buf[:t.Size()]
	if _, err := io.ReadFull(br, b); err != nil {
		return 0, err
	}
	switch t {
	case Int8:
		return float64(int8(b[0])), nil
	case UInt8:
		return float64(b[0]), nil
	case Int16:
		return float64(int16(order.Uint16(b))), nil
	case UInt16:
		return float64(order.Uint16(b)), nil
	case Int32:
		return float64(int32(order.Uint32(b))), nil
	case UInt32:
		return float64(order.Uint32(b)), nil
	case Float32:
		return float64(math.Float32frombits(order.Uint32(b))), nil
	case Float64:
		return math.Float64frombits(order.Uint64(b)), nil
	default:
		return 0, ErrBadScalarType
	}
}
