package ply

import (
	"bytes"
	"testing"

	"qarv/internal/pointcloud"
	"qarv/internal/synthetic"
)

// BenchmarkPLYDecode measures binary little-endian decode throughput on
// a realistic colored body capture — the hot path when content profiles
// are built from .ply assets.
func BenchmarkPLYDecode(b *testing.B) {
	cloud, err := synthetic.Generate(synthetic.Config{
		SamplesTarget: 100_000,
		CaptureDepth:  9,
		Seed:          1,
	}, synthetic.Pose{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCloud(&buf, cloud, BinaryLittleEndian); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var got *pointcloud.Cloud
	for i := 0; i < b.N; i++ {
		c, err := ReadCloud(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		got = c
	}
	if got.Len() != cloud.Len() {
		b.Fatalf("decoded %d points, want %d", got.Len(), cloud.Len())
	}
}
