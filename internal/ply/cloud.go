package ply

import (
	"errors"
	"fmt"
	"io"

	"qarv/internal/geom"
	"qarv/internal/pointcloud"
)

// ErrNoVertexElement is returned when a PLY file has no vertex positions.
var ErrNoVertexElement = errors.New("ply: no vertex element with x/y/z properties")

// FromCloud builds a PLY File in the 8i Voxelized Full Bodies layout:
// a vertex element with float x/y/z and, when the cloud has them,
// uchar red/green/blue and float nx/ny/nz.
func FromCloud(c *pointcloud.Cloud, format Format, comments ...string) *File {
	n := c.Len()
	elem := Element{
		Name:  "vertex",
		Count: n,
		Properties: []Property{
			{Name: "x", Type: Float32},
			{Name: "y", Type: Float32},
			{Name: "z", Type: Float32},
		},
	}
	cols := map[string][]float64{
		"x": make([]float64, n),
		"y": make([]float64, n),
		"z": make([]float64, n),
	}
	for i, p := range c.Points {
		cols["x"][i] = p.X
		cols["y"][i] = p.Y
		cols["z"][i] = p.Z
	}
	if c.HasColors() {
		elem.Properties = append(elem.Properties,
			Property{Name: "red", Type: UInt8},
			Property{Name: "green", Type: UInt8},
			Property{Name: "blue", Type: UInt8},
		)
		cols["red"] = make([]float64, n)
		cols["green"] = make([]float64, n)
		cols["blue"] = make([]float64, n)
		for i, col := range c.Colors {
			cols["red"][i] = float64(col.R)
			cols["green"][i] = float64(col.G)
			cols["blue"][i] = float64(col.B)
		}
	}
	if c.HasNormals() {
		elem.Properties = append(elem.Properties,
			Property{Name: "nx", Type: Float32},
			Property{Name: "ny", Type: Float32},
			Property{Name: "nz", Type: Float32},
		)
		cols["nx"] = make([]float64, n)
		cols["ny"] = make([]float64, n)
		cols["nz"] = make([]float64, n)
		for i, nv := range c.Normals {
			cols["nx"][i] = nv.X
			cols["ny"][i] = nv.Y
			cols["nz"][i] = nv.Z
		}
	}
	return &File{
		Header: Header{
			Format:   format,
			Version:  "1.0",
			Comments: comments,
			Elements: []Element{elem},
		},
		Scalars: map[string]map[string][]float64{"vertex": cols},
		Lists:   map[string]map[string][][]float64{},
	}
}

// ToCloud extracts the vertex element of a decoded PLY file as a point
// cloud, carrying colors (red/green/blue) and normals (nx/ny/nz) when
// present. Float32 x/y/z precision loss is accepted, as in the dataset.
func ToCloud(f *File) (*pointcloud.Cloud, error) {
	elem := f.Header.Element("vertex")
	if elem == nil {
		return nil, ErrNoVertexElement
	}
	cols := f.Scalars["vertex"]
	xs, ys, zs := cols["x"], cols["y"], cols["z"]
	if xs == nil || ys == nil || zs == nil {
		return nil, ErrNoVertexElement
	}
	n := elem.Count
	c := &pointcloud.Cloud{Points: make([]geom.Vec3, n)}
	for i := 0; i < n; i++ {
		c.Points[i] = geom.V(xs[i], ys[i], zs[i])
	}
	if r, g, b := cols["red"], cols["green"], cols["blue"]; r != nil && g != nil && b != nil {
		c.Colors = make([]pointcloud.Color, n)
		for i := 0; i < n; i++ {
			c.Colors[i] = pointcloud.Color{R: uint8(r[i]), G: uint8(g[i]), B: uint8(b[i])}
		}
	}
	if nx, ny, nz := cols["nx"], cols["ny"], cols["nz"]; nx != nil && ny != nil && nz != nil {
		c.Normals = make([]geom.Vec3, n)
		for i := 0; i < n; i++ {
			c.Normals[i] = geom.V(nx[i], ny[i], nz[i])
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("ply: decoded cloud invalid: %w", err)
	}
	return c, nil
}

// WriteCloud encodes a cloud to w in the 8i vertex layout.
func WriteCloud(w io.Writer, c *pointcloud.Cloud, format Format, comments ...string) error {
	return Write(w, FromCloud(c, format, comments...))
}

// ReadCloud decodes a PLY stream and extracts its vertex cloud.
func ReadCloud(r io.Reader) (*pointcloud.Cloud, error) {
	f, err := Read(r)
	if err != nil {
		return nil, err
	}
	return ToCloud(f)
}
