// Package ply implements the Polygon File Format (PLY) used by the 8i
// Voxelized Full Bodies dataset: header parsing, and reading/writing of
// ascii, binary_little_endian, and binary_big_endian bodies with arbitrary
// elements, scalar properties, and list properties. It replaces the
// point-cloud IO role Open3D plays in the paper.
package ply

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Format identifies the encoding of a PLY body.
type Format int

// Supported body encodings.
const (
	ASCII Format = iota + 1
	BinaryLittleEndian
	BinaryBigEndian
)

// String implements fmt.Stringer using the on-disk keyword.
func (f Format) String() string {
	switch f {
	case ASCII:
		return "ascii"
	case BinaryLittleEndian:
		return "binary_little_endian"
	case BinaryBigEndian:
		return "binary_big_endian"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ScalarType is one of PLY's scalar property types.
type ScalarType int

// PLY scalar types. Both classic names (char/uchar/...) and sized names
// (int8/uint8/...) parse to the same values.
const (
	Int8 ScalarType = iota + 1
	UInt8
	Int16
	UInt16
	Int32
	UInt32
	Float32
	Float64
)

// Size returns the encoded byte width of the scalar type.
func (t ScalarType) Size() int {
	switch t {
	case Int8, UInt8:
		return 1
	case Int16, UInt16:
		return 2
	case Int32, UInt32, Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

// String implements fmt.Stringer using the classic PLY names the 8i files use.
func (t ScalarType) String() string {
	switch t {
	case Int8:
		return "char"
	case UInt8:
		return "uchar"
	case Int16:
		return "short"
	case UInt16:
		return "ushort"
	case Int32:
		return "int"
	case UInt32:
		return "uint"
	case Float32:
		return "float"
	case Float64:
		return "double"
	default:
		return fmt.Sprintf("ScalarType(%d)", int(t))
	}
}

var scalarTypeNames = map[string]ScalarType{
	"char": Int8, "int8": Int8,
	"uchar": UInt8, "uint8": UInt8,
	"short": Int16, "int16": Int16,
	"ushort": UInt16, "uint16": UInt16,
	"int": Int32, "int32": Int32,
	"uint": UInt32, "uint32": UInt32,
	"float": Float32, "float32": Float32,
	"double": Float64, "float64": Float64,
}

// Property describes one property of an element. List properties (e.g.
// vertex_indices of faces) have IsList set with CountType for the length
// prefix and Type for the list payload.
type Property struct {
	Name      string
	Type      ScalarType
	IsList    bool
	CountType ScalarType
}

// Element describes one element group (e.g. "vertex", "face").
type Element struct {
	Name       string
	Count      int
	Properties []Property
}

// PropertyIndex returns the position of the named property, or -1.
func (e *Element) PropertyIndex(name string) int {
	for i, p := range e.Properties {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Header is a parsed PLY header.
type Header struct {
	Format   Format
	Version  string
	Comments []string
	Elements []Element
}

// Element returns the named element, or nil.
func (h *Header) Element(name string) *Element {
	for i := range h.Elements {
		if h.Elements[i].Name == name {
			return &h.Elements[i]
		}
	}
	return nil
}

// Errors the parser can return; matchable with errors.Is.
var (
	ErrNotPLY        = errors.New("ply: missing magic 'ply' line")
	ErrBadHeader     = errors.New("ply: malformed header")
	ErrBadFormat     = errors.New("ply: unsupported format line")
	ErrBadScalarType = errors.New("ply: unknown scalar type")
	ErrTruncated     = errors.New("ply: truncated body")
)

// parseHeader consumes header lines from r up to and including end_header.
func parseHeader(r *bufio.Reader) (*Header, error) {
	magic, err := readHeaderLine(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPLY, err)
	}
	if magic != "ply" {
		return nil, ErrNotPLY
	}
	h := &Header{}
	var current *Element
	for {
		line, err := readHeaderLine(r)
		if err != nil {
			return nil, fmt.Errorf("%w: unterminated header: %v", ErrBadHeader, err)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "format":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: %q", ErrBadFormat, line)
			}
			switch fields[1] {
			case "ascii":
				h.Format = ASCII
			case "binary_little_endian":
				h.Format = BinaryLittleEndian
			case "binary_big_endian":
				h.Format = BinaryBigEndian
			default:
				return nil, fmt.Errorf("%w: %q", ErrBadFormat, fields[1])
			}
			h.Version = fields[2]
		case "comment", "obj_info":
			h.Comments = append(h.Comments, strings.TrimSpace(strings.TrimPrefix(line, fields[0])))
		case "element":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: element line %q", ErrBadHeader, line)
			}
			count, err := strconv.Atoi(fields[2])
			if err != nil || count < 0 {
				return nil, fmt.Errorf("%w: element count %q", ErrBadHeader, fields[2])
			}
			// Columns are keyed by element name, so a duplicate would
			// silently alias the first element's data.
			for _, e := range h.Elements {
				if e.Name == fields[1] {
					return nil, fmt.Errorf("%w: duplicate element %q", ErrBadHeader, fields[1])
				}
			}
			h.Elements = append(h.Elements, Element{Name: fields[1], Count: count})
			current = &h.Elements[len(h.Elements)-1]
		case "property":
			if current == nil {
				return nil, fmt.Errorf("%w: property before element", ErrBadHeader)
			}
			prop, err := parseProperty(fields)
			if err != nil {
				return nil, err
			}
			// Same aliasing hazard as elements: columns are keyed by
			// property name within the element.
			for _, p := range current.Properties {
				if p.Name == prop.Name {
					return nil, fmt.Errorf("%w: duplicate property %q in element %q", ErrBadHeader, prop.Name, current.Name)
				}
			}
			current.Properties = append(current.Properties, prop)
		case "end_header":
			if h.Format == 0 {
				return nil, fmt.Errorf("%w: missing format line", ErrBadHeader)
			}
			return h, nil
		default:
			return nil, fmt.Errorf("%w: unknown keyword %q", ErrBadHeader, fields[0])
		}
	}
}

func parseProperty(fields []string) (Property, error) {
	if len(fields) >= 2 && fields[1] == "list" {
		if len(fields) != 5 {
			return Property{}, fmt.Errorf("%w: list property %v", ErrBadHeader, fields)
		}
		ct, ok := scalarTypeNames[fields[2]]
		if !ok {
			return Property{}, fmt.Errorf("%w: %q", ErrBadScalarType, fields[2])
		}
		vt, ok := scalarTypeNames[fields[3]]
		if !ok {
			return Property{}, fmt.Errorf("%w: %q", ErrBadScalarType, fields[3])
		}
		return Property{Name: fields[4], Type: vt, IsList: true, CountType: ct}, nil
	}
	if len(fields) != 3 {
		return Property{}, fmt.Errorf("%w: property %v", ErrBadHeader, fields)
	}
	t, ok := scalarTypeNames[fields[1]]
	if !ok {
		return Property{}, fmt.Errorf("%w: %q", ErrBadScalarType, fields[1])
	}
	return Property{Name: fields[2], Type: t}, nil
}

// readHeaderLine reads one \n-terminated line, tolerating \r\n.
func readHeaderLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
