package synthetic

import (
	"math"

	"qarv/internal/geom"
	"qarv/internal/pointcloud"
)

// Region labels a body part for coloring.
type Region int

// Body regions used by the clothing colorer.
const (
	RegionHead Region = iota + 1
	RegionTorso
	RegionArms
	RegionHands
	RegionLegs
	RegionFeet
)

// bodyPart couples a primitive with its region label.
type bodyPart struct {
	surf   surface
	region Region
}

// Pose parameterizes the body's stance for one frame.
type Pose struct {
	// Phase is the gait-cycle phase in [0,1): 0 mid-stance, limbs swing
	// sinusoidally with opposite arm/leg phases as in a walk.
	Phase float64
	// Yaw rotates the whole body around +Y (radians).
	Yaw float64
	// Lean tilts the torso forward (radians, small).
	Lean float64
}

// WalkPose returns the pose at frame i of an n-frame walking loop.
func WalkPose(i, n int) Pose {
	if n <= 0 {
		n = 1
	}
	phase := float64(i%n) / float64(n)
	return Pose{
		Phase: phase,
		Yaw:   0.15 * math.Sin(2*math.Pi*phase), // slight body sway
		Lean:  0.05,
	}
}

// buildBody lays out the primitives of a standing/walking human of the
// given total height (meters) and build (width multiplier, ~1.0), posed by
// pose. Coordinates: feet near y=0, +Y up, facing +Z.
func buildBody(height, build float64, pose Pose) []bodyPart {
	h := height
	b := build
	swing := 0.35 * math.Sin(2*math.Pi*pose.Phase) // leg swing angle driver

	hipY := 0.52 * h
	shoulderY := 0.815 * h
	neckY := 0.86 * h
	headC := geom.V(0, 0.935*h, 0.01*h*pose.Lean*10)
	headR := geom.V(0.060*h*b, 0.075*h, 0.068*h*b)

	torsoR := 0.110 * h * b
	hipHalf := 0.085 * h * b
	shoulderHalf := 0.160 * h * b

	parts := make([]bodyPart, 0, 16)
	add := func(s surface, r Region) { parts = append(parts, bodyPart{surf: s, region: r}) }

	// Head + neck.
	add(ellipsoid{c: headC, r: headR}, RegionHead)
	add(capsule{a: geom.V(0, neckY, 0), b: geom.V(0, headC.Y-headR.Y*0.5, 0), r: 0.030 * h * b}, RegionHead)

	// Torso: hip→shoulder capsule plus a pelvis ellipsoid; lean shifts the
	// shoulder forward.
	leanZ := math.Sin(pose.Lean) * (shoulderY - hipY)
	add(capsule{a: geom.V(0, hipY, 0), b: geom.V(0, shoulderY, leanZ), r: torsoR}, RegionTorso)
	add(ellipsoid{c: geom.V(0, hipY, 0), r: geom.V(0.14*h*b, 0.06*h, 0.10*h*b)}, RegionTorso)
	add(ellipsoid{c: geom.V(0, shoulderY, leanZ), r: geom.V(shoulderHalf, 0.045*h, 0.075*h*b)}, RegionTorso)

	// Limbs, mirrored. side = -1 left, +1 right.
	for _, side := range []float64{-1, 1} {
		legPhase := swing * side         // legs swing in anti-phase
		armPhase := -swing * side * 0.75 // arms oppose legs

		// Leg chain: hip → knee → ankle → toe.
		hip := geom.V(side*hipHalf, hipY, 0)
		thighLen := 0.24 * h
		shinLen := 0.23 * h
		knee := hip.Add(geom.V(0, -thighLen*math.Cos(legPhase), thighLen*math.Sin(legPhase)))
		// Shin keeps the knee slightly bent during swing.
		bend := 0.4 * math.Max(0, math.Sin(2*math.Pi*pose.Phase)*side)
		ankle := knee.Add(geom.V(0, -shinLen*math.Cos(legPhase-bend), shinLen*math.Sin(legPhase-bend)))
		if ankle.Y < 0.035*h {
			ankle.Y = 0.035 * h
		}
		toe := ankle.Add(geom.V(0, -0.01*h, 0.11*h))
		add(capsule{a: hip, b: knee, r: 0.055 * h * b}, RegionLegs)
		add(capsule{a: knee, b: ankle, r: 0.040 * h * b}, RegionLegs)
		add(capsule{a: ankle, b: toe, r: 0.030 * h * b}, RegionFeet)

		// Arm chain: shoulder → elbow → wrist, plus a hand ellipsoid.
		shoulder := geom.V(side*shoulderHalf, shoulderY, leanZ)
		upperLen := 0.16 * h
		foreLen := 0.15 * h
		elbow := shoulder.Add(geom.V(side*0.015*h, -upperLen*math.Cos(armPhase), upperLen*math.Sin(armPhase)))
		wrist := elbow.Add(geom.V(0, -foreLen*math.Cos(armPhase*0.5), foreLen*math.Sin(armPhase*0.5)))
		add(capsule{a: shoulder, b: elbow, r: 0.033 * h * b}, RegionArms)
		add(capsule{a: elbow, b: wrist, r: 0.027 * h * b}, RegionArms)
		add(ellipsoid{c: wrist.Add(geom.V(0, -0.035*h, 0)), r: geom.V(0.022*h, 0.045*h, 0.030*h)}, RegionHands)
	}
	return parts
}

// Wardrobe is the color scheme of a character.
type Wardrobe struct {
	Skin  pointcloud.Color
	Shirt pointcloud.Color
	Pants pointcloud.Color
	Shoes pointcloud.Color
	Hair  pointcloud.Color
	// Stripe enables a second shirt color in horizontal bands, emulating
	// patterned garments like the 8i "longdress" dress.
	Stripe     bool
	StripeCol  pointcloud.Color
	StripeFreq float64 // stripes per meter of height
}

// colorFor picks the wardrobe color for a sampled point, with per-point
// texture noise so voxels do not collapse to flat color blocks.
func (w Wardrobe) colorFor(region Region, p geom.Vec3, height float64, rng *geom.RNG) pointcloud.Color {
	var base pointcloud.Color
	switch region {
	case RegionHead:
		if p.Y > 0.95*height {
			base = w.Hair
		} else {
			base = w.Skin
		}
	case RegionTorso, RegionArms:
		base = w.Shirt
		if w.Stripe && int(math.Floor(p.Y*w.StripeFreq))%2 == 0 {
			base = w.StripeCol
		}
	case RegionHands:
		base = w.Skin
	case RegionLegs:
		base = w.Pants
	case RegionFeet:
		base = w.Shoes
	default:
		base = w.Skin
	}
	return jitterColor(base, 10, rng)
}

func jitterColor(c pointcloud.Color, amp int, rng *geom.RNG) pointcloud.Color {
	j := func(v uint8) uint8 {
		n := int(v) + rng.Intn(2*amp+1) - amp
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		return uint8(n)
	}
	return pointcloud.Color{R: j(c.R), G: j(c.G), B: j(c.B)}
}
