package synthetic

import (
	"errors"
	"fmt"
	"math"

	"qarv/internal/geom"
	"qarv/internal/pointcloud"
)

// Character is a named body preset emulating one of the 8i Voxelized Full
// Bodies subjects.
type Character struct {
	Name     string
	Height   float64 // meters
	Build    float64 // width multiplier (~1.0)
	Wardrobe Wardrobe
}

// Presets returns the four characters mirroring the 8i dataset's subjects
// (longdress, loot, redandblack, soldier) in stature and palette.
func Presets() []Character {
	return []Character{
		{
			Name: "longdress", Height: 1.70, Build: 1.05,
			Wardrobe: Wardrobe{
				Skin:   pointcloud.Color{R: 224, G: 182, B: 150},
				Shirt:  pointcloud.Color{R: 170, G: 60, B: 90},
				Pants:  pointcloud.Color{R: 160, G: 55, B: 85}, // dress continues down
				Shoes:  pointcloud.Color{R: 40, G: 30, B: 30},
				Hair:   pointcloud.Color{R: 60, G: 40, B: 25},
				Stripe: true, StripeCol: pointcloud.Color{R: 205, G: 170, B: 120}, StripeFreq: 9,
			},
		},
		{
			Name: "loot", Height: 1.75, Build: 0.95,
			Wardrobe: Wardrobe{
				Skin:  pointcloud.Color{R: 150, G: 110, B: 85},
				Shirt: pointcloud.Color{R: 220, G: 210, B: 200},
				Pants: pointcloud.Color{R: 70, G: 70, B: 80},
				Shoes: pointcloud.Color{R: 35, G: 30, B: 30},
				Hair:  pointcloud.Color{R: 25, G: 20, B: 18},
			},
		},
		{
			Name: "redandblack", Height: 1.65, Build: 0.95,
			Wardrobe: Wardrobe{
				Skin:  pointcloud.Color{R: 230, G: 190, B: 160},
				Shirt: pointcloud.Color{R: 190, G: 30, B: 35},
				Pants: pointcloud.Color{R: 25, G: 25, B: 28},
				Shoes: pointcloud.Color{R: 25, G: 25, B: 28},
				Hair:  pointcloud.Color{R: 35, G: 25, B: 20},
			},
		},
		{
			Name: "soldier", Height: 1.82, Build: 1.10,
			Wardrobe: Wardrobe{
				Skin:  pointcloud.Color{R: 200, G: 160, B: 130},
				Shirt: pointcloud.Color{R: 90, G: 100, B: 70},
				Pants: pointcloud.Color{R: 80, G: 90, B: 65},
				Shoes: pointcloud.Color{R: 45, G: 40, B: 35},
				Hair:  pointcloud.Color{R: 50, G: 40, B: 30},
			},
		},
	}
}

// ErrUnknownCharacter is returned by ByName for names outside the presets.
var ErrUnknownCharacter = errors.New("synthetic: unknown character")

// ByName returns the preset with the given name.
func ByName(name string) (Character, error) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, nil
		}
	}
	return Character{}, fmt.Errorf("%w: %q", ErrUnknownCharacter, name)
}

// Config controls generation of one frame.
type Config struct {
	Character Character
	// SamplesTarget is the number of raw surface samples before
	// voxelization (default 400_000). More samples saturate the capture
	// grid like the real scans do (~10^6 occupied voxels at depth 10 for
	// 8i; we default lower to keep tests fast but scale linearly).
	SamplesTarget int
	// CaptureDepth is the voxelization depth of the emulated capture rig;
	// the 8i captures are 1024^3 (depth 10). Default 10.
	CaptureDepth int
	// SurfaceNoise is Gaussian positional noise (meters) applied to
	// samples, emulating capture noise. Default 0.002.
	SurfaceNoise float64
	// Seed makes frames reproducible. Frame index is mixed in by Sequence.
	Seed uint64
	// SkipVoxelize keeps the raw surface samples (used by tests that
	// inspect the continuous geometry).
	SkipVoxelize bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Character.Name == "" {
		out.Character = Presets()[0]
	}
	if out.SamplesTarget <= 0 {
		out.SamplesTarget = 400_000
	}
	if out.CaptureDepth <= 0 {
		out.CaptureDepth = 10
	}
	if out.SurfaceNoise == 0 {
		out.SurfaceNoise = 0.002
	}
	return out
}

// Generate produces one voxelized full-body frame in the given pose.
func Generate(cfg Config, pose Pose) (*pointcloud.Cloud, error) {
	c := cfg.withDefaults()
	if c.CaptureDepth < 1 || c.CaptureDepth > 21 {
		return nil, fmt.Errorf("synthetic: capture depth %d out of range", c.CaptureDepth)
	}
	rng := geom.NewRNG(c.Seed ^ 0xa5a5a5a5)
	parts := buildBody(c.Character.Height, c.Character.Build, pose)

	total := 0.0
	for _, p := range parts {
		total += p.surf.area()
	}
	cloud := &pointcloud.Cloud{
		Points: make([]geom.Vec3, 0, c.SamplesTarget),
		Colors: make([]pointcloud.Color, 0, c.SamplesTarget),
	}
	for _, part := range parts {
		share := int(math.Round(float64(c.SamplesTarget) * part.surf.area() / total))
		for i := 0; i < share; i++ {
			p, _ := part.surf.sample(rng)
			if c.SurfaceNoise > 0 {
				p = p.Add(geom.V(
					rng.NormMeanStd(0, c.SurfaceNoise),
					rng.NormMeanStd(0, c.SurfaceNoise),
					rng.NormMeanStd(0, c.SurfaceNoise),
				))
			}
			col := c.Character.Wardrobe.colorFor(part.region, p, c.Character.Height, rng)
			cloud.Points = append(cloud.Points, p)
			cloud.Colors = append(cloud.Colors, col)
		}
	}
	if pose.Yaw != 0 {
		cloud.RotateY(pose.Yaw)
	}
	if c.SkipVoxelize {
		return cloud, nil
	}
	// Voxelize at the capture resolution: voxel edge = cubified bound
	// edge / 2^depth, like a real capture rig's lattice.
	box := cloud.Bounds().Cubified()
	voxel := box.LongestAxisLength() / float64(int64(1)<<uint(c.CaptureDepth))
	vox, err := cloud.VoxelDownsample(voxel)
	if err != nil {
		return nil, fmt.Errorf("synthetic: voxelize: %w", err)
	}
	return vox, nil
}

// Sequence generates an animated multi-frame capture like an 8i sequence.
type Sequence struct {
	cfg    Config
	frames int
}

// NewSequence returns a generator for an n-frame walking sequence.
func NewSequence(cfg Config, frames int) (*Sequence, error) {
	if frames <= 0 {
		return nil, errors.New("synthetic: sequence needs at least one frame")
	}
	return &Sequence{cfg: cfg, frames: frames}, nil
}

// Len returns the number of frames.
func (s *Sequence) Len() int { return s.frames }

// Frame generates frame i (wrapping), posed along the walking loop, with a
// per-frame seed derived from the base seed.
func (s *Sequence) Frame(i int) (*pointcloud.Cloud, error) {
	cfg := s.cfg
	cfg.Seed = s.cfg.Seed + uint64(i%s.frames)*0x9e3779b9
	return Generate(cfg, WalkPose(i, s.frames))
}
