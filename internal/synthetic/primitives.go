// Package synthetic procedurally generates voxelized full-body human point
// clouds that stand in for the 8i Voxelized Full Bodies dataset the paper
// evaluates on. The generator builds a posed parametric body from capsule
// and ellipsoid primitives, samples its surface, voxelizes at a capture
// resolution, and colors regions like clothing. What the controller
// consumes — the occupancy-vs-depth profile a(d) of a human-scale surface —
// matches the real captures' growth law (≈4^d for surfaces until saturating
// at capture resolution), which is the property the experiments depend on.
package synthetic

import (
	"math"

	"qarv/internal/geom"
)

// surface is a samplable 2-manifold primitive.
type surface interface {
	// area returns the (approximate) surface area used to apportion the
	// point budget across primitives.
	area() float64
	// sample draws one surface point and its outward normal.
	sample(rng *geom.RNG) (geom.Vec3, geom.Vec3)
}

// capsule is a cylinder with hemispherical caps, from a to b with radius r.
type capsule struct {
	a, b geom.Vec3
	r    float64
}

var _ surface = capsule{}

func (c capsule) axisLen() float64 { return c.b.Sub(c.a).Norm() }

func (c capsule) area() float64 {
	return 2*math.Pi*c.r*c.axisLen() + 4*math.Pi*c.r*c.r
}

// basis returns unit vectors (u, v) orthogonal to the capsule axis.
func (c capsule) basis() (axis, u, v geom.Vec3) {
	axis = c.b.Sub(c.a).Normalized()
	ref := geom.V(1, 0, 0)
	if math.Abs(axis.X) > 0.9 {
		ref = geom.V(0, 1, 0)
	}
	u = axis.Cross(ref).Normalized()
	v = axis.Cross(u)
	return axis, u, v
}

func (c capsule) sample(rng *geom.RNG) (geom.Vec3, geom.Vec3) {
	sideArea := 2 * math.Pi * c.r * c.axisLen()
	capArea := 4 * math.Pi * c.r * c.r
	if rng.Float64()*(sideArea+capArea) < sideArea {
		// Cylindrical side.
		axis, u, v := c.basis()
		t := rng.Float64()
		theta := rng.Range(0, 2*math.Pi)
		radial := u.Scale(math.Cos(theta)).Add(v.Scale(math.Sin(theta)))
		base := c.a.Add(axis.Scale(t * c.axisLen()))
		return base.Add(radial.Scale(c.r)), radial
	}
	// Hemispherical caps: a uniform sphere point assigned to the matching end.
	dir := rng.UnitSphere()
	axis := c.b.Sub(c.a).Normalized()
	center := c.a
	if dir.Dot(axis) > 0 {
		center = c.b
	}
	return center.Add(dir.Scale(c.r)), dir
}

// ellipsoid has center c and per-axis radii r.
type ellipsoid struct {
	c geom.Vec3
	r geom.Vec3
}

var _ surface = ellipsoid{}

func (e ellipsoid) area() float64 {
	// Knud Thomsen's approximation (p ≈ 1.6075), accurate to ~1%.
	const p = 1.6075
	ap, bp, cp := math.Pow(e.r.X, p), math.Pow(e.r.Y, p), math.Pow(e.r.Z, p)
	return 4 * math.Pi * math.Pow((ap*bp+ap*cp+bp*cp)/3, 1/p)
}

func (e ellipsoid) sample(rng *geom.RNG) (geom.Vec3, geom.Vec3) {
	// Rejection-sample so density is approximately uniform over the
	// surface rather than biased toward the poles of the short axes:
	// accept a direction with probability proportional to the local
	// area-stretch factor.
	maxR := e.r.MaxComponent()
	for i := 0; i < 64; i++ {
		d := rng.UnitSphere()
		p := d.Mul(e.r)
		// Gradient of the implicit ellipsoid function gives the normal.
		n := geom.V(p.X/(e.r.X*e.r.X), p.Y/(e.r.Y*e.r.Y), p.Z/(e.r.Z*e.r.Z)).Normalized()
		// Stretch factor |p| ∈ [minR, maxR]; accept proportionally.
		if rng.Float64()*maxR <= p.Norm() {
			return e.c.Add(p), n
		}
	}
	d := rng.UnitSphere()
	return e.c.Add(d.Mul(e.r)), d
}
