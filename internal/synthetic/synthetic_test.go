package synthetic

import (
	"errors"
	"math"
	"testing"

	"qarv/internal/geom"
	"qarv/internal/octree"
	"qarv/internal/pointcloud"
)

func testConfig() Config {
	return Config{SamplesTarget: 30_000, CaptureDepth: 9, Seed: 1}
}

func TestGenerateBasicShape(t *testing.T) {
	cloud, err := Generate(testConfig(), Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Len() < 5000 {
		t.Fatalf("only %d voxels generated", cloud.Len())
	}
	if !cloud.HasColors() {
		t.Fatal("generated cloud has no colors")
	}
	if err := cloud.Validate(); err != nil {
		t.Fatal(err)
	}
	b := cloud.Bounds()
	// A ~1.7 m human: the Y extent must be human-sized and the larger of
	// the horizontal extents well below the height.
	ySize := b.Size().Y
	if ySize < 1.3 || ySize > 2.1 {
		t.Errorf("body height = %v m", ySize)
	}
	if b.Size().X > ySize || b.Size().Z > ySize {
		t.Errorf("body wider than tall: %v", b.Size())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(), Pose{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(), Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.Colors[i] != b.Colors[i] {
			t.Fatal("same seed produced different clouds")
		}
	}
	cfg := testConfig()
	cfg.Seed = 2
	c, err := Generate(cfg, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() && c.Points[0] == a.Points[0] {
		t.Error("different seeds produced identical clouds")
	}
}

func TestOccupancyGrowthLaw(t *testing.T) {
	// The controller's workload curve a(d) must grow like a surface
	// (~4x per depth) before saturating — the property that makes the
	// synthetic body a faithful stand-in for the 8i captures.
	cloud, err := Generate(Config{SamplesTarget: 60_000, CaptureDepth: 10, Seed: 3}, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := octree.Build(cloud, 10)
	if err != nil {
		t.Fatal(err)
	}
	prof := o.Profile()
	// Mid depths (4..7) should multiply occupancy by ~3-4.5x per level.
	for d := 4; d <= 6; d++ {
		ratio := float64(prof[d+1]) / float64(prof[d])
		if ratio < 2.0 || ratio > 6.0 {
			t.Errorf("occupancy ratio depth %d->%d = %.2f, want surface-like (2..6): profile=%v",
				d, d+1, ratio, prof)
		}
	}
	// Saturation: the last level grows much slower than 4x once the
	// capture lattice resolution is reached.
	last := float64(prof[10]) / float64(prof[9])
	if last > 3.5 {
		t.Errorf("no saturation at capture depth: ratio %.2f", last)
	}
}

func TestVoxelizationDedupes(t *testing.T) {
	cfg := testConfig()
	raw, err := Generate(Config{SamplesTarget: cfg.SamplesTarget, CaptureDepth: cfg.CaptureDepth, Seed: cfg.Seed, SkipVoxelize: true}, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	vox, err := Generate(cfg, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if vox.Len() >= raw.Len() {
		t.Errorf("voxelization did not reduce: %d -> %d", raw.Len(), vox.Len())
	}
}

func TestPresetsDistinct(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 {
		t.Fatalf("want 4 presets, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate preset %q", p.Name)
		}
		names[p.Name] = true
		if p.Height < 1.5 || p.Height > 2.0 {
			t.Errorf("%s height %v implausible", p.Name, p.Height)
		}
	}
	for _, want := range []string{"longdress", "loot", "redandblack", "soldier"} {
		if !names[want] {
			t.Errorf("missing preset %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("soldier")
	if err != nil || c.Name != "soldier" {
		t.Errorf("ByName soldier: %v, %v", c, err)
	}
	if _, err := ByName("gopher"); !errors.Is(err, ErrUnknownCharacter) {
		t.Errorf("unknown name: %v", err)
	}
}

func TestSequenceFramesVary(t *testing.T) {
	seq, err := NewSequence(testConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := seq.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := seq.Frame(4)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-cycle pose differs: centroids should shift.
	if f0.Centroid().Dist(f4.Centroid()) < 1e-4 {
		t.Error("animation frames are identical")
	}
	// Same frame twice must be identical (per-frame determinism).
	f0b, err := seq.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	if f0.Len() != f0b.Len() {
		t.Error("frame regeneration nondeterministic")
	}
	if _, err := NewSequence(testConfig(), 0); err == nil {
		t.Error("zero-frame sequence must error")
	}
}

func TestWalkPoseCycle(t *testing.T) {
	p0 := WalkPose(0, 10)
	p10 := WalkPose(10, 10)
	if p0 != p10 {
		t.Error("walk cycle must wrap")
	}
	if WalkPose(3, 0).Phase != 0 {
		t.Error("n=0 must not panic and must pin phase 0")
	}
}

func TestGenerateBadDepth(t *testing.T) {
	cfg := testConfig()
	cfg.CaptureDepth = 25
	if _, err := Generate(cfg, Pose{}); err == nil {
		t.Error("capture depth beyond Morton limit must error")
	}
}

func TestWardrobeRegions(t *testing.T) {
	// Head samples must mostly be skin/hair tones, leg samples pants.
	cfg := testConfig()
	cfg.SkipVoxelize = true
	cloud, err := Generate(cfg, Pose{})
	if err != nil {
		t.Fatal(err)
	}
	ch := cfg.withDefaults().Character
	hipY := 0.52 * ch.Height
	var legPants, legTotal int
	for i, p := range cloud.Points {
		if p.Y < hipY*0.7 && p.Y > 0.15*ch.Height {
			legTotal++
			if colorNear(cloud.Colors[i], ch.Wardrobe.Pants, 40) {
				legPants++
			}
		}
	}
	if legTotal == 0 {
		t.Fatal("no leg samples found")
	}
	if frac := float64(legPants) / float64(legTotal); frac < 0.6 {
		t.Errorf("only %.0f%% of leg points wear pants", frac*100)
	}
}

func colorNear(a, b pointcloud.Color, tol int) bool {
	dr := int(a.R) - int(b.R)
	dg := int(a.G) - int(b.G)
	db := int(a.B) - int(b.B)
	return abs(dr) <= tol && abs(dg) <= tol && abs(db) <= tol
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPrimitiveAreas(t *testing.T) {
	// Sphere as degenerate capsule: area 4πr².
	c := capsule{a: geom.V(0, 0, 0), b: geom.V(0, 0, 0), r: 2}
	if got, want := c.area(), 4*math.Pi*4; math.Abs(got-want) > 1e-9 {
		t.Errorf("capsule sphere area = %v, want %v", got, want)
	}
	// Sphere as degenerate ellipsoid.
	e := ellipsoid{r: geom.V(1, 1, 1)}
	if got, want := e.area(), 4*math.Pi; math.Abs(got-want)/want > 0.02 {
		t.Errorf("ellipsoid sphere area = %v, want ~%v", got, want)
	}
}

func TestPrimitiveSamplesOnSurface(t *testing.T) {
	rng := geom.NewRNG(9)
	cap := capsule{a: geom.V(0, 0, 0), b: geom.V(0, 1, 0), r: 0.3}
	for i := 0; i < 500; i++ {
		p, n := cap.sample(rng)
		// Distance from axis segment must equal r.
		d := distToSegment(p, cap.a, cap.b)
		if math.Abs(d-cap.r) > 1e-9 {
			t.Fatalf("capsule sample %v at distance %v from axis", p, d)
		}
		if math.Abs(n.Norm()-1) > 1e-9 {
			t.Fatalf("capsule normal not unit: %v", n)
		}
	}
	ell := ellipsoid{c: geom.V(1, 2, 3), r: geom.V(0.5, 1, 0.25)}
	for i := 0; i < 500; i++ {
		p, _ := ell.sample(rng)
		q := p.Sub(ell.c)
		val := q.X*q.X/(ell.r.X*ell.r.X) + q.Y*q.Y/(ell.r.Y*ell.r.Y) + q.Z*q.Z/(ell.r.Z*ell.r.Z)
		if math.Abs(val-1) > 1e-9 {
			t.Fatalf("ellipsoid sample off surface: %v", val)
		}
	}
}

func distToSegment(p, a, b geom.Vec3) float64 {
	ab := b.Sub(a)
	if ab.Norm2() == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / ab.Norm2()
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}
