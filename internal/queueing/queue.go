// Package queueing models the delay side of the paper: the backlog process
// Q(t) of equation (2) (work that has arrived but not yet been visualized),
// a timestamped FIFO frame queue for per-frame latency accounting, arrival
// processes, and a stability detector that classifies backlog trajectories
// the way Fig. 2(a) does (diverging / converging / stabilized).
package queueing

import (
	"errors"
	"math"

	"qarv/internal/geom"
	"qarv/internal/stats"
)

// Backlog is the scalar work backlog Q(t) evolving by the Lindley
// recursion Q(t+1) = max(Q(t) + a(t) − b(t), 0). The zero value is an
// empty queue.
type Backlog struct {
	level   float64
	arrived float64
	served  float64
	dropped float64
	maxLen  float64 // 0 = unbounded
}

// NewBoundedBacklog returns a backlog that drops arrivals beyond maxLen
// (queue overflow, the failure mode the paper attributes to max-Depth).
// maxLen ≤ 0 means unbounded.
func NewBoundedBacklog(maxLen float64) *Backlog {
	return &Backlog{maxLen: maxLen}
}

// Level returns Q(t).
func (b *Backlog) Level() float64 { return b.level }

// Step applies one slot: a work units arrive, up to s units are served.
// It returns the work actually served this slot. Negative inputs are
// treated as zero.
func (b *Backlog) Step(a, s float64) float64 {
	if a < 0 {
		a = 0
	}
	if s < 0 {
		s = 0
	}
	if b.maxLen > 0 && b.level+a > b.maxLen {
		admitted := b.maxLen - b.level
		if admitted < 0 {
			admitted = 0
		}
		b.dropped += a - admitted
		a = admitted
	}
	b.arrived += a
	b.level += a
	served := math.Min(b.level, s)
	b.level -= served
	b.served += served
	return served
}

// TotalArrived returns cumulative admitted work.
func (b *Backlog) TotalArrived() float64 { return b.arrived }

// TotalServed returns cumulative served work.
func (b *Backlog) TotalServed() float64 { return b.served }

// TotalDropped returns cumulative overflow-dropped work.
func (b *Backlog) TotalDropped() float64 { return b.dropped }

// ConservationError returns |arrived − served − level|; it must be ~0 at
// all times (the flow-conservation invariant under property test).
func (b *Backlog) ConservationError() float64 {
	return math.Abs(b.arrived - b.served - b.level)
}

// Frame is one AR frame's rendering job in the FIFO queue.
type Frame struct {
	ID         int
	Work       float64 // total work units to visualize the frame
	Remaining  float64 // work still unserved
	EnqueuedAt int     // slot of arrival
	Depth      int     // octree depth the controller chose for the frame
}

// Completed records a frame that finished service.
type Completed struct {
	Frame
	CompletedAt int
	// Sojourn is the queueing+service delay in slots.
	Sojourn int
}

// FrameQueue is a FIFO of frames with partial service: a slot's capacity
// drains the head frame first and rolls over to later frames.
//
// Completed frames are released eagerly: the queue keeps a head index
// into its backing slice and compacts once the dead prefix dominates, so
// memory stays proportional to the frames in flight, not to the run
// length.
type FrameQueue struct {
	frames []Frame // frames[head:] are live
	head   int
	nextID int
}

// compactAfter is the dead-prefix length beyond which Serve compacts the
// backing slice (once the prefix also outweighs the live frames).
const compactAfter = 64

// Len returns the number of queued (incl. partially served) frames.
func (q *FrameQueue) Len() int { return len(q.frames) - q.head }

// WorkBacklog returns the total unserved work across queued frames; this
// equals the scalar Q(t) when both are driven identically.
func (q *FrameQueue) WorkBacklog() float64 {
	var sum float64
	for _, f := range q.frames[q.head:] {
		sum += f.Remaining
	}
	return sum
}

// Push enqueues a frame of the given work at slot now and returns its ID.
func (q *FrameQueue) Push(work float64, depth, now int) int {
	if work < 0 {
		work = 0
	}
	id := q.nextID
	q.nextID++
	q.frames = append(q.frames, Frame{
		ID: id, Work: work, Remaining: work, EnqueuedAt: now, Depth: depth,
	})
	return id
}

// Serve applies capacity work units at slot now, FIFO with partial
// service, and returns the frames completed this slot.
func (q *FrameQueue) Serve(capacity float64, now int) []Completed {
	var done []Completed
	for capacity > 0 && q.head < len(q.frames) {
		head := &q.frames[q.head]
		if head.Remaining > capacity {
			head.Remaining -= capacity
			capacity = 0
			break
		}
		capacity -= head.Remaining
		head.Remaining = 0
		done = append(done, Completed{
			Frame:       *head,
			CompletedAt: now,
			Sojourn:     now - head.EnqueuedAt,
		})
		q.head++
	}
	q.compact()
	return done
}

// compact copies live frames to the front of the backing slice once the
// served prefix dominates it, releasing completed frames for reuse by
// subsequent pushes (flat memory over arbitrarily long runs).
func (q *FrameQueue) compact() {
	if q.head > compactAfter && q.head*2 >= len(q.frames) {
		n := copy(q.frames, q.frames[q.head:])
		q.frames = q.frames[:n]
		q.head = 0
	}
}

// DropTail removes up to amount work from the newest frames (tail first)
// — the frame-level mirror of a bounded backlog's overflow drop, which
// rejects the latest arrivals. A frame whose remaining work hits zero is
// removed outright and counted (it will never complete); a partially
// trimmed frame stays queued with reduced remaining work. DropTail
// returns the whole frames dropped and the work actually removed (less
// than amount only when the queue held less).
func (q *FrameQueue) DropTail(amount float64) (frames int, removed float64) {
	for amount > 0 && q.head < len(q.frames) {
		tail := &q.frames[len(q.frames)-1]
		if tail.Remaining > amount {
			tail.Remaining -= amount
			removed += amount
			return frames, removed
		}
		amount -= tail.Remaining
		removed += tail.Remaining
		q.frames = q.frames[:len(q.frames)-1]
		frames++
	}
	return frames, removed
}

// OldestAge returns the age (in slots) of the head frame at slot now, or 0
// for an empty queue — the head-of-line delay.
func (q *FrameQueue) OldestAge(now int) int {
	if q.head >= len(q.frames) {
		return 0
	}
	return now - q.frames[q.head].EnqueuedAt
}

// ArrivalProcess yields the number of frames arriving in each slot.
type ArrivalProcess interface {
	// Frames returns how many frames arrive at slot t.
	Frames(t int) int
	// Name identifies the process in traces.
	Name() string
}

// DeterministicArrivals delivers a fixed number of frames per slot — the
// paper's setting (one AR frame per unit time).
type DeterministicArrivals struct {
	PerSlot int
}

var _ ArrivalProcess = (*DeterministicArrivals)(nil)

// Frames implements ArrivalProcess.
func (a *DeterministicArrivals) Frames(int) int {
	if a.PerSlot < 0 {
		return 0
	}
	return a.PerSlot
}

// Name implements ArrivalProcess.
func (a *DeterministicArrivals) Name() string { return "deterministic" }

// PoissonArrivals delivers a Poisson-distributed number of frames per slot.
type PoissonArrivals struct {
	Mean float64
	RNG  *geom.RNG
}

var _ ArrivalProcess = (*PoissonArrivals)(nil)

// Frames implements ArrivalProcess.
func (a *PoissonArrivals) Frames(int) int {
	if a.RNG == nil {
		return int(math.Round(a.Mean))
	}
	return a.RNG.Poisson(a.Mean)
}

// Name implements ArrivalProcess.
func (a *PoissonArrivals) Name() string { return "poisson" }

// Reseed replaces the process's RNG — the hook qarv.WithSeed uses to
// drive every stochastic session component from one session seed.
func (a *PoissonArrivals) Reseed(rng *geom.RNG) { a.RNG = rng }

// Clone returns a run-isolated copy: the RNG state is deep-copied, so
// a cloned run never advances (or races) the original's stream.
func (a *PoissonArrivals) Clone() *PoissonArrivals {
	if a == nil {
		return nil
	}
	c := *a
	c.RNG = a.RNG.Clone()
	return &c
}

// OnOffArrivals alternates between bursts of PerSlotOn frames for OnSlots
// and silence for OffSlots — bursty telepresence traffic.
type OnOffArrivals struct {
	OnSlots, OffSlots int
	PerSlotOn         int
}

var _ ArrivalProcess = (*OnOffArrivals)(nil)

// Frames implements ArrivalProcess.
func (a *OnOffArrivals) Frames(t int) int {
	period := a.OnSlots + a.OffSlots
	if period <= 0 {
		return a.PerSlotOn
	}
	if t%period < a.OnSlots {
		return a.PerSlotOn
	}
	return 0
}

// Name implements ArrivalProcess.
func (a *OnOffArrivals) Name() string { return "on-off" }

// Verdict classifies a backlog trajectory.
type Verdict int

// Stability verdicts mirroring Fig. 2(a)'s three behaviours.
const (
	// VerdictDiverging: backlog grows without bound (paper: only
	// max-Depth, "queue overflow after a certain time").
	VerdictDiverging Verdict = iota + 1
	// VerdictConverged: backlog drains to ~0 (paper: only min-Depth).
	VerdictConverged
	// VerdictStabilized: backlog bounded away from both 0 and divergence
	// (paper: the proposed scheme after its knee).
	VerdictStabilized
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictDiverging:
		return "diverging"
	case VerdictConverged:
		return "converged"
	case VerdictStabilized:
		return "stabilized"
	default:
		return "unknown"
	}
}

// ErrTooShort is returned when a trajectory has too few samples to judge.
var ErrTooShort = errors.New("queueing: trajectory too short to classify")

// ClassifyTrajectory inspects the tail (last half) of a backlog series:
// a sustained positive slope relative to the mean level ⇒ diverging; a
// tail mean below convergeTol·peak ⇒ converged; otherwise stabilized.
func ClassifyTrajectory(series []float64, convergeTol float64) (Verdict, error) {
	if len(series) < 8 {
		return 0, ErrTooShort
	}
	if convergeTol <= 0 {
		convergeTol = 0.02
	}
	tail := series[len(series)/2:]
	xs := make([]float64, len(tail))
	peak := 0.0
	var tailStats stats.Running
	for i, v := range tail {
		xs[i] = float64(i)
		tailStats.Add(v)
	}
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return VerdictConverged, nil
	}
	if tailStats.Mean() <= convergeTol*peak {
		return VerdictConverged, nil
	}
	fit, err := stats.OLS(xs, tail)
	if err == nil {
		// Growth over the tail window relative to its own mean level.
		growth := fit.Slope * float64(len(tail))
		if growth > 0.5*tailStats.Mean() {
			return VerdictDiverging, nil
		}
	}
	return VerdictStabilized, nil
}

// LittleEstimator accumulates the Little's-law quantities over a run:
// average queue length L, arrival rate λ (frames/slot), and average
// sojourn W (slots), so L ≈ λ·W can be verified.
type LittleEstimator struct {
	qSum     float64
	slots    int
	arrivals int
	sojourn  float64
	finished int
}

// ObserveSlot records the queue length of one slot and its frame arrivals.
func (l *LittleEstimator) ObserveSlot(queueLen float64, arrivals int) {
	l.qSum += queueLen
	l.slots++
	l.arrivals += arrivals
}

// ObserveCompletion records a finished frame's sojourn time.
func (l *LittleEstimator) ObserveCompletion(sojournSlots int) {
	l.sojourn += float64(sojournSlots)
	l.finished++
}

// L returns the time-average queue length.
func (l *LittleEstimator) L() float64 {
	if l.slots == 0 {
		return 0
	}
	return l.qSum / float64(l.slots)
}

// Lambda returns the average arrival rate (frames/slot).
func (l *LittleEstimator) Lambda() float64 {
	if l.slots == 0 {
		return 0
	}
	return float64(l.arrivals) / float64(l.slots)
}

// W returns the average sojourn time (slots/frame).
func (l *LittleEstimator) W() float64 {
	if l.finished == 0 {
		return 0
	}
	return l.sojourn / float64(l.finished)
}

// LawGap returns |L − λ·W| / max(L, ε): the relative Little's-law residual.
func (l *LittleEstimator) LawGap() float64 {
	lhs := l.L()
	rhs := l.Lambda() * l.W()
	denom := math.Max(lhs, 1e-9)
	return math.Abs(lhs-rhs) / denom
}
