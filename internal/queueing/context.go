package queueing

import "context"

// PollEvery is the default cancellation-poll stride used by the slot
// loops: contexts are checked once per this many iterations so a hot
// Lindley loop pays (almost) nothing for cancellability while a
// million-slot run still aborts within ~a thousand slots of a cancel.
const PollEvery = 1024

// CancelCheck amortizes context polling across hot slot loops. Calling
// Check every iteration touches the context only once per stride, so the
// loop body stays branch-cheap; the first poll after cancellation
// returns the context's error.
type CancelCheck struct {
	ctx   context.Context
	every uint
	n     uint
}

// NewCancelCheck builds a checker over ctx polling once per every
// iterations (every <= 0 takes PollEvery; a nil ctx never cancels).
func NewCancelCheck(ctx context.Context, every int) *CancelCheck {
	if every <= 0 {
		every = PollEvery
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &CancelCheck{ctx: ctx, every: uint(every)}
}

// Check counts one iteration and, once per stride, polls the context.
// It returns nil while the context is live and ctx.Err() once canceled.
// The very first call polls too, so a pre-canceled context aborts even
// loops shorter than one stride.
func (c *CancelCheck) Check() error {
	c.n++
	if c.n != 1 && c.n%c.every != 0 {
		return nil
	}
	return c.ctx.Err()
}
