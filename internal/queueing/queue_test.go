package queueing

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"qarv/internal/geom"
)

func TestBacklogLindleyRecursion(t *testing.T) {
	var b Backlog
	if b.Level() != 0 {
		t.Fatal("zero value must start empty")
	}
	b.Step(10, 3) // 10 in, 3 out
	if b.Level() != 7 {
		t.Errorf("level = %v, want 7", b.Level())
	}
	b.Step(0, 100) // drain fully; never negative
	if b.Level() != 0 {
		t.Errorf("level = %v, want 0", b.Level())
	}
	served := b.Step(5, 2)
	if served != 2 || b.Level() != 3 {
		t.Errorf("served %v level %v", served, b.Level())
	}
}

func TestBacklogNegativeInputsClamp(t *testing.T) {
	var b Backlog
	b.Step(-5, -5)
	if b.Level() != 0 || b.TotalArrived() != 0 {
		t.Error("negative inputs must be treated as zero")
	}
}

func TestBacklogConservationProperty(t *testing.T) {
	// Property: arrived − served − level == 0 under any workload.
	f := func(seed uint64) bool {
		rng := geom.NewRNG(seed)
		var b Backlog
		for i := 0; i < 300; i++ {
			b.Step(rng.Range(0, 100), rng.Range(0, 90))
			if b.ConservationError() > 1e-6 {
				return false
			}
			if b.Level() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundedBacklogDrops(t *testing.T) {
	b := NewBoundedBacklog(100)
	b.Step(80, 0)
	if b.TotalDropped() != 0 {
		t.Error("no drop below the bound")
	}
	b.Step(50, 0) // only 20 fits
	if b.Level() != 100 {
		t.Errorf("level = %v, want 100", b.Level())
	}
	if b.TotalDropped() != 30 {
		t.Errorf("dropped = %v, want 30", b.TotalDropped())
	}
	if b.ConservationError() > 1e-9 {
		t.Error("conservation must hold for admitted work")
	}
	// Already-full queue drops everything.
	b.Step(10, 0)
	if b.TotalDropped() != 40 {
		t.Errorf("dropped = %v, want 40", b.TotalDropped())
	}
}

func TestFrameQueueFIFOAndPartialService(t *testing.T) {
	var q FrameQueue
	q.Push(10, 7, 0)
	q.Push(5, 7, 0)
	if q.Len() != 2 || q.WorkBacklog() != 15 {
		t.Fatalf("len %d backlog %v", q.Len(), q.WorkBacklog())
	}
	// Capacity 6 partially serves frame 0.
	done := q.Serve(6, 1)
	if len(done) != 0 {
		t.Fatalf("premature completion: %v", done)
	}
	if q.WorkBacklog() != 9 {
		t.Errorf("backlog = %v, want 9", q.WorkBacklog())
	}
	// Capacity 9 finishes both.
	done = q.Serve(9, 3)
	if len(done) != 2 {
		t.Fatalf("completed %d frames, want 2", len(done))
	}
	if done[0].ID != 0 || done[1].ID != 1 {
		t.Error("completion order must be FIFO")
	}
	if done[0].Sojourn != 3 || done[1].Sojourn != 3 {
		t.Errorf("sojourns = %d,%d", done[0].Sojourn, done[1].Sojourn)
	}
	if q.Len() != 0 || q.WorkBacklog() != 0 {
		t.Error("queue must be empty")
	}
}

func TestFrameQueueOldestAge(t *testing.T) {
	var q FrameQueue
	if q.OldestAge(10) != 0 {
		t.Error("empty queue age must be 0")
	}
	q.Push(100, 5, 3)
	if q.OldestAge(10) != 7 {
		t.Errorf("age = %d, want 7", q.OldestAge(10))
	}
}

func TestFrameQueueMatchesScalarBacklog(t *testing.T) {
	// Property: driving FrameQueue and Backlog with identical arrivals and
	// service keeps WorkBacklog == Level.
	rng := geom.NewRNG(44)
	var q FrameQueue
	var b Backlog
	for slot := 0; slot < 500; slot++ {
		work := rng.Range(0, 50)
		q.Push(work, 6, slot)
		cap := rng.Range(0, 55)
		q.Serve(cap, slot)
		b.Step(work, cap)
		if math.Abs(q.WorkBacklog()-b.Level()) > 1e-6 {
			t.Fatalf("slot %d: frame backlog %v != scalar %v", slot, q.WorkBacklog(), b.Level())
		}
	}
}

func TestFrameQueueDropTail(t *testing.T) {
	var q FrameQueue
	q.Push(10, 5, 0)
	q.Push(4, 5, 1)
	q.Push(6, 5, 2)

	// Partial trim of the newest frame only.
	frames, removed := q.DropTail(2)
	if frames != 0 || removed != 2 {
		t.Fatalf("DropTail(2) = %d, %v", frames, removed)
	}
	if q.Len() != 3 || q.WorkBacklog() != 18 {
		t.Fatalf("len %d backlog %v after partial trim", q.Len(), q.WorkBacklog())
	}

	// Crossing a frame boundary removes the whole tail frame and trims
	// the next-newest.
	frames, removed = q.DropTail(5)
	if frames != 1 || removed != 5 {
		t.Fatalf("DropTail(5) = %d, %v", frames, removed)
	}
	if q.Len() != 2 || q.WorkBacklog() != 13 {
		t.Fatalf("len %d backlog %v after boundary drop", q.Len(), q.WorkBacklog())
	}

	// Over-draining stops at empty and reports what was removed.
	frames, removed = q.DropTail(100)
	if frames != 2 || removed != 13 {
		t.Fatalf("DropTail(100) = %d, %v", frames, removed)
	}
	if q.Len() != 0 || q.WorkBacklog() != 0 {
		t.Error("queue must be empty after over-drain")
	}

	// FIFO service still works after tail drops interleave with serves.
	q.Push(3, 5, 10)
	q.Push(3, 5, 10)
	q.DropTail(3)
	done := q.Serve(3, 11)
	if len(done) != 1 || done[0].EnqueuedAt != 10 {
		t.Fatalf("served %v after drop", done)
	}
}

func TestFrameQueueBoundedDriveMatchesBoundedBacklog(t *testing.T) {
	// Property: a bounded Backlog and a FrameQueue driven with the same
	// arrivals/service stay equal slot-by-slot when overflow is
	// propagated with DropTail — the drop-divergence fix.
	rng := geom.NewRNG(9)
	b := NewBoundedBacklog(120)
	var q FrameQueue
	for slot := 0; slot < 2000; slot++ {
		work := rng.Range(0, 60)
		q.Push(work, 6, slot)
		droppedBefore := b.TotalDropped()
		served := b.Step(work, rng.Range(0, 50))
		if d := b.TotalDropped() - droppedBefore; d > 0 {
			q.DropTail(d)
		}
		q.Serve(served, slot)
		if math.Abs(q.WorkBacklog()-b.Level()) > 1e-9 {
			t.Fatalf("slot %d: frame backlog %v != scalar %v", slot, q.WorkBacklog(), b.Level())
		}
	}
	if b.TotalDropped() == 0 {
		t.Fatal("test never exercised overflow")
	}
}

func TestFrameQueueMemoryStaysFlat(t *testing.T) {
	// A million push/serve cycles with ~1 frame in flight must not pin
	// the whole history: the compacting queue keeps its backing array
	// near the live size.
	var q FrameQueue
	for slot := 0; slot < 1_000_000; slot++ {
		q.Push(1, 5, slot)
		q.Serve(1, slot)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
	if c := cap(q.frames); c > 4*compactAfter {
		t.Errorf("backing array cap = %d frames after 1M cycles, want ≤ %d", c, 4*compactAfter)
	}
}

func BenchmarkFrameQueueLongRun(b *testing.B) {
	// Memory must stay flat over arbitrarily long runs (the re-slicing
	// queue pinned every completed frame): allocs/op ≈ 0 at steady
	// state.
	b.ReportAllocs()
	var q FrameQueue
	for i := 0; i < b.N; i++ {
		q.Push(2, 5, i)
		q.Serve(2, i)
	}
}

func TestArrivalProcesses(t *testing.T) {
	det := &DeterministicArrivals{PerSlot: 2}
	if det.Frames(0) != 2 || det.Frames(99) != 2 {
		t.Error("deterministic arrivals must be constant")
	}
	if (&DeterministicArrivals{PerSlot: -1}).Frames(0) != 0 {
		t.Error("negative per-slot must clamp")
	}

	pois := &PoissonArrivals{Mean: 3, RNG: geom.NewRNG(7)}
	sum := 0
	for i := 0; i < 10000; i++ {
		sum += pois.Frames(i)
	}
	if mean := float64(sum) / 10000; math.Abs(mean-3) > 0.15 {
		t.Errorf("poisson mean = %v", mean)
	}
	if (&PoissonArrivals{Mean: 2.4}).Frames(0) != 2 {
		t.Error("nil RNG must round the mean")
	}

	oo := &OnOffArrivals{OnSlots: 3, OffSlots: 2, PerSlotOn: 4}
	want := []int{4, 4, 4, 0, 0, 4, 4}
	for i, w := range want {
		if oo.Frames(i) != w {
			t.Fatalf("on-off slot %d = %d, want %d", i, oo.Frames(i), w)
		}
	}
	if (&OnOffArrivals{PerSlotOn: 5}).Frames(3) != 5 {
		t.Error("degenerate on-off period must stay on")
	}
}

func TestClassifyTrajectory(t *testing.T) {
	// Diverging ramp.
	ramp := make([]float64, 200)
	for i := range ramp {
		ramp[i] = float64(i) * 50
	}
	v, err := ClassifyTrajectory(ramp, 0)
	if err != nil || v != VerdictDiverging {
		t.Errorf("ramp verdict = %v (%v)", v, err)
	}
	// Converged to zero after a transient.
	conv := make([]float64, 200)
	for i := range conv {
		if i < 20 {
			conv[i] = float64(20 - i)
		}
	}
	v, err = ClassifyTrajectory(conv, 0)
	if err != nil || v != VerdictConverged {
		t.Errorf("converged verdict = %v (%v)", v, err)
	}
	// Stabilized plateau with small oscillation.
	plat := make([]float64, 200)
	for i := range plat {
		plat[i] = 1000 + 30*math.Sin(float64(i)/5)
	}
	v, err = ClassifyTrajectory(plat, 0)
	if err != nil || v != VerdictStabilized {
		t.Errorf("plateau verdict = %v (%v)", v, err)
	}
	// All-zero trajectory converges trivially.
	v, err = ClassifyTrajectory(make([]float64, 50), 0)
	if err != nil || v != VerdictConverged {
		t.Errorf("zero verdict = %v (%v)", v, err)
	}
	if _, err := ClassifyTrajectory([]float64{1, 2}, 0); !errors.Is(err, ErrTooShort) {
		t.Errorf("short input: %v", err)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictDiverging.String() != "diverging" ||
		VerdictConverged.String() != "converged" ||
		VerdictStabilized.String() != "stabilized" ||
		Verdict(0).String() != "unknown" {
		t.Error("verdict strings wrong")
	}
}

func TestLittleEstimator(t *testing.T) {
	// Deterministic D/D/1: 1 frame/slot of work 1, capacity 1 ⇒ each frame
	// completes in its arrival slot (sojourn 0), queue empty after service.
	var q FrameQueue
	var est LittleEstimator
	for slot := 0; slot < 100; slot++ {
		q.Push(1, 5, slot)
		est.ObserveSlot(float64(q.Len()), 1)
		for _, c := range q.Serve(1, slot) {
			est.ObserveCompletion(c.Sojourn)
		}
	}
	if est.Lambda() != 1 {
		t.Errorf("lambda = %v", est.Lambda())
	}
	if est.W() != 0 {
		t.Errorf("W = %v", est.W())
	}
	// Under-loaded stable system: Little's residual small. L counts the
	// momentary in-service frame (observed before service), W is 0, so the
	// gap here is the L observation itself — both are ~1 and ~0; verify
	// law gap on a delayed system instead.
	var q2 FrameQueue
	var est2 LittleEstimator
	for slot := 0; slot < 2000; slot++ {
		q2.Push(2, 5, slot) // work 2 per slot
		for _, c := range q2.Serve(2, slot) {
			est2.ObserveCompletion(c.Sojourn + 1) // count service slot
		}
		est2.ObserveSlot(q2.WorkBacklog()/2+1, 1) // avg frames incl. in-service
	}
	if gap := est2.LawGap(); gap > 0.1 {
		t.Errorf("Little's law gap = %v", gap)
	}
	var empty LittleEstimator
	if empty.L() != 0 || empty.Lambda() != 0 || empty.W() != 0 {
		t.Error("empty estimator must report zeros")
	}
}

func TestCancelCheckStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCancelCheck(ctx, 4)
	for i := 0; i < 16; i++ {
		if err := c.Check(); err != nil {
			t.Fatalf("live context canceled at iteration %d: %v", i, err)
		}
	}
	cancel()
	// The next poll boundary must surface the cancellation; at stride 4
	// that is at most 4 iterations away.
	var got error
	for i := 0; i < 4; i++ {
		if got = c.Check(); got != nil {
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Errorf("post-cancel Check = %v, want context.Canceled", got)
	}
}

func TestCancelCheckDefaults(t *testing.T) {
	// Nil context and non-positive stride take safe defaults.
	c := NewCancelCheck(nil, 0)
	for i := 0; i < 3*PollEvery; i++ {
		if err := c.Check(); err != nil {
			t.Fatalf("nil-context checker canceled: %v", err)
		}
	}
}
