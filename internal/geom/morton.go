package geom

// Morton (Z-order) codes interleave the bits of three lattice coordinates
// into a single 64-bit key. The octree uses them as stable voxel identities:
// the occupancy profile at depth d is the set of distinct Morton prefixes of
// length 3d, and serialization orders nodes by Morton key so output is
// deterministic regardless of build order.

// MortonBits is the number of bits kept per axis. 3·21 = 63 bits fit a
// uint64, supporting octrees up to depth 21 — far deeper than the depth
// 5–10 range the paper controls.
const MortonBits = 21

// mortonMask is the per-axis coordinate mask.
const mortonMask = (1 << MortonBits) - 1

// spreadBits3 spaces the low 21 bits of x three apart (..b2..b1..b0).
func spreadBits3(x uint64) uint64 {
	x &= mortonMask
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compactBits3 is the inverse of spreadBits3.
func compactBits3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & mortonMask
	return x
}

// MortonEncode interleaves the low 21 bits of x, y, z into a Z-order key.
// Bit 0 of the key is bit 0 of x, matching AABB.Octant's bit convention
// (X=bit0, Y=bit1, Z=bit2 at every level).
func MortonEncode(x, y, z uint32) uint64 {
	return spreadBits3(uint64(x)) | spreadBits3(uint64(y))<<1 | spreadBits3(uint64(z))<<2
}

// MortonDecode recovers the three lattice coordinates from a Z-order key.
func MortonDecode(m uint64) (x, y, z uint32) {
	return uint32(compactBits3(m)), uint32(compactBits3(m >> 1)), uint32(compactBits3(m >> 2))
}

// MortonAtDepth truncates a full-resolution Morton key to its depth-d octree
// node key: the top 3·d interleaved bits, shifted down so that sibling order
// is preserved. d must be in [0, MortonBits].
func MortonAtDepth(m uint64, d int) uint64 {
	if d <= 0 {
		return 0
	}
	if d >= MortonBits {
		return m
	}
	return m >> uint(3*(MortonBits-d))
}

// MortonChildIndex returns the octant index (0..7) of the depth-(level+1)
// child that key m descends into below its depth-level node.
// level counts from 0 (root); m is a full-resolution key.
func MortonChildIndex(m uint64, level int) int {
	shift := uint(3 * (MortonBits - 1 - level))
	return int((m >> shift) & 7)
}

// LatticeCoord quantizes a continuous coordinate v within [lo, hi) onto the
// 2^MortonBits lattice. Values at or beyond hi clamp to the last cell so
// the cloud's extreme point still receives a valid voxel.
func LatticeCoord(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	t := (v - lo) / (hi - lo)
	c := int64(t * (1 << MortonBits))
	if c < 0 {
		c = 0
	}
	if c > mortonMask {
		c = mortonMask
	}
	return uint32(c)
}

// MortonFromPoint maps a point inside box to its full-resolution Morton key.
// The box should be cubified so voxels are cubic.
func MortonFromPoint(p Vec3, box AABB) uint64 {
	x := LatticeCoord(p.X, box.Min.X, box.Max.X)
	y := LatticeCoord(p.Y, box.Min.Y, box.Max.Y)
	z := LatticeCoord(p.Z, box.Min.Z, box.Max.Z)
	return MortonEncode(x, y, z)
}

// VoxelCenter returns the center of the depth-d voxel identified by the
// depth-d key (as produced by MortonAtDepth) inside box.
func VoxelCenter(key uint64, d int, box AABB) Vec3 {
	// Re-spread the truncated key back to full resolution at the voxel's
	// minimum corner, then offset by half a voxel.
	if d <= 0 {
		return box.Center()
	}
	full := key << uint(3*(MortonBits-d))
	x, y, z := MortonDecode(full)
	size := box.Size()
	cells := float64(int64(1) << uint(d))
	vx := size.X / cells
	vy := size.Y / cells
	vz := size.Z / cells
	// Lattice coordinates address 2^MortonBits cells; a depth-d voxel spans
	// 2^(MortonBits−d) lattice cells per axis.
	scale := float64(int64(1) << uint(MortonBits-d))
	return Vec3{
		X: box.Min.X + (float64(x)/scale+0.5)*vx,
		Y: box.Min.Y + (float64(y)/scale+0.5)*vy,
		Z: box.Min.Z + (float64(z)/scale+0.5)*vz,
	}
}
