package geom

import (
	"testing"
	"testing/quick"
)

func TestAABBEmpty(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	if e.Contains(V(0, 0, 0)) {
		t.Error("empty box contains origin")
	}
	if e.Volume() != 0 {
		t.Errorf("empty volume = %v", e.Volume())
	}
	// Extending an empty box by a point yields a degenerate box at the point.
	b := e.Extend(V(1, 2, 3))
	if b.Min != V(1, 2, 3) || b.Max != V(1, 2, 3) {
		t.Errorf("extend empty = %v", b)
	}
}

func TestAABBContainsHalfOpen(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	if !b.Contains(V(0, 0, 0)) {
		t.Error("min corner must be inside (closed below)")
	}
	if b.Contains(V(1, 1, 1)) {
		t.Error("max corner must be outside (open above)")
	}
	if !b.ContainsClosed(V(1, 1, 1)) {
		t.Error("max corner must be inside for closed query")
	}
	if b.Contains(V(0.5, 0.5, 1)) {
		t.Error("face at max must be outside")
	}
}

func TestAABBUnionIntersect(t *testing.T) {
	a := NewAABB(V(0, 0, 0), V(2, 2, 2))
	b := NewAABB(V(1, 1, 1), V(3, 3, 3))
	u := a.Union(b)
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("union = %v", u)
	}
	i := a.Intersect(b)
	if i.Min != V(1, 1, 1) || i.Max != V(2, 2, 2) {
		t.Errorf("intersect = %v", i)
	}
	if !a.Intersects(b) {
		t.Error("a and b must intersect")
	}
	far := NewAABB(V(10, 10, 10), V(11, 11, 11))
	if a.Intersects(far) {
		t.Error("disjoint boxes must not intersect")
	}
}

func TestAABBCubified(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(2, 4, 1))
	c := b.Cubified()
	s := c.Size()
	if s.X != 4 || s.Y != 4 || s.Z != 4 {
		t.Fatalf("cubified size = %v, want (4,4,4)", s)
	}
	if c.Center() != b.Center() {
		t.Errorf("cubified center moved: %v vs %v", c.Center(), b.Center())
	}
	// The cube must contain the original box.
	if !c.ContainsClosed(b.Min) || !c.ContainsClosed(b.Max) {
		t.Error("cubified box does not contain original corners")
	}
}

func TestAABBOctantsPartitionParent(t *testing.T) {
	parent := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	var totalVolume float64
	for i := 0; i < 8; i++ {
		child := parent.Octant(i)
		totalVolume += child.Volume()
		if child.Volume() != 1 {
			t.Errorf("octant %d volume = %v, want 1", i, child.Volume())
		}
	}
	if totalVolume != parent.Volume() {
		t.Errorf("octant volumes sum %v != parent %v", totalVolume, parent.Volume())
	}
}

func TestAABBOctantIndexRoundTrip(t *testing.T) {
	// Property: every point in the parent is contained in exactly the octant
	// that OctantIndex names, and in no other.
	parent := NewAABB(V(0, 0, 0), V(8, 8, 8))
	rng := NewRNG(7)
	for n := 0; n < 500; n++ {
		p := V(rng.Range(0, 8), rng.Range(0, 8), rng.Range(0, 8))
		idx := parent.OctantIndex(p)
		count := 0
		for i := 0; i < 8; i++ {
			if parent.Octant(i).Contains(p) {
				count++
				if i != idx {
					t.Fatalf("point %v in octant %d but OctantIndex says %d", p, i, idx)
				}
			}
		}
		if count != 1 {
			t.Fatalf("point %v contained in %d octants, want exactly 1", p, count)
		}
	}
}

func TestAABBExpanded(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1)).Expanded(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("expanded = %v", b)
	}
}

func TestAABBUnionCommutativeProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		a := NewAABB(V(clampUnit(ax), clampUnit(ay), clampUnit(az)),
			V(clampUnit(bx), clampUnit(by), clampUnit(bz)))
		b := NewAABB(V(clampUnit(cx), clampUnit(cy), clampUnit(cz)),
			V(clampUnit(dx), clampUnit(dy), clampUnit(dz)))
		return a.Union(b) == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
