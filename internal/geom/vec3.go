// Package geom provides the small geometric vocabulary shared by the
// point-cloud, octree, and synthetic-dataset substrates: 3-vectors,
// axis-aligned bounding boxes, Morton (Z-order) codes, and a deterministic
// splittable RNG used to keep every experiment reproducible.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float64, used for positions, directions,
// and scales. Vec3 is a value type; all methods return new values.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v − u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Mul returns the component-wise product v ⊙ u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		X: v.Y*u.Z - v.Z*u.Y,
		Y: v.Z*u.X - v.X*u.Z,
		Z: v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and u.
func (v Vec3) Dist(u Vec3) float64 { return v.Sub(u).Norm() }

// Dist2 returns the squared Euclidean distance between v and u.
func (v Vec3) Dist2(u Vec3) float64 { return v.Sub(u).Norm2() }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged (there is no meaningful direction to preserve).
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Min returns the component-wise minimum of v and u.
func (v Vec3) Min(u Vec3) Vec3 {
	return Vec3{math.Min(v.X, u.X), math.Min(v.Y, u.Y), math.Min(v.Z, u.Z)}
}

// Max returns the component-wise maximum of v and u.
func (v Vec3) Max(u Vec3) Vec3 {
	return Vec3{math.Max(v.X, u.X), math.Max(v.Y, u.Y), math.Max(v.Z, u.Z)}
}

// Lerp returns the linear interpolation (1−t)·v + t·u.
func (v Vec3) Lerp(u Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (u.X-v.X)*t,
		Y: v.Y + (u.Y-v.Y)*t,
		Z: v.Z + (u.Z-v.Z)*t,
	}
}

// MaxComponent returns the largest of the three components.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// MinComponent returns the smallest of the three components.
func (v Vec3) MinComponent() float64 { return math.Min(v.X, math.Min(v.Y, v.Z)) }

// IsFinite reports whether all components are finite (no NaN or ±Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// RotateY returns v rotated by angle radians around the +Y axis.
// Human bodies in the synthetic dataset stand along +Y, so yaw rotations
// around Y are the common pose operation.
func (v Vec3) RotateY(angle float64) Vec3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Vec3{
		X: c*v.X + s*v.Z,
		Y: v.Y,
		Z: -s*v.X + c*v.Z,
	}
}

// RotateX returns v rotated by angle radians around the +X axis.
func (v Vec3) RotateX(angle float64) Vec3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Vec3{
		X: v.X,
		Y: c*v.Y - s*v.Z,
		Z: s*v.Y + c*v.Z,
	}
}

// RotateZ returns v rotated by angle radians around the +Z axis.
func (v Vec3) RotateZ(angle float64) Vec3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Vec3{
		X: c*v.X - s*v.Y,
		Y: s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z)
}
