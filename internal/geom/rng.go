package geom

import "math"

// RNG is a small, deterministic, splittable pseudo-random generator
// (SplitMix64 core). Every stochastic component in the repository — the
// synthetic dataset, arrival processes, service jitter, random baselines —
// takes an *RNG seeded from the experiment config, so whole experiments are
// bit-reproducible without global state (no math/rand globals).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Clone returns an independent copy of the generator at its current
// position: clone and receiver emit identical streams from here on and
// never share state. Component Clone methods use it so a cloned run
// never advances the original's stream.
func (r *RNG) Clone() *RNG {
	if r == nil {
		return nil
	}
	c := *r
	return &c
}

// Split derives an independent child generator; the parent advances once.
// Children seeded from distinct parent draws have uncorrelated streams for
// practical simulation purposes.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniform random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform draw in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal draw (Box–Muller).
func (r *RNG) Norm() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormMeanStd returns a normal draw with the given mean and stddev.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Poisson returns a Poisson draw with mean lambda (Knuth for small lambda,
// normal approximation above 64 where Knuth's product underflows slowly).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(r.NormMeanStd(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// UnitSphere returns a uniform draw on the surface of the unit sphere.
func (r *RNG) UnitSphere() Vec3 {
	z := r.Range(-1, 1)
	theta := r.Range(0, 2*math.Pi)
	s := math.Sqrt(1 - z*z)
	return Vec3{X: s * math.Cos(theta), Y: s * math.Sin(theta), Z: z}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
