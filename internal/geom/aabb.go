package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, inclusive of Min and exclusive of
// Max on each axis for point-containment queries (half-open). The half-open
// convention makes octree child boxes partition their parent exactly, so a
// point belongs to exactly one child.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the identity element for Extend: a box that contains
// nothing and extends to the opposite infinities.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{
		Min: Vec3{inf, inf, inf},
		Max: Vec3{-inf, -inf, -inf},
	}
}

// NewAABB returns the box spanning the component-wise min/max of a and b.
func NewAABB(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// IsEmpty reports whether the box contains no points (any axis inverted).
func (b AABB) IsEmpty() bool {
	return b.Min.X >= b.Max.X || b.Min.Y >= b.Max.Y || b.Min.Z >= b.Max.Z
}

// Contains reports whether p lies inside the half-open box [Min, Max).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X < b.Max.X &&
		p.Y >= b.Min.Y && p.Y < b.Max.Y &&
		p.Z >= b.Min.Z && p.Z < b.Max.Z
}

// ContainsClosed reports whether p lies inside the closed box [Min, Max].
// Used when a cloud's extreme point must still be counted as inside.
func (b AABB) ContainsClosed(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Extend returns the smallest box containing both b and p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Intersect returns the overlap of b and o; the result may be empty.
func (b AABB) Intersect(o AABB) AABB {
	return AABB{Min: b.Min.Max(o.Min), Max: b.Max.Min(o.Max)}
}

// Intersects reports whether b and o overlap in a region of positive volume.
func (b AABB) Intersects(o AABB) bool { return !b.Intersect(o).IsEmpty() }

// Size returns the per-axis extents (Max − Min).
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the midpoint of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Volume returns the volume of the box; empty boxes report 0.
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// LongestAxisLength returns the largest per-axis extent.
func (b AABB) LongestAxisLength() float64 { return b.Size().MaxComponent() }

// Cubified returns the smallest cube centered on b's center that contains b.
// Octrees are built over a cube so that every subdivision level has uniform
// voxel size on all axes (matching Open3D's octree convention).
func (b AABB) Cubified() AABB {
	if b.IsEmpty() {
		return b
	}
	half := b.LongestAxisLength() / 2
	c := b.Center()
	h := Vec3{half, half, half}
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Expanded returns the box grown by pad on every side. Negative pad shrinks.
func (b AABB) Expanded(pad float64) AABB {
	p := Vec3{pad, pad, pad}
	return AABB{Min: b.Min.Sub(p), Max: b.Max.Add(p)}
}

// Octant returns the i-th child cube (i ∈ [0,8)) of the box under octree
// subdivision. Bit 0 of i selects the X half, bit 1 the Y half, bit 2 the Z
// half; this ordering matches the Morton-code bit layout in this package.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	child := b
	if i&1 != 0 {
		child.Min.X = c.X
	} else {
		child.Max.X = c.X
	}
	if i&2 != 0 {
		child.Min.Y = c.Y
	} else {
		child.Max.Y = c.Y
	}
	if i&4 != 0 {
		child.Min.Z = c.Z
	} else {
		child.Max.Z = c.Z
	}
	return child
}

// OctantIndex returns which child cube of b the point p falls into, using
// the same bit convention as Octant. The caller must ensure p is inside b.
func (b AABB) OctantIndex(p Vec3) int {
	c := b.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	if p.Z >= c.Z {
		i |= 4
	}
	return i
}

// String implements fmt.Stringer.
func (b AABB) String() string {
	return fmt.Sprintf("AABB[%v .. %v]", b.Min, b.Max)
}
