package geom

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions in 64 draws across seeds", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p := NewRNG(7)
	p.Uint64() // account for the split advancing the parent
	if child.Uint64() == p.Uint64() {
		t.Error("split child replays parent stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values in 1000 draws", len(seen))
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) must return 0")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(8)
	for _, lambda := range []float64{0.5, 4, 20, 120} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.06*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if r.Poisson(-3) != 0 {
		t.Error("Poisson(negative) must be 0")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~2.5", mean)
	}
}

func TestRNGUnitSphereOnSurface(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		v := r.UnitSphere()
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Fatalf("UnitSphere norm = %v", v.Norm())
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
