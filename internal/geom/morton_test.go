package geom

import (
	"testing"
	"testing/quick"
)

func TestMortonEncodeDecodeRoundTrip(t *testing.T) {
	// Property: decode(encode(x,y,z)) == (x,y,z) on the 21-bit lattice.
	f := func(x, y, z uint32) bool {
		x &= mortonMask
		y &= mortonMask
		z &= mortonMask
		gx, gy, gz := MortonDecode(MortonEncode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMortonEncodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{3, 3, 3, 63},
	}
	for _, c := range cases {
		if got := MortonEncode(c.x, c.y, c.z); got != c.want {
			t.Errorf("MortonEncode(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestMortonInjectiveOnSamples(t *testing.T) {
	rng := NewRNG(99)
	seen := make(map[uint64][3]uint32, 5000)
	for i := 0; i < 5000; i++ {
		x := uint32(rng.Uint64()) & mortonMask
		y := uint32(rng.Uint64()) & mortonMask
		z := uint32(rng.Uint64()) & mortonMask
		m := MortonEncode(x, y, z)
		if prev, ok := seen[m]; ok && prev != [3]uint32{x, y, z} {
			t.Fatalf("collision: %v and %v share key %d", prev, [3]uint32{x, y, z}, m)
		}
		seen[m] = [3]uint32{x, y, z}
	}
}

func TestMortonAtDepthPrefix(t *testing.T) {
	m := MortonEncode(mortonMask, mortonMask, mortonMask) // all ones
	if got := MortonAtDepth(m, 0); got != 0 {
		t.Errorf("depth 0 = %d", got)
	}
	if got := MortonAtDepth(m, 1); got != 7 {
		t.Errorf("depth 1 = %d, want 7", got)
	}
	if got := MortonAtDepth(m, MortonBits); got != m {
		t.Errorf("full depth must be identity")
	}
	// Deeper prefixes refine shallower ones: shallow = deep >> 3.
	for d := 1; d < MortonBits; d++ {
		if MortonAtDepth(m, d) != MortonAtDepth(m, d+1)>>3 {
			t.Fatalf("depth %d prefix not a truncation of depth %d", d, d+1)
		}
	}
}

func TestMortonChildIndexMatchesOctantDescent(t *testing.T) {
	// Descending the root cube by OctantIndex must follow the same path as
	// the Morton key's per-level child indices.
	box := NewAABB(V(0, 0, 0), V(1, 1, 1))
	rng := NewRNG(5)
	for n := 0; n < 200; n++ {
		p := V(rng.Float64(), rng.Float64(), rng.Float64())
		m := MortonFromPoint(p, box)
		cur := box
		for level := 0; level < 8; level++ {
			wantIdx := cur.OctantIndex(p)
			gotIdx := MortonChildIndex(m, level)
			if gotIdx != wantIdx {
				t.Fatalf("point %v level %d: morton child %d, octant %d", p, level, gotIdx, wantIdx)
			}
			cur = cur.Octant(wantIdx)
		}
	}
}

func TestLatticeCoordClamping(t *testing.T) {
	if LatticeCoord(-5, 0, 1) != 0 {
		t.Error("below-range values must clamp to 0")
	}
	if got := LatticeCoord(2, 0, 1); got != mortonMask {
		t.Errorf("above-range values must clamp to last cell, got %d", got)
	}
	if got := LatticeCoord(1, 0, 1); got != mortonMask {
		t.Errorf("value at hi must clamp into last cell, got %d", got)
	}
	if LatticeCoord(0.5, 0, 0) != 0 {
		t.Error("degenerate interval must map to 0")
	}
}

func TestVoxelCenterContainsPoint(t *testing.T) {
	// The depth-d voxel center of a point must be within half a voxel of it.
	box := NewAABB(V(-2, -2, -2), V(2, 2, 2))
	rng := NewRNG(11)
	for n := 0; n < 200; n++ {
		p := V(rng.Range(-2, 2), rng.Range(-2, 2), rng.Range(-2, 2))
		m := MortonFromPoint(p, box)
		for _, d := range []int{1, 3, 5, 8} {
			key := MortonAtDepth(m, d)
			c := VoxelCenter(key, d, box)
			half := box.Size().X / float64(int64(2)<<uint(d)) // half voxel edge
			if diff := p.Sub(c); diff.X > half+1e-9 || diff.X < -half-1e-9 ||
				diff.Y > half+1e-9 || diff.Y < -half-1e-9 ||
				diff.Z > half+1e-9 || diff.Z < -half-1e-9 {
				t.Fatalf("depth %d voxel center %v too far from point %v (half=%v)", d, c, p, half)
			}
		}
	}
}

func TestVoxelCenterDepthZero(t *testing.T) {
	box := NewAABB(V(0, 0, 0), V(4, 4, 4))
	if got := VoxelCenter(0, 0, box); got != box.Center() {
		t.Errorf("depth-0 voxel center = %v, want box center", got)
	}
}
