package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := V(1, 0, 0)
	b := V(0, 1, 0)
	if got := a.Cross(b); got != V(0, 0, 1) {
		t.Fatalf("x cross y = %v, want z", got)
	}
	if got := b.Cross(a); got != V(0, 0, -1) {
		t.Fatalf("y cross x = %v, want -z", got)
	}
}

func TestVec3NormAndDist(t *testing.T) {
	v := V(3, 4, 0)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v, want 25", v.Norm2())
	}
	if d := V(1, 1, 1).Dist(V(1, 1, 2)); d != 1 {
		t.Errorf("Dist = %v, want 1", d)
	}
}

func TestVec3NormalizedUnitLength(t *testing.T) {
	v := V(10, -3, 2).Normalized()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Errorf("normalized length = %v", v.Norm())
	}
	zero := Vec3{}.Normalized()
	if zero != (Vec3{}) {
		t.Errorf("zero normalized = %v, want zero", zero)
	}
}

func TestVec3MinMaxLerp(t *testing.T) {
	a, b := V(1, 5, -2), V(3, 0, -1)
	if got := a.Min(b); got != V(1, 0, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(3, 5, -1) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !vecAlmostEq(got, b, 1e-15) {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecAlmostEq(got, V(2, 2.5, -1.5), 1e-15) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestVec3RotationsPreserveNorm(t *testing.T) {
	v := V(1.5, -2.25, 0.75)
	for _, angle := range []float64{0, 0.3, math.Pi / 2, math.Pi, 5.1} {
		for name, rot := range map[string]Vec3{
			"X": v.RotateX(angle),
			"Y": v.RotateY(angle),
			"Z": v.RotateZ(angle),
		} {
			if !almostEq(rot.Norm(), v.Norm(), 1e-12) {
				t.Errorf("Rotate%s(%v) changed norm: %v -> %v", name, angle, v.Norm(), rot.Norm())
			}
		}
	}
}

func TestVec3RotateYQuarterTurn(t *testing.T) {
	got := V(1, 0, 0).RotateY(math.Pi / 2)
	if !vecAlmostEq(got, V(0, 0, -1), 1e-12) {
		t.Errorf("RotateY(pi/2) of +x = %v, want -z", got)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{X: math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{Z: math.Inf(-1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVec3DotCrossIdentity(t *testing.T) {
	// Property: v · (v × u) == 0 for all v, u.
	f := func(vx, vy, vz, ux, uy, uz float64) bool {
		v := V(clampUnit(vx), clampUnit(vy), clampUnit(vz))
		u := V(clampUnit(ux), clampUnit(uy), clampUnit(uz))
		return almostEq(v.Dot(v.Cross(u)), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampUnit maps arbitrary float64 quick-check inputs into a sane range so
// products do not overflow into Inf.
func clampUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1e3)
}
