package netem

import (
	"errors"
	"math"
	"testing"
)

func mustLink(t *testing.T, cfg LinkConfig) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{BytesPerSlot: 0}); !errors.Is(err, ErrBadBandwidth) {
		t.Errorf("zero bandwidth: %v", err)
	}
	if _, err := NewLink(LinkConfig{BytesPerSlot: 1, LossProb: 1}); !errors.Is(err, ErrBadLoss) {
		t.Errorf("loss=1: %v", err)
	}
	if _, err := NewLink(LinkConfig{BytesPerSlot: 1, LatencySlots: -1}); !errors.Is(err, ErrBadLatency) {
		t.Errorf("negative latency: %v", err)
	}
}

func TestLinkTransmissionTiming(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 2})
	// 300 bytes at 100 B/slot: tx 3 slots + 2 latency = delivered at 5.
	tx := l.Transmit(300, 0)
	if tx.Dropped {
		t.Fatal("lossless link dropped")
	}
	if tx.StartSlot != 0 || tx.QueueingDelay != 0 {
		t.Errorf("start=%v queue=%v", tx.StartSlot, tx.QueueingDelay)
	}
	if tx.DeliveredSlot != 5 {
		t.Errorf("delivered at %v, want 5", tx.DeliveredSlot)
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100})
	// Two back-to-back frames at slot 0: the second queues behind the first.
	first := l.Transmit(200, 0) // busy until 2
	second := l.Transmit(100, 0)
	if first.DeliveredSlot != 2 {
		t.Errorf("first delivered %v", first.DeliveredSlot)
	}
	if second.StartSlot != 2 || second.QueueingDelay != 2 {
		t.Errorf("second start=%v queue=%v, want 2/2", second.StartSlot, second.QueueingDelay)
	}
	if second.DeliveredSlot != 3 {
		t.Errorf("second delivered %v, want 3", second.DeliveredSlot)
	}
	// QueueDelay reflects the busy period.
	if d := l.QueueDelay(0); d != 3 {
		t.Errorf("queue delay at 0 = %v, want 3", d)
	}
	if d := l.QueueDelay(10); d != 0 {
		t.Errorf("queue delay after idle = %v, want 0", d)
	}
}

func TestLinkLossRate(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 1000, LossProb: 0.25, Seed: 5})
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		if l.Transmit(1, i).Dropped {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("loss rate = %v, want ~0.25", rate)
	}
	st := l.Stats()
	if st.Sent+st.Dropped != n {
		t.Errorf("sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
}

func TestLinkDeliverPropagationLeg(t *testing.T) {
	// Deliver applies latency/jitter/loss without touching the
	// serializer: the busy period is unchanged and counters advance.
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 2, JitterSlots: 0.5, LossProb: 0.25, Seed: 5})
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		slot, lost := l.Deliver(10, float64(i))
		if lost {
			dropped++
			continue
		}
		if slot < float64(i)+2 {
			t.Fatalf("delivery %v earlier than latency floor", slot)
		}
	}
	if rate := float64(dropped) / n; math.Abs(rate-0.25) > 0.02 {
		t.Errorf("loss rate = %v, want ~0.25", rate)
	}
	st := l.Stats()
	if st.Sent+st.Dropped != n {
		t.Errorf("sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
	if want := float64(st.Sent) * 10; st.BytesSent != want {
		t.Errorf("bytes sent = %v, want %v", st.BytesSent, want)
	}
	if d := l.QueueDelay(0); d != 0 {
		t.Errorf("Deliver occupied the serializer: queue delay %v", d)
	}
}

func TestLinkJitterNonNegativeAndVarying(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 1e6, LatencySlots: 1, JitterSlots: 0.5, Seed: 6})
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		tx := l.Transmit(1, i*10)
		if tx.DeliveredSlot < float64(i*10)+1 {
			t.Fatalf("delivery %v earlier than latency floor", tx.DeliveredSlot)
		}
		seen[tx.DeliveredSlot-float64(i*10)] = true
	}
	if len(seen) < 10 {
		t.Error("jitter produced no variation")
	}
}

func TestLinkDeterministicPerSeed(t *testing.T) {
	mk := func() []float64 {
		l := mustLink(t, LinkConfig{BytesPerSlot: 50, LatencySlots: 1, JitterSlots: 1, LossProb: 0.1, Seed: 9})
		out := make([]float64, 100)
		for i := range out {
			tx := l.Transmit(25, i)
			if tx.Dropped {
				out[i] = -1
			} else {
				out[i] = tx.DeliveredSlot
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different link traces")
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tb, err := NewTokenBucket(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Starts full: a 50-byte burst passes, the next byte does not.
	if !tb.Admit(50, 0) {
		t.Fatal("full bucket must admit burst")
	}
	if tb.Admit(1, 0) {
		t.Fatal("drained bucket must reject")
	}
	// After 3 slots: 30 tokens.
	if !tb.Admit(30, 3) {
		t.Fatal("refilled tokens must admit")
	}
	if tb.Admit(5, 3) {
		t.Fatal("over-balance must reject")
	}
	// Refill caps at burst.
	if !tb.Admit(50, 100) {
		t.Fatal("cap refill must admit up to burst")
	}
	if tb.Tokens() != 0 {
		t.Errorf("tokens = %v, want 0", tb.Tokens())
	}
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("zero rate must error")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Error("zero burst must error")
	}
}

func TestLinkZeroByteFrames(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 10, LatencySlots: 1})
	tx := l.Transmit(0, 5)
	if tx.DeliveredSlot != 6 {
		t.Errorf("zero-byte delivery = %v, want 6", tx.DeliveredSlot)
	}
	tx = l.Transmit(-10, 7)
	if tx.DeliveredSlot != 8 {
		t.Errorf("negative bytes must clamp: %v", tx.DeliveredSlot)
	}
}
