package netem

import (
	"errors"
	"math"
	"testing"
)

func mustLink(t *testing.T, cfg LinkConfig) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{BytesPerSlot: 0}); !errors.Is(err, ErrBadBandwidth) {
		t.Errorf("zero bandwidth: %v", err)
	}
	if _, err := NewLink(LinkConfig{BytesPerSlot: 1, LossProb: 1}); !errors.Is(err, ErrBadLoss) {
		t.Errorf("loss=1: %v", err)
	}
	if _, err := NewLink(LinkConfig{BytesPerSlot: 1, LatencySlots: -1}); !errors.Is(err, ErrBadLatency) {
		t.Errorf("negative latency: %v", err)
	}
}

func TestLinkTransmissionTiming(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 2})
	// 300 bytes at 100 B/slot: tx 3 slots + 2 latency = delivered at 5.
	tx := l.Transmit(300, 0)
	if tx.Dropped {
		t.Fatal("lossless link dropped")
	}
	if tx.StartSlot != 0 || tx.QueueingDelay != 0 {
		t.Errorf("start=%v queue=%v", tx.StartSlot, tx.QueueingDelay)
	}
	if tx.DeliveredSlot != 5 {
		t.Errorf("delivered at %v, want 5", tx.DeliveredSlot)
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100})
	// Two back-to-back frames at slot 0: the second queues behind the first.
	first := l.Transmit(200, 0) // busy until 2
	second := l.Transmit(100, 0)
	if first.DeliveredSlot != 2 {
		t.Errorf("first delivered %v", first.DeliveredSlot)
	}
	if second.StartSlot != 2 || second.QueueingDelay != 2 {
		t.Errorf("second start=%v queue=%v, want 2/2", second.StartSlot, second.QueueingDelay)
	}
	if second.DeliveredSlot != 3 {
		t.Errorf("second delivered %v, want 3", second.DeliveredSlot)
	}
	// QueueDelay reflects the busy period.
	if d := l.QueueDelay(0); d != 3 {
		t.Errorf("queue delay at 0 = %v, want 3", d)
	}
	if d := l.QueueDelay(10); d != 0 {
		t.Errorf("queue delay after idle = %v, want 0", d)
	}
}

func TestLinkLossRate(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 1000, LossProb: 0.25, Seed: 5})
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		if l.Transmit(1, i).Dropped {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("loss rate = %v, want ~0.25", rate)
	}
	st := l.Stats()
	if st.Sent+st.Dropped != n {
		t.Errorf("sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
}

func TestLinkDeliverPropagationLeg(t *testing.T) {
	// Deliver applies latency/jitter/loss without touching the
	// serializer: the busy period is unchanged and counters advance.
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 2, JitterSlots: 0.5, LossProb: 0.25, Seed: 5})
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		slot, lost := l.Deliver(10, float64(i))
		if lost {
			dropped++
			continue
		}
		if slot < float64(i)+2 {
			t.Fatalf("delivery %v earlier than latency floor", slot)
		}
	}
	if rate := float64(dropped) / n; math.Abs(rate-0.25) > 0.02 {
		t.Errorf("loss rate = %v, want ~0.25", rate)
	}
	st := l.Stats()
	if st.Sent+st.Dropped != n {
		t.Errorf("sent %d + dropped %d != %d", st.Sent, st.Dropped, n)
	}
	if want := float64(st.Sent) * 10; st.BytesSent != want {
		t.Errorf("bytes sent = %v, want %v", st.BytesSent, want)
	}
	if d := l.QueueDelay(0); d != 0 {
		t.Errorf("Deliver occupied the serializer: queue delay %v", d)
	}
}

func TestLinkJitterNonNegativeAndVarying(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 1e6, LatencySlots: 1, JitterSlots: 0.5, Seed: 6})
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		tx := l.Transmit(1, i*10)
		if tx.DeliveredSlot < float64(i*10)+1 {
			t.Fatalf("delivery %v earlier than latency floor", tx.DeliveredSlot)
		}
		seen[tx.DeliveredSlot-float64(i*10)] = true
	}
	if len(seen) < 10 {
		t.Error("jitter produced no variation")
	}
}

func TestLinkDeterministicPerSeed(t *testing.T) {
	mk := func() []float64 {
		l := mustLink(t, LinkConfig{BytesPerSlot: 50, LatencySlots: 1, JitterSlots: 1, LossProb: 0.1, Seed: 9})
		out := make([]float64, 100)
		for i := range out {
			tx := l.Transmit(25, i)
			if tx.Dropped {
				out[i] = -1
			} else {
				out[i] = tx.DeliveredSlot
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different link traces")
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tb, err := NewTokenBucket(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Starts full: a 50-byte burst passes, the next byte does not.
	if !tb.Admit(50, 0) {
		t.Fatal("full bucket must admit burst")
	}
	if tb.Admit(1, 0) {
		t.Fatal("drained bucket must reject")
	}
	// After 3 slots: 30 tokens.
	if !tb.Admit(30, 3) {
		t.Fatal("refilled tokens must admit")
	}
	if tb.Admit(5, 3) {
		t.Fatal("over-balance must reject")
	}
	// Refill caps at burst.
	if !tb.Admit(50, 100) {
		t.Fatal("cap refill must admit up to burst")
	}
	if tb.Tokens() != 0 {
		t.Errorf("tokens = %v, want 0", tb.Tokens())
	}
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("zero rate must error")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Error("zero burst must error")
	}
}

func TestLinkZeroByteFrames(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 10, LatencySlots: 1})
	tx := l.Transmit(0, 5)
	if tx.DeliveredSlot != 6 {
		t.Errorf("zero-byte delivery = %v, want 6", tx.DeliveredSlot)
	}
	tx = l.Transmit(-10, 7)
	if tx.DeliveredSlot != 8 {
		t.Errorf("negative bytes must clamp: %v", tx.DeliveredSlot)
	}
}

// ---------------------------------------------------------------------------
// Dynamic-bandwidth edge cases: the contracts the dynamics layer leans on.
// ---------------------------------------------------------------------------

// Regression pin: a bandwidth drop while the link is busy must not
// retroactively change already-scheduled deliveries. Schedules freeze
// at Transmit time; only transmissions enqueued after the change see
// the new rate.
func TestSetBandwidthMidBusyDoesNotRescheduleDeliveries(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 1})
	first := l.Transmit(200, 0)  // serializes [0,2), delivered 3
	second := l.Transmit(100, 0) // queued: serializes [2,3), delivered 4
	if first.DeliveredSlot != 3 || second.DeliveredSlot != 4 {
		t.Fatalf("baseline schedule: %v, %v", first.DeliveredSlot, second.DeliveredSlot)
	}

	// Drop the bandwidth 10x while both frames are on the link.
	if err := l.SetBandwidth(10); err != nil {
		t.Fatal(err)
	}
	// The busy period is unchanged: a frame arriving at slot 1 still
	// waits exactly until slot 3...
	if d := l.QueueDelay(1); d != 2 {
		t.Errorf("queue delay after drop = %v, want 2 (schedules frozen)", d)
	}
	// ...and serializes at the new rate from there.
	third := l.Transmit(10, 1)
	if third.StartSlot != 3 {
		t.Errorf("third start = %v, want 3", third.StartSlot)
	}
	if third.DeliveredSlot != 5 { // 3 + 10/10 + 1 latency
		t.Errorf("third delivered = %v, want 5", third.DeliveredSlot)
	}
	// Raising the bandwidth back mid-busy does not accelerate the queue
	// either.
	if err := l.SetBandwidth(1000); err != nil {
		t.Fatal(err)
	}
	if d := l.QueueDelay(1); d != 3 {
		t.Errorf("queue delay after restore = %v, want 3", d)
	}
}

// SetBandwidth mid-busy-period: BacklogBytes values every frame against
// the rate its schedule was built with, never the current rate.
func TestBacklogBytesExactUnderBandwidthChange(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100})
	l.Transmit(200, 0) // serializes [0,2)
	l.Transmit(100, 0) // serializes [2,3)
	if got := l.BacklogBytes(0); got != 300 {
		t.Fatalf("backlog at 0 = %v, want 300", got)
	}
	// Half of the first frame is out the door at slot 1.
	if got := l.BacklogBytes(1); got != 200 {
		t.Fatalf("backlog at 1 = %v, want 200", got)
	}
	// A 10x drop must not revalue the queued 200 bytes (the naive
	// QueueDelay*Bandwidth estimate would report 2 slots * 10 B/slot = 20).
	if err := l.SetBandwidth(10); err != nil {
		t.Fatal(err)
	}
	if got := l.BacklogBytes(1); got != 200 {
		t.Fatalf("backlog after drop = %v, want 200", got)
	}
	if est := l.QueueDelay(1) * l.Bandwidth(); est == 200 {
		t.Fatalf("estimate unexpectedly exact (%v); the regression would be invisible", est)
	}
	// New frames at the new rate join the exact accounting.
	l.Transmit(50, 1) // serializes [3,8) at 10 B/slot
	if got := l.BacklogBytes(1); got != 250 {
		t.Fatalf("backlog with new frame = %v, want 250", got)
	}
	if got := l.BacklogBytes(5.5); got != 25 { // half of the 50-byte frame left
		t.Fatalf("backlog mid-serialization = %v, want 25", got)
	}
	if got := l.BacklogBytes(100); got != 0 {
		t.Fatalf("backlog after drain = %v, want 0", got)
	}
}

// For a constant-rate link the exact accounting agrees with the
// QueueDelay*Bandwidth estimate the offload loop historically used.
func TestBacklogBytesMatchesEstimateOnStaticLink(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 128})
	for slot := 0; slot < 50; slot++ {
		l.Transmit(float64(100+slot*7), slot)
		got := l.BacklogBytes(float64(slot))
		est := l.QueueDelay(slot) * l.Bandwidth()
		if math.Abs(got-est) > 1e-6*math.Max(1, est) {
			t.Fatalf("slot %d: exact %v vs estimate %v", slot, got, est)
		}
	}
}

// A handoff outage overlapping an in-flight transmission: the in-flight
// frame keeps its already-returned delivery, queued frames wait out the
// outage.
func TestSuspendOverlappingInFlightTransmission(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100, LatencySlots: 1})
	inFlight := l.Transmit(300, 0) // serializes [0,3), delivered 4
	if inFlight.DeliveredSlot != 4 {
		t.Fatalf("baseline delivery %v", inFlight.DeliveredSlot)
	}
	// Outage at slot 1 lasting 5 slots: the busy horizon extends to 6.
	l.Suspend(6)
	if d := l.QueueDelay(1); d != 5 {
		t.Errorf("queue delay under outage = %v, want 5", d)
	}
	// The in-flight frame's bytes still finish serializing on their
	// original schedule (its Transmission was already returned).
	if got := l.BacklogBytes(2); got != 100 {
		t.Errorf("backlog at 2 = %v, want 100 (one third of the frame left)", got)
	}
	queued := l.Transmit(100, 2)
	if queued.StartSlot != 6 || queued.DeliveredSlot != 8 {
		t.Errorf("queued frame start=%v delivered=%v, want 6/8", queued.StartSlot, queued.DeliveredSlot)
	}
	// Suspend never shortens the busy period.
	l.Suspend(3)
	if d := l.QueueDelay(2); d != 5 {
		t.Errorf("late shorter suspend changed the horizon: %v", d)
	}
}

func TestBacklogBytesCountsLostFramesWhileSerializing(t *testing.T) {
	// LossProb=0.9 with a fixed seed: most frames drop, but their bytes
	// still occupy the serializer, so backlog must count them.
	l := mustLink(t, LinkConfig{BytesPerSlot: 10, LossProb: 0.9, Seed: 2})
	sawDrop := false
	for i := 0; i < 10; i++ {
		if l.Transmit(100, 0).Dropped {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("seed produced no drops; pick another seed")
	}
	if got := l.BacklogBytes(0); got != 1000 {
		t.Fatalf("backlog = %v, want 1000 (lost frames occupy the uplink)", got)
	}
}
