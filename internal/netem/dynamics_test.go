package netem

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"qarv/internal/geom"
)

func TestConstantBandwidth(t *testing.T) {
	c := &ConstantBandwidth{Rate: 42}
	for _, slot := range []int{0, 1, 1000} {
		if got := c.Bandwidth(slot); got != 42 {
			t.Fatalf("slot %d: %v", slot, got)
		}
		if c.Service(slot) != c.Bandwidth(slot) {
			t.Fatal("Service != Bandwidth")
		}
	}
}

func TestMarkovBandwidthValidation(t *testing.T) {
	cases := []MarkovBandwidth{
		{GoodRate: 0, BadRate: 1},
		{GoodRate: 1, BadRate: -1},
		{GoodRate: 1, PGoodBad: 1.5},
		{GoodRate: 1, PBadGood: -0.1},
		{GoodRate: math.Inf(1)},
	}
	for i, m := range cases {
		if err := m.Validate(); !errors.Is(err, ErrBadMarkov) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	ok := MarkovBandwidth{GoodRate: 100, BadRate: 10, PGoodBad: 0.1, PBadGood: 0.3}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovBandwidthDeterministicAndTwoLevel(t *testing.T) {
	build := func() *MarkovBandwidth {
		return &MarkovBandwidth{
			GoodRate: 100, BadRate: 20,
			PGoodBad: 0.2, PBadGood: 0.3,
			RNG: geom.NewRNG(7),
		}
	}
	a, b := build(), build()
	sawBad, sawGood := false, false
	for slot := 0; slot < 500; slot++ {
		ra, rb := a.Bandwidth(slot), b.Bandwidth(slot)
		if ra != rb {
			t.Fatalf("slot %d: same seed diverged: %v vs %v", slot, ra, rb)
		}
		// Idempotent within the slot.
		if again := a.Bandwidth(slot); again != ra {
			t.Fatalf("slot %d: repeated call changed rate %v -> %v", slot, ra, again)
		}
		switch ra {
		case 100:
			sawGood = true
		case 20:
			sawBad = true
		default:
			t.Fatalf("slot %d: rate %v is neither state", slot, ra)
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("chain never mixed: good=%v bad=%v", sawGood, sawBad)
	}
}

func TestMarkovBandwidthReseedResets(t *testing.T) {
	m := &MarkovBandwidth{GoodRate: 100, BadRate: 20, PGoodBad: 0.3, PBadGood: 0.3, RNG: geom.NewRNG(1)}
	var first []float64
	for slot := 0; slot < 100; slot++ {
		first = append(first, m.Bandwidth(slot))
	}
	m.Reseed(geom.NewRNG(1))
	for slot := 0; slot < 100; slot++ {
		if got := m.Bandwidth(slot); got != first[slot] {
			t.Fatalf("slot %d after reseed: %v != %v", slot, got, first[slot])
		}
	}
}

func TestMarkovBandwidthNilRNGHoldsStartState(t *testing.T) {
	m := &MarkovBandwidth{GoodRate: 100, BadRate: 20, PGoodBad: 1, PBadGood: 1, StartBad: true}
	for slot := 0; slot < 10; slot++ {
		if got := m.Bandwidth(slot); got != 20 {
			t.Fatalf("slot %d: %v, want start-state rate 20", slot, got)
		}
	}
}

func TestTraceBandwidthValidation(t *testing.T) {
	if _, err := NewTraceBandwidth(nil, 0); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("zero-length trace: %v", err)
	}
	if _, err := NewTraceBandwidth([]TracePoint{{Slot: 5, BytesPerSlot: 1}, {Slot: 5, BytesPerSlot: 2}}, 0); !errors.Is(err, ErrBadTrace) {
		t.Errorf("duplicate slots: %v", err)
	}
	if _, err := NewTraceBandwidth([]TracePoint{{Slot: -1, BytesPerSlot: 1}}, 0); !errors.Is(err, ErrBadTrace) {
		t.Errorf("negative slot: %v", err)
	}
	if _, err := NewTraceBandwidth([]TracePoint{{Slot: 0, BytesPerSlot: -3}}, 0); !errors.Is(err, ErrBadTrace) {
		t.Errorf("negative rate: %v", err)
	}
	if _, err := NewTraceBandwidth([]TracePoint{{Slot: 10, BytesPerSlot: 1}}, 10); !errors.Is(err, ErrBadTrace) {
		t.Errorf("period inside trace: %v", err)
	}
}

func TestTraceBandwidthSingleEntryIsConstant(t *testing.T) {
	tb, err := NewTraceBandwidth([]TracePoint{{Slot: 100, BytesPerSlot: 77}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A single-entry trace is a constant link — including slots before
	// the entry's own slot (the first rate extends backward).
	for _, slot := range []int{0, 50, 100, 5000} {
		if got := tb.Bandwidth(slot); got != 77 {
			t.Fatalf("slot %d: %v", slot, got)
		}
	}
}

func TestTraceBandwidthPiecewiseAndPeriod(t *testing.T) {
	tb, err := NewTraceBandwidth([]TracePoint{
		{Slot: 0, BytesPerSlot: 100},
		{Slot: 10, BytesPerSlot: 50},
		{Slot: 20, BytesPerSlot: 0},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := func(slot int) float64 {
		switch m := slot % 30; {
		case m < 10:
			return 100
		case m < 20:
			return 50
		default:
			return 0
		}
	}
	for slot := 0; slot < 120; slot++ {
		if got := tb.Bandwidth(slot); got != want(slot) {
			t.Fatalf("slot %d: got %v want %v", slot, got, want(slot))
		}
	}
	// Without a period the last rate holds forever.
	hold, err := NewTraceBandwidth([]TracePoint{{Slot: 0, BytesPerSlot: 9}, {Slot: 5, BytesPerSlot: 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := hold.Bandwidth(10_000); got != 4 {
		t.Fatalf("holding rate: %v", got)
	}
}

func TestReadTraceCSV(t *testing.T) {
	in := "# measured uplink\nslot,bytes_per_slot\n0,1000\n40,250.5\n\n90,0\n"
	tb, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Points) != 3 {
		t.Fatalf("points: %v", tb.Points)
	}
	if tb.Bandwidth(39) != 1000 || tb.Bandwidth(40) != 250.5 || tb.Bandwidth(95) != 0 {
		t.Fatalf("piecewise lookup wrong: %v", tb.Points)
	}
	if _, err := ReadTraceCSV(strings.NewReader("")); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty file: %v", err)
	}
	if _, err := ReadTraceCSV(strings.NewReader("0,1\nnonsense\n")); !errors.Is(err, ErrBadTrace) {
		t.Errorf("malformed line: %v", err)
	}
}

func TestReadTraceJSON(t *testing.T) {
	arr := `[{"slot":0,"bytes_per_slot":500},{"slot":10,"bytes_per_slot":125}]`
	tb, err := ReadTraceJSON(strings.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Bandwidth(3) != 500 || tb.Bandwidth(12) != 125 || tb.Period != 0 {
		t.Fatalf("array form: %+v", tb)
	}
	obj := `{"period": 20, "points": [{"slot":0,"bytes_per_slot":500},{"slot":10,"bytes_per_slot":125}]}`
	tb, err = ReadTraceJSON(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Period != 20 || tb.Bandwidth(25) != 500 {
		t.Fatalf("object form: %+v", tb)
	}
	if _, err := ReadTraceJSON(strings.NewReader(`{"points":[]}`)); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty points: %v", err)
	}
	if _, err := ReadTraceJSON(strings.NewReader(`{]`)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad json: %v", err)
	}
}

func TestHandoffBandwidthValidation(t *testing.T) {
	cases := []HandoffBandwidth{
		{BaseRate: 0, MeanIntervalSlots: 10},
		{BaseRate: 1, MeanIntervalSlots: 0},
		{BaseRate: 1, MeanIntervalSlots: 10, OutageSlots: -1},
		{BaseRate: 1, MeanIntervalSlots: 10, ScaleLo: 2, ScaleHi: 1},
	}
	for i, h := range cases {
		if err := h.Validate(); !errors.Is(err, ErrBadHandoff) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	ok := HandoffBandwidth{BaseRate: 100, MeanIntervalSlots: 50, OutageSlots: 2, ScaleLo: 0.5, ScaleHi: 1.5}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	// A Base process stands in for BaseRate and is validated through.
	nested := HandoffBandwidth{Base: &MarkovBandwidth{GoodRate: -1}, MeanIntervalSlots: 10}
	if err := nested.Validate(); !errors.Is(err, ErrBadMarkov) {
		t.Errorf("nested validation: %v", err)
	}
}

func TestHandoffBandwidthOutagesAndScales(t *testing.T) {
	h := &HandoffBandwidth{
		BaseRate:          100,
		MeanIntervalSlots: 30,
		OutageSlots:       3,
		ScaleLo:           0.5,
		ScaleHi:           1.5,
		RNG:               geom.NewRNG(3),
	}
	outages, scaleChanges := 0, 0
	lastRate := h.Bandwidth(0)
	if lastRate != 100 {
		t.Fatalf("initial rate %v, want base 100", lastRate)
	}
	for slot := 1; slot < 2000; slot++ {
		r := h.Bandwidth(slot)
		if r == 0 {
			outages++
			continue
		}
		if r < 0.5*100-1e-9 || r > 1.5*100+1e-9 {
			t.Fatalf("slot %d: rate %v outside scale range", slot, r)
		}
		if r != lastRate {
			scaleChanges++
		}
		lastRate = r
	}
	if outages == 0 {
		t.Fatal("no outage slots over 2000 slots at mean interval 30")
	}
	if scaleChanges == 0 {
		t.Fatal("cell scale never changed across handoffs")
	}
}

func TestHandoffBandwidthNilRNGNeverHandsOff(t *testing.T) {
	h := &HandoffBandwidth{BaseRate: 100, MeanIntervalSlots: 1, OutageSlots: 5}
	for slot := 0; slot < 100; slot++ {
		if got := h.Bandwidth(slot); got != 100 {
			t.Fatalf("slot %d: %v", slot, got)
		}
	}
}

func TestHandoffBandwidthReseedReplays(t *testing.T) {
	build := func() *HandoffBandwidth {
		return &HandoffBandwidth{
			BaseRate: 100, MeanIntervalSlots: 20, OutageSlots: 2,
			ScaleLo: 0.5, ScaleHi: 1.5,
		}
	}
	a, b := build(), build()
	a.Reseed(geom.NewRNG(11))
	b.Reseed(geom.NewRNG(11))
	for slot := 0; slot < 500; slot++ {
		if ra, rb := a.Bandwidth(slot), b.Bandwidth(slot); ra != rb {
			t.Fatalf("slot %d: %v vs %v", slot, ra, rb)
		}
	}
}

func TestLinkDynamicsValidate(t *testing.T) {
	if err := (&LinkDynamics{}).Validate(); !errors.Is(err, ErrNilProcess) {
		t.Errorf("nil process: %v", err)
	}
	bad := &LinkDynamics{Process: &MarkovBandwidth{GoodRate: -1}}
	if err := bad.Validate(); !errors.Is(err, ErrBadMarkov) {
		t.Errorf("invalid process: %v", err)
	}
	ok := &LinkDynamics{Process: &ConstantBandwidth{Rate: 10}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Name() != "constant-bw" {
		t.Errorf("name: %q", ok.Name())
	}
	var unset *LinkDynamics
	if unset.Name() != "static" {
		t.Errorf("nil dynamics name: %q", unset.Name())
	}
}

func TestLinkDynamicsApplySetsRateAndSuspendsOnOutage(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100})
	tb, err := NewTraceBandwidth([]TracePoint{
		{Slot: 0, BytesPerSlot: 100},
		{Slot: 2, BytesPerSlot: 0},  // outage slots 2,3
		{Slot: 4, BytesPerSlot: 50}, // recovery at half rate
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := &LinkDynamics{Process: tb}
	d.Apply(l, 0)
	if l.Bandwidth() != 100 {
		t.Fatalf("slot 0 rate %v", l.Bandwidth())
	}
	d.Apply(l, 2)
	d.Apply(l, 3)
	// Outage slots keep the last positive rate but push the busy horizon.
	if l.Bandwidth() != 100 {
		t.Fatalf("outage must keep last positive rate, got %v", l.Bandwidth())
	}
	if got := l.QueueDelay(3); got != 1 {
		t.Fatalf("queue delay during outage: %v, want 1 (suspended through slot 4)", got)
	}
	d.Apply(l, 4)
	if l.Bandwidth() != 50 {
		t.Fatalf("recovery rate %v", l.Bandwidth())
	}
	tx := l.Transmit(100, 4)
	if tx.StartSlot != 4 || tx.DeliveredSlot != 6 {
		t.Fatalf("post-recovery transmit start=%v delivered=%v, want 4/6", tx.StartSlot, tx.DeliveredSlot)
	}
}

// Regression (review finding): outages must cost schedule time even on
// a loaded link. Suspend alone is a no-op when the busy horizon already
// extends past the outage; Apply therefore uses Stall, which adds one
// slot of dead time per outage slot regardless of the standing queue.
func TestOutageDelaysFutureEnqueuesUnderStandingQueue(t *testing.T) {
	run := func(outage bool) float64 {
		l := mustLink(t, LinkConfig{BytesPerSlot: 100})
		tb, err := NewTraceBandwidth([]TracePoint{
			{Slot: 0, BytesPerSlot: 100},
			{Slot: 5, BytesPerSlot: 0}, // outage slots 5..14
			{Slot: 15, BytesPerSlot: 100},
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		d := &LinkDynamics{Process: tb}
		var last Transmission
		for slot := 0; slot < 30; slot++ {
			if outage {
				d.Apply(l, slot)
			}
			// 1.5x overload: a standing queue builds from the start.
			last = l.Transmit(150, slot)
		}
		return last.DeliveredSlot
	}
	withOutage, without := run(true), run(false)
	// 10 outage slots must push the final delivery by exactly 10 slots.
	if got := withOutage - without; got != 10 {
		t.Fatalf("outage under load shifted the final delivery by %v slots, want 10 (no-op outage regression)", got)
	}
}

func TestLinkStall(t *testing.T) {
	l := mustLink(t, LinkConfig{BytesPerSlot: 100})
	// Idle link: a stall at slot 3 blocks until 4.
	l.Stall(3, 1)
	if d := l.QueueDelay(3); d != 1 {
		t.Errorf("idle stall queue delay = %v, want 1", d)
	}
	// Busy link: the stall appends to the horizon rather than being
	// swallowed by it.
	l2 := mustLink(t, LinkConfig{BytesPerSlot: 100})
	l2.Transmit(800, 0) // busy until 8
	l2.Stall(1, 2)
	if d := l2.QueueDelay(0); d != 10 {
		t.Errorf("busy stall queue delay = %v, want 10 (8 busy + 2 dead)", d)
	}
	// Non-positive stalls are no-ops.
	l2.Stall(0, 0)
	l2.Stall(0, -3)
	if d := l2.QueueDelay(0); d != 10 {
		t.Errorf("zero/negative stall moved the horizon: %v", d)
	}
}

func TestCloneProcessIsolatesState(t *testing.T) {
	orig := &HandoffBandwidth{
		BaseRate: 100, MeanIntervalSlots: 10, OutageSlots: 2,
		ScaleLo: 0.5, ScaleHi: 1.5,
		Base: &MarkovBandwidth{GoodRate: 1, BadRate: 0.5, PGoodBad: 0.2, PBadGood: 0.2},
	}
	d := &LinkDynamics{Process: orig}
	c := d.Clone()
	c.Reseed(geom.NewRNG(5))
	for slot := 0; slot < 200; slot++ {
		c.Process.Bandwidth(slot)
	}
	// The original saw none of it: no RNG, no chain state, same Base.
	if orig.RNG != nil || orig.init {
		t.Error("clone leaked state into the original handoff process")
	}
	if mb := orig.Base.(*MarkovBandwidth); mb.RNG != nil || mb.init {
		t.Error("clone leaked state into the original nested markov process")
	}
	// And two identically reseeded clones replay identical paths.
	c2 := d.Clone()
	c2.Reseed(geom.NewRNG(5))
	c3 := d.Clone()
	c3.Reseed(geom.NewRNG(5))
	for slot := 0; slot < 200; slot++ {
		if a, b := c2.Process.Bandwidth(slot), c3.Process.Bandwidth(slot); a != b {
			t.Fatalf("slot %d: identically seeded clones diverged: %v vs %v", slot, a, b)
		}
	}
	var nilDyn *LinkDynamics
	if nilDyn.Clone() != nil {
		t.Error("nil dynamics clone not nil")
	}
}

func TestDefaultPresets(t *testing.T) {
	if err := DefaultMarkovFactor(nil).Validate(); err != nil {
		t.Errorf("markov preset invalid: %v", err)
	}
	if err := DefaultHandoffFactor(nil).Validate(); err != nil {
		t.Errorf("handoff preset invalid: %v", err)
	}
	tb := DefaultDiurnalTrace()
	if err := tb.Validate(); err != nil {
		t.Errorf("diurnal preset invalid: %v", err)
	}
	if tb.Bandwidth(0) != 1 || tb.Bandwidth(120) != 0.6 || tb.Bandwidth(240) != 1 {
		t.Errorf("diurnal shape wrong: %v %v %v", tb.Bandwidth(0), tb.Bandwidth(120), tb.Bandwidth(240))
	}
}

// Regression (review finding): a t regression — the same session Run
// again, restarting its slot loop at 0 — must reset the stateful
// processes rather than freeze them (the catch-up loop `lastT < t`
// would otherwise never execute and the chain would return its final
// run-1 state as a constant forever).
func TestStatefulProcessesResetOnRestartedSlotLoop(t *testing.T) {
	m := &MarkovBandwidth{GoodRate: 100, BadRate: 20, PGoodBad: 0.3, PBadGood: 0.3, RNG: geom.NewRNG(9)}
	for slot := 0; slot < 300; slot++ {
		m.Bandwidth(slot)
	}
	levels := map[float64]bool{}
	for slot := 0; slot < 300; slot++ { // second "run"
		levels[m.Bandwidth(slot)] = true
	}
	if len(levels) != 2 {
		t.Fatalf("restarted markov chain froze: saw levels %v, want both states", levels)
	}

	h := &HandoffBandwidth{BaseRate: 100, MeanIntervalSlots: 20, OutageSlots: 2, RNG: geom.NewRNG(9)}
	for slot := 0; slot < 300; slot++ {
		h.Bandwidth(slot)
	}
	sawOutage := false
	for slot := 0; slot < 300; slot++ { // second "run"
		if h.Bandwidth(slot) == 0 {
			sawOutage = true
		}
	}
	if !sawOutage {
		t.Fatal("restarted handoff process froze: no outage in 300 slots at mean dwell 20")
	}
}

func TestTraceBandwidthNormalized(t *testing.T) {
	// A measured absolute trace becomes fractions of its peak.
	abs, err := NewTraceBandwidth([]TracePoint{
		{Slot: 0, BytesPerSlot: 20_000},
		{Slot: 50, BytesPerSlot: 10_000},
		{Slot: 100, BytesPerSlot: 0},
	}, 150)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := abs.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Bandwidth(0) != 1 || norm.Bandwidth(60) != 0.5 || norm.Bandwidth(110) != 0 {
		t.Fatalf("normalized rates wrong: %v %v %v", norm.Bandwidth(0), norm.Bandwidth(60), norm.Bandwidth(110))
	}
	if norm.Period != 150 {
		t.Errorf("period dropped: %d", norm.Period)
	}
	// The original is untouched and a factor trace round-trips.
	if abs.Bandwidth(0) != 20_000 {
		t.Error("Normalized mutated the receiver")
	}
	factor := DefaultDiurnalTrace()
	same, err := factor.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 240; slot++ {
		if same.Bandwidth(slot) != factor.Bandwidth(slot) {
			t.Fatalf("peak-1 factor trace changed at slot %d", slot)
		}
	}
	// All-zero traces have no peak to normalize against.
	zero, err := NewTraceBandwidth([]TracePoint{{Slot: 0, BytesPerSlot: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zero.Normalized(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("all-zero normalize: %v", err)
	}
}

// Regression (review finding): a forgotten (zero-value) constant rate
// must fail validation instead of stalling every slot as a permanent
// outage.
func TestConstantBandwidthValidate(t *testing.T) {
	for _, rate := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		c := &ConstantBandwidth{Rate: rate}
		if err := c.Validate(); !errors.Is(err, ErrBadConstant) {
			t.Errorf("rate %v: %v", rate, err)
		}
		d := &LinkDynamics{Process: c}
		if err := d.Validate(); !errors.Is(err, ErrBadConstant) {
			t.Errorf("dynamics with rate %v: %v", rate, err)
		}
	}
	if err := (&ConstantBandwidth{Rate: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFactorTrace(t *testing.T) {
	// Empty path: the shared built-in diurnal pattern.
	tb, err := LoadFactorTrace("")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Bandwidth(120) != 0.6 {
		t.Errorf("builtin trace shape: %v", tb.Bandwidth(120))
	}
	// A file loads peak-normalized.
	dir := t.TempDir()
	path := dir + "/m.csv"
	if err := os.WriteFile(path, []byte("0,20000\n10,5000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err = LoadFactorTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Bandwidth(0) != 1 || tb.Bandwidth(10) != 0.25 {
		t.Errorf("normalized file trace: %v %v", tb.Bandwidth(0), tb.Bandwidth(10))
	}
	if _, err := LoadFactorTrace(dir + "/missing.csv"); err == nil {
		t.Error("missing file accepted")
	}
}
