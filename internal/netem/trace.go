package netem

// Bandwidth-trace file loaders: measured link-capacity schedules
// recorded elsewhere (a drive test, an emulator log, a synthetic
// generator) replayed through TraceBandwidth. Two formats are accepted:
//
//   - CSV: one "slot,bytes_per_slot" pair per line; blank lines, '#'
//     comments, and a "slot,..." header row are skipped.
//   - JSON: either a bare array of points
//     [{"slot":0,"bytes_per_slot":1200}, ...] or an object
//     {"period":600,"points":[...]} when the replay should wrap.
//
// Both loaders validate through NewTraceBandwidth, so malformed files
// (empty, unsorted, negative rates) are rejected up front instead of
// surfacing mid-run.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ReadTraceCSV parses a "slot,bytes_per_slot" CSV stream into a
// validated trace. Lines that are blank, start with '#', or form a
// non-numeric header are skipped.
func ReadTraceCSV(r io.Reader) (*TraceBandwidth, error) {
	var points []TracePoint
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		slotStr, rateStr, found := strings.Cut(text, ",")
		if !found {
			return nil, fmt.Errorf("%w: line %d: want \"slot,bytes_per_slot\", got %q", ErrBadTrace, line, text)
		}
		slot, err := strconv.Atoi(strings.TrimSpace(slotStr))
		if err != nil {
			if len(points) == 0 {
				continue // header row before the first data line
			}
			return nil, fmt.Errorf("%w: line %d: bad slot %q", ErrBadTrace, line, slotStr)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad rate %q", ErrBadTrace, line, rateStr)
		}
		points = append(points, TracePoint{Slot: slot, BytesPerSlot: rate})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netem: read trace: %w", err)
	}
	return NewTraceBandwidth(points, 0)
}

// jsonTrace is the object form of a JSON trace file.
type jsonTrace struct {
	Period int          `json:"period"`
	Points []TracePoint `json:"points"`
}

// ReadTraceJSON parses a JSON trace stream — a bare point array or a
// {"period":N,"points":[...]} object — into a validated trace.
func ReadTraceJSON(r io.Reader) (*TraceBandwidth, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netem: read trace: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var points []TracePoint
		if err := json.Unmarshal(data, &points); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		return NewTraceBandwidth(points, 0)
	}
	var obj jsonTrace
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return NewTraceBandwidth(obj.Points, obj.Period)
}

// LoadTraceFile reads a bandwidth trace from path, dispatching on the
// extension: .json loads the JSON form, anything else the CSV form.
func LoadTraceFile(path string) (*TraceBandwidth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netem: open trace: %w", err)
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return ReadTraceJSON(f)
	}
	return ReadTraceCSV(f)
}
