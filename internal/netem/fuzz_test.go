package netem

import (
	"errors"
	"strings"
	"testing"
)

// FuzzReadTraceCSV throws arbitrary text at the CSV trace loader. The
// loader must never panic; every non-error result must pass its own
// Validate (the loaders promise to reject malformed traces up front so
// nothing surfaces mid-run), and every error must be classified — a
// parse problem wraps ErrBadTrace, an empty input ErrEmptyTrace.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("0,1200\n600,800\n")
	f.Add("# drive test 3\nslot,bytes_per_slot\n0,1500.5\n10,0\n")
	f.Add("0,1\n0,2\n")                 // duplicate slot: must be rejected
	f.Add("5,-1\n")                     // negative rate
	f.Add("0,NaN\n")                    // ParseFloat accepts NaN; Validate must not
	f.Add("0 1200\n")                   // missing comma
	f.Add("slot,rate\n")                // header only: empty trace
	f.Add("")                           // empty input
	f.Add("9999999999999999999999,1\n") // slot overflows int

	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadTraceCSV(strings.NewReader(data))
		checkTraceResult(t, tb, err)
	})
}

// FuzzReadTraceJSON does the same for the JSON form, covering both the
// bare-array and {"period":N,"points":[...]} object shapes.
func FuzzReadTraceJSON(f *testing.F) {
	f.Add(`[{"slot":0,"bytes_per_slot":1200},{"slot":600,"bytes_per_slot":800}]`)
	f.Add(`{"period":600,"points":[{"slot":0,"bytes_per_slot":1200}]}`)
	f.Add(`{"period":-1,"points":[{"slot":0,"bytes_per_slot":1}]}`)
	f.Add(`{"period":1,"points":[{"slot":5,"bytes_per_slot":1}]}`) // period inside trace
	f.Add(`[{"slot":0,"bytes_per_slot":1e999}]`)                   // rate overflows float64
	f.Add(`[]`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`  [ {"slot": 3} `) // truncated after whitespace

	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadTraceJSON(strings.NewReader(data))
		checkTraceResult(t, tb, err)
	})
}

// checkTraceResult holds the shared loader contract: success implies a
// self-consistently valid trace, failure implies a classified error.
func checkTraceResult(t *testing.T, tb *TraceBandwidth, err error) {
	t.Helper()
	if err != nil {
		if tb != nil {
			t.Fatalf("loader returned non-nil trace alongside error %v", err)
		}
		if !errors.Is(err, ErrBadTrace) && !errors.Is(err, ErrEmptyTrace) {
			t.Fatalf("unclassified loader error: %v", err)
		}
		return
	}
	if err := tb.Validate(); err != nil {
		t.Fatalf("loader accepted a trace its own Validate rejects: %v", err)
	}
	// The accepted trace must actually be usable as a process.
	if bw := tb.Bandwidth(0); bw < 0 {
		t.Fatalf("Bandwidth(0) = %v on a validated trace", bw)
	}
}
